//! Cross-crate physics consistency: the solver, the PDE residual
//! definitions, the jet-based decoder derivatives, and the FD training
//! stencil must all agree with each other.

use meshfreeflownet::autodiff::{Activation, Graph, Mlp, ParamStore};
use meshfreeflownet::core::{
    equation_loss, ChannelStats, ConstraintSet, ContinuousDecoder, RbcParamsF32,
};
use meshfreeflownet::physics::{grid_residuals, residuals, PointState, RbcParams};
use meshfreeflownet::solver::{simulate, RbcConfig};
use meshfreeflownet::tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The solver's PDE residuals shrink as the frame sampling refines (i.e. the
/// grid residual is dominated by the O(Δt²) central time difference across
/// frames, not by a bug in the solver or the residual definitions).
#[test]
fn solver_residual_converges_with_frame_rate() {
    let cfg = RbcConfig { nx: 32, nz: 17, ra: 1e5, dt_max: 1e-3, ..Default::default() };
    let coarse = simulate(&cfg, 2.0, 11); // frame dt = 0.2
    let fine = simulate(&cfg, 2.0, 41); // frame dt = 0.05
                                        // Compare residuals at the same physical time t = 1.0.
    let rc = grid_residuals(&coarse, 5);
    let rf = grid_residuals(&fine, 20);
    // Temperature residual (index 1) is time-derivative dominated.
    assert!(
        rf[1] < rc[1],
        "temperature residual did not shrink with finer frames: {rc:?} vs {rf:?}"
    );
}

/// The tape-recorded equation loss agrees with the scalar residual formulas
/// in `mfn-physics` when derivatives come from exact jets.
#[test]
fn tape_equation_loss_consistent_with_physics_residuals() {
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mlp = Mlp::new(&mut store, "d", &[3 + 8, 32, 16, 4], Activation::Softplus, &mut rng);
    let dec = ContinuousDecoder::new(mlp, 8);
    let latent = Tensor::randn(&[1, 8, 4, 4, 4], 0.5, &mut rng);

    let h = 0.02f32;
    let extent = [0.8f64, 1.0, 2.0];
    let queries: Vec<[f32; 3]> = vec![[0.31f32, 0.42, 0.53], [0.61, 0.72, 0.33]]
        .into_iter()
        .map(|q| [q[0].clamp(h, 1.0 - h), q[1].clamp(h, 1.0 - h), q[2].clamp(h, 1.0 - h)])
        .collect();
    let sample = mfn_data::Sample {
        lr_patch: Tensor::zeros(&[4, 4, 4, 4]),
        query_local: queries.clone(),
        query_values: vec![[0.0; 4]; queries.len()],
        origin_phys: [0.0; 3],
        extent_phys: extent,
    };
    let params = RbcParamsF32::from_ra_pr(1e5, 1.0);
    let stats = ChannelStats { mean: [0.1, -0.2, 0.0, 0.3], std: [1.5, 0.7, 1.0, 2.0] };

    let mut g = Graph::new();
    let l = g.constant(latent.clone());
    let loss = equation_loss(
        &mut g,
        &store,
        &dec,
        l,
        std::slice::from_ref(&sample),
        [4, 4, 4],
        params,
        stats,
        h,
        ConstraintSet::ALL,
    );
    let tape = g.value(loss).item() as f64;

    // Jets + scalar formulas, with the same denormalization.
    let p64 = RbcParams::from_ra_pr(1e5, 1.0);
    let mut acc = 0.0;
    for q in &queries {
        let jets = dec.decode_jet(&store, &latent, 0, *q, extent);
        let dn = |c: usize, j: &meshfreeflownet::autodiff::Jet3| {
            (
                (j.v * stats.std[c] + stats.mean[c]) as f64,
                [
                    (j.d[0] * stats.std[c]) as f64,
                    (j.d[1] * stats.std[c]) as f64,
                    (j.d[2] * stats.std[c]) as f64,
                ],
                [
                    (j.dd[0] * stats.std[c]) as f64,
                    (j.dd[1] * stats.std[c]) as f64,
                    (j.dd[2] * stats.std[c]) as f64,
                ],
            )
        };
        let (tv, td, tdd) = dn(0, &jets[0]);
        let (_pv, pd, _pdd) = dn(1, &jets[1]);
        let (uv, ud, udd) = dn(2, &jets[2]);
        let (wv, wd, wdd) = dn(3, &jets[3]);
        let s = PointState {
            t: tv,
            p_x: pd[2],
            p_z: pd[1],
            u: uv,
            w: wv,
            t_t: td[0],
            t_x: td[2],
            t_z: td[1],
            t_xx: tdd[2],
            t_zz: tdd[1],
            u_t: ud[0],
            u_x: ud[2],
            u_z: ud[1],
            u_xx: udd[2],
            u_zz: udd[1],
            w_t: wd[0],
            w_x: wd[2],
            w_z: wd[1],
            w_xx: wdd[2],
            w_zz: wdd[1],
        };
        acc += residuals(p64, &s).iter().map(|v| v.abs()).sum::<f64>();
    }
    let jet = acc / (queries.len() * 4) as f64;
    assert!(
        (tape - jet).abs() < 0.15 * (1.0 + jet),
        "tape equation loss {tape} vs jet residual {jet}"
    );
}

/// The dataset's stored pressure channel makes the momentum residuals small
/// on solver output (the hydrostatic-absorption bookkeeping is consistent).
#[test]
fn stored_pressure_closes_momentum_budget() {
    let cfg = RbcConfig { nx: 64, nz: 33, ra: 1e5, dt_max: 1e-3, ..Default::default() };
    let sim = simulate(&cfg, 3.0, 61);
    let r = grid_residuals(&sim, 40);
    let f = &sim.frames[40];
    let wmax = f.w.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    assert!(wmax > 1e-3, "flow never developed");
    // Momentum-z residual must be far smaller than the raw buoyancy term
    // magnitude (≈ |T| ~ 0.5): if the pressure bookkeeping were wrong, the
    // residual would be O(|T|).
    assert!(r[3] < 0.1, "momentum-z residual {} — pressure channel inconsistent?", r[3]);
}
