//! Integration tests of the distributed layer against the serial trainer.

use meshfreeflownet::core::MeshfreeFlowNet;
use meshfreeflownet::core::{Corpus, MfnConfig, TrainConfig, Trainer};
use meshfreeflownet::data::{downsample, Dataset, PatchSpec};
use meshfreeflownet::dist::{ring, train_data_parallel};
use meshfreeflownet::solver::{simulate, RbcConfig};

fn setup() -> (Corpus, MfnConfig, TrainConfig) {
    let sim =
        simulate(&RbcConfig { nx: 32, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() }, 0.4, 9);
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    let corpus = Corpus::new(vec![(hr, lr)]);
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    let tc = TrainConfig {
        epochs: 3,
        batches_per_epoch: 4,
        batch_size: 2,
        lr: 5e-3,
        ..Default::default()
    };
    (corpus, cfg, tc)
}

/// Gradient averaging across 2 workers must equal the hand-computed average
/// of the two workers' gradients (computed serially with the same batches).
#[test]
fn all_reduced_gradient_equals_serial_average() {
    use meshfreeflownet::autodiff::{flatten_grads, Graph};
    use meshfreeflownet::data::make_batch;
    use meshfreeflownet::data::PatchSampler;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    let (corpus, cfg, _) = setup();
    let (hr, lr) = &corpus.pairs[0];
    let sampler = PatchSampler::new(hr, lr, cfg.patch);
    let batches: Vec<_> =
        (0..2).map(|i| make_batch(&sampler, 2, &mut ChaCha8Rng::seed_from_u64(50 + i))).collect();

    // Serial: gradient of each batch on a fresh model, then average.
    let serial_avg: Vec<f32> = {
        let mut sum: Vec<f32> = Vec::new();
        for b in &batches {
            let mut model = MeshfreeFlowNet::new(cfg.clone());
            let mut g = Graph::new();
            let (loss, _) = model.loss_on_batch(&mut g, b, corpus.params(0), corpus.stats, true);
            g.backward(loss);
            let flat = flatten_grads(&g.param_grads(&model.store));
            if sum.is_empty() {
                sum = flat;
            } else {
                for (a, b) in sum.iter_mut().zip(&flat) {
                    *a += b;
                }
            }
        }
        sum.iter().map(|v| v / 2.0).collect()
    };

    // Distributed: each worker computes one batch, then ring-averages.
    let handles = ring(2);
    let reduced: Vec<Vec<f32>> = std::thread::scope(|scope| {
        let joins: Vec<_> = handles
            .into_iter()
            .zip(batches.iter())
            .map(|(h, b)| {
                let cfg = cfg.clone();
                let corpus = &corpus;
                scope.spawn(move || {
                    let mut model = MeshfreeFlowNet::new(cfg);
                    let mut g = Graph::new();
                    let (loss, _) =
                        model.loss_on_batch(&mut g, b, corpus.params(0), corpus.stats, true);
                    g.backward(loss);
                    let mut flat = flatten_grads(&g.param_grads(&model.store));
                    h.all_reduce_mean(&mut flat);
                    flat
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("worker")).collect()
    });
    for worker in &reduced {
        assert_eq!(worker.len(), serial_avg.len());
        for (i, (a, b)) in worker.iter().zip(&serial_avg).enumerate() {
            assert!(
                (a - b).abs() < 1e-5 * (1.0 + b.abs()),
                "grad elem {i}: distributed {a} vs serial {b}"
            );
        }
    }
}

/// Data-parallel training produces a usable model: loss decreases and the
/// resulting parameters super-resolve without NaNs.
#[test]
fn distributed_model_is_usable_after_training() {
    let (corpus, cfg, mut tc) = setup();
    tc.epochs = 6;
    tc.batches_per_epoch = 6;
    tc.lr = 1e-2;
    let r = train_data_parallel(&corpus, &cfg, &tc, 2);
    assert!(*r.epoch_losses.last().expect("losses") < r.epoch_losses[0], "{:?}", r.epoch_losses);
    // Load the trained parameters into a fresh model and run inference.
    let mut model = MeshfreeFlowNet::new(cfg);
    model.store.unflatten_into(&r.final_params);
    let (hr, lr) = &corpus.pairs[0];
    let sr = model.super_resolve(lr, &hr.meta, corpus.stats);
    assert!(sr.data.iter().all(|v| v.is_finite()));
}

/// Serial trainer and 1-worker distributed trainer share the loss scale.
#[test]
fn one_worker_distributed_matches_serial_scale() {
    let (corpus, cfg, tc) = setup();
    let r = train_data_parallel(&corpus, &cfg, &tc, 1);
    let mut serial = Trainer::new(MeshfreeFlowNet::new(cfg), tc);
    let records = serial.train(&corpus);
    let d = *r.epoch_losses.last().expect("dist");
    let s = records.last().expect("serial").loss;
    assert!((d - s).abs() < 0.5 * (d + s), "loss scales diverged: dist {d} vs serial {s}");
}
