//! Chaos suite: fault-injected distributed training (ISSUE PR 3).
//!
//! Each test scripts failures through a [`FaultPlan`] and checks the elastic
//! supervisor's contract: no hangs, no partial commits, telemetry that
//! records what happened, and — when the world is held fixed — bit-identical
//! results to a run that never faulted.

use meshfreeflownet::core::{Corpus, MfnConfig, TrainConfig};
use meshfreeflownet::data::{downsample, Dataset, PatchSpec};
use meshfreeflownet::dist::{ring, train_elastic, FaultPlan, RingError, SupervisorConfig};
use meshfreeflownet::solver::{simulate, RbcConfig};
use meshfreeflownet::telemetry::{MemorySink, Recorder};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// When `MFN_CHAOS_TELEMETRY` is set (the CI chaos job does this), dump the
/// scenario's in-memory telemetry as JSONL before any assertion runs, so a
/// failed pass leaves its full event stream behind as an artifact.
fn dump_telemetry(sink: &MemorySink, tag: &str) {
    if let Ok(base) = std::env::var("MFN_CHAOS_TELEMETRY") {
        let path = PathBuf::from(format!("{base}.{tag}"));
        if let Err(e) = sink.write_jsonl(&path) {
            eprintln!("telemetry dump to {} failed: {e}", path.display());
        }
    }
}

/// Per-test unique temp dir, removed on drop (panic included).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("mfn_chaos_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn tiny_setup(epochs: usize, batches_per_epoch: usize) -> (Corpus, MfnConfig, TrainConfig) {
    let sim =
        simulate(&RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() }, 0.1, 9);
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    let corpus = Corpus::new(vec![(hr, lr)]);
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 8 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    let tc =
        TrainConfig { epochs, batches_per_epoch, batch_size: 2, lr: 5e-3, ..Default::default() };
    (corpus, cfg, tc)
}

fn median(xs: &[f32]) -> f32 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    v[v.len() / 2]
}

/// ISSUE satellite (a), scenario 1: kill rank 1 mid-epoch in elastic-shrink
/// mode. The run must complete on the reduced world (no deadlock), keep the
/// loss trending down, and emit the failure counters.
#[test]
fn killed_worker_shrinks_world_and_training_still_converges() {
    let (corpus, cfg, tc) = tiny_setup(6, 6);
    let sup = SupervisorConfig { workers: 2, restart_failed: false, ..Default::default() };
    // Global step 9 = epoch 1, batch 3: squarely mid-epoch.
    let plan = FaultPlan::none().kill(1, 9);
    let (recorder, sink) = Recorder::memory(16384);
    let result = train_elastic(&corpus, &cfg, &tc, &sup, &plan, recorder);
    dump_telemetry(&sink, "shrink");

    assert!(result.completed, "run must finish on the surviving world");
    assert_eq!(result.final_world, 1, "world must have shrunk to the survivor");
    assert_eq!(result.failures, 1);
    assert_eq!(result.ring_reforms, 1);
    assert_eq!(result.epoch_losses.len(), tc.epochs, "every epoch must commit");
    // Epoch 0 committed at full strength; everything after the kill ran on
    // the reduced world.
    assert_eq!(result.epoch_worlds[0], 2);
    assert!(result.epoch_worlds[1..].iter().all(|&w| w == 1), "{:?}", result.epoch_worlds);
    // Loss keeps decreasing across the failure: median of the first half of
    // epoch losses vs the second half.
    let half = result.epoch_losses.len() / 2;
    let (first, last) =
        (median(&result.epoch_losses[..half]), median(&result.epoch_losses[half..]));
    assert!(last < first, "loss did not keep dropping after the kill: {first} -> {last}");
    // Telemetry recorded the event stream the ISSUE names.
    assert_eq!(sink.counter_total("dist.failures"), 1);
    assert_eq!(sink.counter_total("dist.ring_reforms"), 1);
    // The world gauge ends at the shrunken size.
    assert_eq!(sink.gauge("dist.world"), Some(1.0));
    // Both ranks emitted step metrics before the kill; only rank 0 after.
    let steps = sink.train_steps();
    assert!(steps.iter().any(|m| m.rank == 1), "rank 1 trained before dying");
    assert!(steps.iter().all(|m| m.allreduce_wait_s >= 0.0));
}

/// ISSUE satellite (a), scenario 2: kill-and-resume is deterministic. With
/// the failed rank restarted (world held fixed), the faulted run — rollback,
/// ring re-form, retry — must land on exactly the digest of a run under the
/// no-op plan, while the supervisor checkpoints every round.
#[test]
fn kill_and_resume_matches_no_fault_plan_bit_for_bit() {
    let (corpus, cfg, tc) = tiny_setup(3, 4);
    let dir = TempDir::new("killresume");
    let clean_sup = SupervisorConfig { workers: 2, restart_failed: true, ..Default::default() };
    let clean = train_elastic(&corpus, &cfg, &tc, &clean_sup, &FaultPlan::none(), Recorder::null());

    let faulted_sup = SupervisorConfig {
        workers: 2,
        restart_failed: true,
        checkpoint_path: Some(dir.path("elastic.ckpt")),
        ..Default::default()
    };
    let plan = FaultPlan::none().kill(1, 6); // mid-epoch 1
    let (recorder, sink) = Recorder::memory(16384);
    let faulted = train_elastic(&corpus, &cfg, &tc, &faulted_sup, &plan, recorder);
    dump_telemetry(&sink, "killresume");

    assert!(faulted.completed);
    assert_eq!(faulted.failures, 1);
    assert_eq!(faulted.ring_reforms, 1);
    assert_eq!(faulted.final_world, 2, "restart mode holds the world fixed");
    assert_eq!(
        faulted.final_digest, clean.final_digest,
        "rollback + restart must reproduce the faultless digest"
    );
    // The checkpoint writer ran before every epoch (plus the retried round
    // and the final state) and reported its volume.
    assert!(sink.counter_total("ckpt.writes") > tc.epochs as u64);
    assert!(sink.counter_total("ckpt.bytes") > 0);
    assert!(sink.gauge("ckpt.write_s").is_some());
}

/// A supervisor run interrupted between epochs resumes from its checkpoint
/// and finishes bit-identically to an uninterrupted elastic run.
#[test]
fn elastic_resume_from_checkpoint_is_bit_identical() {
    let (corpus, cfg, tc4) = tiny_setup(4, 4);
    let tc2 = TrainConfig { epochs: 2, ..tc4 };
    let dir = TempDir::new("elasticresume");
    let path = dir.path("super.ckpt");

    let straight_sup = SupervisorConfig { workers: 2, ..Default::default() };
    let straight =
        train_elastic(&corpus, &cfg, &tc4, &straight_sup, &FaultPlan::none(), Recorder::null());

    let ckpt_sup =
        SupervisorConfig { workers: 2, checkpoint_path: Some(path.clone()), ..Default::default() };
    // First half: 2 epochs, final state persisted...
    let first = train_elastic(&corpus, &cfg, &tc2, &ckpt_sup, &FaultPlan::none(), Recorder::null());
    assert!(first.completed);
    // ...second supervisor picks the checkpoint up and runs epochs 2..4.
    let resumed =
        train_elastic(&corpus, &cfg, &tc4, &ckpt_sup, &FaultPlan::none(), Recorder::null());
    assert!(resumed.completed);
    assert_eq!(resumed.epoch_losses.len(), 2, "resume must skip the committed epochs");
    assert_eq!(
        resumed.final_digest, straight.final_digest,
        "checkpoint-resumed elastic run diverged from the uninterrupted one"
    );
}

/// A stalled (not dead) worker: the delay outlives the all-reduce budget, so
/// the healthy peers error out, the supervisor rolls back and retries, and —
/// the stall being one-shot — the retry commits. Determinism holds because
/// no partial epoch was committed.
#[test]
fn stalled_allreduce_times_out_rolls_back_and_retries() {
    let (corpus, cfg, tc) = tiny_setup(3, 4);
    let sup = SupervisorConfig {
        workers: 2,
        allreduce_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let clean = train_elastic(&corpus, &cfg, &tc, &sup, &FaultPlan::none(), Recorder::null());
    let plan = FaultPlan::none().delay(0, 6, Duration::from_secs(1));
    let (recorder, sink) = Recorder::memory(16384);
    let result = train_elastic(&corpus, &cfg, &tc, &sup, &plan, recorder);
    dump_telemetry(&sink, "stall");

    assert!(result.completed);
    assert_eq!(result.failures, 1, "the stall round counts as one failure");
    assert_eq!(result.ring_reforms, 1);
    assert_eq!(result.final_world, 2, "a stall kills no rank; the world stays whole");
    assert_eq!(result.final_digest, clean.final_digest);
    assert_eq!(sink.counter_total("dist.failures"), 1);
    assert_eq!(sink.counter_total("dist.ring_reforms"), 1);
}

/// ISSUE satellite (a), scenario 3 — ring level: an all-reduce against a
/// dead peer returns a typed error within the configured timeout instead of
/// hanging forever.
#[test]
fn allreduce_with_dead_peer_errors_within_timeout() {
    let timeout = Duration::from_secs(5);
    let mut handles = ring(3);
    // Rank 2 "crashes": dropping its handle closes its channel endpoints.
    drop(handles.pop());
    let start = Instant::now();
    let results: Vec<Result<(), RingError>> = std::thread::scope(|scope| {
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                scope.spawn(move || {
                    let mut buf = vec![1.0f32; 64];
                    h.all_reduce_sum_bounded(&mut buf, timeout)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("no panic")).collect()
    });
    let waited = start.elapsed();
    assert!(waited < timeout, "survivors must fail fast, waited {waited:?}");
    assert!(results.iter().all(|r| r.is_err()), "every survivor must see the failure");
    assert!(
        results.iter().any(|r| matches!(r, Err(RingError::PeerDisconnected { .. }))),
        "at least one survivor must name the dead peer: {results:?}"
    );
}
