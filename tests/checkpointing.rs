//! Integration tests: model checkpoint round-trips, full train-state
//! crash-resume bit-exactness, and corruption handling.

use meshfreeflownet::core::{
    load_train_state, load_train_state_with_fallback, prev_path, ChannelStats, CheckpointError,
    Corpus, MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer,
};
use meshfreeflownet::data::{downsample, Dataset, PatchSpec};
use meshfreeflownet::dist::param_digest;
use meshfreeflownet::solver::{simulate, RbcConfig};
use meshfreeflownet::telemetry::Recorder;
use std::path::PathBuf;

/// Per-test unique temp dir, removed on drop (panic included) so parallel
/// `cargo test` processes can't collide on a shared path and a failed test
/// can't poison the next run with stale checkpoints.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("mfn_ckpt_{tag}_{}", std::process::id()));
        // A leftover dir from a previous crashed run with the same pid is
        // stale by definition — replace it.
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

fn tiny_cfg() -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    cfg
}

fn tiny_corpus() -> (Corpus, Dataset, Dataset) {
    let sim =
        simulate(&RbcConfig { nx: 32, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() }, 0.3, 9);
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    let corpus = Corpus::new(vec![(hr.clone(), lr.clone())]);
    (corpus, hr, lr)
}

#[test]
fn trained_model_roundtrips_through_checkpoint() {
    let (corpus, hr, lr) = tiny_corpus();
    let mut trainer = Trainer::new(
        MeshfreeFlowNet::new(tiny_cfg()),
        TrainConfig {
            epochs: 3,
            batches_per_epoch: 4,
            batch_size: 2,
            lr: 5e-3,
            ..Default::default()
        },
    );
    trainer.train(&corpus);

    let dir = TempDir::new("integration");
    let path = dir.path("trained.ckpt");
    trainer.model.save(&path).expect("save");

    // A fresh model (different seed → different init) restored from the
    // checkpoint must produce bit-identical super-resolution output —
    // including the batch-norm running statistics, which are part of the
    // saved state alongside the trainable parameters.
    let mut fresh_cfg = tiny_cfg();
    fresh_cfg.seed = 12345;
    let mut fresh = MeshfreeFlowNet::new(fresh_cfg);
    let stats = ChannelStats::from_meta(&hr.meta);
    let before = fresh.super_resolve(&lr, &hr.meta, stats);
    fresh.load(&path).expect("load");

    let a = trainer.model.super_resolve(&lr, &hr.meta, stats);
    let b = fresh.super_resolve(&lr, &hr.meta, stats);
    assert_ne!(before.data, b.data, "load had no effect");
    assert_eq!(a.data, b.data, "restored model differs from the trained one");
}

#[test]
fn load_rejects_different_architecture() {
    let model = MeshfreeFlowNet::new(tiny_cfg());
    let dir = TempDir::new("arch");
    let path = dir.path("m.ckpt");
    model.save(&path).expect("save");
    let mut bigger_cfg = tiny_cfg();
    bigger_cfg.latent_channels = 16;
    let mut bigger = MeshfreeFlowNet::new(bigger_cfg);
    assert!(bigger.load(&path).is_err());
}

/// The headline resume guarantee: 6 epochs straight vs. 3 epochs → full
/// train-state save → a brand-new `Trainer::resume` → 3 more epochs must
/// agree on every parameter bit and every per-step loss. This pins the
/// entire serialized state — Adam moments and step count (bias correction),
/// sampler RNG position, lr schedule, and the epoch cursor.
#[test]
fn crash_resume_is_bit_identical_to_uninterrupted_run() {
    let (corpus, _hr, _lr) = tiny_corpus();
    let tc = |epochs: usize| TrainConfig {
        epochs,
        batches_per_epoch: 4,
        batch_size: 2,
        lr: 5e-3,
        lr_decay: 0.8, // exercise the schedule across the resume boundary
        seed: 11,
        ..Default::default()
    };

    // Reference: 6 uninterrupted epochs.
    let (rec_a, sink_a) = Recorder::memory(8192);
    let mut straight = Trainer::new(MeshfreeFlowNet::new(tiny_cfg()), tc(6)).with_recorder(rec_a);
    straight.train(&corpus);
    let digest_straight = param_digest(&straight.model.store.flatten());

    // Interrupted: 3 epochs, save, then a fresh process-style resume.
    let dir = TempDir::new("resume");
    let path = dir.path("state.ckpt");
    let (rec_b, sink_b) = Recorder::memory(8192);
    let mut first = Trainer::new(MeshfreeFlowNet::new(tiny_cfg()), tc(3)).with_recorder(rec_b);
    first.train(&corpus);
    first.save_checkpoint(&path).expect("save");
    drop(first); // nothing from the first half survives in memory

    let (rec_c, sink_c) = Recorder::memory(8192);
    let mut resumed = Trainer::resume(MeshfreeFlowNet::new(tiny_cfg()), tc(6), &path)
        .expect("resume")
        .with_recorder(rec_c);
    assert_eq!(resumed.steps_taken(), 3 * 4);
    resumed.train(&corpus);
    let digest_resumed = param_digest(&resumed.model.store.flatten());

    assert_eq!(
        digest_straight, digest_resumed,
        "digest(6 epochs) != digest(3 + resume + 3): resumed trajectory diverged"
    );
    // Per-step losses must agree too: the first 12 from the pre-crash run,
    // the last 12 from the resumed one, against the uninterrupted reference.
    let straight_losses: Vec<u32> =
        sink_a.train_steps().iter().map(|m| m.loss_total.to_bits()).collect();
    let mut stitched: Vec<u32> =
        sink_b.train_steps().iter().map(|m| m.loss_total.to_bits()).collect();
    stitched.extend(sink_c.train_steps().iter().map(|m| m.loss_total.to_bits()));
    assert_eq!(straight_losses, stitched, "per-step losses diverged across the resume");
    // Adam state carried over: step counters match an uninterrupted run.
    assert_eq!(resumed.steps_taken(), 6 * 4);
    // The resumed run continued the lr schedule instead of restarting it.
    let expect_lr = 5e-3f32 * 0.8f32.powi(5);
    assert!((resumed.opt.config().lr - expect_lr).abs() < 1e-9);
}

/// The PR-3 resume guarantee extended to adaptive query sampling: with the
/// residual-guided octree enabled, 6 uninterrupted epochs vs. 3 epochs →
/// save → fresh `Trainer::resume` → 3 more must agree on every parameter
/// bit, every per-step loss, and the serialized octree itself (compared
/// through the final checkpoint payload, which embeds the `MFNSMPL1`
/// section). A stale or re-initialized tree would redirect later draws and
/// split the trajectories.
#[test]
fn adaptive_crash_resume_is_bit_identical_including_octree() {
    let (corpus, _hr, _lr) = tiny_corpus();
    let tc = |epochs: usize| TrainConfig {
        epochs,
        batches_per_epoch: 4,
        batch_size: 2,
        lr: 5e-3,
        seed: 11,
        adaptive_sampling: true,
        ..Default::default()
    };

    let (rec_a, sink_a) = Recorder::memory(8192);
    let mut straight = Trainer::new(MeshfreeFlowNet::new(tiny_cfg()), tc(6)).with_recorder(rec_a);
    straight.train(&corpus);

    let dir = TempDir::new("adaptive_resume");
    let path = dir.path("state.ckpt");
    let (rec_b, sink_b) = Recorder::memory(8192);
    let mut first = Trainer::new(MeshfreeFlowNet::new(tiny_cfg()), tc(3)).with_recorder(rec_b);
    first.train(&corpus);
    first.save_checkpoint(&path).expect("save");
    let half = std::fs::read(&path).expect("read checkpoint");
    assert!(
        half.windows(8).any(|w| w == b"MFNSMPL1"),
        "adaptive checkpoint must embed the framed octree section"
    );
    drop(first);

    let (rec_c, sink_c) = Recorder::memory(8192);
    let mut resumed = Trainer::resume(MeshfreeFlowNet::new(tiny_cfg()), tc(6), &path)
        .expect("resume")
        .with_recorder(rec_c);
    resumed.train(&corpus);

    assert_eq!(
        param_digest(&straight.model.store.flatten()),
        param_digest(&resumed.model.store.flatten()),
        "adaptive resume diverged from the uninterrupted adaptive run"
    );
    let straight_losses: Vec<u32> =
        sink_a.train_steps().iter().map(|m| m.loss_total.to_bits()).collect();
    let mut stitched: Vec<u32> =
        sink_b.train_steps().iter().map(|m| m.loss_total.to_bits()).collect();
    stitched.extend(sink_c.train_steps().iter().map(|m| m.loss_total.to_bits()));
    assert_eq!(straight_losses, stitched, "per-step losses diverged across the adaptive resume");

    // Strongest form: the full final checkpoints — parameters, Adam, RNG
    // words, and the serialized octree — must be byte-identical.
    let p_straight = dir.path("final_straight.ckpt");
    let p_resumed = dir.path("final_resumed.ckpt");
    straight.save_checkpoint(&p_straight).expect("save straight");
    resumed.save_checkpoint(&p_resumed).expect("save resumed");
    assert_eq!(
        std::fs::read(&p_straight).expect("read"),
        std::fs::read(&p_resumed).expect("read"),
        "final checkpoint payloads (octree section included) differ"
    );
}

/// Uniform runs must stay byte-compatible with the legacy checkpoint
/// format: no `MFNSMPL1` section is written, a legacy payload resumes
/// cleanly, and an adaptive checkpoint refuses to resume with the flag off
/// (silently dropping tree state would bias the estimator unnoticed).
#[test]
fn uniform_checkpoint_has_no_sampler_section_and_flag_mismatch_is_rejected() {
    let (corpus, _hr, _lr) = tiny_corpus();
    let tc = |adaptive: bool| TrainConfig {
        epochs: 2,
        batches_per_epoch: 2,
        batch_size: 2,
        lr: 5e-3,
        seed: 29,
        adaptive_sampling: adaptive,
        ..Default::default()
    };
    let dir = TempDir::new("sampler_section");

    let uniform_path = dir.path("uniform.ckpt");
    let mut uniform = Trainer::new(MeshfreeFlowNet::new(tiny_cfg()), tc(false));
    uniform.train(&corpus);
    uniform.save_checkpoint(&uniform_path).expect("save uniform");
    let bytes = std::fs::read(&uniform_path).expect("read");
    assert!(
        !bytes.windows(8).any(|w| w == b"MFNSMPL1"),
        "uniform checkpoint must be byte-identical to the legacy format"
    );
    // …and it resumes on the uniform path exactly as before this feature.
    Trainer::resume(MeshfreeFlowNet::new(tiny_cfg()), tc(false), &uniform_path)
        .expect("legacy-shaped checkpoint must resume");

    let adaptive_path = dir.path("adaptive.ckpt");
    let mut adaptive = Trainer::new(MeshfreeFlowNet::new(tiny_cfg()), tc(true));
    adaptive.train(&corpus);
    adaptive.save_checkpoint(&adaptive_path).expect("save adaptive");
    match Trainer::resume(MeshfreeFlowNet::new(tiny_cfg()), tc(false), &adaptive_path) {
        Err(CheckpointError::Incompatible(msg)) => {
            assert!(msg.contains("adaptive"), "unexpected message: {msg}");
        }
        Err(other) => panic!("expected Incompatible, got {other:?}"),
        Ok(_) => panic!("resume with adaptive_sampling off must reject octree state"),
    }
}

/// A mid-epoch checkpoint (periodic writer) resumes just as exactly: the
/// batch cursor and sampler position land inside the epoch.
#[test]
fn mid_epoch_periodic_checkpoint_resumes_bit_identical() {
    let (corpus, _hr, _lr) = tiny_corpus();
    let dir = TempDir::new("midepoch");
    let path = dir.path("periodic.ckpt");
    let tc = |epochs: usize, every: usize| TrainConfig {
        epochs,
        batches_per_epoch: 4,
        batch_size: 2,
        lr: 5e-3,
        seed: 23,
        checkpoint_every: every,
        ..Default::default()
    };

    let mut straight = Trainer::new(MeshfreeFlowNet::new(tiny_cfg()), tc(3, 0));
    straight.train(&corpus);

    // Periodic writer fires every 5 steps: the last write of a 12-step run
    // lands at step 10 = epoch 2, batch 2 (mid-epoch).
    let mut interrupted =
        Trainer::new(MeshfreeFlowNet::new(tiny_cfg()), tc(3, 5)).with_checkpointing(&path);
    interrupted.train(&corpus);
    let mut resumed =
        Trainer::resume(MeshfreeFlowNet::new(tiny_cfg()), tc(3, 0), &path).expect("resume");
    assert_eq!(resumed.steps_taken(), 10, "expected the step-10 periodic checkpoint");
    resumed.train(&corpus);
    assert_eq!(
        param_digest(&straight.model.store.flatten()),
        param_digest(&resumed.model.store.flatten()),
        "mid-epoch resume diverged from the uninterrupted run"
    );
}

/// Truncation and bit flips must surface as typed `CheckpointError`s, and
/// the rotated `.prev` checkpoint must be recoverable through the fallback
/// loader after the newest write is damaged.
#[test]
fn corrupt_train_state_is_rejected_and_prev_recovers() {
    let (corpus, _hr, _lr) = tiny_corpus();
    let dir = TempDir::new("corrupt");
    let path = dir.path("state.ckpt");
    let tc = TrainConfig {
        epochs: 2,
        batches_per_epoch: 2,
        batch_size: 2,
        lr: 5e-3,
        seed: 5,
        ..Default::default()
    };
    let mut trainer = Trainer::new(MeshfreeFlowNet::new(tiny_cfg()), tc);
    trainer.train(&corpus);
    trainer.save_checkpoint(&path).expect("save 1");
    let digest_at_save1 = param_digest(&trainer.model.store.flatten());
    // Train a little more and save again: the first state rotates to .prev.
    trainer.cfg.epochs = 3;
    trainer.train(&corpus);
    trainer.save_checkpoint(&path).expect("save 2");
    assert!(prev_path(&path).exists(), "second save must rotate the first to .prev");

    let good = std::fs::read(&path).expect("read");

    // Truncated mid-file → Corrupt, not a panic.
    std::fs::write(&path, &good[..good.len() / 2]).expect("truncate");
    assert!(matches!(load_train_state(&path), Err(CheckpointError::Corrupt(_))));

    // Flip one byte inside the tensor payload → CRC catches it.
    let mut flipped = good.clone();
    let pos = flipped.len() - 10;
    flipped[pos] ^= 0x01;
    std::fs::write(&path, &flipped).expect("flip");
    assert!(matches!(load_train_state(&path), Err(CheckpointError::Corrupt(_))));

    // The supervisor-style fallback serves the previous good checkpoint.
    let recovered = load_train_state_with_fallback(&path).expect("fallback");
    assert!(!recovered.is_empty());
    let resumed = Trainer::resume(MeshfreeFlowNet::new(tiny_cfg()), tc, &path)
        .expect("resume must fall back to .prev");
    assert_eq!(
        param_digest(&resumed.model.store.flatten()),
        digest_at_save1,
        "fallback resume must restore the previous good state"
    );

    // With the fallback also gone, resume reports the corruption.
    std::fs::remove_file(prev_path(&path)).expect("rm prev");
    match Trainer::resume(MeshfreeFlowNet::new(tiny_cfg()), tc, &path) {
        Err(CheckpointError::Corrupt(_)) => {}
        Err(other) => panic!("expected Corrupt error, got {other:?}"),
        Ok(_) => panic!("resume must not succeed with both copies corrupt/missing"),
    }
}
