//! Integration test: train → checkpoint → restore → identical inference.

use meshfreeflownet::core::{
    ChannelStats, Corpus, MeshfreeFlowNet, MfnConfig, TrainConfig, Trainer,
};
use meshfreeflownet::data::{downsample, Dataset, PatchSpec};
use meshfreeflownet::solver::{simulate, RbcConfig};

fn tiny_cfg() -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 16 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![16, 16];
    cfg.levels = 2;
    cfg
}

#[test]
fn trained_model_roundtrips_through_checkpoint() {
    let sim =
        simulate(&RbcConfig { nx: 32, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() }, 0.3, 9);
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    let corpus = Corpus::new(vec![(hr.clone(), lr.clone())]);

    let mut trainer = Trainer::new(
        MeshfreeFlowNet::new(tiny_cfg()),
        TrainConfig {
            epochs: 3,
            batches_per_epoch: 4,
            batch_size: 2,
            lr: 5e-3,
            ..Default::default()
        },
    );
    trainer.train(&corpus);

    let dir = std::env::temp_dir().join("mfn_ckpt_integration");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("trained.ckpt");
    trainer.model.save(&path).expect("save");

    // A fresh model (different seed → different init) restored from the
    // checkpoint must produce bit-identical super-resolution output —
    // including the batch-norm running statistics, which are part of the
    // saved state alongside the trainable parameters.
    let mut fresh_cfg = tiny_cfg();
    fresh_cfg.seed = 12345;
    let mut fresh = MeshfreeFlowNet::new(fresh_cfg);
    let stats = ChannelStats::from_meta(&hr.meta);
    let before = fresh.super_resolve(&lr, &hr.meta, stats);
    fresh.load(&path).expect("load");

    let a = trainer.model.super_resolve(&lr, &hr.meta, stats);
    let b = fresh.super_resolve(&lr, &hr.meta, stats);
    assert_ne!(before.data, b.data, "load had no effect");
    assert_eq!(a.data, b.data, "restored model differs from the trained one");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_rejects_different_architecture() {
    let model = MeshfreeFlowNet::new(tiny_cfg());
    let dir = std::env::temp_dir().join("mfn_ckpt_arch");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("m.ckpt");
    model.save(&path).expect("save");
    let mut bigger_cfg = tiny_cfg();
    bigger_cfg.latent_channels = 16;
    let mut bigger = MeshfreeFlowNet::new(bigger_cfg);
    assert!(bigger.load(&path).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
