//! Cross-crate integration tests: the full simulate → downsample → train →
//! super-resolve → score pipeline, exercised end-to-end at a tiny scale.

use meshfreeflownet::core::{
    baseline_trilinear, evaluate_pair, ChannelStats, Corpus, MeshfreeFlowNet, MfnConfig,
    TrainConfig, Trainer,
};
use meshfreeflownet::data::{downsample, Dataset, PatchSpec};
use meshfreeflownet::solver::{simulate, RbcConfig};
use meshfreeflownet::telemetry::Recorder;

/// Median of a slice of finite floats.
fn median(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    v[v.len() / 2]
}

fn tiny_cfg() -> MfnConfig {
    let mut cfg = MfnConfig::small();
    cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 8, queries: 32 };
    cfg.base_channels = 4;
    cfg.latent_channels = 8;
    cfg.mlp_hidden = vec![24, 16];
    cfg.levels = 2;
    cfg
}

fn tiny_data(seed: u64) -> (Dataset, Dataset) {
    let sim = simulate(
        &RbcConfig { nx: 32, nz: 9, ra: 1e5, dt_max: 2e-3, seed, ..Default::default() },
        0.4,
        9,
    );
    let hr = Dataset::from_simulation(&sim);
    let lr = downsample(&hr, 2, 2);
    (hr, lr)
}

#[test]
fn full_pipeline_trains_and_scores() {
    let pair = tiny_data(3);
    let corpus = Corpus::new(vec![pair.clone()]);
    let mut trainer = Trainer::new(
        MeshfreeFlowNet::new(tiny_cfg()),
        TrainConfig {
            epochs: 10,
            batches_per_epoch: 6,
            batch_size: 4,
            lr: 1e-2,
            ..Default::default()
        },
    );
    let records = trainer.train(&corpus);
    assert!(records.last().expect("records").loss < records[0].loss);
    let (hr, lr) = &pair;
    let sr = trainer.model.super_resolve(lr, &hr.meta, corpus.stats);
    let nu = (hr.meta.pr / hr.meta.ra).sqrt();
    let row = evaluate_pair("mfn", hr, &sr, nu, 2);
    assert_eq!(row.scores.len(), 9);
    assert!(row.scores.iter().all(|s| s.nmae_pct.is_finite()));
}

#[test]
fn equation_loss_regularizes_not_destroys() {
    // γ = γ* training must converge to a similar prediction loss as γ = 0
    // (within a factor), per the paper's Table 1 top rows. Assertions use
    // medians over recorded per-step metrics (first/last 12 gradient steps)
    // instead of single-epoch means, which were noisy enough to flake.
    let pair = tiny_data(4);
    let corpus = Corpus::new(vec![pair]);
    let tc = TrainConfig {
        epochs: 10,
        batches_per_epoch: 6,
        batch_size: 4,
        lr: 1e-2,
        seed: 0,
        ..Default::default()
    };
    let mut cfg0 = tiny_cfg();
    cfg0.gamma = 0.0;
    let (rec0, sink0) = Recorder::memory(4096);
    let mut t0 = Trainer::new(MeshfreeFlowNet::new(cfg0), tc).with_recorder(rec0);
    t0.train(&corpus);
    let mut cfg1 = tiny_cfg();
    cfg1.gamma = MfnConfig::GAMMA_STAR;
    let (rec1, sink1) = Recorder::memory(4096);
    let mut t1 = Trainer::new(MeshfreeFlowNet::new(cfg1), tc).with_recorder(rec1);
    t1.train(&corpus);
    let steps0 = sink0.train_steps();
    let steps1 = sink1.train_steps();
    assert_eq!(steps0.len(), 60);
    assert_eq!(steps1.len(), 60);
    let k = 12;
    let pred0: Vec<f32> = steps0.iter().map(|m| m.loss_prediction).collect();
    let pred1: Vec<f32> = steps1.iter().map(|m| m.loss_prediction).collect();
    let p0 = median(&pred0[pred0.len() - k..]);
    let p1 = median(&pred1[pred1.len() - k..]);
    assert!(p1 < 3.0 * p0 + 0.05, "equation loss wrecked training: pred median {p1} vs {p0}");
    // And the equation residual must not explode over training.
    let eq1: Vec<f32> = steps1.iter().map(|m| m.loss_equation).collect();
    let eq_first = median(&eq1[..k]);
    let eq_last = median(&eq1[eq1.len() - k..]);
    assert!(
        eq_last < 2.0 * eq_first + 1e-4,
        "equation residual exploded: median {eq_first} -> {eq_last}"
    );
    // The γ = γ* run actually propagated the equation term into every step.
    assert!(steps1.iter().all(|m| m.loss_equation > 0.0));
    assert!(steps0.iter().all(|m| m.loss_equation == 0.0));
}

#[test]
fn trilinear_baseline_is_exact_on_shared_grid_points() {
    let (hr, lr) = tiny_data(5);
    let b1 = baseline_trilinear(&lr, &hr);
    for f in (0..hr.meta.nt).step_by(2) {
        for j in (0..hr.meta.nz).step_by(2) {
            for i in (0..hr.meta.nx).step_by(2) {
                for c in 0..4 {
                    let d = (b1.at(f, c, j, i) - hr.at(f, c, j, i)).abs();
                    assert!(d < 1e-5, "({f},{c},{j},{i}): {d}");
                }
            }
        }
    }
}

#[test]
fn dataset_roundtrip_preserves_training_inputs() {
    let (hr, _) = tiny_data(6);
    let dir = std::env::temp_dir().join("mfn_e2e_io");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("hr.bin");
    meshfreeflownet::data::save_dataset(&hr, &path).expect("save");
    let back = meshfreeflownet::data::load_dataset(&path).expect("load");
    assert_eq!(back, hr);
    // Downsampling the loaded dataset gives identical LR inputs.
    let lr_a = downsample(&hr, 2, 2);
    let lr_b = downsample(&back, 2, 2);
    assert_eq!(lr_a, lr_b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn super_resolution_is_deterministic() {
    let (hr, lr) = tiny_data(7);
    let stats = ChannelStats::from_meta(&hr.meta);
    let mut m1 = MeshfreeFlowNet::new(tiny_cfg());
    let mut m2 = MeshfreeFlowNet::new(tiny_cfg());
    let a = m1.super_resolve(&lr, &hr.meta, stats);
    let b = m2.super_resolve(&lr, &hr.meta, stats);
    assert_eq!(a.data, b.data, "same seed + same input must give identical output");
}

#[test]
fn mesh_free_decoding_at_arbitrary_resolution() {
    // The defining property: decode on a grid the model never saw, finer
    // than HR and with non-integer refinement of the LR spacing.
    let (hr, lr) = tiny_data(8);
    let stats = ChannelStats::from_meta(&hr.meta);
    let mut model = MeshfreeFlowNet::new(tiny_cfg());
    let mut fine_meta = hr.meta.clone();
    fine_meta.nt = hr.meta.nt; // keep time frames
    fine_meta.nz = 3 * (hr.meta.nz - 1) + 1;
    fine_meta.nx = 3 * hr.meta.nx;
    let fine = model.super_resolve(&lr, &fine_meta, stats);
    assert_eq!(fine.meta.nz, 25);
    assert_eq!(fine.meta.nx, 96);
    assert!(fine.data.iter().all(|v| v.is_finite()));
}
