//! Property-based tests (proptest) over the core data structures and
//! numerical invariants that every experiment relies on.

use meshfreeflownet::autodiff::{Graph, Jet3};
use meshfreeflownet::core::plan_queries;
use meshfreeflownet::data::{downsample, sample_trilinear, Dataset, DatasetMeta, CHANNELS};
use meshfreeflownet::fft::{fft, ifft, Complex, RealFftPlan};
use meshfreeflownet::telemetry::{Event, Recorder, StepMetrics};
use meshfreeflownet::tensor::Tensor;
use proptest::prelude::*;

fn synthetic_dataset(nt: usize, nz: usize, nx: usize, vals: &[f32]) -> Dataset {
    let meta = DatasetMeta {
        nt,
        nz,
        nx,
        lx: 4.0,
        lz: 1.0,
        duration: 1.0,
        ra: 1e5,
        pr: 1.0,
        seed: 0,
        channel_mean: [0.0; 4],
        channel_std: [1.0; 4],
    };
    let n = nt * CHANNELS * nz * nx;
    let data: Vec<f32> = (0..n).map(|i| vals[i % vals.len()]).collect();
    Dataset::from_parts(meta, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FFT followed by inverse FFT is the identity for any signal.
    #[test]
    fn fft_roundtrip(re in prop::collection::vec(-100.0f64..100.0, 64)) {
        let sig: Vec<Complex> = re.iter().map(|&r| Complex::new(r, -r * 0.5)).collect();
        let mut buf = sig.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in buf.iter().zip(&sig) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    /// Parseval: energy is preserved between time and frequency domains.
    #[test]
    fn fft_parseval(re in prop::collection::vec(-10.0f64..10.0, 128)) {
        let sig: Vec<Complex> = re.iter().map(|&r| Complex::real(r)).collect();
        let time: f64 = sig.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = sig;
        fft(&mut spec);
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        prop_assert!((time - freq).abs() < 1e-6 * (1.0 + time));
    }

    /// Real-FFT roundtrip for arbitrary real signals.
    #[test]
    fn real_fft_roundtrip(sig in prop::collection::vec(-50.0f64..50.0, 32)) {
        let plan = RealFftPlan::new(32);
        let back = plan.inverse(&plan.forward(&sig));
        for (a, b) in back.iter().zip(&sig) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Trilinear query-plan weights always form a partition of unity and
    /// stay non-negative, for any query location (even out of range).
    #[test]
    fn plan_weights_partition_unity(
        t in -0.5f32..1.5, z in -0.5f32..1.5, x in -0.5f32..1.5,
    ) {
        let plan = plan_queries([4, 6, 5], [(0usize, [t, z, x])]);
        let sum: f32 = plan.weights.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        prop_assert!(plan.weights.iter().all(|&w| (-1e-6..=1.0 + 1e-6).contains(&w)));
    }

    /// Trilinear interpolation is exact for functions separately linear in
    /// each coordinate (the defining property).
    #[test]
    fn trilinear_exact_on_linear_fields(
        a in -2.0f64..2.0, b in -2.0f64..2.0, c in -2.0f64..2.0,
        t in 0.0f64..1.0, z in 0.0f64..1.0,
    ) {
        let (nt, nz, nx) = (3usize, 5usize, 8usize);
        let mut ds = synthetic_dataset(nt, nz, nx, &[0.0]);
        let dt = ds.dt();
        let dz = ds.dz();
        for f in 0..nt {
            for j in 0..nz {
                for i in 0..nx {
                    let v = (a * f as f64 * dt + b * j as f64 * dz + c) as f32;
                    for ch in 0..CHANNELS {
                        let idx = ds.index(f, ch, j, i);
                        ds.data[idx] = v;
                    }
                }
            }
        }
        let v = sample_trilinear(&ds, t, z, 0.0);
        let expect = a * t + b * z + c;
        prop_assert!((v[0] as f64 - expect).abs() < 1e-4, "{} vs {expect}", v[0]);
    }

    /// Downsampling then reading strided points reproduces the HR values for
    /// any stride combination that fits.
    #[test]
    fn downsample_is_strided_subset(
        vals in prop::collection::vec(-5.0f32..5.0, 16),
        ft in 1usize..3, fs in 1usize..3,
    ) {
        let hr = synthetic_dataset(5, 5, 8, &vals);
        let lr = downsample(&hr, ft, fs);
        for f in 0..lr.meta.nt {
            for j in 0..lr.meta.nz {
                for i in 0..lr.meta.nx {
                    prop_assert_eq!(lr.at(f, 0, j, i), hr.at(f * ft, 0, j * fs, i * fs));
                }
            }
        }
    }

    /// Reverse-mode gradient of sum(x*x) is 2x — for any tensor contents.
    #[test]
    fn autodiff_quadratic_gradient(vals in prop::collection::vec(-3.0f32..3.0, 1..40)) {
        let t = Tensor::from_vec(vals.clone(), &[vals.len()]);
        let mut g = Graph::new();
        let x = g.leaf_with_grad(t);
        let sq = g.mul(x, x);
        let loss = g.sum(sq);
        g.backward(loss);
        let grad = g.grad(x);
        for (gv, &v) in grad.data().iter().zip(&vals) {
            prop_assert!((gv - 2.0 * v).abs() < 1e-4);
        }
    }

    /// Jet multiplication satisfies the Leibniz rule against independent
    /// evaluation: d(fg) = f dg + g df for arbitrary jets.
    #[test]
    fn jet_leibniz_rule(
        fv in -2.0f32..2.0, fd in -2.0f32..2.0,
        gv in -2.0f32..2.0, gd in -2.0f32..2.0,
    ) {
        let f = Jet3 { v: fv, d: [fd, 0.0, 0.0], dd: [0.0; 3] };
        let g = Jet3 { v: gv, d: [gd, 0.0, 0.0], dd: [0.0; 3] };
        let p = f.mul(g);
        prop_assert!((p.v - fv * gv).abs() < 1e-5);
        prop_assert!((p.d[0] - (fv * gd + gv * fd)).abs() < 1e-5);
        prop_assert!((p.dd[0] - 2.0 * fd * gd).abs() < 1e-5);
    }

    /// Concat/split on the tape round-trips values and routes gradients with
    /// conservation (sum of split gradients equals the upstream gradient).
    #[test]
    fn concat_gradient_conservation(
        a in prop::collection::vec(-1.0f32..1.0, 6),
        b in prop::collection::vec(-1.0f32..1.0, 9),
    ) {
        let ta = Tensor::from_vec(a, &[3, 2]);
        let tb = Tensor::from_vec(b, &[3, 3]);
        let mut g = Graph::new();
        let va = g.leaf_with_grad(ta);
        let vb = g.leaf_with_grad(tb);
        let cat = g.concat(&[va, vb], 1);
        let loss = g.sum(cat);
        g.backward(loss);
        prop_assert_eq!(g.grad(va).numel(), 6);
        prop_assert_eq!(g.grad(vb).numel(), 9);
        prop_assert!((g.grad(va).sum() - 6.0).abs() < 1e-5);
        prop_assert!((g.grad(vb).sum() - 9.0).abs() < 1e-5);
    }

    /// Trilinear sampling of a downsampled dataset at its own grid-point
    /// coordinates reproduces the HR values exactly (interpolation is the
    /// identity on grid points), for any stride combination.
    #[test]
    fn downsample_trilinear_consistent_on_shared_points(
        vals in prop::collection::vec(-5.0f32..5.0, 12),
        ft in 1usize..3, fs in 1usize..3,
    ) {
        let hr = synthetic_dataset(5, 5, 8, &vals);
        let lr = downsample(&hr, ft, fs);
        for f in 0..lr.meta.nt {
            let t = f as f64 * lr.dt();
            for j in 0..lr.meta.nz {
                let z = j as f64 * lr.dz();
                for i in 0..lr.meta.nx {
                    let x = i as f64 * lr.dx();
                    let got = sample_trilinear(&lr, t, z, x);
                    for (c, &gc) in got.iter().enumerate() {
                        let want = hr.at(f * ft, c, j * fs, i * fs);
                        prop_assert!(
                            (gc - want).abs() < 1e-4,
                            "({f},{c},{j},{i}): {gc} vs {want}"
                        );
                    }
                }
            }
        }
    }

    /// The telemetry ring buffer holds exactly the last `capacity` events and
    /// accounts for every drop, for any capacity / event-count combination.
    #[test]
    fn telemetry_ring_keeps_newest_and_counts_drops(
        capacity in 1usize..64, n in 0u64..200,
    ) {
        let (recorder, sink) = Recorder::memory(capacity);
        for step in 0..n {
            recorder.train_step(StepMetrics { step, ..Default::default() });
        }
        prop_assert_eq!(sink.len(), (n as usize).min(capacity));
        prop_assert_eq!(sink.dropped(), n.saturating_sub(capacity as u64));
        let kept = sink.train_steps();
        let first_kept = n - kept.len() as u64;
        for (k, m) in kept.iter().enumerate() {
            prop_assert_eq!(m.step, first_kept + k as u64);
        }
    }

    /// Event serialization never emits bare NaN/infinity tokens (which are
    /// not valid JSON) no matter what float values the metrics contain.
    #[test]
    fn telemetry_json_never_leaks_non_finite_tokens(
        loss in prop::num::f32::ANY, grad in prop::num::f32::ANY,
        gauge in prop::num::f64::ANY,
    ) {
        let step = Event::TrainStep(StepMetrics {
            loss_total: loss,
            grad_norm_pre: grad,
            ..Default::default()
        });
        let g = Event::Gauge { name: "g", value: gauge };
        for json in [step.to_json(), g.to_json()] {
            prop_assert!(json.starts_with('{') && json.ends_with('}'));
            for tok in ["NaN", "inf", "Infinity"] {
                prop_assert!(!json.contains(tok), "{json}");
            }
        }
    }

    /// Throughput accounting: samples/sec times the summed phase time gives
    /// back the sample count, whenever any time was recorded at all.
    #[test]
    fn telemetry_throughput_consistent_with_phase_times(
        samples in 1usize..4096,
        data in 0.0f64..10.0, fwd in 0.0f64..10.0, bwd in 0.0f64..10.0,
        wait in 0.0f64..10.0, opt in 0.0f64..10.0,
    ) {
        let m = StepMetrics {
            samples,
            data_s: data,
            forward_s: fwd,
            backward_s: bwd,
            allreduce_wait_s: wait,
            optimizer_s: opt,
            ..Default::default()
        };
        let total = data + fwd + bwd + wait + opt;
        prop_assert!((m.total_seconds() - total).abs() < 1e-12);
        if total > 0.0 {
            let back = m.samples_per_sec() * m.total_seconds();
            prop_assert!((back - samples as f64).abs() < 1e-6 * samples as f64);
        }
    }
}
