//! Raw GEMM throughput probe: f32 blocked vs bf16-store vs bf16-compute,
//! at serving decode shapes plus one square compute-bound shape. Handy
//! when qualifying a new host's `vdpbf16ps` throughput (see
//! `MFN_BF16_NATIVE=dp|fma` to pin the native realization under test).

use mfn_tensor::bf16::PackedBf16Gemm;
use mfn_tensor::{gemm, MatLayout};
use std::time::Instant;

fn main() {
    println!("native bf16 compute: {}", mfn_tensor::bf16_compute_is_native());
    for &(m, k, n) in
        &[(4096usize, 67usize, 128usize), (4096, 128, 128), (4096, 128, 4), (1024, 1024, 1024)]
    {
        let a: Vec<f32> = (0..m * k).map(|i| (i % 97) as f32 * 0.01 - 0.3).collect();
        let w: Vec<f32> = (0..n * k).map(|i| (i % 89) as f32 * 0.01 - 0.4).collect();
        let packed = PackedBf16Gemm::from_nt_weight(&w, n, k);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        let mut c3 = vec![0.0f32; m * n];
        let iters = if m * k * n > 1 << 27 { 5 } else { 40 };
        let time = |f: &mut dyn FnMut()| {
            f();
            let mut best = f64::MAX;
            for _ in 0..iters {
                let t = Instant::now();
                f();
                best = best.min(t.elapsed().as_nanos() as f64);
            }
            2.0 * (m * k * n) as f64 / best
        };
        let g_f32 =
            time(&mut || gemm(m, k, n, &a, MatLayout::Normal, &w, MatLayout::Transposed, &mut c1));
        let g_store = time(&mut || packed.matmul(m, &a, &mut c2));
        let g_compute = time(&mut || packed.matmul_bf16(m, &a, &mut c3));
        println!(
            "m{m} k{k} n{n}: f32 {g_f32:.2} store {g_store:.2} compute {g_compute:.2} GFLOP/s \
             (compute/f32 {:.2}x)",
            g_compute / g_f32
        );
    }
}
