//! The dense `f32` tensor type and its element-wise operations.

use crate::shape::Shape;
use crate::workspace;
use rand::Rng;
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor.
///
/// This is the storage type shared by the whole neural-network stack. It is
/// deliberately plain — owned `Vec<f32>` plus a [`Shape`] — so that the
/// autodiff tape can clone, move, and mutate buffers without aliasing
/// headaches, and so the rayon kernels in [`crate::linalg`] and
/// [`crate::conv`] can split the flat buffer freely.
///
/// Storage is pool-backed: constructors check buffers out of the
/// [`crate::workspace`] pool and `Drop` donates them back, so the thousands
/// of short-lived tensors a training step creates (tape activations,
/// gradients, kernel outputs) recycle the same allocations step after step.
#[derive(PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = workspace::take_vec_scratch(self.data.len());
        data.copy_from_slice(&self.data);
        Tensor { data, shape: self.shape.clone() }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        workspace::give_vec(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Panics
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(data.len(), shape.numel(), "data length does not match shape {dims:?}");
        Tensor { data, shape }
    }

    /// A tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor { data: workspace::take_vec_zeroed(shape.numel()), shape }
    }

    /// A tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let mut data = workspace::take_vec_scratch(shape.numel());
        data.fill(value);
        Tensor { data, shape }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: Shape::new(&[]) }
    }

    /// Standard-normal samples scaled by `std`, drawn from `rng`
    /// (Box–Muller; avoids depending on `rand_distr`).
    pub fn randn<R: Rng>(dims: &[usize], std: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { data, shape }
    }

    /// Uniform samples in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(dims: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { data, shape }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer (the buffer is *not*
    /// donated to the pool — the caller owns it).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor with {} elements", self.data.len());
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Writes the tensor in the workspace's little-endian binary layout
    /// (rank `u32`, dims `u64` each, then the `f32` payload). The inverse of
    /// [`Tensor::read_from`]; used by the checkpoint codecs so every tensor
    /// on disk shares one format.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(&(self.shape.rank() as u32).to_le_bytes())?;
        for &d in self.dims() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in &self.data {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Reads a tensor written by [`Tensor::write_to`].
    ///
    /// # Errors
    /// Returns `InvalidData` on truncation or an implausible header (rank or
    /// dims so large the payload cannot fit in memory).
    pub fn read_from(r: &mut impl std::io::Read) -> std::io::Result<Tensor> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let rank = u32::from_le_bytes(b4) as usize;
        if rank > 16 {
            return Err(bad("tensor rank implausibly large"));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut b8 = [0u8; 8];
        for _ in 0..rank {
            r.read_exact(&mut b8)?;
            dims.push(u64::from_le_bytes(b8) as usize);
        }
        let numel: usize = dims.iter().product();
        if numel > (1usize << 34) {
            return Err(bad("tensor payload implausibly large"));
        }
        let mut data = workspace::take_vec_scratch(numel);
        let mut buf = vec![0u8; 4 * 4096];
        let mut filled = 0usize;
        while filled < numel {
            let take = (4 * (numel - filled)).min(buf.len());
            r.read_exact(&mut buf[..take])?;
            for chunk in buf[..take].chunks_exact(4) {
                data[filled] = f32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                filled += 1;
            }
        }
        Ok(Tensor::from_vec(data, &dims))
    }

    /// Reinterprets the buffer with a new shape of equal element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, dims: &[usize]) -> Self {
        let new = Shape::new(dims);
        assert_eq!(new.numel(), self.data.len(), "reshape to {dims:?} changes element count");
        self.shape = new;
        self
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = workspace::take_vec_capacity(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor { data, shape: self.shape.clone() }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        let mut data = workspace::take_vec_capacity(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Tensor { data, shape: self.shape.clone() }
    }

    /// `self + other`, element-wise.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other`, element-wise.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// `self * other`, element-wise (Hadamard product).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// `self * s`, scalar multiplication.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += s * other` (AXPY).
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Squared L2 norm.
    pub fn norm_sqr(&self) -> f32 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() as f32
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Concatenates tensors along `axis`. All other dimensions must agree.
    pub fn concat(tensors: &[&Tensor], axis: usize) -> Tensor {
        assert!(!tensors.is_empty(), "concat of zero tensors");
        let rank = tensors[0].shape.rank();
        assert!(axis < rank, "concat axis {axis} out of range for rank {rank}");
        let mut out_dims = tensors[0].dims().to_vec();
        out_dims[axis] = tensors.iter().map(|t| t.dims()[axis]).sum();
        for t in tensors {
            assert_eq!(t.shape.rank(), rank, "concat rank mismatch");
            for (d, &od) in out_dims.iter().enumerate() {
                if d != axis {
                    assert_eq!(t.dims()[d], od, "concat dim {d} mismatch");
                }
            }
        }
        // outer = product of dims before axis, inner = product after.
        let outer: usize = out_dims[..axis].iter().product();
        let inner: usize = out_dims[axis + 1..].iter().product();
        let mut data = workspace::take_vec_capacity(out_dims.iter().product());
        for o in 0..outer {
            for t in tensors {
                let len = t.dims()[axis] * inner;
                let start = o * len;
                data.extend_from_slice(&t.data[start..start + len]);
            }
        }
        Tensor::from_vec(data, &out_dims)
    }

    /// Splits a tensor along `axis` into chunks of the given sizes
    /// (the inverse of [`Tensor::concat`]).
    pub fn split(&self, axis: usize, sizes: &[usize]) -> Vec<Tensor> {
        let rank = self.shape.rank();
        assert!(axis < rank);
        assert_eq!(sizes.iter().sum::<usize>(), self.dims()[axis], "split sizes must cover axis");
        let outer: usize = self.dims()[..axis].iter().product();
        let inner: usize = self.dims()[axis + 1..].iter().product();
        let axis_len = self.dims()[axis];
        let mut parts: Vec<(Vec<f32>, Vec<usize>)> = sizes
            .iter()
            .map(|&s| {
                let mut dims = self.dims().to_vec();
                dims[axis] = s;
                (workspace::take_vec_capacity(outer * s * inner), dims)
            })
            .collect();
        for o in 0..outer {
            let mut off = o * axis_len * inner;
            for (p, &s) in parts.iter_mut().zip(sizes) {
                p.0.extend_from_slice(&self.data[off..off + s * inner]);
                off += s * inner;
            }
        }
        parts.into_iter().map(|(d, dims)| Tensor::from_vec(d, &dims)).collect()
    }

    /// 2D transpose of a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.rank(), 2, "transpose2 requires rank 2");
        let (m, n) = (self.dims()[0], self.dims()[1]);
        let mut out = workspace::take_vec_scratch(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape.dims())?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.numel())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 3]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 3]).sum(), 6.0);
        assert_eq!(Tensor::full(&[4], 2.5).sum(), 10.0);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let t = Tensor::randn(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
        let mut c = a.clone();
        c.axpy(0.5, &b);
        assert_eq!(c.data(), &[3.0, 4.5, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.dims(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_rejects_bad_count() {
        Tensor::zeros(&[2, 3]).reshape(&[4]);
    }

    #[test]
    fn indexing() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        let mut t = t;
        *t.at_mut(&[1, 0, 0]) = -1.0;
        assert_eq!(t.at(&[1, 0, 0]), -1.0);
    }

    #[test]
    fn concat_axis0_and_axis1() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]);
        let c0 = Tensor::concat(&[&a, &b], 0);
        assert_eq!(c0.dims(), &[4, 2]);
        assert_eq!(c0.data(), &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let c1 = Tensor::concat(&[&a, &b], 1);
        assert_eq!(c1.dims(), &[2, 4]);
        assert_eq!(c1.data(), &[1., 2., 5., 6., 3., 4., 7., 8.]);
    }

    #[test]
    fn split_inverts_concat() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 3, 2]);
        let parts = a.split(1, &[1, 2]);
        let back = Tensor::concat(&[&parts[0], &parts[1]], 1);
        assert_eq!(back, a);
    }

    #[test]
    fn transpose2_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let t = a.transpose2();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.norm_sqr(), 14.0);
        assert!(!t.has_non_finite());
        let bad = Tensor::from_vec(vec![f32::NAN], &[1]);
        assert!(bad.has_non_finite());
    }

    #[test]
    fn binary_io_roundtrips_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for dims in [&[][..], &[1], &[7], &[3, 5], &[2, 3, 4, 5]] {
            let t = Tensor::randn(dims, 1.0, &mut rng);
            let mut buf = Vec::new();
            t.write_to(&mut buf).expect("write");
            let back = Tensor::read_from(&mut buf.as_slice()).expect("read");
            assert_eq!(back.dims(), t.dims());
            let bits = |x: &Tensor| x.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&back), bits(&t));
        }
    }

    #[test]
    fn binary_io_rejects_truncation_and_garbage() {
        let t = Tensor::ones(&[4, 4]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).expect("write");
        for cut in [1, 3, buf.len() / 2, buf.len() - 1] {
            assert!(Tensor::read_from(&mut &buf[..cut]).is_err(), "cut at {cut} must fail");
        }
        // A header claiming an absurd rank must not allocate.
        let garbage = u32::MAX.to_le_bytes();
        assert!(Tensor::read_from(&mut &garbage[..]).is_err());
    }
}
