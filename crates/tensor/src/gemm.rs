//! Cache-blocked, register-tiled GEMM driver.
//!
//! All three transpose variants exposed by [`crate::linalg`] (`NN`, `TN`,
//! `NT`) lower onto the single [`gemm`] entry point here, which implements
//! the classic BLIS/GotoBLAS loop nest:
//!
//! ```text
//! for jc in 0..n step NC            // L3: column slab of B/C
//!   for pc in 0..k step KC          // L2: pack B[pc..,jc..] into b_pack
//!     pack_b  (KC × NC, nr-panel major, zero-padded edges)
//!     for ic in 0..m step MC        // rayon-parallel over C row blocks
//!       pack_a (MC × KC, mr-panel major, zero-padded edges)
//!       for jr in 0..NC step nr     // micro-tiles
//!         for ir in 0..MC step mr
//!           micro-kernel: acc[mr×nr] += a_panel ⊗ b_panel   (registers)
//! ```
//!
//! The micro-kernel itself — tile shape `(mr, nr)` and the code that holds
//! the accumulator tile in vector registers — lives in [`crate::simd`] and
//! is selected at runtime (`AVX-512 8×48` → `AVX2+FMA 6×16` → portable
//! `6×16`). This driver is tile-shape agnostic: packing, edge masking and
//! write-back are all phrased in the active kernel's `mr`/`nr`.
//!
//! Packing copies each `KC`-deep panel into contiguous storage so the
//! micro-kernel's inner loop reads both operands sequentially: `a_pack`
//! stores mr-row panels column-major (`a_pack[p*mr + i]`), `b_pack` stores
//! nr-column panels row-major (`b_pack[p*nr + j]`). Transposition is folded
//! into the packing strides, so the micro-kernel never sees it. Edge panels
//! are zero-padded: the micro-kernel always computes a full mr×nr tile
//! (branch-free inner loop — no zero-skip shortcuts, so `0·∞ = NaN`
//! propagates correctly) and the write-back masks the padding. Packing
//! buffers come from the [`crate::workspace`] pool, so steady-state GEMM
//! calls do not allocate.
//!
//! `C` is *overwritten* on the first `pc` iteration and accumulated into on
//! subsequent ones, so callers never need to pre-zero the output. The `KC`
//! depth split is part of the numerical contract: every backend shares it,
//! which (together with every tier being a pure FMA chain in `k` order) is
//! why switching backends never changes a single output bit.

use crate::simd::{self, Kernel};
use crate::workspace;
use rayon::prelude::*;

pub use crate::simd::{kernel_backend, set_backend_override, KernelBackend};

/// Row-block size: an MC×KC packed A block should sit in L2.
pub const MC: usize = 64;
/// Depth-block size: a KC-deep B panel should stream from L1/L2
/// (KC·nr·4 B = 16 KiB at nr=16, 48 KiB at nr=48). Shared by every backend:
/// it fixes where accumulator chains are split, i.e. the rounding.
pub const KC: usize = 256;
/// Column-slab size: a KC×NC packed B slab should sit in L2/L3.
pub const NC: usize = 512;

/// Threshold (in multiply-adds) below which we stay single-threaded: tiny
/// GEMMs are faster without the fork-join overhead.
pub const PAR_FLOP_THRESHOLD: usize = 64 * 1024;

/// Takes a pooled scratch buffer whose payload starts on a 64-byte (cache
/// line) boundary, returning the guard plus the element offset of the
/// payload. Panel alignment matters: a zmm load that straddles a cache line
/// costs two L1 accesses, and the pool hands back arbitrarily aligned `Vec`
/// storage.
pub(crate) fn take_scratch_aligned(len: usize) -> (workspace::WorkspaceGuard, usize) {
    let buf = workspace::take_scratch(len + 15);
    let off = buf.as_ptr().align_offset(64).min(15);
    (buf, off)
}

/// Storage layout of a GEMM operand, folded into the packing strides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatLayout {
    /// Operand is stored exactly as the operation reads it.
    Normal,
    /// Operand is stored transposed; packing walks it with swapped strides
    /// (the micro-kernel never sees the difference).
    Transposed,
}

/// Number of threads rayon will fan GEMM row-blocks across (1 == serial).
pub fn effective_threads() -> usize {
    rayon::current_num_threads()
}

/// `C = op(A) · op(B)` with `op(A): [m, k]`, `op(B): [k, n]`, `C: [m, n]`
/// row-major. `C` is fully overwritten (no pre-zeroing needed).
///
/// `a_layout == Transposed` means `A` is stored `[k, m]` (so `op(A)[i][p] =
/// a[p*m + i]`); `b_layout == Transposed` means `B` is stored `[n, k]`.
///
/// # Panics
/// Panics if any slice length disagrees with the given dimensions.
#[allow(clippy::too_many_arguments)] // the canonical GEMM signature
pub fn gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_layout: MatLayout,
    b: &[f32],
    b_layout: MatLayout,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs length mismatch");
    assert_eq!(c.len(), m * n, "gemm output length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    let kernel = simd::active_kernel_for(m, n);
    // Element (i, p) of op(A) is a[i*a_rs + p*a_cs]; (p, j) of op(B) is
    // b[p*b_rs + j*b_cs]. Transposition is entirely these four strides.
    let (a_rs, a_cs) = match a_layout {
        MatLayout::Normal => (k, 1),
        MatLayout::Transposed => (1, m),
    };
    let (b_rs, b_cs) = match b_layout {
        MatLayout::Normal => (n, 1),
        MatLayout::Transposed => (1, k),
    };
    let parallel = m * k * n >= PAR_FLOP_THRESHOLD && effective_threads() > 1;

    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        let n_panels = nb.div_ceil(kernel.nr);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            let first = pc == 0;
            let b_len = n_panels * kernel.nr * kb;
            let (mut b_buf, b_off) = take_scratch_aligned(b_len);
            let b_pack = &mut b_buf[b_off..b_off + b_len];
            pack_b(kernel.nr, b_pack, b, b_rs, b_cs, pc, kb, jc, nb);
            let b_pack = &b_buf[b_off..b_off + b_len];
            let run_block = |i0: usize, c_block: &mut [f32]| {
                let mb = MC.min(m - i0);
                let a_len = mb.div_ceil(kernel.mr) * kernel.mr * kb;
                let (mut a_buf, a_off) = take_scratch_aligned(a_len);
                let a_pack = &mut a_buf[a_off..a_off + a_len];
                pack_a(kernel.mr, a_pack, a, a_rs, a_cs, i0, mb, pc, kb);
                macro_block(kernel, a_pack, b_pack, c_block, mb, kb, nb, n, jc, first);
            };
            if parallel {
                c.par_chunks_mut(MC * n)
                    .enumerate()
                    .for_each(|(bi, c_block)| run_block(bi * MC, c_block));
            } else {
                for (bi, c_block) in c.chunks_mut(MC * n).enumerate() {
                    run_block(bi * MC, c_block);
                }
            }
        }
    }
}

/// Packs an `mb × kb` block of op(A) (rows `i0..`, depth `p0..`) into
/// mr-row panels stored column-major within the panel: panel `pi` holds rows
/// `i0 + pi*mr ..` at `dst[pi*mr*kb + p*mr + i]`. Rows past `mb` are zero.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_a(
    mr: usize,
    dst: &mut [f32],
    src: &[f32],
    rs: usize,
    cs: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
) {
    for (pi, panel) in dst.chunks_exact_mut(mr * kb).enumerate() {
        let i = pi * mr;
        let rows = mr.min(mb - i);
        if rs == 1 {
            // op(A) columns are contiguous in src (A stored transposed):
            // each packed column is a straight memcpy.
            for (p, col) in panel.chunks_exact_mut(mr).enumerate() {
                let base = (p0 + p) * cs + i0 + i;
                col[..rows].copy_from_slice(&src[base..base + rows]);
                col[rows..].fill(0.0);
            }
        } else if cs == 1 {
            // op(A) rows are contiguous in src: read each row once and
            // scatter it across the column-major panel (contiguous reads
            // beat contiguous writes — the rows come straight from RAM,
            // the panel is cache-resident).
            if rows < mr {
                panel.fill(0.0);
            }
            for ii in 0..rows {
                let srow = &src[(i0 + i + ii) * rs + p0..][..kb];
                for (p, &v) in srow.iter().enumerate() {
                    panel[p * mr + ii] = v;
                }
            }
        } else {
            for (p, col) in panel.chunks_exact_mut(mr).enumerate() {
                let base = (p0 + p) * cs + (i0 + i) * rs;
                for (ii, d) in col.iter_mut().enumerate() {
                    *d = if ii < rows { src[base + ii * rs] } else { 0.0 };
                }
            }
        }
    }
}

/// Packs a `kb × nb` block of op(B) (depth `p0..`, cols `j0..`) into
/// nr-column panels stored row-major within the panel: panel `pj` holds
/// columns `j0 + pj*nr ..` at `dst[pj*nr*kb + p*nr + j]`. Columns past `nb`
/// are zero.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_b(
    nr: usize,
    dst: &mut [f32],
    src: &[f32],
    rs: usize,
    cs: usize,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
) {
    for (pj, panel) in dst.chunks_exact_mut(nr * kb).enumerate() {
        let j = pj * nr;
        let cols = nr.min(nb - j);
        if cs == 1 {
            // op(B) rows are contiguous in src: each packed row is a
            // straight memcpy — this is the hot pack (nb ≥ mb in every
            // GEMM this crate issues) and it must not run scalar.
            for (p, row) in panel.chunks_exact_mut(nr).enumerate() {
                let base = (p0 + p) * rs + j0 + j;
                row[..cols].copy_from_slice(&src[base..base + cols]);
                row[cols..].fill(0.0);
            }
        } else {
            for (p, row) in panel.chunks_exact_mut(nr).enumerate() {
                let base = (p0 + p) * rs + (j0 + j) * cs;
                for (jj, d) in row.iter_mut().enumerate() {
                    *d = if jj < cols { src[base + jj * cs] } else { 0.0 };
                }
            }
        }
    }
}

/// Runs every micro-tile of one packed `mb × kb` A block against the packed
/// `kb × nb` B slab, writing the `mb × nb` result into `c_block` (whose rows
/// are full C rows of width `row_stride`, starting at column `jc`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn macro_block(
    kernel: &Kernel,
    a_pack: &[f32],
    b_pack: &[f32],
    c_block: &mut [f32],
    mb: usize,
    kb: usize,
    nb: usize,
    row_stride: usize,
    jc: usize,
    first: bool,
) {
    let (mr, nr) = (kernel.mr, kernel.nr);
    // Cache-line aligned accumulator tile so the micro-kernel's stores never
    // straddle lines.
    #[repr(align(64))]
    struct AccTile([f32; simd::MAX_MR * simd::MAX_NR]);
    let mut acc = AccTile([0.0; simd::MAX_MR * simd::MAX_NR]);
    let acc = &mut acc.0[..mr * nr];
    // b-panel outer (BLIS order): one nr-wide B panel (up to 48 KiB at
    // KC=256) stays hot in L1/L2 while the much smaller mr-row A panels
    // stream past it.
    for (pj, b_panel) in b_pack.chunks_exact(nr * kb).enumerate() {
        let j = pj * nr;
        let cols = nr.min(nb - j);
        for (pi, a_panel) in a_pack.chunks_exact(mr * kb).enumerate() {
            let i = pi * mr;
            let rows = mr.min(mb - i);
            (kernel.micro)(kb, a_panel, b_panel, acc);
            // Write-back masks the zero-padded lanes of edge tiles.
            for ii in 0..rows {
                let row = &acc[ii * nr..][..cols];
                let dst = &mut c_block[(i + ii) * row_stride + jc + j..][..cols];
                if first {
                    dst.copy_from_slice(row);
                } else {
                    for (d, &v) in dst.iter_mut().zip(row) {
                        *d += v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference triple loop, deliberately free of shortcuts.
    fn reference(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small LCG: enough variety to catch indexing bugs, exactly
        // representable so comparisons stay tight.
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 16) as i32 % 17 - 8) as f32 * 0.25
            })
            .collect()
    }

    fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; src.len()];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = src[r * cols + c];
            }
        }
        out
    }

    #[test]
    fn all_layouts_match_reference_on_awkward_shapes() {
        // Shapes straddle every mr/nr/MC/KC edge case of every backend
        // (6/8-row panels, 16/48-column panels).
        for &(m, k, n) in &[
            (1, 1, 1),
            (7, 3, 5),
            (8, 16, 16),
            (9, 17, 33),
            (9, 70, 49),
            (65, 70, 13),
            (70, 257, 70),
        ] {
            let a = fill(m * k, (m * 31 + k) as u32);
            let b = fill(k * n, (k * 57 + n) as u32);
            let want = reference(m, k, n, &a, &b);
            let mut c = vec![f32::NAN; m * n];
            gemm(m, k, n, &a, MatLayout::Normal, &b, MatLayout::Normal, &mut c);
            assert_eq!(c, want, "NN {m}x{k}x{n}");
            let at = transpose(&a, m, k);
            gemm(m, k, n, &at, MatLayout::Transposed, &b, MatLayout::Normal, &mut c);
            assert_eq!(c, want, "TN {m}x{k}x{n}");
            let bt = transpose(&b, k, n);
            gemm(m, k, n, &a, MatLayout::Normal, &bt, MatLayout::Transposed, &mut c);
            assert_eq!(c, want, "NT {m}x{k}x{n}");
        }
    }

    #[test]
    fn nan_and_inf_propagate() {
        // 0 · ∞ = NaN must reach the output — the old kernel's zero-skip
        // branch silently dropped it.
        let a = vec![0.0f32, 1.0];
        let b = vec![f32::INFINITY, 2.0];
        let mut c = vec![0.0f32; 1];
        gemm(1, 2, 1, &a, MatLayout::Normal, &b, MatLayout::Normal, &mut c);
        assert!(c[0].is_nan(), "0*inf + 1*2 must be NaN, got {}", c[0]);

        let a = vec![f32::NAN; 4];
        let b = vec![0.0f32; 4];
        let mut c = vec![0.0f32; 4];
        gemm(2, 2, 2, &a, MatLayout::Normal, &b, MatLayout::Normal, &mut c);
        assert!(c.iter().all(|v| v.is_nan()), "NaN row must poison the output");
    }

    #[test]
    fn k_zero_zeroes_output() {
        let mut c = vec![5.0f32; 6];
        gemm(2, 0, 3, &[], MatLayout::Normal, &[], MatLayout::Normal, &mut c);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    /// Adversarial-ish fill for the dispatch-seam bit-identity tests:
    /// subnormals, signed zeros, huge/tiny magnitudes and near-cancelling
    /// neighbors — but no NaN/inf, whose *payload* propagation through a
    /// libm `fma` on generic codegen is not bit-pinned (the reftest oracle
    /// covers NaN/inf with payload-insensitive comparison).
    fn adversarial_finite(len: usize, seed: u32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(747796405).wrapping_add(1);
        let mut out: Vec<f32> = Vec::with_capacity(len);
        for _ in 0..len {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let roll = s >> 28;
            let x = match roll {
                0 => 0.0,
                1 => -0.0,
                2 => f32::from_bits(1 + (s >> 8) % 100), // subnormal
                3 => 1.0e30 * (((s >> 8) % 7) as f32 - 3.0),
                4 => 1.0e-30 * (((s >> 8) % 7) as f32 - 3.0),
                5 => match out.last() {
                    Some(&p) if p.is_finite() && p != 0.0 => {
                        -f32::from_bits(p.to_bits().wrapping_add(s >> 30))
                    }
                    _ => -1.0,
                },
                _ => {
                    let e = ((s >> 8) % 41) as i32 - 20;
                    let m = ((s >> 13) as i32 % 255 - 127) as f32 / 64.0;
                    m * (2.0f32).powi(e)
                }
            };
            out.push(x);
        }
        out
    }

    /// Perf probe (not a correctness test): times each available backend at
    /// 256³ and the raw micro-kernel in isolation. Run with
    /// `cargo test -p mfn-tensor --release -- --ignored perf --nocapture`.
    #[test]
    #[ignore]
    fn perf_probe_backends() {
        use std::time::Instant;
        let detected = {
            set_backend_override(None);
            kernel_backend()
        };
        let (m, k, n) = (256, 256, 256);
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut c = vec![0.0f32; m * n];
        for tier in [KernelBackend::Portable, KernelBackend::Avx2Fma, KernelBackend::Avx512] {
            if tier < detected {
                continue;
            }
            set_backend_override(Some(tier));
            let kern = crate::simd::active_kernel();
            // raw micro-kernel: one panel pair resident in cache, panels
            // cache-line aligned exactly as the gemm driver guarantees
            let kb = KC;
            let aligned = |len: usize, seed: u32| {
                let mut v = vec![0.0f32; len + 15];
                let off = v.as_ptr().align_offset(64).min(15);
                v[off..off + len].copy_from_slice(&fill(len, seed));
                (v, off)
            };
            let (ap, ao) = aligned(kern.mr * kb, 3);
            let (bp, bo) = aligned(kern.nr * kb, 4);
            let mut acc = vec![0.0f32; kern.mr * kern.nr];
            let reps = 40_000;
            let mut best = f64::MAX;
            for _ in 0..3 {
                let t = Instant::now();
                for _ in 0..reps {
                    (kern.micro)(
                        kb,
                        &ap[ao..ao + kern.mr * kb],
                        &bp[bo..bo + kern.nr * kb],
                        &mut acc,
                    );
                }
                best = best.min(t.elapsed().as_secs_f64());
            }
            let micro_gflops = (2 * kern.mr * kern.nr * kb * reps) as f64 / best / 1e9;
            // full 256^3 gemm
            let mut best = f64::MAX;
            for _ in 0..5 {
                let t = Instant::now();
                gemm(m, k, n, &a, MatLayout::Normal, &b, MatLayout::Normal, &mut c);
                best = best.min(t.elapsed().as_secs_f64());
            }
            let gemm_gflops = (2 * m * k * n) as f64 / best / 1e9;
            println!(
                "{:<9} micro {micro_gflops:7.1} GFLOP/s   gemm256 {gemm_gflops:7.1} GFLOP/s",
                tier.name()
            );
        }
        set_backend_override(None);
    }

    /// The dispatch seam is invisible: the intrinsics backends and the
    /// portable kernel produce bit-identical C on tile-unaligned shapes
    /// with adversarial inputs, across every layout.
    #[test]
    fn backends_are_bit_identical_on_unaligned_shapes() {
        let detected = {
            set_backend_override(None);
            kernel_backend()
        };
        // Shapes chosen to straddle both tile geometries (6/16 and 8/48)
        // plus the KC=256 depth split.
        let shapes = [(1, 1, 1), (5, 3, 17), (6, 16, 16), (8, 48, 48), (9, 300, 49), (61, 70, 95)];
        for (si, &(m, k, n)) in shapes.iter().enumerate() {
            let a = adversarial_finite(m * k, 11 + si as u32);
            let b = adversarial_finite(k * n, 91 + si as u32);
            for (a_layout, b_layout) in [
                (MatLayout::Normal, MatLayout::Normal),
                (MatLayout::Transposed, MatLayout::Normal),
                (MatLayout::Normal, MatLayout::Transposed),
            ] {
                let run = |backend: Option<KernelBackend>| {
                    set_backend_override(backend);
                    let mut c = vec![f32::NAN; m * n];
                    gemm(m, k, n, &a, a_layout, &b, b_layout, &mut c);
                    set_backend_override(None);
                    c
                };
                let portable = run(Some(KernelBackend::Portable));
                for tier in [KernelBackend::Avx2Fma, KernelBackend::Avx512] {
                    if tier < detected {
                        continue; // host can't execute this tier
                    }
                    let fast = run(Some(tier));
                    for (i, (&got, &want)) in fast.iter().zip(&portable).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "{} vs portable diverged: {m}x{k}x{n} {a_layout:?}/{b_layout:?} \
                             elem {i}: {got:e} vs {want:e}",
                            tier.name()
                        );
                    }
                }
            }
        }
    }
}
