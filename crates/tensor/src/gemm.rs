//! Cache-blocked, register-tiled GEMM micro-kernel.
//!
//! All three transpose variants exposed by [`crate::linalg`] (`NN`, `TN`,
//! `NT`) lower onto the single [`gemm`] entry point here, which implements
//! the classic BLIS/GotoBLAS loop nest:
//!
//! ```text
//! for jc in 0..n step NC            // L3: column slab of B/C
//!   for pc in 0..k step KC          // L2: pack B[pc..,jc..] into b_pack
//!     pack_b  (KC × NC, NR-panel major, zero-padded edges)
//!     for ic in 0..m step MC        // rayon-parallel over C row blocks
//!       pack_a (MC × KC, MR-panel major, zero-padded edges)
//!       for jr in 0..NC step NR     // micro-tiles
//!         for ir in 0..MC step MR
//!           micro_kernel: acc[MR×NR] += a_panel ⊗ b_panel   (registers)
//! ```
//!
//! Packing copies each `KC`-deep panel into contiguous, aligned storage so
//! the micro-kernel's inner loop reads both operands sequentially: `a_pack`
//! stores MR-row panels column-major (`a_pack[p*MR + i]`), `b_pack` stores
//! NR-column panels row-major (`b_pack[p*NR + j]`). Transposition is folded
//! into the packing strides, so the micro-kernel itself is layout-agnostic.
//! Edge panels are zero-padded: the micro-kernel always computes a full
//! MR×NR tile (branch-free inner loop — no zero-skip shortcuts, so
//! `0·∞ = NaN` propagates correctly) and the write-back masks the padding.
//!
//! The accumulator tile lives in registers: with the default `MR=8, NR=16`
//! an AVX2 build keeps the 8×16 f32 tile in 16 ymm registers and performs
//! `MR·NR` multiply-adds per `MR+NR` loads, where the old `ikj` row loop did
//! one multiply-add per two loads and a store. Packing buffers come from the
//! [`crate::workspace`] pool, so steady-state GEMM calls do not allocate.
//!
//! `C` is *overwritten* on the first `pc` iteration and accumulated into on
//! subsequent ones, so callers never need to pre-zero the output.

use crate::workspace;
use rayon::prelude::*;

/// Micro-tile rows: each micro-kernel invocation produces MR×NR outputs.
///
/// 6×16 keeps the accumulator tile plus one packed-B row plus one broadcast
/// inside the 16-register AVX2 file (6·2 + 2 + 1 = 15 ymm): measured on the
/// reference host, MR=6 doubles throughput over an 8×16 tile, which spills.
pub const MR: usize = 6;
/// Micro-tile columns (two 8-lane vectors per row).
pub const NR: usize = 16;
/// Row-block size: an MC×KC packed A block should sit in L2.
pub const MC: usize = 64;
/// Depth-block size: a KC×NR B panel should sit in L1 (KC·NR·4 B = 16 KiB).
pub const KC: usize = 256;
/// Column-slab size: a KC×NC packed B slab should sit in L2/L3.
pub const NC: usize = 512;

/// Threshold (in multiply-adds) below which we stay single-threaded: tiny
/// GEMMs are faster without the fork-join overhead.
pub const PAR_FLOP_THRESHOLD: usize = 64 * 1024;

/// Storage layout of a GEMM operand, folded into the packing strides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatLayout {
    /// Operand is stored exactly as the operation reads it.
    Normal,
    /// Operand is stored transposed; packing walks it with swapped strides
    /// (the micro-kernel never sees the difference).
    Transposed,
}

/// Number of threads rayon will fan GEMM row-blocks across (1 == serial).
pub fn effective_threads() -> usize {
    rayon::current_num_threads()
}

/// `C = op(A) · op(B)` with `op(A): [m, k]`, `op(B): [k, n]`, `C: [m, n]`
/// row-major. `C` is fully overwritten (no pre-zeroing needed).
///
/// `a_layout == Transposed` means `A` is stored `[k, m]` (so `op(A)[i][p] =
/// a[p*m + i]`); `b_layout == Transposed` means `B` is stored `[n, k]`.
///
/// # Panics
/// Panics if any slice length disagrees with the given dimensions.
#[allow(clippy::too_many_arguments)] // the canonical GEMM signature
pub fn gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_layout: MatLayout,
    b: &[f32],
    b_layout: MatLayout,
    c: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs length mismatch");
    assert_eq!(c.len(), m * n, "gemm output length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        c.fill(0.0);
        return;
    }
    // Element (i, p) of op(A) is a[i*a_rs + p*a_cs]; (p, j) of op(B) is
    // b[p*b_rs + j*b_cs]. Transposition is entirely these four strides.
    let (a_rs, a_cs) = match a_layout {
        MatLayout::Normal => (k, 1),
        MatLayout::Transposed => (1, m),
    };
    let (b_rs, b_cs) = match b_layout {
        MatLayout::Normal => (n, 1),
        MatLayout::Transposed => (1, k),
    };
    let parallel = m * k * n >= PAR_FLOP_THRESHOLD && effective_threads() > 1;

    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        let n_panels = nb.div_ceil(NR);
        for pc in (0..k).step_by(KC) {
            let kb = KC.min(k - pc);
            let first = pc == 0;
            let mut b_pack = workspace::take_scratch(n_panels * NR * kb);
            pack_b(&mut b_pack, b, b_rs, b_cs, pc, kb, jc, nb);
            let run_block = |i0: usize, c_block: &mut [f32]| {
                let mb = MC.min(m - i0);
                let m_panels = mb.div_ceil(MR);
                let mut a_pack = workspace::take_scratch(m_panels * MR * kb);
                pack_a(&mut a_pack, a, a_rs, a_cs, i0, mb, pc, kb);
                macro_block(&a_pack, &b_pack, c_block, mb, kb, nb, n, jc, first);
            };
            if parallel {
                c.par_chunks_mut(MC * n)
                    .enumerate()
                    .for_each(|(bi, c_block)| run_block(bi * MC, c_block));
            } else {
                for (bi, c_block) in c.chunks_mut(MC * n).enumerate() {
                    run_block(bi * MC, c_block);
                }
            }
        }
    }
}

/// Packs an `mb × kb` block of op(A) (rows `i0..`, depth `p0..`) into
/// MR-row panels stored column-major within the panel: panel `pi` holds rows
/// `i0 + pi*MR ..` at `dst[pi*MR*kb + p*MR + i]`. Rows past `mb` are zero.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    dst: &mut [f32],
    src: &[f32],
    rs: usize,
    cs: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
) {
    for (pi, panel) in dst.chunks_exact_mut(MR * kb).enumerate() {
        let i = pi * MR;
        let rows = MR.min(mb - i);
        for (p, col) in panel.chunks_exact_mut(MR).enumerate() {
            let base = (p0 + p) * cs + (i0 + i) * rs;
            for (ii, d) in col.iter_mut().enumerate() {
                *d = if ii < rows { src[base + ii * rs] } else { 0.0 };
            }
        }
    }
}

/// Packs a `kb × nb` block of op(B) (depth `p0..`, cols `j0..`) into
/// NR-column panels stored row-major within the panel: panel `pj` holds
/// columns `j0 + pj*NR ..` at `dst[pj*NR*kb + p*NR + j]`. Columns past `nb`
/// are zero.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    dst: &mut [f32],
    src: &[f32],
    rs: usize,
    cs: usize,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
) {
    for (pj, panel) in dst.chunks_exact_mut(NR * kb).enumerate() {
        let j = pj * NR;
        let cols = NR.min(nb - j);
        for (p, row) in panel.chunks_exact_mut(NR).enumerate() {
            let base = (p0 + p) * rs + (j0 + j) * cs;
            for (jj, d) in row.iter_mut().enumerate() {
                *d = if jj < cols { src[base + jj * cs] } else { 0.0 };
            }
        }
    }
}

/// Runs every micro-tile of one packed `mb × kb` A block against the packed
/// `kb × nb` B slab, writing the `mb × nb` result into `c_block` (whose rows
/// are full C rows of width `row_stride`, starting at column `jc`).
#[allow(clippy::too_many_arguments)]
fn macro_block(
    a_pack: &[f32],
    b_pack: &[f32],
    c_block: &mut [f32],
    mb: usize,
    kb: usize,
    nb: usize,
    row_stride: usize,
    jc: usize,
    first: bool,
) {
    for (pi, a_panel) in a_pack.chunks_exact(MR * kb).enumerate() {
        let i = pi * MR;
        let rows = MR.min(mb - i);
        for (pj, b_panel) in b_pack.chunks_exact(NR * kb).enumerate() {
            let j = pj * NR;
            let cols = NR.min(nb - j);
            let acc = micro_kernel(kb, a_panel, b_panel);
            // Write-back masks the zero-padded lanes of edge tiles.
            for ii in 0..rows {
                let row = &acc[ii][..cols];
                let dst = &mut c_block[(i + ii) * row_stride + jc + j..][..cols];
                if first {
                    dst.copy_from_slice(row);
                } else {
                    for (d, &v) in dst.iter_mut().zip(row) {
                        *d += v;
                    }
                }
            }
        }
    }
}

/// SIMD lane count the micro-kernel is phrased in: operations on `[f32; 8]`
/// in straight-line code reliably fuse into single 256-bit AVX2 ops (and
/// degrade gracefully to two SSE ops on baseline x86-64).
const LANES: usize = 8;
/// Vectors per micro-tile row.
const NV: usize = NR / LANES;

/// Eight f32 lanes updated in lock-step. This is not `std::simd` (stable
/// toolchain) — it is a plain array whose fully-unrolled element ops LLVM's
/// SLP vectorizer folds into one vector instruction each.
#[derive(Clone, Copy)]
struct V8([f32; LANES]);

impl V8 {
    const ZERO: V8 = V8([0.0; LANES]);

    #[inline(always)]
    fn splat(x: f32) -> V8 {
        V8([x; LANES])
    }

    #[inline(always)]
    fn load(s: &[f32]) -> V8 {
        V8(s[..LANES].try_into().unwrap())
    }

    /// `self + a·b`, lowered to a single FMA where the target has one.
    /// Written as an indexed loop on purpose: this exact shape is what the
    /// SLP vectorizer recognizes (iterator chains here have regressed to
    /// scalar code), hence the lint allowance.
    #[allow(clippy::needless_range_loop)]
    #[inline(always)]
    fn fma(self, a: V8, b: V8) -> V8 {
        let mut o = self.0;
        for l in 0..LANES {
            o[l] = a.0[l].mul_add(b.0[l], o[l]);
        }
        V8(o)
    }
}

/// The register-tiled heart: one MR×NR f32 tile accumulated over `kb`
/// rank-one updates. Both panels are contiguous and zero-padded, so the
/// loop body is branch-free; the accumulator tile (MR·NV [`V8`]s) stays in
/// vector registers across the whole depth loop, giving `MR·NR`
/// multiply-adds per `MR + NR` loads.
#[inline(always)]
fn micro_kernel(kb: usize, a_panel: &[f32], b_panel: &[f32]) -> [[f32; NR]; MR] {
    debug_assert_eq!(a_panel.len(), MR * kb);
    debug_assert_eq!(b_panel.len(), NR * kb);
    let mut acc = [[V8::ZERO; NV]; MR];
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let mut b = [V8::ZERO; NV];
        for v in 0..NV {
            b[v] = V8::load(&bv[v * LANES..]);
        }
        for i in 0..MR {
            let a = V8::splat(av[i]);
            for v in 0..NV {
                acc[i][v] = acc[i][v].fma(a, b[v]);
            }
        }
    }
    let mut out = [[0.0f32; NR]; MR];
    for i in 0..MR {
        for v in 0..NV {
            out[i][v * LANES..(v + 1) * LANES].copy_from_slice(&acc[i][v].0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference triple loop, deliberately free of shortcuts.
    fn reference(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small LCG: enough variety to catch indexing bugs, exactly
        // representable so comparisons stay tight.
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(12345);
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 16) as i32 % 17 - 8) as f32 * 0.25
            })
            .collect()
    }

    fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; src.len()];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = src[r * cols + c];
            }
        }
        out
    }

    #[test]
    fn all_layouts_match_reference_on_awkward_shapes() {
        // Shapes straddle every MR/NR/MC/KC edge case.
        for &(m, k, n) in
            &[(1, 1, 1), (7, 3, 5), (8, 16, 16), (9, 17, 33), (65, 70, 13), (70, 257, 70)]
        {
            let a = fill(m * k, (m * 31 + k) as u32);
            let b = fill(k * n, (k * 57 + n) as u32);
            let want = reference(m, k, n, &a, &b);
            let mut c = vec![f32::NAN; m * n];
            gemm(m, k, n, &a, MatLayout::Normal, &b, MatLayout::Normal, &mut c);
            assert_eq!(c, want, "NN {m}x{k}x{n}");
            let at = transpose(&a, m, k);
            gemm(m, k, n, &at, MatLayout::Transposed, &b, MatLayout::Normal, &mut c);
            assert_eq!(c, want, "TN {m}x{k}x{n}");
            let bt = transpose(&b, k, n);
            gemm(m, k, n, &a, MatLayout::Normal, &bt, MatLayout::Transposed, &mut c);
            assert_eq!(c, want, "NT {m}x{k}x{n}");
        }
    }

    #[test]
    fn nan_and_inf_propagate() {
        // 0 · ∞ = NaN must reach the output — the old kernel's zero-skip
        // branch silently dropped it.
        let a = vec![0.0f32, 1.0];
        let b = vec![f32::INFINITY, 2.0];
        let mut c = vec![0.0f32; 1];
        gemm(1, 2, 1, &a, MatLayout::Normal, &b, MatLayout::Normal, &mut c);
        assert!(c[0].is_nan(), "0*inf + 1*2 must be NaN, got {}", c[0]);

        let a = vec![f32::NAN; 4];
        let b = vec![0.0f32; 4];
        let mut c = vec![0.0f32; 4];
        gemm(2, 2, 2, &a, MatLayout::Normal, &b, MatLayout::Normal, &mut c);
        assert!(c.iter().all(|v| v.is_nan()), "NaN row must poison the output");
    }

    #[test]
    fn k_zero_zeroes_output() {
        let mut c = vec![5.0f32; 6];
        gemm(2, 0, 3, &[], MatLayout::Normal, &[], MatLayout::Normal, &mut c);
        assert!(c.iter().all(|&v| v == 0.0));
    }
}
