//! Shape bookkeeping for dense, contiguous, row-major tensors.

use std::fmt;

/// The shape of a dense row-major tensor: a small vector of dimension sizes.
///
/// All tensors in this reproduction are contiguous, so strides are implied by
/// the dimensions (`stride[i] = prod(dims[i+1..])`) and never stored.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Creates a shape from a dimension list.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics (in debug builds) if the index rank or any coordinate is out of
    /// range.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0;
        for (d, (&i, &n)) in index.iter().zip(&self.0).enumerate() {
            debug_assert!(i < n, "index {i} out of bounds for dim {d} of size {n}");
            let _ = d;
            off = off * n + i;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(Shape::new(&[]).numel(), 1); // scalar
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[0, 0, 3]), 3);
        assert_eq!(s.offset(&[0, 1, 0]), 4);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn offset_bounds_checked_in_debug() {
        let s = Shape::new(&[2, 2]);
        s.offset(&[2, 0]);
    }
}
