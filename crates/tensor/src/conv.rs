//! 3D convolution, pooling, and upsampling kernels (NCDHW layout).
//!
//! These are the compute-heavy primitives behind the Context Generation
//! Network (the 3D U-Net of paper Fig. 5). All kernels use stride 1 and
//! "same" zero padding with odd kernel sizes, which is exactly what the
//! architecture needs (1×1×1 and 3×3×3 convolutions).
//!
//! Two forward lowerings are provided, and [`conv3d_auto`] picks between
//! them per layer by shape ([`conv3d_path`]):
//!
//! - [`conv3d`]: direct kernel, rayon-parallel over the batch × channel
//!   grid; no intermediate materialization, best for 1×1×1 kernels (already
//!   a GEMM-shaped axpy sweep) and for shapes whose lowered patch matrix
//!   would be huge;
//! - [`conv3d_im2col`]: lowers the input to a `[N·D·H·W, Cin·kd·kh·kw]`
//!   patch matrix and runs one blocked GEMM from [`crate::gemm`](mod@crate::gemm) — the
//!   register-tiled micro-kernel amortizes the lowering copy for 3×3×3
//!   stacks with more than a few channels.
//!
//! All inner loops are branch-free: there is deliberately no zero-skip
//! shortcut on weights, because `0·∞` must produce NaN, not silence (the
//! gradcheck and NaN-propagation tests pin this down). Output buffers and
//! im2col scratch come from the [`crate::workspace`] pool, so steady-state
//! training steps do not touch the system allocator.

use crate::tensor::Tensor;
use crate::workspace;
use rayon::prelude::*;

/// Shape metadata for one conv3d application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv3dDims {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub cin: usize,
    /// Output channels.
    pub cout: usize,
    /// Spatial extents `[d, h, w]` (identical for input and output: same padding).
    pub spatial: [usize; 3],
    /// Kernel extents `[kd, kh, kw]` — each must be odd.
    pub kernel: [usize; 3],
}

impl Conv3dDims {
    /// Validates and extracts the dimension bundle from an input/weight pair.
    ///
    /// # Panics
    /// Panics on rank mismatch, channel mismatch, or even kernel sizes.
    pub fn infer(input: &Tensor, weight: &Tensor) -> Self {
        assert_eq!(input.shape().rank(), 5, "conv3d input must be [N,C,D,H,W]");
        assert_eq!(weight.shape().rank(), 5, "conv3d weight must be [Co,Ci,kd,kh,kw]");
        let (n, cin) = (input.dims()[0], input.dims()[1]);
        let spatial = [input.dims()[2], input.dims()[3], input.dims()[4]];
        let (cout, cin_w) = (weight.dims()[0], weight.dims()[1]);
        let kernel = [weight.dims()[2], weight.dims()[3], weight.dims()[4]];
        assert_eq!(cin, cin_w, "conv3d channel mismatch: input {cin}, weight {cin_w}");
        for k in kernel {
            assert!(k % 2 == 1, "conv3d kernels must be odd for same padding, got {kernel:?}");
        }
        Conv3dDims { n, cin, cout, spatial, kernel }
    }

    fn pad(&self) -> [usize; 3] {
        [self.kernel[0] / 2, self.kernel[1] / 2, self.kernel[2] / 2]
    }

    fn vol(&self) -> usize {
        self.spatial.iter().product()
    }
}

/// Forward 3D convolution with stride 1 and same zero padding.
///
/// `input: [N, Cin, D, H, W]`, `weight: [Cout, Cin, kd, kh, kw]` →
/// `[N, Cout, D, H, W]`.
pub fn conv3d(input: &Tensor, weight: &Tensor) -> Tensor {
    let dims = Conv3dDims::infer(input, weight);
    let [sd, sh, sw] = dims.spatial;
    let [kd, kh, kw] = dims.kernel;
    let [pd, ph, pw] = dims.pad();
    let vol = dims.vol();
    let x = input.data();
    let wgt = weight.data();
    let mut out = workspace::take_vec_zeroed(dims.n * dims.cout * vol);

    out.par_chunks_mut(vol).enumerate().for_each(|(chunk, o)| {
        let n = chunk / dims.cout;
        let co = chunk % dims.cout;
        for ci in 0..dims.cin {
            let xin = &x[(n * dims.cin + ci) * vol..(n * dims.cin + ci + 1) * vol];
            let wv = &wgt
                [((co * dims.cin + ci) * kd * kh * kw)..((co * dims.cin + ci + 1) * kd * kh * kw)];
            for zd in 0..kd {
                for zh in 0..kh {
                    for zw in 0..kw {
                        // No zero-skip on `wval`: 0·∞ must yield NaN, and the
                        // branch is a mispredict tax on dense weights.
                        let wval = wv[(zd * kh + zh) * kw + zw];
                        // Output index (d,h,w) reads input (d+zd-pd, h+zh-ph, w+zw-pw).
                        let d_lo = pd.saturating_sub(zd);
                        let d_hi = (sd + pd - zd).min(sd);
                        let h_lo = ph.saturating_sub(zh);
                        let h_hi = (sh + ph - zh).min(sh);
                        let w_lo = pw.saturating_sub(zw);
                        let w_hi = (sw + pw - zw).min(sw);
                        for d in d_lo..d_hi {
                            let id = d + zd - pd;
                            for h in h_lo..h_hi {
                                let ih = h + zh - ph;
                                let orow = (d * sh + h) * sw;
                                let irow = (id * sh + ih) * sw;
                                for w in w_lo..w_hi {
                                    o[orow + w] += wval * xin[irow + w + zw - pw];
                                }
                            }
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[dims.n, dims.cout, sd, sh, sw])
}

/// Gradient of [`conv3d`] with respect to its input — auto-dispatching
/// entry point (this is what the autodiff graph calls). Routes through the
/// fused implicit GEMM for real (non-pointwise, odd) kernels and falls back
/// to the direct sliding-window kernel otherwise.
pub fn conv3d_grad_input(grad_out: &Tensor, weight: &Tensor, dims: Conv3dDims) -> Tensor {
    // The flipped-weight trick behind the implicit path needs odd kernels
    // (true for every conv this repo builds, but `dims` arrives unchecked).
    let odd = dims.kernel.iter().all(|k| k % 2 == 1);
    match conv3d_path(&dims) {
        Conv3dPath::ImplicitGemm if odd => conv3d_implicit_grad_input(grad_out, weight, dims),
        _ => conv3d_grad_input_direct(grad_out, weight, dims),
    }
}

/// Gradient of [`conv3d`] with respect to its weights — auto-dispatching
/// entry point mirroring [`conv3d_grad_input`].
pub fn conv3d_grad_weight(input: &Tensor, grad_out: &Tensor, dims: Conv3dDims) -> Tensor {
    match conv3d_path(&dims) {
        Conv3dPath::ImplicitGemm => conv3d_implicit_grad_weight(input, grad_out, dims),
        _ => conv3d_grad_weight_direct(input, grad_out, dims),
    }
}

/// Gradient of [`conv3d`] with respect to its input, direct kernel.
///
/// `grad_out: [N, Cout, D, H, W]` → `[N, Cin, D, H, W]`.
pub fn conv3d_grad_input_direct(grad_out: &Tensor, weight: &Tensor, dims: Conv3dDims) -> Tensor {
    let [sd, sh, sw] = dims.spatial;
    let [kd, kh, kw] = dims.kernel;
    let [pd, ph, pw] = dims.pad();
    let vol = dims.vol();
    assert_eq!(grad_out.dims(), &[dims.n, dims.cout, sd, sh, sw]);
    let g = grad_out.data();
    let wgt = weight.data();
    let mut out = workspace::take_vec_zeroed(dims.n * dims.cin * vol);

    out.par_chunks_mut(vol).enumerate().for_each(|(chunk, o)| {
        let n = chunk / dims.cin;
        let ci = chunk % dims.cin;
        for co in 0..dims.cout {
            let gout = &g[(n * dims.cout + co) * vol..(n * dims.cout + co + 1) * vol];
            let wv = &wgt
                [((co * dims.cin + ci) * kd * kh * kw)..((co * dims.cin + ci + 1) * kd * kh * kw)];
            for zd in 0..kd {
                for zh in 0..kh {
                    for zw in 0..kw {
                        // Branch-free, same as the forward kernel.
                        let wval = wv[(zd * kh + zh) * kw + zw];
                        // grad_in[i] += grad_out[i - z + p] * w[z]; bounds on the
                        // *output* index od = id - zd + pd.
                        let d_lo = zd.saturating_sub(pd);
                        let d_hi = (sd + zd).min(sd + pd).saturating_sub(pd).min(sd);
                        let h_lo = zh.saturating_sub(ph);
                        let h_hi = (sh + zh).min(sh + ph).saturating_sub(ph).min(sh);
                        let w_lo = zw.saturating_sub(pw);
                        let w_hi = (sw + zw).min(sw + pw).saturating_sub(pw).min(sw);
                        for id in d_lo..d_hi {
                            let od = id + pd - zd;
                            if od >= sd {
                                continue;
                            }
                            for ih in h_lo..h_hi {
                                let oh = ih + ph - zh;
                                if oh >= sh {
                                    continue;
                                }
                                let irow = (id * sh + ih) * sw;
                                let orow = (od * sh + oh) * sw;
                                for iw in w_lo..w_hi {
                                    let ow = iw + pw - zw;
                                    if ow < sw {
                                        o[irow + iw] += wval * gout[orow + ow];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[dims.n, dims.cin, sd, sh, sw])
}

/// Gradient of [`conv3d`] with respect to its weights, direct kernel.
///
/// Returns `[Cout, Cin, kd, kh, kw]`.
pub fn conv3d_grad_weight_direct(input: &Tensor, grad_out: &Tensor, dims: Conv3dDims) -> Tensor {
    let [sd, sh, sw] = dims.spatial;
    let [kd, kh, kw] = dims.kernel;
    let [pd, ph, pw] = dims.pad();
    let vol = dims.vol();
    assert_eq!(grad_out.dims(), &[dims.n, dims.cout, sd, sh, sw]);
    let x = input.data();
    let g = grad_out.data();
    let ksize = kd * kh * kw;
    let mut out = workspace::take_vec_zeroed(dims.cout * dims.cin * ksize);

    out.par_chunks_mut(dims.cin * ksize).enumerate().for_each(|(co, wslab)| {
        for n in 0..dims.n {
            let gout = &g[(n * dims.cout + co) * vol..(n * dims.cout + co + 1) * vol];
            for ci in 0..dims.cin {
                let xin = &x[(n * dims.cin + ci) * vol..(n * dims.cin + ci + 1) * vol];
                let wv = &mut wslab[ci * ksize..(ci + 1) * ksize];
                for zd in 0..kd {
                    for zh in 0..kh {
                        for zw in 0..kw {
                            let d_lo = pd.saturating_sub(zd);
                            let d_hi = (sd + pd - zd).min(sd);
                            let h_lo = ph.saturating_sub(zh);
                            let h_hi = (sh + ph - zh).min(sh);
                            let w_lo = pw.saturating_sub(zw);
                            let w_hi = (sw + pw - zw).min(sw);
                            let mut acc = 0.0f32;
                            for d in d_lo..d_hi {
                                let id = d + zd - pd;
                                for h in h_lo..h_hi {
                                    let ih = h + zh - ph;
                                    let orow = (d * sh + h) * sw;
                                    let irow = (id * sh + ih) * sw;
                                    for w in w_lo..w_hi {
                                        acc += gout[orow + w] * xin[irow + w + zw - pw];
                                    }
                                }
                            }
                            wv[(zd * kh + zh) * kw + zw] += acc;
                        }
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[dims.cout, dims.cin, kd, kh, kw])
}

/// Which lowering [`conv3d_auto`] (and the gradient dispatchers) picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conv3dPath {
    /// Direct sliding-window kernel ([`conv3d`]).
    Direct,
    /// im2col patch matrix + blocked GEMM ([`conv3d_im2col`]). Kept as a
    /// reference lowering (bench/reftest baseline); the auto path no longer
    /// selects it.
    Im2col,
    /// Fused implicit-GEMM ([`conv3d_implicit_gemm`]): patch columns are
    /// packed on the fly inside the GEMM's KC loop — the patch matrix is
    /// never materialized.
    ImplicitGemm,
}

impl Conv3dPath {
    /// Stable lowercase name, used by trainer telemetry.
    pub fn name(self) -> &'static str {
        match self {
            Conv3dPath::Direct => "direct",
            Conv3dPath::Im2col => "im2col",
            Conv3dPath::ImplicitGemm => "implicit_gemm",
        }
    }
}

/// Shape-based heuristic choosing the forward lowering for one layer.
///
/// 1×1×1 kernels stay direct: their inner loop is already a dense
/// channel-mixing GEMM over contiguous voxels, and lowering would only copy
/// the input. Everything else goes through the fused implicit GEMM — the
/// register-tiled micro-kernel wins as soon as the reduction depth
/// `Cin·kd·kh·kw` is non-trivial, and since patch columns are packed
/// on the fly there is no materialized patch matrix to cap (the old
/// im2col byte-cap fallback is gone with the im2col auto path).
pub fn conv3d_path(dims: &Conv3dDims) -> Conv3dPath {
    let kvol: usize = dims.kernel.iter().product();
    if kvol == 1 {
        Conv3dPath::Direct
    } else {
        Conv3dPath::ImplicitGemm
    }
}

/// Forward 3D convolution dispatching to the lowering chosen by
/// [`conv3d_path`]. This is what the U-Net layers call.
pub fn conv3d_auto(input: &Tensor, weight: &Tensor) -> Tensor {
    let dims = Conv3dDims::infer(input, weight);
    match conv3d_path(&dims) {
        Conv3dPath::Direct => conv3d(input, weight),
        Conv3dPath::Im2col => conv3d_im2col(input, weight),
        Conv3dPath::ImplicitGemm => conv3d_implicit_gemm(input, weight),
    }
}

/// Fills one span of the *implicit* patch matrix.
///
/// Patch element `(kidx, p)` is `x[n, ci, (d+zd-pd, h+zh-ph, w+zw-pw)]`
/// (zero outside the input) for `kidx = (ci, zd, zh, zw)` and output voxel
/// `p = (d, h, w)`. This writes elements `j0 .. j0+cols` of row `kidx` into
/// `dst` at `stride` (stride 1 packs a forward B-panel row; stride `nr`
/// packs a grad-weight B-panel column). The walk is segment-wise: each
/// output row `(d, h)` contributes one contiguous `w`-run of `xin` plus
/// zero-padding at the borders, so the common case is a memcpy.
#[allow(clippy::too_many_arguments)]
fn fill_patch_span(
    dst: &mut [f32],
    stride: usize,
    xin: &[f32],
    spatial: [usize; 3],
    z: [usize; 3],
    pad: [usize; 3],
    j0: usize,
    cols: usize,
) {
    let [sd, sh, sw] = spatial;
    let [zd, zh, zw] = z;
    let [pd, ph, pw] = pad;
    let mut j = 0usize;
    while j < cols {
        let p = j0 + j;
        let d = p / (sh * sw);
        let rem = p % (sh * sw);
        let h = rem / sw;
        let w0 = rem % sw;
        // Run to the end of this output row (or of the requested span).
        let seg = (sw - w0).min(cols - j);
        let id_ok = d + zd >= pd && d + zd < sd + pd;
        let ih_ok = h + zh >= ph && h + zh < sh + ph;
        let zero = |dst: &mut [f32], at: usize, len: usize| {
            if stride == 1 {
                dst[at..at + len].fill(0.0);
            } else {
                for jj in 0..len {
                    dst[(at + jj) * stride] = 0.0;
                }
            }
        };
        if !(id_ok && ih_ok) {
            zero(dst, j, seg);
        } else {
            let irow = ((d + zd - pd) * sh + (h + zh - ph)) * sw;
            // In-bounds input width: iw = w + zw - pw must lie in [0, sw).
            let lo = pw.saturating_sub(zw).clamp(w0, w0 + seg);
            let hi = (sw + pw).saturating_sub(zw).min(sw).clamp(lo, w0 + seg);
            zero(dst, j, lo - w0);
            if stride == 1 {
                dst[j + (lo - w0)..j + (hi - w0)]
                    .copy_from_slice(&xin[irow + lo + zw - pw..irow + hi + zw - pw]);
            } else {
                for (jj, w) in (lo..hi).enumerate() {
                    dst[(j + (lo - w0) + jj) * stride] = xin[irow + w + zw - pw];
                }
            }
            zero(dst, j + (hi - w0), w0 + seg - hi);
        }
        j += seg;
    }
}

/// Forward 3D convolution as a *fused implicit GEMM*: per batch item,
/// `out[co, p] = W[co, :] · patch[:, p]` with `W: [Cout, Cin·kd·kh·kw]` in
/// its native layout and the patch operand packed on the fly, one `KC×NC`
/// block at a time, by `fill_patch_span` — the `[Cin·kvol, D·H·W]` patch
/// matrix never exists in memory. The output lands directly in NCDHW (no
/// transpose-back), and all scratch is pooled: steady-state calls do not
/// allocate.
///
/// Numerics: each output element is the same `k`-ordered FMA chain (with
/// the same `KC` depth splits) as [`conv3d_im2col`], so the two lowerings
/// are bit-identical — pinned by tests here and in the reftest oracle.
pub fn conv3d_implicit_gemm(input: &Tensor, weight: &Tensor) -> Tensor {
    let dims = Conv3dDims::infer(input, weight);
    let [sd, sh, sw] = dims.spatial;
    let out = implicit_forward_into(input.data(), weight.data(), dims);
    Tensor::from_vec(out, &[dims.n, dims.cout, sd, sh, sw])
}

/// Shared implicit-GEMM forward driver: `x: [n, cin, vol]` NCDHW, `w:
/// [cout, cin·kvol]`, returns `[n, cout, vol]`. Also serves the
/// grad-input pass (which is a forward conv against flipped weights).
fn implicit_forward_into(x: &[f32], w: &[f32], dims: Conv3dDims) -> Vec<f32> {
    use crate::gemm::{macro_block, pack_a, take_scratch_aligned, KC, NC};
    let [kd, kh, kw] = dims.kernel;
    let kvol = kd * kh * kw;
    let vol = dims.vol();
    let ksize = dims.cin * kvol;
    let pad = dims.pad();
    let kernel = crate::simd::active_kernel_for(dims.cout, vol);
    let (mr, nr) = (kernel.mr, kernel.nr);
    let mut out = workspace::take_vec_scratch(dims.n * dims.cout * vol);

    // The packed weight block for each KC slice is identical across batch
    // items and column slabs: pack all of A once, up front.
    let a_panel_rows = dims.cout.div_ceil(mr) * mr;
    let (mut a_buf, a_off) = take_scratch_aligned(a_panel_rows * ksize);
    let mut a_blocks = Vec::new(); // (pc, range in a_buf)
    {
        let mut off = a_off;
        for pc in (0..ksize).step_by(KC) {
            let kb = KC.min(ksize - pc);
            let len = a_panel_rows * kb;
            pack_a(mr, &mut a_buf[off..off + len], w, ksize, 1, 0, dims.cout, pc, kb);
            a_blocks.push((pc, off..off + len));
            off += len;
        }
    }
    let a_buf = &a_buf;
    let a_blocks = &a_blocks;

    let run_item = |n: usize, oslab: &mut [f32]| {
        for jc in (0..vol).step_by(NC) {
            let nb = NC.min(vol - jc);
            let n_panels = nb.div_ceil(nr);
            for (pc, a_range) in a_blocks.iter() {
                let pc = *pc;
                let kb = KC.min(ksize - pc);
                let first = pc == 0;
                let b_len = n_panels * nr * kb;
                let (mut b_buf, b_off) = take_scratch_aligned(b_len);
                let b_pack = &mut b_buf[b_off..b_off + b_len];
                for (pj, panel) in b_pack.chunks_exact_mut(nr * kb).enumerate() {
                    let j0 = jc + pj * nr;
                    let cols = nr.min(nb - pj * nr);
                    for (p, row) in panel.chunks_exact_mut(nr).enumerate() {
                        let kidx = pc + p;
                        let (ci, z) = (kidx / kvol, kidx % kvol);
                        let zoff = [z / (kh * kw), (z / kw) % kh, z % kw];
                        let xin = &x[(n * dims.cin + ci) * vol..][..vol];
                        fill_patch_span(row, 1, xin, dims.spatial, zoff, pad, j0, cols);
                        row[cols..].fill(0.0);
                    }
                }
                macro_block(
                    kernel,
                    &a_buf[a_range.clone()],
                    &b_buf[b_off..b_off + b_len],
                    oslab,
                    dims.cout,
                    kb,
                    nb,
                    vol,
                    jc,
                    first,
                );
            }
        }
    };
    let parallel = dims.n > 1
        && dims.n * dims.cout * vol * ksize >= crate::gemm::PAR_FLOP_THRESHOLD
        && crate::gemm::effective_threads() > 1;
    if parallel {
        out.par_chunks_mut(dims.cout * vol).enumerate().for_each(|(n, o)| run_item(n, o));
    } else {
        for (n, o) in out.chunks_mut(dims.cout * vol).enumerate() {
            run_item(n, o);
        }
    }
    out
}

/// Gradient of conv3d w.r.t. its input, as an implicit GEMM.
///
/// For stride-1 same-padding convolution with odd kernels, `∂L/∂x` is
/// itself a same-padding convolution of `grad_out` against the weight with
/// input/output channels swapped and every kernel axis flipped:
/// `W'[ci, co, z] = W[co, ci, flip(z)]`. The flipped weight (a few KiB) is
/// materialized once per call; the patch operand streams through
/// `fill_patch_span` exactly like the forward pass.
pub fn conv3d_implicit_grad_input(grad_out: &Tensor, weight: &Tensor, dims: Conv3dDims) -> Tensor {
    let [sd, sh, sw] = dims.spatial;
    let [kd, kh, kw] = dims.kernel;
    let kvol = kd * kh * kw;
    assert_eq!(grad_out.dims(), &[dims.n, dims.cout, sd, sh, sw]);
    let w = weight.data();
    let mut wf = workspace::take_vec_scratch(dims.cin * dims.cout * kvol);
    for co in 0..dims.cout {
        for ci in 0..dims.cin {
            let src = &w[(co * dims.cin + ci) * kvol..][..kvol];
            let dst = &mut wf[(ci * dims.cout + co) * kvol..][..kvol];
            for (z, d) in dst.iter_mut().enumerate() {
                *d = src[kvol - 1 - z];
            }
        }
    }
    let flipped = Conv3dDims { cin: dims.cout, cout: dims.cin, ..dims };
    let out = implicit_forward_into(grad_out.data(), &wf, flipped);
    drop(wf);
    Tensor::from_vec(out, &[dims.n, dims.cin, sd, sh, sw])
}

/// Gradient of conv3d w.r.t. its weights, as an implicit GEMM.
///
/// Per batch item `n`, `∂L/∂W[co, kidx] += grad_out_n[co, :] ·
/// patchᵀ_n[:, kidx]` — a `[Cout, vol] × [vol, Cin·kvol]` GEMM whose
/// right-hand side is the *transposed* implicit patch matrix, packed
/// column-wise by `fill_patch_span` with a write stride of `nr`. The
/// depth dimension is the voxel count, so accumulation runs over both the
/// `KC` voxel blocks and the batch (`first` only on the very first block).
pub fn conv3d_implicit_grad_weight(input: &Tensor, grad_out: &Tensor, dims: Conv3dDims) -> Tensor {
    use crate::gemm::{macro_block, pack_a, take_scratch_aligned, KC, NC};
    let [sd, sh, sw] = dims.spatial;
    let [kd, kh, kw] = dims.kernel;
    let kvol = kd * kh * kw;
    let vol = dims.vol();
    let ksize = dims.cin * kvol;
    let pad = dims.pad();
    assert_eq!(grad_out.dims(), &[dims.n, dims.cout, sd, sh, sw]);
    let x = input.data();
    let g = grad_out.data();
    let kernel = crate::simd::active_kernel_for(dims.cout, ksize);
    let (mr, nr) = (kernel.mr, kernel.nr);
    let mut out = workspace::take_vec_scratch(dims.cout * ksize);

    for n in 0..dims.n {
        let gn = &g[n * dims.cout * vol..][..dims.cout * vol];
        for jc in (0..ksize).step_by(NC) {
            let nb = NC.min(ksize - jc);
            let n_panels = nb.div_ceil(nr);
            for pc in (0..vol).step_by(KC) {
                let kb = KC.min(vol - pc);
                let first = n == 0 && pc == 0;
                let b_len = n_panels * nr * kb;
                let (mut b_buf, b_off) = take_scratch_aligned(b_len);
                let b_pack = &mut b_buf[b_off..b_off + b_len];
                for (pj, panel) in b_pack.chunks_exact_mut(nr * kb).enumerate() {
                    let j0 = jc + pj * nr;
                    let cols = nr.min(nb - pj * nr);
                    if cols < nr {
                        panel.fill(0.0); // edge panel: pad columns
                    }
                    for jj in 0..cols {
                        let kidx = j0 + jj;
                        let (ci, z) = (kidx / kvol, kidx % kvol);
                        let zoff = [z / (kh * kw), (z / kw) % kh, z % kw];
                        let xin = &x[(n * dims.cin + ci) * vol..][..vol];
                        // Column jj of the panel, over kb depth (voxel) rows.
                        fill_patch_span(&mut panel[jj..], nr, xin, dims.spatial, zoff, pad, pc, kb);
                    }
                }
                let a_len = dims.cout.div_ceil(mr) * mr * kb;
                let (mut a_buf, a_off) = take_scratch_aligned(a_len);
                let a_pack = &mut a_buf[a_off..a_off + a_len];
                pack_a(mr, a_pack, gn, vol, 1, 0, dims.cout, pc, kb);
                macro_block(
                    kernel,
                    a_pack,
                    &b_buf[b_off..b_off + b_len],
                    &mut out,
                    dims.cout,
                    kb,
                    nb,
                    ksize,
                    jc,
                    first,
                );
            }
        }
    }
    Tensor::from_vec(out, &[dims.cout, dims.cin, kd, kh, kw])
}

/// Forward 3D convolution via im2col + GEMM: lowers the input into a
/// `[N·D·H·W, Cin·kd·kh·kw]` patch matrix and multiplies by the flattened
/// kernel. Trades memory (the lowered matrix, pooled scratch) for a single
/// blocked GEMM — typically faster than [`conv3d`] for wide channel
/// counts, slower for 1×1×1 kernels. Produces bit-comparable results (same
/// f32 sums in a different association order; see the equivalence test).
pub fn conv3d_im2col(input: &Tensor, weight: &Tensor) -> Tensor {
    let dims = Conv3dDims::infer(input, weight);
    let [sd, sh, sw] = dims.spatial;
    let [kd, kh, kw] = dims.kernel;
    let (pd, ph, pw) = (kd / 2, kh / 2, kw / 2);
    let vol = dims.vol();
    let ksize = dims.cin * kd * kh * kw;
    let x = input.data();

    // Lower: row per output position, column per (ci, zd, zh, zw). Scratch
    // checkout: every element is written below.
    let mut cols = workspace::take_scratch(dims.n * vol * ksize);
    cols.par_chunks_mut(vol * ksize).enumerate().for_each(|(n, slab)| {
        for d in 0..sd {
            for h in 0..sh {
                for w in 0..sw {
                    let row = &mut slab
                        [((d * sh + h) * sw + w) * ksize..((d * sh + h) * sw + w + 1) * ksize];
                    let mut col = 0;
                    for ci in 0..dims.cin {
                        let xin = &x[(n * dims.cin + ci) * vol..(n * dims.cin + ci + 1) * vol];
                        for zd in 0..kd {
                            let id = d as isize + zd as isize - pd as isize;
                            for zh in 0..kh {
                                let ih = h as isize + zh as isize - ph as isize;
                                for zw in 0..kw {
                                    let iw = w as isize + zw as isize - pw as isize;
                                    row[col] = if id >= 0
                                        && ih >= 0
                                        && iw >= 0
                                        && (id as usize) < sd
                                        && (ih as usize) < sh
                                        && (iw as usize) < sw
                                    {
                                        xin[((id as usize) * sh + ih as usize) * sw + iw as usize]
                                    } else {
                                        0.0
                                    };
                                    col += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    });
    // GEMM: [N·vol, ksize] @ [ksize, Cout] — the kernel stays in its native
    // [Cout, ksize] layout (Transposed operand), no weight copy.
    let mut out_nv_co = workspace::take_scratch(dims.n * vol * dims.cout);
    crate::gemm::gemm(
        dims.n * vol,
        ksize,
        dims.cout,
        &cols,
        crate::gemm::MatLayout::Normal,
        weight.data(),
        crate::gemm::MatLayout::Transposed,
        &mut out_nv_co,
    );
    drop(cols);
    // Transpose back to NCDHW.
    let o = &out_nv_co;
    let mut out = workspace::take_vec_scratch(dims.n * dims.cout * vol);
    out.par_chunks_mut(vol).enumerate().for_each(|(chunk, dst)| {
        let n = chunk / dims.cout;
        let co = chunk % dims.cout;
        for (p, d) in dst.iter_mut().enumerate() {
            *d = o[(n * vol + p) * dims.cout + co];
        }
    });
    Tensor::from_vec(out, &[dims.n, dims.cout, sd, sh, sw])
}

/// Non-overlapping 3D max pooling by integer factors `[fd, fh, fw]`.
///
/// Returns the pooled tensor and the flat argmax index (into the input
/// buffer) per output element, for use by the backward pass.
///
/// # Panics
/// Panics if a spatial extent is not divisible by its factor.
pub fn maxpool3d(input: &Tensor, factors: [usize; 3]) -> (Tensor, Vec<u32>) {
    assert_eq!(input.shape().rank(), 5, "maxpool3d input must be [N,C,D,H,W]");
    let [fd, fh, fw] = factors;
    let (n, c) = (input.dims()[0], input.dims()[1]);
    let (d, h, w) = (input.dims()[2], input.dims()[3], input.dims()[4]);
    assert!(
        d % fd == 0 && h % fh == 0 && w % fw == 0,
        "maxpool3d: dims [{d},{h},{w}] not divisible by factors {factors:?}"
    );
    let (od, oh, ow) = (d / fd, h / fh, w / fw);
    let x = input.data();
    let ovol = od * oh * ow;
    let mut out = workspace::take_vec_scratch(n * c * ovol);
    let mut idx = vec![0u32; n * c * ovol];
    out.par_chunks_mut(ovol).zip(idx.par_chunks_mut(ovol)).enumerate().for_each(
        |(chunk, (o, ix))| {
            let base = chunk * d * h * w; // start of this (n,c) slab in input
            for zd in 0..od {
                for zh in 0..oh {
                    for zw in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_i = 0usize;
                        for dd in 0..fd {
                            for hh in 0..fh {
                                for ww in 0..fw {
                                    let i = base
                                        + ((zd * fd + dd) * h + (zh * fh + hh)) * w
                                        + (zw * fw + ww);
                                    // `>` alone would drop NaN (NaN > x is
                                    // false), silently turning a poisoned
                                    // window into the max of its healthy
                                    // elements. A NaN must win and stick:
                                    // once `best` is NaN, `x[i] > best` stays
                                    // false forever.
                                    if x[i] > best || x[i].is_nan() {
                                        best = x[i];
                                        best_i = i;
                                    }
                                }
                            }
                        }
                        let oi = (zd * oh + zh) * ow + zw;
                        o[oi] = best;
                        ix[oi] = best_i as u32;
                    }
                }
            }
        },
    );
    (Tensor::from_vec(out, &[n, c, od, oh, ow]), idx)
}

/// Backward of [`maxpool3d`]: scatters output gradients to the recorded
/// argmax positions. `input_numel` is the element count of the pooled input.
pub fn maxpool3d_backward(grad_out: &Tensor, indices: &[u32], input_dims: &[usize]) -> Tensor {
    let numel: usize = input_dims.iter().product();
    assert_eq!(grad_out.numel(), indices.len());
    let mut grad_in = workspace::take_vec_zeroed(numel);
    for (&g, &i) in grad_out.data().iter().zip(indices) {
        grad_in[i as usize] += g;
    }
    Tensor::from_vec(grad_in, input_dims)
}

/// Nearest-neighbor 3D upsampling by integer factors `[fd, fh, fw]`.
pub fn upsample_nearest3d(input: &Tensor, factors: [usize; 3]) -> Tensor {
    assert_eq!(input.shape().rank(), 5, "upsample3d input must be [N,C,D,H,W]");
    let [fd, fh, fw] = factors;
    let (n, c) = (input.dims()[0], input.dims()[1]);
    let (d, h, w) = (input.dims()[2], input.dims()[3], input.dims()[4]);
    let (od, oh, ow) = (d * fd, h * fh, w * fw);
    let x = input.data();
    let ovol = od * oh * ow;
    let ivol = d * h * w;
    let mut out = workspace::take_vec_scratch(n * c * ovol);
    out.par_chunks_mut(ovol).enumerate().for_each(|(chunk, o)| {
        let xin = &x[chunk * ivol..(chunk + 1) * ivol];
        for zd in 0..od {
            for zh in 0..oh {
                let irow = ((zd / fd) * h + zh / fh) * w;
                let orow = (zd * oh + zh) * ow;
                for zw in 0..ow {
                    o[orow + zw] = xin[irow + zw / fw];
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, c, od, oh, ow])
}

/// Backward of [`upsample_nearest3d`]: sums gradients over each upsampled
/// block (the adjoint of replication).
pub fn upsample_nearest3d_backward(grad_out: &Tensor, factors: [usize; 3]) -> Tensor {
    let [fd, fh, fw] = factors;
    let (n, c) = (grad_out.dims()[0], grad_out.dims()[1]);
    let (od, oh, ow) = (grad_out.dims()[2], grad_out.dims()[3], grad_out.dims()[4]);
    assert!(od % fd == 0 && oh % fh == 0 && ow % fw == 0);
    let (d, h, w) = (od / fd, oh / fh, ow / fw);
    let g = grad_out.data();
    let ivol = d * h * w;
    let ovol = od * oh * ow;
    let mut out = workspace::take_vec_zeroed(n * c * ivol);
    out.par_chunks_mut(ivol).enumerate().for_each(|(chunk, o)| {
        let gout = &g[chunk * ovol..(chunk + 1) * ovol];
        for zd in 0..od {
            for zh in 0..oh {
                let orow = (zd * oh + zh) * ow;
                let irow = ((zd / fd) * h + zh / fh) * w;
                for zw in 0..ow {
                    o[irow + zw / fw] += gout[orow + zw];
                }
            }
        }
    });
    Tensor::from_vec(out, &[n, c, d, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Reference conv3d: direct translation of the definition, no tricks.
    fn conv3d_naive(input: &Tensor, weight: &Tensor) -> Tensor {
        let dims = Conv3dDims::infer(input, weight);
        let [sd, sh, sw] = dims.spatial;
        let [kd, kh, kw] = dims.kernel;
        let (pd, ph, pw) = (kd / 2, kh / 2, kw / 2);
        let mut out = Tensor::zeros(&[dims.n, dims.cout, sd, sh, sw]);
        for n in 0..dims.n {
            for co in 0..dims.cout {
                for d in 0..sd {
                    for h in 0..sh {
                        for w in 0..sw {
                            let mut acc = 0.0;
                            for ci in 0..dims.cin {
                                for zd in 0..kd {
                                    for zh in 0..kh {
                                        for zw in 0..kw {
                                            let id = d as isize + zd as isize - pd as isize;
                                            let ih = h as isize + zh as isize - ph as isize;
                                            let iw = w as isize + zw as isize - pw as isize;
                                            if id < 0
                                                || ih < 0
                                                || iw < 0
                                                || id >= sd as isize
                                                || ih >= sh as isize
                                                || iw >= sw as isize
                                            {
                                                continue;
                                            }
                                            acc += input.at(&[
                                                n,
                                                ci,
                                                id as usize,
                                                ih as usize,
                                                iw as usize,
                                            ]) * weight.at(&[co, ci, zd, zh, zw]);
                                        }
                                    }
                                }
                            }
                            *out.at_mut(&[n, co, d, h, w]) = acc;
                        }
                    }
                }
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn conv3d_matches_naive() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for &(k, c) in
            &[([1usize, 1, 1], (2usize, 3usize)), ([3, 3, 3], (2, 2)), ([1, 3, 3], (3, 1))]
        {
            let input = Tensor::randn(&[2, c.0, 3, 4, 5], 1.0, &mut rng);
            let weight = Tensor::randn(&[c.1, c.0, k[0], k[1], k[2]], 1.0, &mut rng);
            assert_close(&conv3d(&input, &weight), &conv3d_naive(&input, &weight), 1e-4);
        }
    }

    #[test]
    fn conv3d_identity_kernel() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let input = Tensor::randn(&[1, 1, 4, 4, 4], 1.0, &mut rng);
        let weight = Tensor::ones(&[1, 1, 1, 1, 1]);
        assert_close(&conv3d(&input, &weight), &input, 1e-6);
    }

    /// Numerical gradient check of both conv3d backward kernels.
    #[test]
    fn conv3d_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let input = Tensor::randn(&[1, 2, 2, 3, 3], 0.5, &mut rng);
        let weight = Tensor::randn(&[2, 2, 3, 3, 3], 0.5, &mut rng);
        let dims = Conv3dDims::infer(&input, &weight);
        // Loss = sum(conv(x, w) * r) for a fixed random r.
        let r = Tensor::randn(&[1, 2, 2, 3, 3], 1.0, &mut rng);
        let loss = |x: &Tensor, w: &Tensor| conv3d(x, w).mul(&r).sum() as f64;

        let gx = conv3d_grad_input(&r, &weight, dims);
        let gw = conv3d_grad_weight(&input, &r, dims);
        let eps = 1e-3f32;
        for i in (0..input.numel()).step_by(7) {
            let mut xp = input.clone();
            xp.data_mut()[i] += eps;
            let mut xm = input.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &weight) - loss(&xm, &weight)) / (2.0 * eps as f64);
            assert!(
                (fd as f32 - gx.data()[i]).abs() < 2e-2,
                "input grad {i}: {fd} vs {}",
                gx.data()[i]
            );
        }
        for i in (0..weight.numel()).step_by(13) {
            let mut wp = weight.clone();
            wp.data_mut()[i] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&input, &wp) - loss(&input, &wm)) / (2.0 * eps as f64);
            assert!(
                (fd as f32 - gw.data()[i]).abs() < 2e-2,
                "weight grad {i}: {fd} vs {}",
                gw.data()[i]
            );
        }
    }

    #[test]
    fn im2col_matches_direct_conv() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for &(k, cin, cout) in
            &[([1usize, 1, 1], 3usize, 5usize), ([3, 3, 3], 2, 4), ([1, 3, 3], 4, 2)]
        {
            let input = Tensor::randn(&[2, cin, 3, 4, 5], 1.0, &mut rng);
            let weight = Tensor::randn(&[cout, cin, k[0], k[1], k[2]], 1.0, &mut rng);
            let direct = conv3d(&input, &weight);
            let lowered = conv3d_im2col(&input, &weight);
            assert_eq!(direct.dims(), lowered.dims());
            for (a, b) in direct.data().iter().zip(lowered.data()) {
                assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs {b} (k={k:?})");
            }
        }
    }

    /// `conv3d_auto` must be a pure dispatcher: whichever lowering the
    /// heuristic picks, the numbers match the direct reference.
    #[test]
    fn conv3d_auto_matches_direct() {
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        for &(k, cin, cout) in
            &[([1usize, 1, 1], 3usize, 5usize), ([3, 3, 3], 2, 4), ([1, 3, 3], 4, 2)]
        {
            let input = Tensor::randn(&[2, cin, 3, 4, 5], 1.0, &mut rng);
            let weight = Tensor::randn(&[cout, cin, k[0], k[1], k[2]], 1.0, &mut rng);
            let direct = conv3d(&input, &weight);
            let auto = conv3d_auto(&input, &weight);
            assert_eq!(direct.dims(), auto.dims());
            for (a, b) in direct.data().iter().zip(auto.data()) {
                assert!((a - b).abs() < 1e-4 * (1.0 + b.abs()), "{a} vs {b} (k={k:?})");
            }
        }
    }

    /// The shape heuristic: pointwise kernels stay direct (lowering would
    /// only copy), everything else goes through the fused implicit GEMM —
    /// including huge shapes, since nothing is materialized there is no
    /// byte-cap fallback anymore.
    #[test]
    fn conv3d_path_heuristic() {
        let pointwise = Conv3dDims { n: 2, cin: 4, cout: 8, spatial: [4, 8, 8], kernel: [1, 1, 1] };
        assert!(matches!(conv3d_path(&pointwise), Conv3dPath::Direct));
        assert_eq!(conv3d_path(&pointwise).name(), "direct");
        let typical = Conv3dDims { n: 2, cin: 4, cout: 8, spatial: [4, 8, 8], kernel: [3, 3, 3] };
        assert!(matches!(conv3d_path(&typical), Conv3dPath::ImplicitGemm));
        assert_eq!(conv3d_path(&typical).name(), "implicit_gemm");
        let huge =
            Conv3dDims { n: 64, cin: 256, cout: 256, spatial: [64, 256, 256], kernel: [3, 3, 3] };
        assert!(matches!(conv3d_path(&huge), Conv3dPath::ImplicitGemm));
        assert_eq!(Conv3dPath::Im2col.name(), "im2col");
    }

    /// The fused implicit GEMM must be *bit-identical* to the materialized
    /// im2col lowering: both walk the same k-ordered FMA chain with the same
    /// KC depth splits, only the packing differs.
    #[test]
    fn implicit_gemm_is_bit_identical_to_im2col() {
        let mut rng = ChaCha8Rng::seed_from_u64(79);
        for &(k, cin, cout, sp) in &[
            ([3usize, 3, 3], 2usize, 4usize, [3usize, 4, 5]),
            ([1, 3, 3], 4, 2, [3, 4, 5]),
            ([3, 1, 1], 1, 1, [2, 2, 2]),
            // cin*kvol = 10*27 = 270 > KC: exercises the depth split.
            ([3, 3, 3], 10, 3, [2, 5, 7]),
            // vol > NC: exercises the column-slab loop.
            ([3, 3, 3], 2, 3, [4, 12, 13]),
        ] {
            let input = Tensor::randn(&[2, cin, sp[0], sp[1], sp[2]], 1.0, &mut rng);
            let weight = Tensor::randn(&[cout, cin, k[0], k[1], k[2]], 1.0, &mut rng);
            let lowered = conv3d_im2col(&input, &weight);
            let fused = conv3d_implicit_gemm(&input, &weight);
            assert_eq!(lowered.dims(), fused.dims());
            for (i, (a, b)) in lowered.data().iter().zip(fused.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "elem {i}: {a} vs {b} (k={k:?})");
            }
        }
    }

    /// Implicit-GEMM gradients agree with the direct gradient kernels
    /// (different summation order, so tolerance rather than bits).
    #[test]
    fn implicit_gradients_match_direct() {
        let mut rng = ChaCha8Rng::seed_from_u64(80);
        for &(k, cin, cout, sp) in &[
            ([3usize, 3, 3], 2usize, 4usize, [3usize, 4, 5]),
            ([1, 3, 3], 4, 2, [3, 4, 5]),
            ([3, 3, 3], 10, 3, [2, 5, 7]),
            ([3, 3, 3], 2, 3, [4, 12, 13]),
        ] {
            let input = Tensor::randn(&[2, cin, sp[0], sp[1], sp[2]], 1.0, &mut rng);
            let weight = Tensor::randn(&[cout, cin, k[0], k[1], k[2]], 1.0, &mut rng);
            let dims = Conv3dDims::infer(&input, &weight);
            let gout = Tensor::randn(&[2, cout, sp[0], sp[1], sp[2]], 1.0, &mut rng);
            assert_close(
                &conv3d_implicit_grad_input(&gout, &weight, dims),
                &conv3d_grad_input_direct(&gout, &weight, dims),
                1e-4,
            );
            assert_close(
                &conv3d_implicit_grad_weight(&input, &gout, dims),
                &conv3d_grad_weight_direct(&input, &gout, dims),
                1e-4,
            );
        }
    }

    /// NaN and inf flow through the implicit path untouched: the on-the-fly
    /// packer must not skip or zero non-finite input values.
    #[test]
    fn implicit_gemm_propagates_nan_and_inf() {
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let mut input = Tensor::randn(&[1, 2, 3, 4, 5], 1.0, &mut rng);
        input.data_mut()[7] = f32::NAN;
        input.data_mut()[31] = f32::INFINITY;
        let weight = Tensor::randn(&[3, 2, 3, 3, 3], 1.0, &mut rng);
        let fused = conv3d_implicit_gemm(&input, &weight);
        let lowered = conv3d_im2col(&input, &weight);
        for (i, (a, b)) in fused.data().iter().zip(lowered.data()).enumerate() {
            assert_eq!(
                a.is_nan(),
                b.is_nan(),
                "elem {i}: NaN split between lowerings ({a} vs {b})"
            );
            if !a.is_nan() {
                assert_eq!(a.to_bits(), b.to_bits(), "elem {i}: {a} vs {b}");
            }
        }
        assert!(fused.data().iter().any(|v| v.is_nan()), "planted NaN vanished");
    }

    /// IEEE semantics through the conv kernels: a zero weight against an
    /// infinite input must produce NaN (`0 * inf`), not silently skip the
    /// term. Guards the removal of the old zero-skip fast paths.
    #[test]
    fn conv3d_zero_weight_propagates_nan_from_inf_input() {
        let input = Tensor::full(&[1, 1, 2, 2, 2], f32::INFINITY);
        let weight = Tensor::zeros(&[1, 1, 1, 1, 1]);
        for v in conv3d(&input, &weight).data() {
            assert!(v.is_nan(), "0 * inf must be NaN, got {v}");
        }
        // Same law through the input-gradient kernel (grad = w * grad_out).
        let dims = Conv3dDims::infer(&input, &weight);
        let grad_out = Tensor::full(&[1, 1, 2, 2, 2], f32::INFINITY);
        for v in conv3d_grad_input(&grad_out, &weight, dims).data() {
            assert!(v.is_nan(), "0 * inf must be NaN in grad_input, got {v}");
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 2, 2, 4]);
        let (out, idx) = maxpool3d(&input, [2, 2, 2]);
        assert_eq!(out.dims(), &[1, 1, 1, 1, 2]);
        // Max over each 2x2x2 block: block0 covers cols 0..2 -> max 13, block1 cols 2..4 -> 15.
        assert_eq!(out.data(), &[13.0, 15.0]);
        let g = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 1, 1, 2]);
        let gi = maxpool3d_backward(&g, &idx, &[1, 1, 2, 2, 4]);
        assert_eq!(gi.data()[13], 1.0);
        assert_eq!(gi.data()[15], 2.0);
        assert_eq!(gi.sum(), 3.0);
    }

    #[test]
    fn maxpool_anisotropic() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let input = Tensor::randn(&[2, 3, 4, 6, 8], 1.0, &mut rng);
        let (out, _) = maxpool3d(&input, [1, 2, 4]);
        assert_eq!(out.dims(), &[2, 3, 4, 3, 2]);
        // Pooling can only keep values that exist in the input.
        for &v in out.data() {
            assert!(input.data().contains(&v));
        }
    }

    #[test]
    fn maxpool_propagates_nan() {
        // A poisoned window must pool to NaN, not to the max of its healthy
        // elements (and certainly not to -inf for an all-NaN window). Found
        // by the reftest oracle: `>` alone never admits a NaN candidate.
        let mut v = vec![0.0f32; 16];
        v[5] = f32::NAN; // lands in the first 2x2x2 block
        v[10] = 7.0; // healthy max of the second block
        let input = Tensor::from_vec(v, &[1, 1, 2, 2, 4]);
        let (out, idx) = maxpool3d(&input, [2, 2, 2]);
        assert!(out.data()[0].is_nan(), "NaN window must pool to NaN");
        assert_eq!(idx[0], 5, "argmax must point at the NaN");
        assert_eq!(out.data()[1], 7.0, "healthy window unaffected");

        let all_nan = Tensor::from_vec(vec![f32::NAN; 8], &[1, 1, 2, 2, 2]);
        let (out, _) = maxpool3d(&all_nan, [2, 2, 2]);
        assert!(out.data()[0].is_nan(), "all-NaN window must not become -inf");
    }

    #[test]
    fn upsample_then_pool_is_identity_scaled() {
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let input = Tensor::randn(&[1, 2, 2, 2, 2], 1.0, &mut rng);
        let up = upsample_nearest3d(&input, [2, 2, 2]);
        assert_eq!(up.dims(), &[1, 2, 4, 4, 4]);
        // Every 2x2x2 block of `up` is constant, so maxpool inverts it.
        let (back, _) = maxpool3d(&up, [2, 2, 2]);
        assert_close(&back, &input, 1e-6);
    }

    #[test]
    fn upsample_backward_is_adjoint() {
        // <up(x), y> == <x, up_backward(y)> — the defining adjoint property.
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let x = Tensor::randn(&[1, 1, 2, 3, 2], 1.0, &mut rng);
        let f = [2, 1, 3];
        let y = Tensor::randn(&[1, 1, 4, 3, 6], 1.0, &mut rng);
        let lhs = upsample_nearest3d(&x, f).mul(&y).sum();
        let rhs = x.mul(&upsample_nearest3d_backward(&y, f)).sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn maxpool_rejects_indivisible() {
        maxpool3d(&Tensor::zeros(&[1, 1, 3, 4, 4]), [2, 2, 2]);
    }
}
