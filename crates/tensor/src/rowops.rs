//! Row-oriented gather / blend / bias / affine kernels shared by the
//! reverse-mode tape (`mfn-autodiff`) and the no-grad inference path
//! (`mfn-core`'s frozen engine).
//!
//! Both execution paths must produce *bit-identical* outputs — the serving
//! engine's correctness contract is "same bytes as the training graph in
//! eval mode" — so the elementwise loops live here exactly once and both
//! callers delegate. Any change to summation order or zero-handling in these
//! functions changes the bits of every checkpointed model's predictions.

use crate::tensor::Tensor;
use crate::workspace;

/// Gathers rows from a latent grid `grid: [N, C, D, H, W]` into `[M, C]`.
///
/// `index[m] = n*D*H*W + (d*H + h)*W + w` selects the vertex for output
/// row `m` (batch and spatial offsets pre-combined).
pub fn gather_rows(grid: &Tensor, index: &[u32]) -> Tensor {
    assert_eq!(grid.shape().rank(), 5, "gather_rows grid must be [N,C,D,H,W]");
    let (n, c) = (grid.dims()[0], grid.dims()[1]);
    let vol: usize = grid.dims()[2..].iter().product();
    let g = grid.data();
    let m = index.len();
    let mut out = workspace::take_vec_scratch(m * c);
    for (row, &flat) in index.iter().enumerate() {
        let flat = flat as usize;
        let ni = flat / vol;
        let sp = flat % vol;
        debug_assert!(ni < n, "gather index out of batch range");
        for ci in 0..c {
            out[row * c + ci] = g[(ni * c + ci) * vol + sp];
        }
    }
    Tensor::from_vec(out, &[m, c])
}

/// Fused gather + coordinate prefix for the decoder's no-grad hot path:
/// builds the MLP input `[M, K + C]` where each row is the `K` per-vertex
/// values from `prefix` followed by the gathered latent row. Bit-identical
/// to `Tensor::concat(&[prefix, gather_rows(grid, index)], 1)` — the values
/// are plain copies — but skips the intermediate `[M, C]` tensor and the
/// second full-width copy.
///
/// # Panics
/// Panics if `grid` is not rank 5 or `prefix.len()` is not a multiple of
/// `index.len()`.
pub fn gather_concat_rows(grid: &Tensor, index: &[u32], prefix: &[f32]) -> Tensor {
    assert_eq!(grid.shape().rank(), 5, "gather_concat_rows grid must be [N,C,D,H,W]");
    let (n, c) = (grid.dims()[0], grid.dims()[1]);
    let vol: usize = grid.dims()[2..].iter().product();
    let g = grid.data();
    let m = index.len();
    assert!(
        m > 0 && prefix.len().is_multiple_of(m),
        "prefix length must be a multiple of the row count"
    );
    let k = prefix.len() / m;
    let w = k + c;
    let mut out = workspace::take_vec_scratch(m * w);
    for (row, &flat) in index.iter().enumerate() {
        let flat = flat as usize;
        let ni = flat / vol;
        let sp = flat % vol;
        debug_assert!(ni < n, "gather index out of batch range");
        let dst = &mut out[row * w..(row + 1) * w];
        dst[..k].copy_from_slice(&prefix[row * k..(row + 1) * k]);
        for (ci, d) in dst[k..].iter_mut().enumerate() {
            *d = g[(ni * c + ci) * vol + sp];
        }
    }
    Tensor::from_vec(out, &[m, w])
}

/// Blends groups of `group` consecutive rows of `x: [Q*group, C]` with fixed
/// weights (`weights.len() == Q*group`), producing `[Q, C]` — the trilinear
/// vertex interpolation of the paper's Eqn. 6.
pub fn blend_rows(x: &Tensor, weights: &[f32], group: usize) -> Tensor {
    assert_eq!(x.shape().rank(), 2);
    let (rows, c) = (x.dims()[0], x.dims()[1]);
    assert_eq!(rows % group, 0, "blend_rows rows not divisible by group");
    assert_eq!(weights.len(), rows, "blend_rows weight count mismatch");
    let q = rows / group;
    let xd = x.data();
    let mut out = workspace::take_vec_zeroed(q * c);
    for qi in 0..q {
        for v in 0..group {
            let w = weights[qi * group + v];
            if w == 0.0 {
                continue;
            }
            let src = &xd[(qi * group + v) * c..(qi * group + v + 1) * c];
            let dst = &mut out[qi * c..(qi + 1) * c];
            for (o, &s) in dst.iter_mut().zip(src) {
                *o += w * s;
            }
        }
    }
    Tensor::from_vec(out, &[q, c])
}

/// Adds bias vector `bias: [N]` to every row of `x: [M, N]`, in place.
pub fn add_bias_rows(x: &mut Tensor, bias: &[f32]) {
    assert_eq!(x.shape().rank(), 2, "add_bias_rows input must be rank 2");
    let n = x.dims()[1];
    assert_eq!(bias.len(), n, "bias length mismatch");
    for row in x.data_mut().chunks_mut(n) {
        for (o, &bb) in row.iter_mut().zip(bias) {
            *o += bb;
        }
    }
}

/// Adds bias `bias: [C]` over channel dim 1 of `x: [N, C, ...]`, in place.
pub fn add_bias_channels(x: &mut Tensor, bias: &[f32]) {
    assert!(x.shape().rank() >= 2, "add_bias_channels input must have a channel dim");
    let c = x.dims()[1];
    assert_eq!(bias.len(), c, "bias length mismatch");
    let inner: usize = x.dims()[2..].iter().product();
    for slab in x.data_mut().chunks_mut(c * inner) {
        for (ch, sub) in slab.chunks_mut(inner).enumerate() {
            let bb = bias[ch];
            for o in sub {
                *o += bb;
            }
        }
    }
}

/// Frozen per-channel affine `y[c] = x[c] * scale[c] + shift[c]` over channel
/// dim 1 of `x: [N, C, ...]`, in place (inference-mode batch norm).
pub fn channel_affine(x: &mut Tensor, scale: &[f32], shift: &[f32]) {
    assert!(x.shape().rank() >= 2, "channel_affine input must have a channel dim");
    let c = x.dims()[1];
    assert_eq!(scale.len(), c);
    assert_eq!(shift.len(), c);
    let inner: usize = x.dims()[2..].iter().product();
    for slab in x.data_mut().chunks_mut(c * inner) {
        for (ch, sub) in slab.chunks_mut(inner).enumerate() {
            for o in sub {
                *o = *o * scale[ch] + shift[ch];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_rows_picks_expected_vertices() {
        // grid [1, 2, 1, 2, 2]: channel-major planes of 4 spatial points.
        let grid =
            Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 10.0, 11.0, 12.0, 13.0], &[1, 2, 1, 2, 2]);
        let out = gather_rows(&grid, &[0, 3]);
        assert_eq!(out.dims(), &[2, 2]);
        assert_eq!(out.data(), &[0.0, 10.0, 3.0, 13.0]);
    }

    #[test]
    fn blend_rows_weighted_sum() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let out = blend_rows(&x, &[0.25, 0.75], 2);
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.data(), &[0.25 + 2.25, 0.5 + 3.0]);
    }

    #[test]
    fn blend_rows_skips_exact_zero_weights_only() {
        // The w == 0.0 skip must not change results for nonzero weights;
        // with a NaN row and zero weight, the NaN is masked (pinned behavior
        // the tape relies on for out-of-cell vertices).
        let x = Tensor::from_vec(vec![f32::NAN, f32::NAN, 5.0, 7.0], &[2, 2]);
        let out = blend_rows(&x, &[0.0, 1.0], 2);
        assert_eq!(out.data(), &[5.0, 7.0]);
    }

    #[test]
    fn bias_and_affine_in_place() {
        let mut x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        add_bias_rows(&mut x, &[10.0, 20.0]);
        assert_eq!(x.data(), &[11.0, 22.0, 13.0, 24.0]);

        let mut y = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        add_bias_channels(&mut y, &[1.0, -1.0]);
        assert_eq!(y.data(), &[2.0, 3.0, 2.0, 3.0]);

        let mut z = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        channel_affine(&mut z, &[2.0, 0.5], &[1.0, 0.0]);
        assert_eq!(z.data(), &[3.0, 5.0, 1.5, 2.0]);
    }
}
