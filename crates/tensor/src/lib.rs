//! # mfn-tensor
//!
//! Dense `f32` tensors and the rayon-parallel compute kernels that back the
//! MeshfreeFlowNet neural-network stack:
//!
//! - [`Tensor`]: contiguous row-major storage with element-wise ops,
//!   concat/split, and seeded random initialization;
//! - [`linalg`]: GEMM entry points (`A@B`, `Aᵀ@B`, `A@Bᵀ`) for the
//!   continuous decoding MLP, all lowering onto the blocked micro-kernel in
//!   [`gemm`](mod@gemm);
//! - [`conv`]: 3D convolution (forward + both backwards, direct and
//!   im2col+GEMM lowerings with a shape-based auto heuristic), max pooling
//!   and nearest-neighbor upsampling for the 3D U-Net encoder;
//! - [`rowops`]: the gather/blend/bias/affine row kernels shared verbatim by
//!   the autodiff tape and the no-grad inference engine (bit-identical paths);
//! - [`workspace`]: the buffer pool that lets kernels and tensor temporaries
//!   reuse memory across training steps.
//!
//! The `mfn-autodiff` crate wraps these kernels with a reverse-mode tape;
//! this crate itself is AD-agnostic.

pub mod bf16;
pub mod conv;
pub mod gemm;
pub mod linalg;
pub mod rowops;
pub mod shape;
pub mod simd;
pub mod tensor;
pub mod workspace;

pub use conv::{
    conv3d, conv3d_auto, conv3d_grad_input, conv3d_grad_input_direct, conv3d_grad_weight,
    conv3d_grad_weight_direct, conv3d_im2col, conv3d_implicit_gemm, conv3d_implicit_grad_input,
    conv3d_implicit_grad_weight, conv3d_path, maxpool3d, maxpool3d_backward, upsample_nearest3d,
    upsample_nearest3d_backward, Conv3dDims, Conv3dPath,
};
pub use gemm::{effective_threads, gemm, MatLayout, PAR_FLOP_THRESHOLD};
pub use linalg::{matmul, matmul_nt, matmul_tn, matvec};
pub use rowops::{
    add_bias_channels, add_bias_rows, blend_rows, channel_affine, gather_concat_rows, gather_rows,
};
pub use shape::Shape;
pub use simd::{
    bf16_compute_is_native, kernel_backend, set_backend_override, set_bf16_emulated_override,
    KernelBackend,
};
pub use tensor::Tensor;
