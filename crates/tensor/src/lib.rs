//! # mfn-tensor
//!
//! Dense `f32` tensors and the rayon-parallel compute kernels that back the
//! MeshfreeFlowNet neural-network stack:
//!
//! - [`Tensor`]: contiguous row-major storage with element-wise ops,
//!   concat/split, and seeded random initialization;
//! - [`linalg`]: GEMM kernels (`A@B`, `Aᵀ@B`, `A@Bᵀ`) for the continuous
//!   decoding MLP;
//! - [`conv`]: 3D convolution (forward + both backwards), max pooling and
//!   nearest-neighbor upsampling for the 3D U-Net encoder.
//!
//! The `mfn-autodiff` crate wraps these kernels with a reverse-mode tape;
//! this crate itself is AD-agnostic.

pub mod conv;
pub mod linalg;
pub mod shape;
pub mod tensor;

pub use conv::{
    conv3d, conv3d_grad_input, conv3d_grad_weight, conv3d_im2col, maxpool3d, maxpool3d_backward,
    upsample_nearest3d, upsample_nearest3d_backward, Conv3dDims,
};
pub use linalg::{matmul, matmul_nt, matmul_tn, matvec};
pub use shape::Shape;
pub use tensor::Tensor;
