//! Runtime-dispatched GEMM micro-kernels: explicit AVX-512 and AVX2+FMA
//! `std::arch` tiles with the portable SLP-vectorized kernel as fallback.
//!
//! The blocked GEMM driver (`crate::gemm`) and the implicit-GEMM conv3d
//! lowering (`crate::conv`) are tile-shape agnostic: they ask
//! [`active_kernel`] for a [`Kernel`] — a register-tile shape `(mr, nr)`
//! plus the function that computes one `mr×nr` tile — and build their
//! packing and write-back loops around it. Three tiers:
//!
//! | backend   | tile  | registers                                        |
//! |-----------|-------|--------------------------------------------------|
//! | AVX-512   | 8×48  | 24 zmm accumulators + 3 B vectors + 1 broadcast  |
//! | AVX2+FMA  | 6×16  | 12 ymm accumulators + 2 B vectors + 1 broadcast  |
//! | portable  | 6×16  | `[f32; 8]` arrays the SLP vectorizer folds       |
//!
//! The backend is detected once per process with
//! `is_x86_feature_detected!` and cached; `MFN_PORTABLE_KERNELS=1` (or
//! [`set_backend_override`]) forces a lower tier so CI's generic-codegen
//! leg and the bit-identity property tests can pin either arm.
//!
//! ## Bit-identity contract
//!
//! All three kernels produce **bit-identical** results: each output element
//! is a pure fused-multiply-add chain over the panel depth in `k` order
//! (`acc = fma(a_ik, b_kj, acc)`), and `mul_add` on the portable path is the
//! same exactly-rounded operation as `_mm256_fmadd_ps`/`_mm512_fmadd_ps`.
//! The tile shape only changes *which* elements share a register, never the
//! accumulation order of any single element, and the depth blocking (`KC`)
//! is shared by every tier. `gemm::tests` pins this property on
//! tile-unaligned shapes with adversarial inputs.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which micro-kernel tier is executing GEMM tiles. The derived order
/// follows declaration: `Avx512 < Avx2Fma < Portable`, i.e. a *smaller*
/// value is a *more capable* tier — a host can execute every tier `>=` its
/// detected one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelBackend {
    /// 8×48 f32 tile in zmm registers (`avx512f` detected at runtime).
    Avx512,
    /// 6×16 f32 tile in ymm registers (`avx2` + `fma` detected at runtime).
    Avx2Fma,
    /// 6×16 tile phrased as `[f32; 8]` ops for LLVM's SLP vectorizer; the
    /// only tier on non-x86 targets and under `MFN_PORTABLE_KERNELS=1`.
    Portable,
}

impl KernelBackend {
    /// Stable name for telemetry and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Avx512 => "avx512",
            KernelBackend::Avx2Fma => "avx2+fma",
            KernelBackend::Portable => "portable",
        }
    }
}

const UNRESOLVED: u8 = 0;
const B_AVX512: u8 = 1;
const B_AVX2: u8 = 2;
const B_PORTABLE: u8 = 3;

/// Cached dispatch decision; `UNRESOLVED` until first use or after an
/// override reset.
static BACKEND: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn detect() -> u8 {
    if std::env::var_os("MFN_PORTABLE_KERNELS").is_some_and(|v| v != "0") {
        return B_PORTABLE;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return B_AVX512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return B_AVX2;
        }
    }
    B_PORTABLE
}

fn resolve() -> u8 {
    let b = BACKEND.load(Ordering::Relaxed);
    if b != UNRESOLVED {
        return b;
    }
    let d = detect();
    BACKEND.store(d, Ordering::Relaxed);
    d
}

/// The active micro-kernel tier.
pub fn kernel_backend() -> KernelBackend {
    match resolve() {
        B_AVX512 => KernelBackend::Avx512,
        B_AVX2 => KernelBackend::Avx2Fma,
        _ => KernelBackend::Portable,
    }
}

/// Forces a specific tier (bench/test hook), or `None` to re-detect. A
/// request for a tier the CPU lacks falls back to detection, so overriding
/// with `Avx512` on an AVX2-only host stays sound. All tiers are
/// bit-identical, so flipping the override concurrently with running GEMMs
/// changes which instructions execute, never the results.
pub fn set_backend_override(backend: Option<KernelBackend>) {
    let v = match backend {
        None => UNRESOLVED,
        Some(b) => {
            let detected = detect();
            let wanted = match b {
                KernelBackend::Avx512 => B_AVX512,
                KernelBackend::Avx2Fma => B_AVX2,
                KernelBackend::Portable => B_PORTABLE,
            };
            // Lower tiers are always available; higher ones need the CPU.
            if wanted >= detected {
                wanted
            } else {
                detected
            }
        }
    };
    BACKEND.store(v, Ordering::Relaxed);
}

/// Largest `mr` any tier uses (packing buffers are sized per-kernel, but
/// stack tiles use the max).
pub const MAX_MR: usize = 12;
/// Largest `nr` any tier uses.
pub const MAX_NR: usize = 48;

/// Signature of a micro-kernel: accumulate `kb` rank-one updates of an
/// `mr×nr` tile from packed panels into `acc` (row-major, stride `nr`,
/// length `mr*nr`). `a_panel` is `mr`-row column-major (`a[p*mr + i]`),
/// `b_panel` is `nr`-column row-major (`b[p*nr + j]`); both zero-padded to
/// full tile width by the packers. `acc` is fully overwritten.
pub type MicroFn = fn(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]);

/// One dispatchable micro-kernel: register-tile shape plus tile function.
/// The blocked drivers size their panels and write-back masks from `mr`/`nr`.
#[derive(Clone, Copy)]
pub struct Kernel {
    /// Which tier this kernel belongs to.
    pub backend: KernelBackend,
    /// Tile rows.
    pub mr: usize,
    /// Tile columns.
    pub nr: usize,
    /// The tile function.
    pub micro: MicroFn,
}

static PORTABLE_KERNEL: Kernel =
    Kernel { backend: KernelBackend::Portable, mr: 6, nr: 16, micro: micro_portable_6x16 };

#[cfg(target_arch = "x86_64")]
static AVX2_KERNEL: Kernel =
    Kernel { backend: KernelBackend::Avx2Fma, mr: 6, nr: 16, micro: micro_avx2_6x16 };

#[cfg(target_arch = "x86_64")]
static AVX512_KERNEL: Kernel =
    Kernel { backend: KernelBackend::Avx512, mr: 8, nr: 48, micro: micro_avx512_8x48 };

#[cfg(target_arch = "x86_64")]
static AVX512_KERNEL_12X32: Kernel =
    Kernel { backend: KernelBackend::Avx512, mr: 12, nr: 32, micro: micro_avx512_12x32 };

/// The micro-kernel for the active backend (the AVX-512 tier's default
/// 8×48 tile; see [`active_kernel_for`] for the shape-aware choice).
pub fn active_kernel() -> &'static Kernel {
    match resolve() {
        #[cfg(target_arch = "x86_64")]
        B_AVX512 => &AVX512_KERNEL,
        #[cfg(target_arch = "x86_64")]
        B_AVX2 => &AVX2_KERNEL,
        _ => &PORTABLE_KERNEL,
    }
}

/// The micro-kernel for the active backend, specialized to an `m×n` output.
///
/// The AVX-512 tier carries two tile shapes — 8×48 (wide: few-row GEMMs
/// like the implicit-GEMM conv3d forward, where `m = cout`) and 12×32
/// (taller: square-ish decode GEMMs, where 48-wide panels would pad
/// `n` by up to 12.5%) — and picks whichever wastes fewer padded tile
/// FLOPs. All tiles produce bit-identical results (each output element is
/// a `k`-order FMA chain regardless of tile shape), so the choice is pure
/// throughput.
pub fn active_kernel_for(m: usize, n: usize) -> &'static Kernel {
    let kernel = active_kernel();
    #[cfg(target_arch = "x86_64")]
    if kernel.backend == KernelBackend::Avx512 {
        let padded = |k: &Kernel| {
            (m.div_ceil(k.mr).max(1) * k.mr).saturating_mul(n.div_ceil(k.nr).max(1) * k.nr)
        };
        if padded(&AVX512_KERNEL_12X32) < padded(&AVX512_KERNEL) {
            return &AVX512_KERNEL_12X32;
        }
    }
    let _ = (m, n);
    kernel
}

// ---- portable tier -------------------------------------------------------

/// SIMD lane count the portable kernel is phrased in: operations on
/// `[f32; 8]` in straight-line code reliably fuse into single 256-bit AVX2
/// ops (and degrade gracefully to two SSE ops on baseline x86-64).
const LANES: usize = 8;

/// Eight f32 lanes updated in lock-step. This is not `std::simd` (stable
/// toolchain) — it is a plain array whose fully-unrolled element ops LLVM's
/// SLP vectorizer folds into one vector instruction each.
#[derive(Clone, Copy)]
struct V8([f32; LANES]);

impl V8 {
    const ZERO: V8 = V8([0.0; LANES]);

    #[inline(always)]
    fn splat(x: f32) -> V8 {
        V8([x; LANES])
    }

    #[inline(always)]
    fn load(s: &[f32]) -> V8 {
        V8(s[..LANES].try_into().unwrap())
    }

    /// `self + a·b`, lowered to a single FMA where the target has one.
    /// Written as an indexed loop on purpose: this exact shape is what the
    /// SLP vectorizer recognizes (iterator chains here have regressed to
    /// scalar code), hence the lint allowance.
    #[allow(clippy::needless_range_loop)]
    #[inline(always)]
    fn fma(self, a: V8, b: V8) -> V8 {
        let mut o = self.0;
        for l in 0..LANES {
            o[l] = a.0[l].mul_add(b.0[l], o[l]);
        }
        V8(o)
    }
}

/// Portable 6×16 tile: 12 [`V8`] accumulators held across the depth loop,
/// `mul_add` per lane (the same exactly-rounded FMA the intrinsic tiers
/// use, on every codegen target — this is what keeps the generic-codegen
/// reftest leg bit-identical).
fn micro_portable_6x16(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
    const MR: usize = 6;
    const NR: usize = 16;
    const NV: usize = NR / LANES;
    debug_assert_eq!(a_panel.len(), MR * kb);
    debug_assert_eq!(b_panel.len(), NR * kb);
    debug_assert_eq!(acc.len(), MR * NR);
    let mut tile = [[V8::ZERO; NV]; MR];
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let mut b = [V8::ZERO; NV];
        for (v, bvec) in b.iter_mut().enumerate() {
            *bvec = V8::load(&bv[v * LANES..]);
        }
        for (row, &a_elem) in tile.iter_mut().zip(av) {
            let a = V8::splat(a_elem);
            for (cell, &bvec) in row.iter_mut().zip(&b) {
                *cell = cell.fma(a, bvec);
            }
        }
    }
    for (i, row) in tile.iter().enumerate() {
        for (v, cell) in row.iter().enumerate() {
            acc[i * NR + v * LANES..i * NR + (v + 1) * LANES].copy_from_slice(&cell.0);
        }
    }
}

// ---- AVX2+FMA tier -------------------------------------------------------

/// Safe shim: `AVX2_KERNEL` is only ever returned by [`active_kernel`] (or
/// installed by [`set_backend_override`]) after `is_x86_feature_detected!`
/// confirmed `avx2` and `fma`, so calling the `target_feature` fn is sound.
#[cfg(target_arch = "x86_64")]
fn micro_avx2_6x16(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
    debug_assert_eq!(a_panel.len(), 6 * kb);
    debug_assert_eq!(b_panel.len(), 16 * kb);
    debug_assert_eq!(acc.len(), 6 * 16);
    // SAFETY: dispatch guarantees avx2+fma are present (see doc above);
    // panel/acc lengths are asserted to match the tile's pointer walks.
    unsafe { micro_avx2_6x16_impl(kb, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr()) }
}

/// The 6×16 AVX2+FMA tile: 12 ymm accumulators + 2 packed-B vectors + 1
/// A broadcast = 15 of the 16 ymm registers, no spills. Each depth step is
/// 2 vector loads + 6 broadcasts feeding 12 `vfmadd231ps`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_avx2_6x16_impl(kb: usize, mut ap: *const f32, mut bp: *const f32, out: *mut f32) {
    use std::arch::x86_64::*;
    let mut c00 = _mm256_setzero_ps();
    let mut c01 = _mm256_setzero_ps();
    let mut c10 = _mm256_setzero_ps();
    let mut c11 = _mm256_setzero_ps();
    let mut c20 = _mm256_setzero_ps();
    let mut c21 = _mm256_setzero_ps();
    let mut c30 = _mm256_setzero_ps();
    let mut c31 = _mm256_setzero_ps();
    let mut c40 = _mm256_setzero_ps();
    let mut c41 = _mm256_setzero_ps();
    let mut c50 = _mm256_setzero_ps();
    let mut c51 = _mm256_setzero_ps();
    for _ in 0..kb {
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        let a = _mm256_broadcast_ss(&*ap);
        c00 = _mm256_fmadd_ps(a, b0, c00);
        c01 = _mm256_fmadd_ps(a, b1, c01);
        let a = _mm256_broadcast_ss(&*ap.add(1));
        c10 = _mm256_fmadd_ps(a, b0, c10);
        c11 = _mm256_fmadd_ps(a, b1, c11);
        let a = _mm256_broadcast_ss(&*ap.add(2));
        c20 = _mm256_fmadd_ps(a, b0, c20);
        c21 = _mm256_fmadd_ps(a, b1, c21);
        let a = _mm256_broadcast_ss(&*ap.add(3));
        c30 = _mm256_fmadd_ps(a, b0, c30);
        c31 = _mm256_fmadd_ps(a, b1, c31);
        let a = _mm256_broadcast_ss(&*ap.add(4));
        c40 = _mm256_fmadd_ps(a, b0, c40);
        c41 = _mm256_fmadd_ps(a, b1, c41);
        let a = _mm256_broadcast_ss(&*ap.add(5));
        c50 = _mm256_fmadd_ps(a, b0, c50);
        c51 = _mm256_fmadd_ps(a, b1, c51);
        ap = ap.add(6);
        bp = bp.add(16);
    }
    _mm256_storeu_ps(out, c00);
    _mm256_storeu_ps(out.add(8), c01);
    _mm256_storeu_ps(out.add(16), c10);
    _mm256_storeu_ps(out.add(24), c11);
    _mm256_storeu_ps(out.add(32), c20);
    _mm256_storeu_ps(out.add(40), c21);
    _mm256_storeu_ps(out.add(48), c30);
    _mm256_storeu_ps(out.add(56), c31);
    _mm256_storeu_ps(out.add(64), c40);
    _mm256_storeu_ps(out.add(72), c41);
    _mm256_storeu_ps(out.add(80), c50);
    _mm256_storeu_ps(out.add(88), c51);
}

// ---- AVX-512 tier --------------------------------------------------------

/// Safe shim; see [`micro_avx2_6x16`] for the dispatch-soundness argument
/// (here the detected feature is `avx512f`).
#[cfg(target_arch = "x86_64")]
fn micro_avx512_8x48(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
    debug_assert_eq!(a_panel.len(), 8 * kb);
    debug_assert_eq!(b_panel.len(), 48 * kb);
    debug_assert_eq!(acc.len(), 8 * 48);
    // SAFETY: dispatch guarantees avx512f is present; lengths asserted.
    unsafe { micro_avx512_8x48_impl(kb, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr()) }
}

/// The 8×48 AVX-512 tile: 24 zmm accumulators + 3 packed-B vectors + 1
/// A broadcast = 28 of the 32 zmm registers. Each depth step is 3 vector
/// loads + 8 broadcasts feeding 24 `vfmadd231ps` — 768 FLOPs per 11
/// load-port µops, comfortably FMA-bound on two 512-bit FMA pipes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_avx512_8x48_impl(kb: usize, mut ap: *const f32, mut bp: *const f32, out: *mut f32) {
    use std::arch::x86_64::*;
    let mut c00 = _mm512_setzero_ps();
    let mut c01 = _mm512_setzero_ps();
    let mut c02 = _mm512_setzero_ps();
    let mut c10 = _mm512_setzero_ps();
    let mut c11 = _mm512_setzero_ps();
    let mut c12 = _mm512_setzero_ps();
    let mut c20 = _mm512_setzero_ps();
    let mut c21 = _mm512_setzero_ps();
    let mut c22 = _mm512_setzero_ps();
    let mut c30 = _mm512_setzero_ps();
    let mut c31 = _mm512_setzero_ps();
    let mut c32 = _mm512_setzero_ps();
    let mut c40 = _mm512_setzero_ps();
    let mut c41 = _mm512_setzero_ps();
    let mut c42 = _mm512_setzero_ps();
    let mut c50 = _mm512_setzero_ps();
    let mut c51 = _mm512_setzero_ps();
    let mut c52 = _mm512_setzero_ps();
    let mut c60 = _mm512_setzero_ps();
    let mut c61 = _mm512_setzero_ps();
    let mut c62 = _mm512_setzero_ps();
    let mut c70 = _mm512_setzero_ps();
    let mut c71 = _mm512_setzero_ps();
    let mut c72 = _mm512_setzero_ps();
    for _ in 0..kb {
        let b0 = _mm512_loadu_ps(bp);
        let b1 = _mm512_loadu_ps(bp.add(16));
        let b2 = _mm512_loadu_ps(bp.add(32));
        let a = _mm512_set1_ps(*ap);
        c00 = _mm512_fmadd_ps(a, b0, c00);
        c01 = _mm512_fmadd_ps(a, b1, c01);
        c02 = _mm512_fmadd_ps(a, b2, c02);
        let a = _mm512_set1_ps(*ap.add(1));
        c10 = _mm512_fmadd_ps(a, b0, c10);
        c11 = _mm512_fmadd_ps(a, b1, c11);
        c12 = _mm512_fmadd_ps(a, b2, c12);
        let a = _mm512_set1_ps(*ap.add(2));
        c20 = _mm512_fmadd_ps(a, b0, c20);
        c21 = _mm512_fmadd_ps(a, b1, c21);
        c22 = _mm512_fmadd_ps(a, b2, c22);
        let a = _mm512_set1_ps(*ap.add(3));
        c30 = _mm512_fmadd_ps(a, b0, c30);
        c31 = _mm512_fmadd_ps(a, b1, c31);
        c32 = _mm512_fmadd_ps(a, b2, c32);
        let a = _mm512_set1_ps(*ap.add(4));
        c40 = _mm512_fmadd_ps(a, b0, c40);
        c41 = _mm512_fmadd_ps(a, b1, c41);
        c42 = _mm512_fmadd_ps(a, b2, c42);
        let a = _mm512_set1_ps(*ap.add(5));
        c50 = _mm512_fmadd_ps(a, b0, c50);
        c51 = _mm512_fmadd_ps(a, b1, c51);
        c52 = _mm512_fmadd_ps(a, b2, c52);
        let a = _mm512_set1_ps(*ap.add(6));
        c60 = _mm512_fmadd_ps(a, b0, c60);
        c61 = _mm512_fmadd_ps(a, b1, c61);
        c62 = _mm512_fmadd_ps(a, b2, c62);
        let a = _mm512_set1_ps(*ap.add(7));
        c70 = _mm512_fmadd_ps(a, b0, c70);
        c71 = _mm512_fmadd_ps(a, b1, c71);
        c72 = _mm512_fmadd_ps(a, b2, c72);
        ap = ap.add(8);
        bp = bp.add(48);
    }
    _mm512_storeu_ps(out, c00);
    _mm512_storeu_ps(out.add(16), c01);
    _mm512_storeu_ps(out.add(32), c02);
    _mm512_storeu_ps(out.add(48), c10);
    _mm512_storeu_ps(out.add(64), c11);
    _mm512_storeu_ps(out.add(80), c12);
    _mm512_storeu_ps(out.add(96), c20);
    _mm512_storeu_ps(out.add(112), c21);
    _mm512_storeu_ps(out.add(128), c22);
    _mm512_storeu_ps(out.add(144), c30);
    _mm512_storeu_ps(out.add(160), c31);
    _mm512_storeu_ps(out.add(176), c32);
    _mm512_storeu_ps(out.add(192), c40);
    _mm512_storeu_ps(out.add(208), c41);
    _mm512_storeu_ps(out.add(224), c42);
    _mm512_storeu_ps(out.add(240), c50);
    _mm512_storeu_ps(out.add(256), c51);
    _mm512_storeu_ps(out.add(272), c52);
    _mm512_storeu_ps(out.add(288), c60);
    _mm512_storeu_ps(out.add(304), c61);
    _mm512_storeu_ps(out.add(320), c62);
    _mm512_storeu_ps(out.add(336), c70);
    _mm512_storeu_ps(out.add(352), c71);
    _mm512_storeu_ps(out.add(368), c72);
}

/// Safe shim; see [`micro_avx2_6x16`] for the dispatch-soundness argument
/// (here the detected feature is `avx512f`).
#[cfg(target_arch = "x86_64")]
fn micro_avx512_12x32(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
    debug_assert_eq!(a_panel.len(), 12 * kb);
    debug_assert_eq!(b_panel.len(), 32 * kb);
    debug_assert_eq!(acc.len(), 12 * 32);
    // SAFETY: dispatch guarantees avx512f is present; lengths asserted.
    unsafe { micro_avx512_12x32_impl(kb, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr()) }
}

/// The 12×32 AVX-512 tile: 24 zmm accumulators + 2 packed-B vectors + 1
/// A broadcast = 27 of the 32 zmm registers. Each depth step is 2 vector
/// loads + 12 broadcasts feeding 24 `vfmadd231ps` — the same FMA count as
/// the 8×48 tile with fewer B-panel bytes streamed per step. The row loop
/// is fully unrolled by LLVM (constant trip count inside a
/// `target_feature` fn), leaving no spills.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_avx512_12x32_impl(
    kb: usize,
    mut ap: *const f32,
    mut bp: *const f32,
    out: *mut f32,
) {
    use std::arch::x86_64::*;
    let mut c = [[_mm512_setzero_ps(); 2]; 12];
    for _ in 0..kb {
        let b0 = _mm512_loadu_ps(bp);
        let b1 = _mm512_loadu_ps(bp.add(16));
        for (i, row) in c.iter_mut().enumerate() {
            let a = _mm512_set1_ps(*ap.add(i));
            row[0] = _mm512_fmadd_ps(a, b0, row[0]);
            row[1] = _mm512_fmadd_ps(a, b1, row[1]);
        }
        ap = ap.add(12);
        bp = bp.add(32);
    }
    for (i, row) in c.iter().enumerate() {
        _mm512_storeu_ps(out.add(i * 32), row[0]);
        _mm512_storeu_ps(out.add(i * 32 + 16), row[1]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(KernelBackend::Avx512.name(), "avx512");
        assert_eq!(KernelBackend::Avx2Fma.name(), "avx2+fma");
        assert_eq!(KernelBackend::Portable.name(), "portable");
    }

    #[test]
    fn override_round_trips_and_never_exceeds_detection() {
        let detected = {
            set_backend_override(None);
            kernel_backend()
        };
        set_backend_override(Some(KernelBackend::Portable));
        assert_eq!(kernel_backend(), KernelBackend::Portable);
        assert_eq!(active_kernel().backend, KernelBackend::Portable);
        // Requesting the detected tier (or anything below it) honors the
        // request; requesting above it falls back to detection.
        set_backend_override(Some(detected));
        assert_eq!(kernel_backend(), detected);
        set_backend_override(Some(KernelBackend::Avx512));
        let got = kernel_backend();
        assert!(got == detected || got == KernelBackend::Avx512);
        set_backend_override(None);
        assert_eq!(kernel_backend(), detected);
    }

    #[test]
    fn kernel_shapes_fit_declared_maxima() {
        for k in [
            &PORTABLE_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX2_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL_12X32,
        ] {
            assert!(k.mr <= MAX_MR && k.nr <= MAX_NR);
            assert_eq!(k.nr % 8, 0, "write-back assumes whole vectors");
        }
    }

    /// The three tiers must agree bit-for-bit on the same packed panels —
    /// the dispatch seam is invisible in results. (Tiles differ in shape, so
    /// compare each against a scalar fma chain, elementwise.)
    #[test]
    fn every_tier_matches_scalar_fma_chain_bitwise() {
        let kernels: Vec<&Kernel> = vec![
            &PORTABLE_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX2_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL_12X32,
        ];
        for kernel in kernels {
            if kernel.backend != KernelBackend::Portable && kernel_backend() != kernel.backend {
                // Host can't execute this tier; detection-ordering makes
                // this only skip tiers above the host's capability.
                continue;
            }
            for kb in [1usize, 2, 7, 64] {
                let mut s = 0x9E3779B9u32;
                let mut next = move || {
                    s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                    ((s >> 16) as i32 % 31 - 15) as f32 * 0.125
                };
                let a: Vec<f32> = (0..kernel.mr * kb).map(|_| next()).collect();
                let b: Vec<f32> = (0..kernel.nr * kb).map(|_| next()).collect();
                let mut acc = vec![f32::NAN; kernel.mr * kernel.nr];
                (kernel.micro)(kb, &a, &b, &mut acc);
                for i in 0..kernel.mr {
                    for j in 0..kernel.nr {
                        let mut want = 0.0f32;
                        for p in 0..kb {
                            want = a[p * kernel.mr + i].mul_add(b[p * kernel.nr + j], want);
                        }
                        assert_eq!(
                            acc[i * kernel.nr + j].to_bits(),
                            want.to_bits(),
                            "{} tile ({i},{j}) kb={kb}",
                            kernel.backend.name()
                        );
                    }
                }
            }
        }
    }
}
