//! Runtime-dispatched GEMM micro-kernels: explicit AVX-512 and AVX2+FMA
//! `std::arch` tiles with the portable SLP-vectorized kernel as fallback.
//!
//! The blocked GEMM driver (`crate::gemm`) and the implicit-GEMM conv3d
//! lowering (`crate::conv`) are tile-shape agnostic: they ask
//! [`active_kernel`] for a [`Kernel`] — a register-tile shape `(mr, nr)`
//! plus the function that computes one `mr×nr` tile — and build their
//! packing and write-back loops around it. Three tiers:
//!
//! | backend   | tile  | registers                                        |
//! |-----------|-------|--------------------------------------------------|
//! | AVX-512   | 8×48  | 24 zmm accumulators + 3 B vectors + 1 broadcast  |
//! | AVX2+FMA  | 6×16  | 12 ymm accumulators + 2 B vectors + 1 broadcast  |
//! | portable  | 6×16  | `[f32; 8]` arrays the SLP vectorizer folds       |
//!
//! The backend is detected once per process with
//! `is_x86_feature_detected!` and cached; `MFN_PORTABLE_KERNELS=1` (or
//! [`set_backend_override`]) forces a lower tier so CI's generic-codegen
//! leg and the bit-identity property tests can pin either arm.
//!
//! A fourth family of kernels computes bf16×bf16 tiles with f32
//! accumulation ([`Bf16Kernel`], dispatched by [`bf16_kernel_for`]): native
//! on `avx512bf16` hosts, or a bit-exact scalar emulation everywhere else
//! (and under `MFN_EMULATED_BF16=1`). The native route itself has two
//! bit-identical realizations — the `vdpbf16ps` instruction, and a
//! widen-to-f32 + FMA transcription under MXCSR FTZ/DAZ — because on
//! several server parts `vdpbf16ps` is microcoded at a fraction of FMA
//! throughput; a one-time calibration picks the faster one per process
//! (pinnable via `MFN_BF16_NATIVE=dp|fma`).
//! The bf16 route hangs off the same cached backend decision as the f32
//! tiers, so a single override pins every kernel in the process.
//!
//! ## Bit-identity contract
//!
//! All three kernels produce **bit-identical** results: each output element
//! is a pure fused-multiply-add chain over the panel depth in `k` order
//! (`acc = fma(a_ik, b_kj, acc)`), and `mul_add` on the portable path is the
//! same exactly-rounded operation as `_mm256_fmadd_ps`/`_mm512_fmadd_ps`.
//! The tile shape only changes *which* elements share a register, never the
//! accumulation order of any single element, and the depth blocking (`KC`)
//! is shared by every tier. `gemm::tests` pins this property on
//! tile-unaligned shapes with adversarial inputs.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which micro-kernel tier is executing GEMM tiles. The derived order
/// follows declaration: `Avx512 < Avx2Fma < Portable`, i.e. a *smaller*
/// value is a *more capable* tier — a host can execute every tier `>=` its
/// detected one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KernelBackend {
    /// 8×48 f32 tile in zmm registers (`avx512f` detected at runtime).
    Avx512,
    /// 6×16 f32 tile in ymm registers (`avx2` + `fma` detected at runtime).
    Avx2Fma,
    /// 6×16 tile phrased as `[f32; 8]` ops for LLVM's SLP vectorizer; the
    /// only tier on non-x86 targets and under `MFN_PORTABLE_KERNELS=1`.
    Portable,
}

impl KernelBackend {
    /// Stable name for telemetry and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Avx512 => "avx512",
            KernelBackend::Avx2Fma => "avx2+fma",
            KernelBackend::Portable => "portable",
        }
    }
}

const UNRESOLVED: u8 = 0;
const B_AVX512: u8 = 1;
const B_AVX2: u8 = 2;
const B_PORTABLE: u8 = 3;

/// Cached dispatch decision; `UNRESOLVED` until first use or after an
/// override reset.
static BACKEND: AtomicU8 = AtomicU8::new(UNRESOLVED);

fn detect() -> u8 {
    if std::env::var_os("MFN_PORTABLE_KERNELS").is_some_and(|v| v != "0") {
        return B_PORTABLE;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return B_AVX512;
        }
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return B_AVX2;
        }
    }
    B_PORTABLE
}

fn resolve() -> u8 {
    let b = BACKEND.load(Ordering::Relaxed);
    if b != UNRESOLVED {
        return b;
    }
    let d = detect();
    BACKEND.store(d, Ordering::Relaxed);
    d
}

/// The active micro-kernel tier.
pub fn kernel_backend() -> KernelBackend {
    match resolve() {
        B_AVX512 => KernelBackend::Avx512,
        B_AVX2 => KernelBackend::Avx2Fma,
        _ => KernelBackend::Portable,
    }
}

/// Forces a specific tier (bench/test hook), or `None` to re-detect. A
/// request for a tier the CPU lacks falls back to detection, so overriding
/// with `Avx512` on an AVX2-only host stays sound. All tiers are
/// bit-identical, so flipping the override concurrently with running GEMMs
/// changes which instructions execute, never the results.
pub fn set_backend_override(backend: Option<KernelBackend>) {
    let v = match backend {
        None => UNRESOLVED,
        Some(b) => {
            let detected = detect();
            let wanted = match b {
                KernelBackend::Avx512 => B_AVX512,
                KernelBackend::Avx2Fma => B_AVX2,
                KernelBackend::Portable => B_PORTABLE,
            };
            // Lower tiers are always available; higher ones need the CPU.
            if wanted >= detected {
                wanted
            } else {
                detected
            }
        }
    };
    BACKEND.store(v, Ordering::Relaxed);
}

// ---- bf16 compute route --------------------------------------------------

const BF16_EMULATED: u8 = 1;
const BF16_NATIVE: u8 = 2;

/// Cached bf16 route decision; `UNRESOLVED` until first use or after an
/// override reset. This is *subordinate* to [`BACKEND`]: the native route
/// only ever engages when the f32 decision is `Avx512`, so
/// `MFN_PORTABLE_KERNELS=1` (or a `Portable` override) pins the bf16 tiles
/// to the emulated arm along with everything else.
static BF16_ROUTE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Pure hardware capability check for the native `vdpbf16ps` kernels.
fn bf16_hw() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512bf16") && is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn resolve_bf16() -> u8 {
    let r = BF16_ROUTE.load(Ordering::Relaxed);
    if r != UNRESOLVED {
        return r;
    }
    let d = if std::env::var_os("MFN_EMULATED_BF16").is_some_and(|v| v != "0") || !bf16_hw() {
        BF16_EMULATED
    } else {
        BF16_NATIVE
    };
    BF16_ROUTE.store(d, Ordering::Relaxed);
    d
}

/// Whether bf16×bf16 tile math executes via the native vector route (as
/// opposed to the bit-exact scalar emulation). False whenever the f32
/// dispatch is below `Avx512` — one cached decision governs every kernel —
/// and under `MFN_EMULATED_BF16=1` or [`set_bf16_emulated_override`].
pub fn bf16_compute_is_native() -> bool {
    kernel_backend() == KernelBackend::Avx512 && resolve_bf16() == BF16_NATIVE
}

/// The native route's `vdpbf16ps` realization.
#[cfg(target_arch = "x86_64")]
pub(crate) const VARIANT_DP: u8 = 1;
/// The native route's widen-FMA realization (MXCSR FTZ/DAZ).
#[cfg(target_arch = "x86_64")]
pub(crate) const VARIANT_FMA: u8 = 2;

/// Cached choice between the two bit-identical native realizations.
#[cfg(target_arch = "x86_64")]
static BF16_NATIVE_VARIANT: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Picks the faster native realization for this host, once per process.
///
/// `vdpbf16ps` retires two depth steps per instruction, so where it issues
/// at FMA rate it doubles GEMM throughput — but several server parts
/// microcode it at a small fraction of FMA rate, where the widen-FMA
/// transcription (same bit-exact chain, ordinary FMA ports) wins instead.
/// That is a *speed* property only measurable at runtime, so this races the
/// `vdpbf16ps` 8×48 tile against its f32-FMA transcription over a synthetic
/// panel and keeps the faster; both produce identical bits, so a noisy
/// verdict can never change results.
/// `MFN_BF16_NATIVE=dp|fma` pins the choice for benchmarks and CI legs.
#[cfg(target_arch = "x86_64")]
fn resolve_native_variant() -> u8 {
    let v = BF16_NATIVE_VARIANT.load(Ordering::Relaxed);
    if v != UNRESOLVED {
        return v;
    }
    let d = match std::env::var("MFN_BF16_NATIVE").as_deref() {
        Ok("dp") => VARIANT_DP,
        Ok("fma") => VARIANT_FMA,
        _ => calibrate_native_variant(),
    };
    BF16_NATIVE_VARIANT.store(d, Ordering::Relaxed);
    d
}

/// Times the `vdpbf16ps` 8×48 tile against the f32 FMA tile it would be
/// transcribed to (same flop count: one dp instruction retires two FMA
/// steps) on a KC-deep synthetic panel, and returns the faster variant.
/// Costs a few microseconds, once per process.
#[cfg(target_arch = "x86_64")]
fn calibrate_native_variant() -> u8 {
    let kb2 = 128;
    let a = vec![0x3F80_3F80u32; 8 * kb2];
    let b = vec![0x3F80_3F80u32; 48 * kb2];
    let aw = vec![1.0f32; 8 * 2 * kb2];
    let bw = vec![1.0f32; 48 * 2 * kb2];
    let mut acc = [0.0f32; 8 * 48];
    let mut dp_call = || micro_bf16_avx512_8x48(kb2, &a, &b, &mut acc);
    let mut best = [f64::MAX; 2];
    dp_call(); // warm icache + page in panels
    for _ in 0..16 {
        let t = std::time::Instant::now();
        dp_call();
        best[0] = best[0].min(t.elapsed().as_nanos() as f64);
    }
    let mut fma_call = || run_f32_micro_ftz_daz(&AVX512_KERNEL, 2 * kb2, &aw, &bw, &mut acc);
    fma_call();
    for _ in 0..16 {
        let t = std::time::Instant::now();
        fma_call();
        best[1] = best[1].min(t.elapsed().as_nanos() as f64);
    }
    std::hint::black_box(&mut acc);
    if best[0] <= best[1] {
        VARIANT_DP
    } else {
        VARIANT_FMA
    }
}

/// True when the native bf16-compute route should run as the widen-FMA
/// transcription (pre-widened hi-then-lo panels through the f32 tile under
/// MXCSR FTZ/DAZ) rather than `vdpbf16ps` pair tiles. Callers gate on the
/// native route being active first; both realizations are bit-identical on
/// finite inputs.
pub(crate) fn bf16_native_variant_is_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        resolve_native_variant() == VARIANT_FMA
    }
    #[cfg(not(target_arch = "x86_64"))]
    false
}

/// Pins the native realization (`VARIANT_DP` / `VARIANT_FMA`), or
/// re-calibrates on `None`. Test hook — like the emulated override, it can
/// change which instructions run, never finite results.
#[cfg(all(target_arch = "x86_64", test))]
pub(crate) fn set_bf16_native_variant(variant: Option<u8>) {
    BF16_NATIVE_VARIANT.store(variant.unwrap_or(UNRESOLVED), Ordering::Relaxed);
}

/// Forces the emulated `vdpbf16ps` route (`Some(true)`), requests the
/// native route where the CPU has it (`Some(false)`), or re-detects
/// (`None`). Test/bench hook; both routes are bit-identical on finite
/// inputs, so flipping it concurrently with running GEMMs changes which
/// instructions execute, never finite results.
pub fn set_bf16_emulated_override(emulated: Option<bool>) {
    let v = match emulated {
        None => UNRESOLVED,
        Some(true) => BF16_EMULATED,
        Some(false) => {
            if bf16_hw() {
                BF16_NATIVE
            } else {
                BF16_EMULATED
            }
        }
    };
    BF16_ROUTE.store(v, Ordering::Relaxed);
}

/// Largest `mr` any tier uses (packing buffers are sized per-kernel, but
/// stack tiles use the max).
pub const MAX_MR: usize = 12;
/// Largest `nr` any tier uses.
pub const MAX_NR: usize = 48;

/// Signature of a micro-kernel: accumulate `kb` rank-one updates of an
/// `mr×nr` tile from packed panels into `acc` (row-major, stride `nr`,
/// length `mr*nr`). `a_panel` is `mr`-row column-major (`a[p*mr + i]`),
/// `b_panel` is `nr`-column row-major (`b[p*nr + j]`); both zero-padded to
/// full tile width by the packers. `acc` is fully overwritten.
pub type MicroFn = fn(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]);

/// One dispatchable micro-kernel: register-tile shape plus tile function.
/// The blocked drivers size their panels and write-back masks from `mr`/`nr`.
#[derive(Clone, Copy)]
pub struct Kernel {
    /// Which tier this kernel belongs to.
    pub backend: KernelBackend,
    /// Tile rows.
    pub mr: usize,
    /// Tile columns.
    pub nr: usize,
    /// The tile function.
    pub micro: MicroFn,
}

static PORTABLE_KERNEL: Kernel =
    Kernel { backend: KernelBackend::Portable, mr: 6, nr: 16, micro: micro_portable_6x16 };

#[cfg(target_arch = "x86_64")]
static AVX2_KERNEL: Kernel =
    Kernel { backend: KernelBackend::Avx2Fma, mr: 6, nr: 16, micro: micro_avx2_6x16 };

#[cfg(target_arch = "x86_64")]
static AVX512_KERNEL: Kernel =
    Kernel { backend: KernelBackend::Avx512, mr: 8, nr: 48, micro: micro_avx512_8x48 };

#[cfg(target_arch = "x86_64")]
static AVX512_KERNEL_12X32: Kernel =
    Kernel { backend: KernelBackend::Avx512, mr: 12, nr: 32, micro: micro_avx512_12x32 };

/// The micro-kernel for the active backend (the AVX-512 tier's default
/// 8×48 tile; see [`active_kernel_for`] for the shape-aware choice).
pub fn active_kernel() -> &'static Kernel {
    match resolve() {
        #[cfg(target_arch = "x86_64")]
        B_AVX512 => &AVX512_KERNEL,
        #[cfg(target_arch = "x86_64")]
        B_AVX2 => &AVX2_KERNEL,
        _ => &PORTABLE_KERNEL,
    }
}

/// The micro-kernel for the active backend, specialized to an `m×n` output.
///
/// The AVX-512 tier carries two tile shapes — 8×48 (wide: few-row GEMMs
/// like the implicit-GEMM conv3d forward, where `m = cout`) and 12×32
/// (taller: square-ish decode GEMMs, where 48-wide panels would pad
/// `n` by up to 12.5%) — and picks whichever wastes fewer padded tile
/// FLOPs. All tiles produce bit-identical results (each output element is
/// a `k`-order FMA chain regardless of tile shape), so the choice is pure
/// throughput.
pub fn active_kernel_for(m: usize, n: usize) -> &'static Kernel {
    let kernel = active_kernel();
    #[cfg(target_arch = "x86_64")]
    if kernel.backend == KernelBackend::Avx512 {
        let padded = |k: &Kernel| {
            (m.div_ceil(k.mr).max(1) * k.mr).saturating_mul(n.div_ceil(k.nr).max(1) * k.nr)
        };
        if padded(&AVX512_KERNEL_12X32) < padded(&AVX512_KERNEL) {
            return &AVX512_KERNEL_12X32;
        }
    }
    let _ = (m, n);
    kernel
}

// ---- portable tier -------------------------------------------------------

/// SIMD lane count the portable kernel is phrased in: operations on
/// `[f32; 8]` in straight-line code reliably fuse into single 256-bit AVX2
/// ops (and degrade gracefully to two SSE ops on baseline x86-64).
const LANES: usize = 8;

/// Eight f32 lanes updated in lock-step. This is not `std::simd` (stable
/// toolchain) — it is a plain array whose fully-unrolled element ops LLVM's
/// SLP vectorizer folds into one vector instruction each.
#[derive(Clone, Copy)]
struct V8([f32; LANES]);

impl V8 {
    const ZERO: V8 = V8([0.0; LANES]);

    #[inline(always)]
    fn splat(x: f32) -> V8 {
        V8([x; LANES])
    }

    #[inline(always)]
    fn load(s: &[f32]) -> V8 {
        V8(s[..LANES].try_into().unwrap())
    }

    /// `self + a·b`, lowered to a single FMA where the target has one.
    /// Written as an indexed loop on purpose: this exact shape is what the
    /// SLP vectorizer recognizes (iterator chains here have regressed to
    /// scalar code), hence the lint allowance.
    #[allow(clippy::needless_range_loop)]
    #[inline(always)]
    fn fma(self, a: V8, b: V8) -> V8 {
        let mut o = self.0;
        for l in 0..LANES {
            o[l] = a.0[l].mul_add(b.0[l], o[l]);
        }
        V8(o)
    }
}

/// Portable 6×16 tile: 12 [`V8`] accumulators held across the depth loop,
/// `mul_add` per lane (the same exactly-rounded FMA the intrinsic tiers
/// use, on every codegen target — this is what keeps the generic-codegen
/// reftest leg bit-identical).
fn micro_portable_6x16(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
    const MR: usize = 6;
    const NR: usize = 16;
    const NV: usize = NR / LANES;
    debug_assert_eq!(a_panel.len(), MR * kb);
    debug_assert_eq!(b_panel.len(), NR * kb);
    debug_assert_eq!(acc.len(), MR * NR);
    let mut tile = [[V8::ZERO; NV]; MR];
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        let mut b = [V8::ZERO; NV];
        for (v, bvec) in b.iter_mut().enumerate() {
            *bvec = V8::load(&bv[v * LANES..]);
        }
        for (row, &a_elem) in tile.iter_mut().zip(av) {
            let a = V8::splat(a_elem);
            for (cell, &bvec) in row.iter_mut().zip(&b) {
                *cell = cell.fma(a, bvec);
            }
        }
    }
    for (i, row) in tile.iter().enumerate() {
        for (v, cell) in row.iter().enumerate() {
            acc[i * NR + v * LANES..i * NR + (v + 1) * LANES].copy_from_slice(&cell.0);
        }
    }
}

// ---- AVX2+FMA tier -------------------------------------------------------

/// Safe shim: `AVX2_KERNEL` is only ever returned by [`active_kernel`] (or
/// installed by [`set_backend_override`]) after `is_x86_feature_detected!`
/// confirmed `avx2` and `fma`, so calling the `target_feature` fn is sound.
#[cfg(target_arch = "x86_64")]
fn micro_avx2_6x16(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
    debug_assert_eq!(a_panel.len(), 6 * kb);
    debug_assert_eq!(b_panel.len(), 16 * kb);
    debug_assert_eq!(acc.len(), 6 * 16);
    // SAFETY: dispatch guarantees avx2+fma are present (see doc above);
    // panel/acc lengths are asserted to match the tile's pointer walks.
    unsafe { micro_avx2_6x16_impl(kb, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr()) }
}

/// The 6×16 AVX2+FMA tile: 12 ymm accumulators + 2 packed-B vectors + 1
/// A broadcast = 15 of the 16 ymm registers, no spills. Each depth step is
/// 2 vector loads + 6 broadcasts feeding 12 `vfmadd231ps`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_avx2_6x16_impl(kb: usize, mut ap: *const f32, mut bp: *const f32, out: *mut f32) {
    use std::arch::x86_64::*;
    let mut c00 = _mm256_setzero_ps();
    let mut c01 = _mm256_setzero_ps();
    let mut c10 = _mm256_setzero_ps();
    let mut c11 = _mm256_setzero_ps();
    let mut c20 = _mm256_setzero_ps();
    let mut c21 = _mm256_setzero_ps();
    let mut c30 = _mm256_setzero_ps();
    let mut c31 = _mm256_setzero_ps();
    let mut c40 = _mm256_setzero_ps();
    let mut c41 = _mm256_setzero_ps();
    let mut c50 = _mm256_setzero_ps();
    let mut c51 = _mm256_setzero_ps();
    for _ in 0..kb {
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        let a = _mm256_broadcast_ss(&*ap);
        c00 = _mm256_fmadd_ps(a, b0, c00);
        c01 = _mm256_fmadd_ps(a, b1, c01);
        let a = _mm256_broadcast_ss(&*ap.add(1));
        c10 = _mm256_fmadd_ps(a, b0, c10);
        c11 = _mm256_fmadd_ps(a, b1, c11);
        let a = _mm256_broadcast_ss(&*ap.add(2));
        c20 = _mm256_fmadd_ps(a, b0, c20);
        c21 = _mm256_fmadd_ps(a, b1, c21);
        let a = _mm256_broadcast_ss(&*ap.add(3));
        c30 = _mm256_fmadd_ps(a, b0, c30);
        c31 = _mm256_fmadd_ps(a, b1, c31);
        let a = _mm256_broadcast_ss(&*ap.add(4));
        c40 = _mm256_fmadd_ps(a, b0, c40);
        c41 = _mm256_fmadd_ps(a, b1, c41);
        let a = _mm256_broadcast_ss(&*ap.add(5));
        c50 = _mm256_fmadd_ps(a, b0, c50);
        c51 = _mm256_fmadd_ps(a, b1, c51);
        ap = ap.add(6);
        bp = bp.add(16);
    }
    _mm256_storeu_ps(out, c00);
    _mm256_storeu_ps(out.add(8), c01);
    _mm256_storeu_ps(out.add(16), c10);
    _mm256_storeu_ps(out.add(24), c11);
    _mm256_storeu_ps(out.add(32), c20);
    _mm256_storeu_ps(out.add(40), c21);
    _mm256_storeu_ps(out.add(48), c30);
    _mm256_storeu_ps(out.add(56), c31);
    _mm256_storeu_ps(out.add(64), c40);
    _mm256_storeu_ps(out.add(72), c41);
    _mm256_storeu_ps(out.add(80), c50);
    _mm256_storeu_ps(out.add(88), c51);
}

// ---- AVX-512 tier --------------------------------------------------------

/// Safe shim; see [`micro_avx2_6x16`] for the dispatch-soundness argument
/// (here the detected feature is `avx512f`).
#[cfg(target_arch = "x86_64")]
fn micro_avx512_8x48(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
    debug_assert_eq!(a_panel.len(), 8 * kb);
    debug_assert_eq!(b_panel.len(), 48 * kb);
    debug_assert_eq!(acc.len(), 8 * 48);
    // SAFETY: dispatch guarantees avx512f is present; lengths asserted.
    unsafe { micro_avx512_8x48_impl(kb, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr()) }
}

/// The 8×48 AVX-512 tile: 24 zmm accumulators + 3 packed-B vectors + 1
/// A broadcast = 28 of the 32 zmm registers. Each depth step is 3 vector
/// loads + 8 broadcasts feeding 24 `vfmadd231ps` — 768 FLOPs per 11
/// load-port µops, comfortably FMA-bound on two 512-bit FMA pipes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_avx512_8x48_impl(kb: usize, mut ap: *const f32, mut bp: *const f32, out: *mut f32) {
    use std::arch::x86_64::*;
    let mut c00 = _mm512_setzero_ps();
    let mut c01 = _mm512_setzero_ps();
    let mut c02 = _mm512_setzero_ps();
    let mut c10 = _mm512_setzero_ps();
    let mut c11 = _mm512_setzero_ps();
    let mut c12 = _mm512_setzero_ps();
    let mut c20 = _mm512_setzero_ps();
    let mut c21 = _mm512_setzero_ps();
    let mut c22 = _mm512_setzero_ps();
    let mut c30 = _mm512_setzero_ps();
    let mut c31 = _mm512_setzero_ps();
    let mut c32 = _mm512_setzero_ps();
    let mut c40 = _mm512_setzero_ps();
    let mut c41 = _mm512_setzero_ps();
    let mut c42 = _mm512_setzero_ps();
    let mut c50 = _mm512_setzero_ps();
    let mut c51 = _mm512_setzero_ps();
    let mut c52 = _mm512_setzero_ps();
    let mut c60 = _mm512_setzero_ps();
    let mut c61 = _mm512_setzero_ps();
    let mut c62 = _mm512_setzero_ps();
    let mut c70 = _mm512_setzero_ps();
    let mut c71 = _mm512_setzero_ps();
    let mut c72 = _mm512_setzero_ps();
    for _ in 0..kb {
        let b0 = _mm512_loadu_ps(bp);
        let b1 = _mm512_loadu_ps(bp.add(16));
        let b2 = _mm512_loadu_ps(bp.add(32));
        let a = _mm512_set1_ps(*ap);
        c00 = _mm512_fmadd_ps(a, b0, c00);
        c01 = _mm512_fmadd_ps(a, b1, c01);
        c02 = _mm512_fmadd_ps(a, b2, c02);
        let a = _mm512_set1_ps(*ap.add(1));
        c10 = _mm512_fmadd_ps(a, b0, c10);
        c11 = _mm512_fmadd_ps(a, b1, c11);
        c12 = _mm512_fmadd_ps(a, b2, c12);
        let a = _mm512_set1_ps(*ap.add(2));
        c20 = _mm512_fmadd_ps(a, b0, c20);
        c21 = _mm512_fmadd_ps(a, b1, c21);
        c22 = _mm512_fmadd_ps(a, b2, c22);
        let a = _mm512_set1_ps(*ap.add(3));
        c30 = _mm512_fmadd_ps(a, b0, c30);
        c31 = _mm512_fmadd_ps(a, b1, c31);
        c32 = _mm512_fmadd_ps(a, b2, c32);
        let a = _mm512_set1_ps(*ap.add(4));
        c40 = _mm512_fmadd_ps(a, b0, c40);
        c41 = _mm512_fmadd_ps(a, b1, c41);
        c42 = _mm512_fmadd_ps(a, b2, c42);
        let a = _mm512_set1_ps(*ap.add(5));
        c50 = _mm512_fmadd_ps(a, b0, c50);
        c51 = _mm512_fmadd_ps(a, b1, c51);
        c52 = _mm512_fmadd_ps(a, b2, c52);
        let a = _mm512_set1_ps(*ap.add(6));
        c60 = _mm512_fmadd_ps(a, b0, c60);
        c61 = _mm512_fmadd_ps(a, b1, c61);
        c62 = _mm512_fmadd_ps(a, b2, c62);
        let a = _mm512_set1_ps(*ap.add(7));
        c70 = _mm512_fmadd_ps(a, b0, c70);
        c71 = _mm512_fmadd_ps(a, b1, c71);
        c72 = _mm512_fmadd_ps(a, b2, c72);
        ap = ap.add(8);
        bp = bp.add(48);
    }
    _mm512_storeu_ps(out, c00);
    _mm512_storeu_ps(out.add(16), c01);
    _mm512_storeu_ps(out.add(32), c02);
    _mm512_storeu_ps(out.add(48), c10);
    _mm512_storeu_ps(out.add(64), c11);
    _mm512_storeu_ps(out.add(80), c12);
    _mm512_storeu_ps(out.add(96), c20);
    _mm512_storeu_ps(out.add(112), c21);
    _mm512_storeu_ps(out.add(128), c22);
    _mm512_storeu_ps(out.add(144), c30);
    _mm512_storeu_ps(out.add(160), c31);
    _mm512_storeu_ps(out.add(176), c32);
    _mm512_storeu_ps(out.add(192), c40);
    _mm512_storeu_ps(out.add(208), c41);
    _mm512_storeu_ps(out.add(224), c42);
    _mm512_storeu_ps(out.add(240), c50);
    _mm512_storeu_ps(out.add(256), c51);
    _mm512_storeu_ps(out.add(272), c52);
    _mm512_storeu_ps(out.add(288), c60);
    _mm512_storeu_ps(out.add(304), c61);
    _mm512_storeu_ps(out.add(320), c62);
    _mm512_storeu_ps(out.add(336), c70);
    _mm512_storeu_ps(out.add(352), c71);
    _mm512_storeu_ps(out.add(368), c72);
}

/// Safe shim; see [`micro_avx2_6x16`] for the dispatch-soundness argument
/// (here the detected feature is `avx512f`).
#[cfg(target_arch = "x86_64")]
fn micro_avx512_12x32(kb: usize, a_panel: &[f32], b_panel: &[f32], acc: &mut [f32]) {
    debug_assert_eq!(a_panel.len(), 12 * kb);
    debug_assert_eq!(b_panel.len(), 32 * kb);
    debug_assert_eq!(acc.len(), 12 * 32);
    // SAFETY: dispatch guarantees avx512f is present; lengths asserted.
    unsafe { micro_avx512_12x32_impl(kb, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr()) }
}

/// The 12×32 AVX-512 tile: 24 zmm accumulators + 2 packed-B vectors + 1
/// A broadcast = 27 of the 32 zmm registers. Each depth step is 2 vector
/// loads + 12 broadcasts feeding 24 `vfmadd231ps` — the same FMA count as
/// the 8×48 tile with fewer B-panel bytes streamed per step. The row loop
/// is fully unrolled by LLVM (constant trip count inside a
/// `target_feature` fn), leaving no spills.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn micro_avx512_12x32_impl(
    kb: usize,
    mut ap: *const f32,
    mut bp: *const f32,
    out: *mut f32,
) {
    use std::arch::x86_64::*;
    let mut c = [[_mm512_setzero_ps(); 2]; 12];
    for _ in 0..kb {
        let b0 = _mm512_loadu_ps(bp);
        let b1 = _mm512_loadu_ps(bp.add(16));
        for (i, row) in c.iter_mut().enumerate() {
            let a = _mm512_set1_ps(*ap.add(i));
            row[0] = _mm512_fmadd_ps(a, b0, row[0]);
            row[1] = _mm512_fmadd_ps(a, b1, row[1]);
        }
        ap = ap.add(12);
        bp = bp.add(32);
    }
    for (i, row) in c.iter().enumerate() {
        _mm512_storeu_ps(out.add(i * 32), row[0]);
        _mm512_storeu_ps(out.add(i * 32 + 16), row[1]);
    }
}

// ---- bf16 compute tier ---------------------------------------------------
//
// bf16×bf16 tiles with f32 accumulation. Panels hold *depth pairs*: each
// `u32` packs two consecutive-depth bf16 elements as `(hi << 16) | lo` with
// `lo` at depth `2·p2` and `hi` at depth `2·p2 + 1` (odd depths pad `hi`
// with a zero bf16). That is exactly the lane layout `vdpbf16ps` consumes:
// broadcasting one pair `u32` across a zmm gives every f32 lane the same
// (lo, hi) bf16 pair, and 16 consecutive pair `u32`s are 16 B columns.
//
// ## `vdpbf16ps` semantics (pinned empirically, enforced by tests)
//
// Per f32 lane, one instruction computes — in this order —
//
// ```text
// acc = ftz(acc)
// acc = ftz(fma(daz(a_hi), daz(b_hi), acc))   // depth 2·p2 + 1 first
// acc = ftz(fma(daz(a_lo), daz(b_lo), acc))   // then depth 2·p2
// ```
//
// where `daz` flushes subnormal bf16 *inputs* to signed zero, each step is
// a true fused multiply-add (single rounding), and `ftz` flushes a
// subnormal f32 *result* to signed zero. The emulated kernels implement
// exactly this chain, so native and emulated tiles are bit-identical on
// finite inputs; NaN/inf handling is the one place hardware is not IEEE
// (payload-propagating quieted NaNs, conflicting infinities collapse to
// +inf), so the bit-identity contract — like the f32 dispatch-seam tests —
// is scoped to finite inputs and the reftest oracle compares NaN/inf
// payload-insensitively.
//
// Because the chain is *exactly* "FMA with DAZ inputs and FTZ outputs", it
// has a second full-width realization: widen the quantized panels to f32 in
// hi-then-lo pair order (bf16→f32 widening is a pure bit move, and a
// widened subnormal bf16 is an f32 subnormal, so hardware DAZ reproduces
// the input flush) and run the ordinary f32 micro-kernel with MXCSR FTZ+DAZ
// set for the tile's duration (`run_f32_micro_ftz_daz`). On parts where
// `vdpbf16ps` is microcoded well below FMA throughput this transcription is
// the faster native route; the calibration in `resolve_native_variant`
// decides per process.

/// Signature of a bf16 micro-kernel: accumulate `kb2` *pair*-depth steps of
/// an `mr×nr` tile from pair-packed panels into `acc` (fully overwritten).
/// `a_panel` is `mr`-row column-major over pair rows (`a[p2*mr + i]`),
/// `b_panel` is `nr`-column row-major (`b[p2*nr + j]`).
pub type Bf16MicroFn = fn(kb2: usize, a_panel: &[u32], b_panel: &[u32], acc: &mut [f32]);

/// One dispatchable bf16 micro-kernel. `(mr, nr)` always mirrors the f32
/// [`Kernel`] it was selected for, so pair panels and f32 panels share
/// geometry and the widen/compute routes can never desynchronize.
#[derive(Clone, Copy)]
pub struct Bf16Kernel {
    /// True when the tile executes a full-width native realization of the
    /// `vdpbf16ps` chain (the instruction itself or its FMA transcription),
    /// false for the scalar emulation.
    pub native: bool,
    /// Tile rows.
    pub mr: usize,
    /// Tile columns.
    pub nr: usize,
    /// The tile function.
    pub micro: Bf16MicroFn,
}

static EMULATED_BF16_6X16: Bf16Kernel =
    Bf16Kernel { native: false, mr: 6, nr: 16, micro: micro_bf16_emulated::<6, 16> };

static EMULATED_BF16_8X48: Bf16Kernel =
    Bf16Kernel { native: false, mr: 8, nr: 48, micro: micro_bf16_emulated::<8, 48> };

static EMULATED_BF16_12X32: Bf16Kernel =
    Bf16Kernel { native: false, mr: 12, nr: 32, micro: micro_bf16_emulated::<12, 32> };

#[cfg(target_arch = "x86_64")]
static NATIVE_BF16_8X48: Bf16Kernel =
    Bf16Kernel { native: true, mr: 8, nr: 48, micro: micro_bf16_avx512_8x48 };

#[cfg(target_arch = "x86_64")]
static NATIVE_BF16_12X32: Bf16Kernel =
    Bf16Kernel { native: true, mr: 12, nr: 32, micro: micro_bf16_avx512_12x32 };

/// The bf16 micro-kernel matching an f32 kernel's tile shape: the
/// `vdpbf16ps` tile when the cached dispatch allows it
/// ([`bf16_compute_is_native`] — which requires the f32 decision to be
/// `Avx512`, so every env override pins both families at once), the
/// bit-exact scalar emulation otherwise. When calibration picked the
/// widen-FMA native realization instead, the blocked driver bypasses pair
/// tiles entirely (see `bf16_native_variant_is_fma`) and this choice is
/// moot. The returned kernel's `(mr, nr)` always equals the argument's.
pub fn bf16_kernel_for(kernel: &Kernel) -> &'static Bf16Kernel {
    #[cfg(target_arch = "x86_64")]
    if kernel.backend == KernelBackend::Avx512 && bf16_compute_is_native() {
        match (kernel.mr, kernel.nr) {
            (8, 48) => return &NATIVE_BF16_8X48,
            (12, 32) => return &NATIVE_BF16_12X32,
            _ => {}
        }
    }
    match (kernel.mr, kernel.nr) {
        (8, 48) => &EMULATED_BF16_8X48,
        (12, 32) => &EMULATED_BF16_12X32,
        _ => &EMULATED_BF16_6X16,
    }
}

/// Widens one bf16 with `vdpbf16ps`'s denormals-are-zero input treatment:
/// a subnormal bf16 reads as its signed zero, everything else widens
/// exactly.
#[inline(always)]
fn bf16_daz(q: u16) -> f32 {
    if q & 0x7F80 == 0 {
        f32::from_bits(u32::from(q & 0x8000) << 16)
    } else {
        f32::from_bits(u32::from(q) << 16)
    }
}

/// `vdpbf16ps`'s flush-to-zero on f32 values: subnormal magnitudes collapse
/// to their signed zero.
#[inline(always)]
fn ftz(x: f32) -> f32 {
    let bits = x.to_bits();
    if bits & 0x7F80_0000 == 0 {
        f32::from_bits(bits & 0x8000_0000)
    } else {
        x
    }
}

/// Software `vdpbf16ps` tile, bit-exact to the hardware instruction on
/// finite inputs (see the module-section comment for the pinned per-pair
/// chain). Monomorphized per tile shape so the panel walks match every f32
/// kernel geometry; throughput is irrelevant here — this arm exists so CI
/// runners without `avx512bf16` (and the `MFN_PORTABLE_KERNELS`/
/// `MFN_EMULATED_BF16` legs) execute the same numerics as production
/// hardware.
fn micro_bf16_emulated<const MR: usize, const NR: usize>(
    kb2: usize,
    a_panel: &[u32],
    b_panel: &[u32],
    acc: &mut [f32],
) {
    debug_assert_eq!(a_panel.len(), MR * kb2);
    debug_assert_eq!(b_panel.len(), NR * kb2);
    debug_assert_eq!(acc.len(), MR * NR);
    acc.fill(0.0);
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        for (i, &apair) in av.iter().enumerate() {
            let a_lo = bf16_daz(apair as u16);
            let a_hi = bf16_daz((apair >> 16) as u16);
            for (cell, &bpair) in acc[i * NR..(i + 1) * NR].iter_mut().zip(bv) {
                let b_lo = bf16_daz(bpair as u16);
                let b_hi = bf16_daz((bpair >> 16) as u16);
                let mut v = ftz(*cell);
                v = ftz(a_hi.mul_add(b_hi, v));
                v = ftz(a_lo.mul_add(b_lo, v));
                *cell = v;
            }
        }
    }
}

/// Safe shim; dispatch ([`bf16_kernel_for`]) only returns the native
/// kernels after `is_x86_feature_detected!` confirmed `avx512bf16` +
/// `avx512f`, so calling the `target_feature` fn is sound.
#[cfg(target_arch = "x86_64")]
fn micro_bf16_avx512_8x48(kb2: usize, a_panel: &[u32], b_panel: &[u32], acc: &mut [f32]) {
    debug_assert_eq!(a_panel.len(), 8 * kb2);
    debug_assert_eq!(b_panel.len(), 48 * kb2);
    debug_assert_eq!(acc.len(), 8 * 48);
    // SAFETY: dispatch guarantees avx512bf16+avx512f (see doc above);
    // panel/acc lengths are asserted to match the tile's pointer walks.
    unsafe {
        micro_bf16_avx512_8x48_impl(kb2, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr())
    }
}

/// The 8×48 `vdpbf16ps` tile: same register budget as the f32 8×48 tile
/// (24 zmm accumulators + 3 B vectors + 1 broadcast) but each instruction
/// retires *two* depth steps — 1536 FLOPs per 11 load-port µops. Loads use
/// `loadu_ps` purely as a 512-bit bit-copy (no arithmetic), then reinterpret
/// as `__m512bh`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512bf16", enable = "avx512f")]
unsafe fn micro_bf16_avx512_8x48_impl(
    kb2: usize,
    mut ap: *const u32,
    mut bp: *const u32,
    out: *mut f32,
) {
    use std::arch::x86_64::*;
    use std::mem::transmute;
    let mut c00 = _mm512_setzero_ps();
    let mut c01 = _mm512_setzero_ps();
    let mut c02 = _mm512_setzero_ps();
    let mut c10 = _mm512_setzero_ps();
    let mut c11 = _mm512_setzero_ps();
    let mut c12 = _mm512_setzero_ps();
    let mut c20 = _mm512_setzero_ps();
    let mut c21 = _mm512_setzero_ps();
    let mut c22 = _mm512_setzero_ps();
    let mut c30 = _mm512_setzero_ps();
    let mut c31 = _mm512_setzero_ps();
    let mut c32 = _mm512_setzero_ps();
    let mut c40 = _mm512_setzero_ps();
    let mut c41 = _mm512_setzero_ps();
    let mut c42 = _mm512_setzero_ps();
    let mut c50 = _mm512_setzero_ps();
    let mut c51 = _mm512_setzero_ps();
    let mut c52 = _mm512_setzero_ps();
    let mut c60 = _mm512_setzero_ps();
    let mut c61 = _mm512_setzero_ps();
    let mut c62 = _mm512_setzero_ps();
    let mut c70 = _mm512_setzero_ps();
    let mut c71 = _mm512_setzero_ps();
    let mut c72 = _mm512_setzero_ps();
    for _ in 0..kb2 {
        let b0: __m512bh = transmute(_mm512_loadu_ps(bp as *const f32));
        let b1: __m512bh = transmute(_mm512_loadu_ps(bp.add(16) as *const f32));
        let b2: __m512bh = transmute(_mm512_loadu_ps(bp.add(32) as *const f32));
        let a: __m512bh = transmute(_mm512_set1_epi32(*ap as i32));
        c00 = _mm512_dpbf16_ps(c00, a, b0);
        c01 = _mm512_dpbf16_ps(c01, a, b1);
        c02 = _mm512_dpbf16_ps(c02, a, b2);
        let a: __m512bh = transmute(_mm512_set1_epi32(*ap.add(1) as i32));
        c10 = _mm512_dpbf16_ps(c10, a, b0);
        c11 = _mm512_dpbf16_ps(c11, a, b1);
        c12 = _mm512_dpbf16_ps(c12, a, b2);
        let a: __m512bh = transmute(_mm512_set1_epi32(*ap.add(2) as i32));
        c20 = _mm512_dpbf16_ps(c20, a, b0);
        c21 = _mm512_dpbf16_ps(c21, a, b1);
        c22 = _mm512_dpbf16_ps(c22, a, b2);
        let a: __m512bh = transmute(_mm512_set1_epi32(*ap.add(3) as i32));
        c30 = _mm512_dpbf16_ps(c30, a, b0);
        c31 = _mm512_dpbf16_ps(c31, a, b1);
        c32 = _mm512_dpbf16_ps(c32, a, b2);
        let a: __m512bh = transmute(_mm512_set1_epi32(*ap.add(4) as i32));
        c40 = _mm512_dpbf16_ps(c40, a, b0);
        c41 = _mm512_dpbf16_ps(c41, a, b1);
        c42 = _mm512_dpbf16_ps(c42, a, b2);
        let a: __m512bh = transmute(_mm512_set1_epi32(*ap.add(5) as i32));
        c50 = _mm512_dpbf16_ps(c50, a, b0);
        c51 = _mm512_dpbf16_ps(c51, a, b1);
        c52 = _mm512_dpbf16_ps(c52, a, b2);
        let a: __m512bh = transmute(_mm512_set1_epi32(*ap.add(6) as i32));
        c60 = _mm512_dpbf16_ps(c60, a, b0);
        c61 = _mm512_dpbf16_ps(c61, a, b1);
        c62 = _mm512_dpbf16_ps(c62, a, b2);
        let a: __m512bh = transmute(_mm512_set1_epi32(*ap.add(7) as i32));
        c70 = _mm512_dpbf16_ps(c70, a, b0);
        c71 = _mm512_dpbf16_ps(c71, a, b1);
        c72 = _mm512_dpbf16_ps(c72, a, b2);
        ap = ap.add(8);
        bp = bp.add(48);
    }
    _mm512_storeu_ps(out, c00);
    _mm512_storeu_ps(out.add(16), c01);
    _mm512_storeu_ps(out.add(32), c02);
    _mm512_storeu_ps(out.add(48), c10);
    _mm512_storeu_ps(out.add(64), c11);
    _mm512_storeu_ps(out.add(80), c12);
    _mm512_storeu_ps(out.add(96), c20);
    _mm512_storeu_ps(out.add(112), c21);
    _mm512_storeu_ps(out.add(128), c22);
    _mm512_storeu_ps(out.add(144), c30);
    _mm512_storeu_ps(out.add(160), c31);
    _mm512_storeu_ps(out.add(176), c32);
    _mm512_storeu_ps(out.add(192), c40);
    _mm512_storeu_ps(out.add(208), c41);
    _mm512_storeu_ps(out.add(224), c42);
    _mm512_storeu_ps(out.add(240), c50);
    _mm512_storeu_ps(out.add(256), c51);
    _mm512_storeu_ps(out.add(272), c52);
    _mm512_storeu_ps(out.add(288), c60);
    _mm512_storeu_ps(out.add(304), c61);
    _mm512_storeu_ps(out.add(320), c62);
    _mm512_storeu_ps(out.add(336), c70);
    _mm512_storeu_ps(out.add(352), c71);
    _mm512_storeu_ps(out.add(368), c72);
}

/// Safe shim; see [`micro_bf16_avx512_8x48`] for the soundness argument.
#[cfg(target_arch = "x86_64")]
fn micro_bf16_avx512_12x32(kb2: usize, a_panel: &[u32], b_panel: &[u32], acc: &mut [f32]) {
    debug_assert_eq!(a_panel.len(), 12 * kb2);
    debug_assert_eq!(b_panel.len(), 32 * kb2);
    debug_assert_eq!(acc.len(), 12 * 32);
    // SAFETY: dispatch guarantees avx512bf16+avx512f; lengths asserted.
    unsafe {
        micro_bf16_avx512_12x32_impl(kb2, a_panel.as_ptr(), b_panel.as_ptr(), acc.as_mut_ptr())
    }
}

/// The 12×32 `vdpbf16ps` tile mirroring the f32 12×32 geometry: 2 B loads +
/// 12 broadcasts feeding 24 `vdpbf16ps` per pair-depth step.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512bf16", enable = "avx512f")]
unsafe fn micro_bf16_avx512_12x32_impl(
    kb2: usize,
    mut ap: *const u32,
    mut bp: *const u32,
    out: *mut f32,
) {
    use std::arch::x86_64::*;
    use std::mem::transmute;
    let mut c = [[_mm512_setzero_ps(); 2]; 12];
    for _ in 0..kb2 {
        let b0: __m512bh = transmute(_mm512_loadu_ps(bp as *const f32));
        let b1: __m512bh = transmute(_mm512_loadu_ps(bp.add(16) as *const f32));
        for (i, row) in c.iter_mut().enumerate() {
            let a: __m512bh = transmute(_mm512_set1_epi32(*ap.add(i) as i32));
            row[0] = _mm512_dpbf16_ps(row[0], a, b0);
            row[1] = _mm512_dpbf16_ps(row[1], a, b1);
        }
        ap = ap.add(12);
        bp = bp.add(32);
    }
    for (i, row) in c.iter().enumerate() {
        _mm512_storeu_ps(out.add(i * 32), row[0]);
        _mm512_storeu_ps(out.add(i * 32 + 16), row[1]);
    }
}

/// MXCSR bits 15 (flush-to-zero) and 6 (denormals-are-zero).
#[cfg(target_arch = "x86_64")]
const MXCSR_FTZ_DAZ: u32 = 0x8040;

/// Reads MXCSR. Inline asm instead of the deprecated `_mm_getcsr`; the
/// instruction has unmodeled side effects to the compiler, which is exactly
/// what keeps surrounding loads/stores from migrating across it.
#[cfg(target_arch = "x86_64")]
#[inline]
fn read_mxcsr() -> u32 {
    let mut v: u32 = 0;
    // SAFETY: `stmxcsr` writes 4 bytes to the pointed-to stack slot.
    unsafe { std::arch::asm!("stmxcsr [{}]", in(reg) &mut v, options(nostack)) };
    v
}

/// Writes MXCSR (see [`read_mxcsr`] on why asm).
#[cfg(target_arch = "x86_64")]
#[inline]
fn write_mxcsr(v: u32) {
    // SAFETY: `ldmxcsr` reads 4 bytes; all MXCSR states are valid for the
    // FP ops this module issues.
    unsafe { std::arch::asm!("ldmxcsr [{}]", in(reg) &v, options(nostack)) };
}

/// Quantizes each f32 to bf16 and widens it straight back
/// (`widen_bf16(quantize_bf16(x))` elementwise, bit-equal to the scalar
/// composition including NaN-quieting and finite-overflow saturation),
/// vectorized on AVX-512 hosts. The packing routines of both bf16 tiers
/// run this once per element per GEMM call, so at serving depths it is
/// the compute tier's dominant per-call cost.
pub(crate) fn quantize_widen_into(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if kernel_backend() == KernelBackend::Avx512 {
        // SAFETY: dispatch says the host has avx512f; lengths match.
        unsafe { quantize_widen_avx512(dst.as_mut_ptr(), src.as_ptr(), src.len()) };
        return;
    }
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = crate::bf16::widen_bf16(crate::bf16::quantize_bf16(x));
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_widen_avx512(dst: *mut f32, src: *const f32, len: usize) {
    use std::arch::x86_64::*;
    let mut i = 0;
    while i + 16 <= len {
        let bits = _mm512_castps_si512(_mm512_loadu_ps(src.add(i)));
        let out = quantize_widen_lanes(bits);
        _mm512_storeu_ps(dst.add(i), _mm512_castsi512_ps(out));
        i += 16;
    }
    if i < len {
        let m: __mmask16 = (1u16 << (len - i)) - 1;
        let bits = _mm512_castps_si512(_mm512_maskz_loadu_ps(m, src.add(i)));
        let out = quantize_widen_lanes(bits);
        _mm512_mask_storeu_ps(dst.add(i), m, _mm512_castsi512_ps(out));
    }
}

/// 16 lanes of [`crate::bf16::quantize_bf16`] + widen, on raw f32 bits.
/// Mirrors the scalar decision tree with masks: RNE via the carry-adder
/// trick, finite overflow clawed back to ±`0x7F7F`, NaN keeps sign + top
/// payload bits with the quiet bit forced.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_widen_lanes(bits: std::arch::x86_64::__m512i) -> std::arch::x86_64::__m512i {
    use std::arch::x86_64::*;
    let exp_all = _mm512_set1_epi32(0x7F80_0000u32 as i32);
    let abs_mask = _mm512_set1_epi32(0x7FFF_FFFF);
    let hi_mask = _mm512_set1_epi32(0xFFFF_0000u32 as i32);
    let abs = _mm512_and_si512(bits, abs_mask);
    let nan = _mm512_cmpgt_epu32_mask(abs, exp_all);
    let finite = _mm512_cmplt_epu32_mask(abs, exp_all);
    // round = ((bits >> 16) & 1) + 0x7FFF; q = (bits + round) & hi.
    let lsb = _mm512_and_si512(_mm512_srli_epi32::<16>(bits), _mm512_set1_epi32(1));
    let round = _mm512_add_epi32(lsb, _mm512_set1_epi32(0x7FFF));
    let q = _mm512_and_si512(_mm512_add_epi32(bits, round), hi_mask);
    // Finite input whose rounding landed on the inf pattern: saturate.
    let ovf = _mm512_cmpeq_epi32_mask(_mm512_and_si512(q, abs_mask), exp_all) & finite;
    let sat = _mm512_or_si512(
        _mm512_and_si512(q, _mm512_set1_epi32(0x8000_0000u32 as i32)),
        _mm512_set1_epi32(0x7F7F_0000),
    );
    let q = _mm512_mask_mov_epi32(q, ovf, sat);
    let qnan = _mm512_or_si512(_mm512_and_si512(bits, hi_mask), _mm512_set1_epi32(0x0040_0000));
    _mm512_mask_mov_epi32(q, nan, qnan)
}

/// Runs an f32 micro-kernel under MXCSR FTZ+DAZ — the widen-FMA native
/// realization of the `vdpbf16ps` chain. Fed panels that hold the
/// quantized operands widened to f32 in hi-then-lo pair order, the f32
/// tile computes exactly the pinned chain: each FMA is one fused step with
/// DAZ on inputs (a widened subnormal bf16 *is* an f32 subnormal) and FTZ
/// on the result, and the hardware restores the accumulation order the
/// instruction pins. MXCSR is restored before returning, so the caller's
/// cross-slab write-back keeps default FP behavior.
pub(crate) fn run_f32_micro_ftz_daz(
    kernel: &Kernel,
    kb: usize,
    a_panel: &[f32],
    b_panel: &[f32],
    acc: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    {
        let saved = read_mxcsr();
        write_mxcsr(saved | MXCSR_FTZ_DAZ);
        (kernel.micro)(kb, a_panel, b_panel, acc);
        write_mxcsr(saved);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (kernel, kb, a_panel, b_panel, acc);
        unreachable!("the widen-FMA bf16 route only dispatches on x86_64");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(KernelBackend::Avx512.name(), "avx512");
        assert_eq!(KernelBackend::Avx2Fma.name(), "avx2+fma");
        assert_eq!(KernelBackend::Portable.name(), "portable");
    }

    #[test]
    fn override_round_trips_and_never_exceeds_detection() {
        let detected = {
            set_backend_override(None);
            kernel_backend()
        };
        set_backend_override(Some(KernelBackend::Portable));
        assert_eq!(kernel_backend(), KernelBackend::Portable);
        assert_eq!(active_kernel().backend, KernelBackend::Portable);
        // Requesting the detected tier (or anything below it) honors the
        // request; requesting above it falls back to detection.
        set_backend_override(Some(detected));
        assert_eq!(kernel_backend(), detected);
        set_backend_override(Some(KernelBackend::Avx512));
        let got = kernel_backend();
        assert!(got == detected || got == KernelBackend::Avx512);
        set_backend_override(None);
        assert_eq!(kernel_backend(), detected);
    }

    #[test]
    fn kernel_shapes_fit_declared_maxima() {
        for k in [
            &PORTABLE_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX2_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL_12X32,
        ] {
            assert!(k.mr <= MAX_MR && k.nr <= MAX_NR);
            assert_eq!(k.nr % 8, 0, "write-back assumes whole vectors");
        }
    }

    /// Every f32 kernel shape has a bf16 twin with identical geometry on
    /// both routes, so pair panels can never desynchronize from f32 panels.
    #[test]
    fn bf16_kernels_mirror_f32_tile_shapes() {
        for k in [
            &PORTABLE_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX2_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL_12X32,
        ] {
            let bk = bf16_kernel_for(k);
            assert_eq!((bk.mr, bk.nr), (k.mr, k.nr), "{}", k.backend.name());
        }
        // Forcing the emulated route must stick for every shape.
        set_bf16_emulated_override(Some(true));
        for k in [
            &PORTABLE_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL_12X32,
        ] {
            assert!(!bf16_kernel_for(k).native);
        }
        set_bf16_emulated_override(None);
    }

    /// Deterministic finite bf16 pair panels: normals across a wide
    /// exponent range, signed zeros and subnormals (exercising DAZ), no
    /// NaN/inf (the bit-identity contract is finite-scoped).
    fn bf16_pair_fill(len: usize, seed: u32) -> Vec<u32> {
        let mut s = seed.wrapping_mul(747796405).wrapping_add(1);
        let mut half = move || -> u32 {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let q = (s >> 13) as u16;
            u32::from(match q & 0x7F80 {
                0x7F80 => (q & 0x807F) | 0x3F80, // would be inf/nan: remap
                0 if s & 1 == 0 => q,            // keep some subnormals/zeros
                _ => (q & 0xBFFF) | 0x2000,      // pull exponent into range
            })
        };
        (0..len).map(|_| (half() << 16) | half()).collect()
    }

    /// The emulated `vdpbf16ps` tile must match the hardware instruction
    /// bit-for-bit on finite inputs — this is the contract that makes the
    /// emulated CI leg representative of `avx512bf16` production hosts.
    /// Skipped (trivially green) on hosts without the instruction.
    #[test]
    fn emulated_bf16_tile_matches_native_bitwise() {
        if !bf16_hw() {
            return;
        }
        #[cfg(target_arch = "x86_64")]
        for (native, emulated) in
            [(&NATIVE_BF16_8X48, &EMULATED_BF16_8X48), (&NATIVE_BF16_12X32, &EMULATED_BF16_12X32)]
        {
            let (mr, nr) = (native.mr, native.nr);
            for kb2 in [1usize, 2, 7, 128] {
                let a = bf16_pair_fill(mr * kb2, 3 + kb2 as u32);
                let b = bf16_pair_fill(nr * kb2, 17 + kb2 as u32);
                let mut got = vec![f32::NAN; mr * nr];
                let mut want = vec![f32::NAN; mr * nr];
                (native.micro)(kb2, &a, &b, &mut got);
                (emulated.micro)(kb2, &a, &b, &mut want);
                for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        w.to_bits(),
                        "{mr}x{nr} kb2={kb2} elem {i}: native {g:e} vs emulated {w:e}"
                    );
                }
            }
        }
    }

    /// The vectorized quantize-widen must be bit-equal to the scalar
    /// composition on every class of input — normals, subnormals, signed
    /// zeros, saturating finite overflow, ±inf, and NaNs in both payload
    /// halves — including the masked tail (length not a multiple of 16).
    #[test]
    fn quantize_widen_matches_scalar_composition_bitwise() {
        let mut vals: Vec<f32> = [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            f32::MAX,
            f32::MIN,
            f32::MIN_POSITIVE,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
        ]
        .into();
        for bits in
            [0x7F80_0001u32, 0xFF80_FFFF, 0x7F7F_8000, 0xFF7F_8000, 0x3F80_8000, 1, 0x8000_0001]
        {
            vals.push(f32::from_bits(bits));
        }
        // Raw random bit patterns cover every float class, NaN payloads
        // included.
        let mut s = 0xB5297A4Du32;
        for _ in 0..4096 {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            vals.push(f32::from_bits(s));
        }
        assert_ne!(vals.len() % 16, 0, "keep a masked tail in play");
        let mut got = vec![0.0f32; vals.len()];
        quantize_widen_into(&mut got, &vals);
        for (i, (&g, &x)) in got.iter().zip(&vals).enumerate() {
            let want = crate::bf16::widen_bf16(crate::bf16::quantize_bf16(x));
            assert_eq!(g.to_bits(), want.to_bits(), "elem {i}: input {:#010x}", x.to_bits());
        }
    }

    /// Widens pair panels to f32 in the hi-then-lo order the widen-FMA
    /// realization consumes (same transform for A, stride `mr`, and B,
    /// stride `nr`).
    #[cfg(target_arch = "x86_64")]
    fn widen_pairs_hi_lo(pairs: &[u32], stride: usize, kb2: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; 2 * kb2 * stride];
        for p2 in 0..kb2 {
            for t in 0..stride {
                let pair = pairs[p2 * stride + t];
                out[2 * p2 * stride + t] = f32::from_bits(pair & 0xFFFF_0000);
                out[(2 * p2 + 1) * stride + t] = f32::from_bits(pair << 16);
            }
        }
        out
    }

    /// The widen-FMA realization (f32 tile over hi-then-lo widened panels
    /// under MXCSR FTZ/DAZ) must be bit-identical to the emulation (and
    /// hence, by the test above, to hardware `vdpbf16ps`) on finite inputs,
    /// and must leave MXCSR's control bits exactly as it found them. Needs
    /// only `avx512f`, so this runs on far more hosts than the instruction
    /// comparison.
    #[test]
    fn widen_fma_bf16_route_matches_emulated_bitwise_and_restores_mxcsr() {
        #[cfg(target_arch = "x86_64")]
        {
            if kernel_backend() != KernelBackend::Avx512 {
                return;
            }
            // Sticky exception flags (bits 0-5) are set by any FP math —
            // including the emulated comparison leg below — so only the
            // control bits are held to the no-leak contract.
            let mxcsr_ctl_before = read_mxcsr() & !0x3F;
            for (f32_kernel, emulated) in [
                (&AVX512_KERNEL, &EMULATED_BF16_8X48),
                (&AVX512_KERNEL_12X32, &EMULATED_BF16_12X32),
            ] {
                let (mr, nr) = (emulated.mr, emulated.nr);
                assert_eq!((mr, nr), (f32_kernel.mr, f32_kernel.nr));
                for kb2 in [1usize, 2, 7, 128] {
                    let a = bf16_pair_fill(mr * kb2, 5 + kb2 as u32);
                    let b = bf16_pair_fill(nr * kb2, 23 + kb2 as u32);
                    let aw = widen_pairs_hi_lo(&a, mr, kb2);
                    let bw = widen_pairs_hi_lo(&b, nr, kb2);
                    let mut got = vec![f32::NAN; mr * nr];
                    let mut want = vec![f32::NAN; mr * nr];
                    run_f32_micro_ftz_daz(f32_kernel, 2 * kb2, &aw, &bw, &mut got);
                    (emulated.micro)(kb2, &a, &b, &mut want);
                    for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "{mr}x{nr} kb2={kb2} elem {i}: widen-fma {g:e} vs emulated {w:e}"
                        );
                    }
                }
            }
            assert_eq!(read_mxcsr() & !0x3F, mxcsr_ctl_before, "micro-kernel leaked MXCSR state");
        }
    }

    /// The emulated tile agrees with an index-free scalar transcription of
    /// the pinned per-pair chain — catches panel-walk bugs independently of
    /// the hardware comparison above (and runs on every host).
    #[test]
    fn emulated_bf16_tile_matches_scalar_chain() {
        let kernel = &EMULATED_BF16_6X16;
        let (mr, nr) = (kernel.mr, kernel.nr);
        for kb2 in [1usize, 3, 9] {
            let a = bf16_pair_fill(mr * kb2, 29 + kb2 as u32);
            let b = bf16_pair_fill(nr * kb2, 71 + kb2 as u32);
            let mut got = vec![f32::NAN; mr * nr];
            (kernel.micro)(kb2, &a, &b, &mut got);
            for i in 0..mr {
                for j in 0..nr {
                    let mut acc = 0.0f32;
                    for p2 in 0..kb2 {
                        let ap = a[p2 * mr + i];
                        let bp = b[p2 * nr + j];
                        acc = ftz(acc);
                        acc =
                            ftz(bf16_daz((ap >> 16) as u16)
                                .mul_add(bf16_daz((bp >> 16) as u16), acc));
                        acc = ftz(bf16_daz(ap as u16).mul_add(bf16_daz(bp as u16), acc));
                    }
                    assert_eq!(got[i * nr + j].to_bits(), acc.to_bits(), "({i},{j}) kb2={kb2}");
                }
            }
        }
    }

    /// The three tiers must agree bit-for-bit on the same packed panels —
    /// the dispatch seam is invisible in results. (Tiles differ in shape, so
    /// compare each against a scalar fma chain, elementwise.)
    #[test]
    fn every_tier_matches_scalar_fma_chain_bitwise() {
        let kernels: Vec<&Kernel> = vec![
            &PORTABLE_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX2_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL,
            #[cfg(target_arch = "x86_64")]
            &AVX512_KERNEL_12X32,
        ];
        for kernel in kernels {
            if kernel.backend != KernelBackend::Portable && kernel_backend() != kernel.backend {
                // Host can't execute this tier; detection-ordering makes
                // this only skip tiers above the host's capability.
                continue;
            }
            for kb in [1usize, 2, 7, 64] {
                let mut s = 0x9E3779B9u32;
                let mut next = move || {
                    s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                    ((s >> 16) as i32 % 31 - 15) as f32 * 0.125
                };
                let a: Vec<f32> = (0..kernel.mr * kb).map(|_| next()).collect();
                let b: Vec<f32> = (0..kernel.nr * kb).map(|_| next()).collect();
                let mut acc = vec![f32::NAN; kernel.mr * kernel.nr];
                (kernel.micro)(kb, &a, &b, &mut acc);
                for i in 0..kernel.mr {
                    for j in 0..kernel.nr {
                        let mut want = 0.0f32;
                        for p in 0..kb {
                            want = a[p * kernel.mr + i].mul_add(b[p * kernel.nr + j], want);
                        }
                        assert_eq!(
                            acc[i * kernel.nr + j].to_bits(),
                            want.to_bits(),
                            "{} tile ({i},{j}) kb={kb}",
                            kernel.backend.name()
                        );
                    }
                }
            }
        }
    }
}
