//! bf16 (bfloat16) storage with f32 accumulation, for frozen-weight GEMMs.
//!
//! bf16 is the top 16 bits of an f32: 1 sign + 8 exponent + 7 mantissa
//! bits. Widening back to f32 is *exact* (a 16-bit left shift); only
//! quantization rounds, by round-to-nearest-even on the truncated 16
//! mantissa bits. That makes the numerical contract simple: a bf16 GEMM is
//! the ordinary f32 GEMM evaluated on `widen(quantize(W))` — every
//! accumulation happens in f32, bit-identically to [`crate::gemm::gemm`]
//! on the widened weights, and the only error vs full precision is the
//! one-time ≤2⁻⁸ relative weight rounding.
//!
//! [`PackedBf16Gemm`] holds a *frozen* right-hand side prepacked into the
//! active micro-kernel's `nr`-column panel layout at quantization time.
//! Serving decoders multiply against the same weights millions of times, so
//! packing once buys back the per-call `pack_b` walk (a strided traversal
//! for transposed weights) and halves the weight working set; the per-call
//! cost that remains is a contiguous u16→f32 widen of one `KC`-deep slab.

use crate::gemm::{self, PAR_FLOP_THRESHOLD};
use crate::simd::{self, Kernel};
use rayon::prelude::*;

/// Quantizes an f32 to bf16 by round-to-nearest-even. Values beyond bf16's
/// finite range round to ±inf (standard RNE overflow); NaN keeps its sign
/// and top payload bits with a quiet bit forced so it cannot collapse to
/// inf.
pub fn quantize_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Add 0x7FFF + (lsb of the kept mantissa): ties go to the even kept
    // mantissa, carries ripple into the exponent exactly as RNE requires.
    let round = ((bits >> 16) & 1) + 0x7FFF;
    ((bits.wrapping_add(round)) >> 16) as u16
}

/// Widens a bf16 back to f32 — exact, by construction.
pub fn widen_bf16(q: u16) -> f32 {
    f32::from_bits(u32::from(q) << 16)
}

/// Quantizes a slice ([`quantize_bf16`] elementwise).
pub fn quantize_slice(src: &[f32]) -> Vec<u16> {
    src.iter().map(|&x| quantize_bf16(x)).collect()
}

/// Widens a slice ([`widen_bf16`] elementwise).
pub fn widen_slice(src: &[u16]) -> Vec<f32> {
    src.iter().map(|&q| widen_bf16(q)).collect()
}

/// A `[k, n]` right-hand side quantized to bf16 and prepacked into the
/// active micro-kernel's panel layout: for each `KC`-deep depth block, `nr`-
/// column panels stored row-major (`panel[p*nr + j]`), edge columns zero.
///
/// The packing kernel (tile shape) is captured at construction and used for
/// the packed matrix's whole lifetime, so a later
/// [`crate::simd::set_backend_override`] never desynchronizes layout and
/// micro-kernel.
#[derive(Clone)]
pub struct PackedBf16Gemm {
    k: usize,
    n: usize,
    kernel: &'static Kernel,
    panels: Vec<u16>,
}

// Hand-written: the kernel field is a fn table, not worth printing.
impl std::fmt::Debug for PackedBf16Gemm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedBf16Gemm")
            .field("k", &self.k)
            .field("n", &self.n)
            .field("backend", &self.kernel.backend.name())
            .field("weight_bytes", &(self.panels.len() * 2))
            .finish()
    }
}

impl PackedBf16Gemm {
    /// Packs `op(B)` given by `src(p, j)` (`p < k`, `j < n`), quantizing
    /// each element once.
    pub fn pack(k: usize, n: usize, src: impl Fn(usize, usize) -> f32) -> Self {
        // Row count is unknown at pack time; decode batches are row-rich,
        // so size the tile choice by `n` alone (large-`m` limit).
        let kernel = simd::active_kernel_for(1 << 20, n);
        let nr = kernel.nr;
        let n_panels = n.div_ceil(nr);
        let mut panels = vec![0u16; k.div_ceil(gemm::KC) * n_panels * nr * gemm::KC.min(k.max(1))];
        // Recompute exact total (last depth block is shorter).
        let mut total = 0;
        for pc in (0..k).step_by(gemm::KC) {
            total += n_panels * nr * gemm::KC.min(k - pc);
        }
        panels.truncate(total);
        let mut off = 0;
        for pc in (0..k).step_by(gemm::KC) {
            let kb = gemm::KC.min(k - pc);
            for pj in 0..n_panels {
                let j0 = pj * nr;
                let cols = nr.min(n - j0);
                let panel = &mut panels[off..off + nr * kb];
                for (p, row) in panel.chunks_exact_mut(nr).enumerate() {
                    for (jj, d) in row.iter_mut().enumerate() {
                        *d = if jj < cols { quantize_bf16(src(pc + p, j0 + jj)) } else { 0 };
                    }
                }
                off += nr * kb;
            }
        }
        PackedBf16Gemm { k, n, kernel, panels }
    }

    /// Packs a weight stored `[n, k]` row-major as `op(B) = Wᵀ` — the
    /// layout `matmul_nt` consumes (`x @ Wᵀ` for a `Linear` layer).
    pub fn from_nt_weight(w: &[f32], n: usize, k: usize) -> Self {
        assert_eq!(w.len(), n * k, "bf16 pack weight length mismatch");
        Self::pack(k, n, |p, j| w[j * k + p])
    }

    /// Output columns `n`.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Depth `k`.
    pub fn depth(&self) -> usize {
        self.k
    }

    /// Bytes held by the quantized panels (the resident weight cost).
    pub fn weight_bytes(&self) -> usize {
        self.panels.len() * 2
    }

    /// `C = A · widen(B)` with `A: [m, k]` row-major, `C: [m, n]` fully
    /// overwritten. Accumulation is f32, bit-identical to
    /// [`crate::gemm::gemm`] over the widened weights (same `KC` splits,
    /// same micro-kernel) — pinned by tests.
    ///
    /// # Panics
    /// Panics if slice lengths disagree with `m` and the packed shape.
    pub fn matmul(&self, m: usize, a: &[f32], c: &mut [f32]) {
        let (k, n) = (self.k, self.n);
        assert_eq!(a.len(), m * k, "bf16 gemm lhs length mismatch");
        assert_eq!(c.len(), m * n, "bf16 gemm output length mismatch");
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            c.fill(0.0);
            return;
        }
        let kernel = self.kernel;
        let (mr, nr) = (kernel.mr, kernel.nr);
        let n_panels = n.div_ceil(nr);
        let parallel = m * k * n >= PAR_FLOP_THRESHOLD && gemm::effective_threads() > 1;
        let mut off = 0;
        for pc in (0..k).step_by(gemm::KC) {
            let kb = gemm::KC.min(k - pc);
            let first = pc == 0;
            let slab = &self.panels[off..off + n_panels * nr * kb];
            off += n_panels * nr * kb;
            // Contiguous u16 → f32 widen of one depth slab: the entire
            // per-call "packing" cost of the bf16 path.
            let (mut b_buf, b_off) = gemm::take_scratch_aligned(slab.len());
            let b_pack = &mut b_buf[b_off..b_off + slab.len()];
            for (d, &q) in b_pack.iter_mut().zip(slab) {
                *d = widen_bf16(q);
            }
            let b_pack = &b_buf[b_off..b_off + slab.len()];
            let run_block = |i0: usize, c_block: &mut [f32]| {
                let mb = gemm::MC.min(m - i0);
                let a_len = mb.div_ceil(mr) * mr * kb;
                let (mut a_buf, a_off) = gemm::take_scratch_aligned(a_len);
                let a_pack = &mut a_buf[a_off..a_off + a_len];
                gemm::pack_a(mr, a_pack, a, k, 1, i0, mb, pc, kb);
                gemm::macro_block(kernel, a_pack, b_pack, c_block, mb, kb, n, n, 0, first);
            };
            if parallel {
                c.par_chunks_mut(gemm::MC * n)
                    .enumerate()
                    .for_each(|(bi, c_block)| run_block(bi * gemm::MC, c_block));
            } else {
                for (bi, c_block) in c.chunks_mut(gemm::MC * n).enumerate() {
                    run_block(bi * gemm::MC, c_block);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, MatLayout};

    #[test]
    fn widen_is_exact_and_quantize_round_trips_short_mantissas() {
        for x in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, -4.0, 1.5, 0.15625, 384.0, 2.0f32.powi(100)] {
            // ≤7 mantissa bits: bf16 represents these exactly.
            assert_eq!(widen_bf16(quantize_bf16(x)).to_bits(), x.to_bits(), "{x}");
        }
        assert_eq!(widen_bf16(quantize_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(widen_bf16(quantize_bf16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(widen_bf16(quantize_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn quantize_rounds_to_nearest_even() {
        // 0x3F80_8000 is exactly halfway between bf16 0x3F80 and 0x3F81:
        // ties go to the even mantissa.
        assert_eq!(quantize_bf16(f32::from_bits(0x3F80_8000)), 0x3F80);
        assert_eq!(quantize_bf16(f32::from_bits(0x3F81_8000)), 0x3F82);
        // Just above/below the tie round to nearest.
        assert_eq!(quantize_bf16(f32::from_bits(0x3F80_8001)), 0x3F81);
        assert_eq!(quantize_bf16(f32::from_bits(0x3F80_7FFF)), 0x3F80);
        // Mantissa carry ripples into the exponent: 1.9999999 -> 2.0.
        assert_eq!(widen_bf16(quantize_bf16(1.999_999_9)), 2.0);
        // Overflow rounds to inf.
        assert_eq!(widen_bf16(quantize_bf16(f32::MAX)), f32::INFINITY);
    }

    #[test]
    fn quantization_error_is_within_a_half_ulp() {
        // |x - widen(q(x))| <= 2^-8 |x| for normal-range x (half of bf16's
        // 2^-7 mantissa step).
        let mut s = 123u32;
        for _ in 0..10_000 {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let e = (s >> 8) % 60;
            let x = f32::from_bits((s >> 9 << 9) | 1).abs() % 1.0e20 * (2.0f32).powi(e as i32 - 30);
            if !x.is_finite() || x == 0.0 || x.abs() < f32::MIN_POSITIVE * 256.0 {
                continue;
            }
            let rt = widen_bf16(quantize_bf16(x));
            assert!(
                (f64::from(rt) - f64::from(x)).abs() <= f64::from(x.abs()) * 2.0f64.powi(-8),
                "{x:e} -> {rt:e}"
            );
        }
    }

    #[test]
    fn packed_matmul_is_bit_identical_to_f32_gemm_on_widened_weights() {
        // Shapes straddle tile and KC boundaries.
        for &(m, k, n) in &[(1, 1, 1), (7, 11, 32), (13, 300, 49), (70, 64, 17)] {
            let mut s = (m * 1000 + k * 10 + n) as u32;
            let mut next = move || {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 16) as i32 % 1001 - 500) as f32 / 256.0
            };
            let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
            let w: Vec<f32> = (0..n * k).map(|_| next()).collect(); // [n, k]
            let packed = PackedBf16Gemm::from_nt_weight(&w, n, k);
            assert_eq!(packed.cols(), n);
            assert_eq!(packed.depth(), k);
            let mut got = vec![f32::NAN; m * n];
            packed.matmul(m, &a, &mut got);
            // Widen the quantized weights and run the ordinary f32 GEMM.
            let widened: Vec<f32> = w.iter().map(|&x| widen_bf16(quantize_bf16(x))).collect();
            let mut want = vec![f32::NAN; m * n];
            gemm(m, k, n, &a, MatLayout::Normal, &widened, MatLayout::Transposed, &mut want);
            for (i, (&g, &wv)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), wv.to_bits(), "{m}x{k}x{n} elem {i}: {g:e} vs {wv:e}");
            }
        }
    }

    #[test]
    fn k_zero_zeroes_output() {
        let packed = PackedBf16Gemm::pack(0, 3, |_, _| unreachable!());
        let mut c = vec![5.0f32; 6];
        packed.matmul(2, &[], &mut c);
        assert!(c.iter().all(|&v| v == 0.0));
    }
}
