//! bf16 (bfloat16) storage and compute, for frozen-weight GEMMs.
//!
//! bf16 is the top 16 bits of an f32: 1 sign + 8 exponent + 7 mantissa
//! bits. Widening back to f32 is *exact* (a 16-bit left shift); only
//! quantization rounds, by round-to-nearest-even on the truncated 16
//! mantissa bits (saturating at the largest finite bf16 — see
//! [`quantize_bf16`]). Two tiers build on that, with distinct numerical
//! contracts:
//!
//! * **bf16-store** ([`PackedBf16Gemm::matmul`]): only the *weights* are
//!   rounded. The GEMM is the ordinary f32 GEMM evaluated on
//!   `widen(quantize(W))` — every accumulation happens in f32,
//!   bit-identically to [`crate::gemm::gemm`] on the widened weights, and
//!   the only error vs full precision is the one-time ≤2⁻⁸ relative weight
//!   rounding.
//! * **bf16-compute** ([`PackedBf16Gemm::matmul_bf16`]): *activations* are
//!   rounded too, and tiles execute `vdpbf16ps` semantics (two bf16×bf16
//!   products fused per f32 accumulation step, with DAZ/FTZ — see
//!   [`crate::simd::bf16_kernel_for`]). Explicitly looser: per-element
//!   relative error grows with both operands rounded, in exchange for
//!   double FMA throughput and half the panel bandwidth on `avx512bf16`
//!   hosts. Native and emulated routes are bit-identical on finite inputs.
//!
//! [`PackedBf16Gemm`] holds a *frozen* right-hand side prepacked into the
//! active micro-kernel's `nr`-column panel layout at quantization time,
//! stored as depth-pair `u32`s (`(hi << 16) | lo`) so one buffer serves
//! both tiers. Serving decoders multiply against the same weights millions
//! of times, so packing once buys back the per-call `pack_b` walk; the
//! per-call cost that remains is a contiguous widen of one `KC`-deep slab
//! (store tier) or a quantizing `pack_a` of the activations (compute tier).

use crate::gemm::{self, PAR_FLOP_THRESHOLD};
use crate::simd::{self, Bf16Kernel, Kernel};
use rayon::prelude::*;

/// Quantizes an f32 to bf16 by round-to-nearest-even, with explicit
/// special-value semantics:
///
/// * NaN stays NaN — the sign and top payload bits are kept and the quiet
///   bit is forced, so a payload living only in the truncated low mantissa
///   bits cannot collapse the value to ±inf.
/// * ±inf map to bf16 ±inf.
/// * *Finite* values whose RNE rounding would overflow (anything beyond
///   the last finite bf16, `f32::MAX` included) **saturate** to ±`0x7F7F`
///   (±3.3895×10³⁸) instead of silently widening to ±inf: a finite weight
///   must never become an infinity that poisons a whole accumulator chain.
pub fn quantize_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Add 0x7FFF + (lsb of the kept mantissa): ties go to the even kept
    // mantissa, carries ripple into the exponent exactly as RNE requires.
    let round = ((bits >> 16) & 1) + 0x7FFF;
    let q = (bits.wrapping_add(round) >> 16) as u16;
    if q & 0x7FFF == 0x7F80 && x.is_finite() {
        // Finite overflow: saturate to the largest finite bf16.
        (q & 0x8000) | 0x7F7F
    } else {
        q
    }
}

/// Widens a bf16 back to f32 — exact, by construction.
pub fn widen_bf16(q: u16) -> f32 {
    f32::from_bits(u32::from(q) << 16)
}

/// Quantizes a slice ([`quantize_bf16`] elementwise).
pub fn quantize_slice(src: &[f32]) -> Vec<u16> {
    src.iter().map(|&x| quantize_bf16(x)).collect()
}

/// Widens a slice ([`widen_bf16`] elementwise).
pub fn widen_slice(src: &[u16]) -> Vec<f32> {
    src.iter().map(|&q| widen_bf16(q)).collect()
}

/// Reinterprets pooled f32 scratch as u32 storage (same size, same
/// alignment, every bit pattern valid for both); the caller fully
/// overwrites it before reading.
fn as_u32_mut(s: &mut [f32]) -> &mut [u32] {
    // SAFETY: f32 and u32 are both 4-byte POD with 4-byte alignment; the
    // slice covers the same memory exactly.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<u32>(), s.len()) }
}

/// A `[k, n]` right-hand side quantized to bf16 and prepacked into the
/// active micro-kernel's panel layout: for each `KC`-deep depth block,
/// `nr`-column panels stored row-major over *depth pairs*
/// (`panel[p2*nr + j]` is the `u32` pair `(hi << 16) | lo` holding depths
/// `2·p2` and `2·p2 + 1`; an odd block depth pads the last `hi` with a
/// zero bf16, edge columns are fully zero).
///
/// The packing kernel (tile shape) is captured at construction through the
/// same cached dispatch the f32 GEMMs use, and both the widen (store-tier)
/// and `vdpbf16ps` (compute-tier) routes derive from it for the packed
/// matrix's whole lifetime — so a later
/// [`crate::simd::set_backend_override`] (or `MFN_PORTABLE_KERNELS` /
/// `MFN_EMULATED_BF16` in a fresh process) never desynchronizes layout and
/// micro-kernel.
#[derive(Clone)]
pub struct PackedBf16Gemm {
    k: usize,
    n: usize,
    kernel: &'static Kernel,
    panels: Vec<u32>,
}

// Hand-written: the kernel field is a fn table, not worth printing.
impl std::fmt::Debug for PackedBf16Gemm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedBf16Gemm")
            .field("k", &self.k)
            .field("n", &self.n)
            .field("backend", &self.kernel.backend.name())
            .field("weight_bytes", &self.weight_bytes())
            .finish()
    }
}

impl PackedBf16Gemm {
    /// Packs `op(B)` given by `src(p, j)` (`p < k`, `j < n`), quantizing
    /// each element once.
    pub fn pack(k: usize, n: usize, src: impl Fn(usize, usize) -> f32) -> Self {
        // Row count is unknown at pack time; decode batches are row-rich,
        // so size the tile choice by `n` alone (large-`m` limit).
        let kernel = simd::active_kernel_for(1 << 20, n);
        let nr = kernel.nr;
        let n_panels = n.div_ceil(nr);
        let mut panels = Vec::new();
        for pc in (0..k).step_by(gemm::KC) {
            let kb = gemm::KC.min(k - pc);
            let kb2 = kb.div_ceil(2);
            for pj in 0..n_panels {
                let j0 = pj * nr;
                let cols = nr.min(n - j0);
                let base = panels.len();
                panels.resize(base + nr * kb2, 0u32);
                for (p2, row) in panels[base..].chunks_exact_mut(nr).enumerate() {
                    for (jj, d) in row.iter_mut().take(cols).enumerate() {
                        let lo = u32::from(quantize_bf16(src(pc + 2 * p2, j0 + jj)));
                        let hi = if 2 * p2 + 1 < kb {
                            u32::from(quantize_bf16(src(pc + 2 * p2 + 1, j0 + jj)))
                        } else {
                            0
                        };
                        *d = (hi << 16) | lo;
                    }
                }
            }
        }
        PackedBf16Gemm { k, n, kernel, panels }
    }

    /// Packs a weight stored `[n, k]` row-major as `op(B) = Wᵀ` — the
    /// layout `matmul_nt` consumes (`x @ Wᵀ` for a `Linear` layer).
    pub fn from_nt_weight(w: &[f32], n: usize, k: usize) -> Self {
        assert_eq!(w.len(), n * k, "bf16 pack weight length mismatch");
        Self::pack(k, n, |p, j| w[j * k + p])
    }

    /// Output columns `n`.
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Depth `k`.
    pub fn depth(&self) -> usize {
        self.k
    }

    /// Bytes held by the quantized panels (the resident weight cost).
    pub fn weight_bytes(&self) -> usize {
        self.panels.len() * 4
    }

    /// `C = A · widen(B)` with `A: [m, k]` row-major, `C: [m, n]` fully
    /// overwritten. Accumulation is f32, bit-identical to
    /// [`crate::gemm::gemm`] over the widened weights (same `KC` splits,
    /// same micro-kernel) — pinned by tests. This is the **bf16-store**
    /// tier: activations stay exact f32.
    ///
    /// # Panics
    /// Panics if slice lengths disagree with `m` and the packed shape.
    pub fn matmul(&self, m: usize, a: &[f32], c: &mut [f32]) {
        let (k, n) = (self.k, self.n);
        assert_eq!(a.len(), m * k, "bf16 gemm lhs length mismatch");
        assert_eq!(c.len(), m * n, "bf16 gemm output length mismatch");
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            c.fill(0.0);
            return;
        }
        let kernel = self.kernel;
        let (mr, nr) = (kernel.mr, kernel.nr);
        let n_panels = n.div_ceil(nr);
        let parallel = m * k * n >= PAR_FLOP_THRESHOLD && gemm::effective_threads() > 1;
        let mut off = 0;
        for pc in (0..k).step_by(gemm::KC) {
            let kb = gemm::KC.min(k - pc);
            let kb2 = kb.div_ceil(2);
            let first = pc == 0;
            let slab = &self.panels[off..off + n_panels * nr * kb2];
            off += n_panels * nr * kb2;
            // Contiguous pair → f32 widen of one depth slab, de-interleaved
            // back to the f32 kernels' per-depth row order: the entire
            // per-call "packing" cost of the store tier.
            let b_len = n_panels * nr * kb;
            let (mut b_buf, b_off) = gemm::take_scratch_aligned(b_len);
            let b_pack = &mut b_buf[b_off..b_off + b_len];
            for (pair_panel, f32_panel) in
                slab.chunks_exact(nr * kb2).zip(b_pack.chunks_exact_mut(nr * kb))
            {
                for (p2, prow) in pair_panel.chunks_exact(nr).enumerate() {
                    for (j, &pair) in prow.iter().enumerate() {
                        f32_panel[2 * p2 * nr + j] = widen_bf16(pair as u16);
                    }
                    if 2 * p2 + 1 < kb {
                        for (j, &pair) in prow.iter().enumerate() {
                            f32_panel[(2 * p2 + 1) * nr + j] = widen_bf16((pair >> 16) as u16);
                        }
                    }
                }
            }
            let b_pack = &b_buf[b_off..b_off + b_len];
            let run_block = |i0: usize, c_block: &mut [f32]| {
                let mb = gemm::MC.min(m - i0);
                let a_len = mb.div_ceil(mr) * mr * kb;
                let (mut a_buf, a_off) = gemm::take_scratch_aligned(a_len);
                let a_pack = &mut a_buf[a_off..a_off + a_len];
                gemm::pack_a(mr, a_pack, a, k, 1, i0, mb, pc, kb);
                gemm::macro_block(kernel, a_pack, b_pack, c_block, mb, kb, n, n, 0, first);
            };
            if parallel {
                c.par_chunks_mut(gemm::MC * n)
                    .enumerate()
                    .for_each(|(bi, c_block)| run_block(bi * gemm::MC, c_block));
            } else {
                for (bi, c_block) in c.chunks_mut(gemm::MC * n).enumerate() {
                    run_block(bi * gemm::MC, c_block);
                }
            }
        }
    }

    /// `C = quantize(A) · B` in `vdpbf16ps` arithmetic — the **bf16-compute**
    /// tier. `A: [m, k]` row-major is quantized to bf16 during packing
    /// (reusing the pooled workspace; the packed weights are consumed
    /// directly, no widen); `C: [m, n]` is fully overwritten, accumulated in
    /// f32. The same `KC` depth splits as every other tier apply, and the
    /// native/emulated routes are bit-identical on finite inputs, so results
    /// are reproducible across hosts — but *both* operands are rounded and
    /// each accumulation step fuses a depth pair with DAZ/FTZ, so this tier
    /// carries its own, looser error budget (see the reftest rows).
    ///
    /// # Panics
    /// Panics if slice lengths disagree with `m` and the packed shape.
    pub fn matmul_bf16(&self, m: usize, a: &[f32], c: &mut [f32]) {
        let (k, n) = (self.k, self.n);
        assert_eq!(a.len(), m * k, "bf16 gemm lhs length mismatch");
        assert_eq!(c.len(), m * n, "bf16 gemm output length mismatch");
        if m == 0 || n == 0 {
            return;
        }
        if k == 0 {
            c.fill(0.0);
            return;
        }
        let bf16_kernel = simd::bf16_kernel_for(self.kernel);
        let (mr, nr) = (bf16_kernel.mr, bf16_kernel.nr);
        debug_assert_eq!((mr, nr), (self.kernel.mr, self.kernel.nr));
        // The native route has two bit-identical realizations; calibration
        // picks per process. The widen-FMA one bypasses pair tiles: operands
        // widen to f32 (hi-then-lo pair order) and the ordinary f32 tile
        // runs under MXCSR FTZ/DAZ.
        let fma_route = bf16_kernel.native && simd::bf16_native_variant_is_fma();
        let n_panels = n.div_ceil(nr);
        let parallel = m * k * n >= PAR_FLOP_THRESHOLD && gemm::effective_threads() > 1;
        let mut off = 0;
        for pc in (0..k).step_by(gemm::KC) {
            let kb = gemm::KC.min(k - pc);
            let kb2 = kb.div_ceil(2);
            let first = pc == 0;
            let slab = &self.panels[off..off + n_panels * nr * kb2];
            off += n_panels * nr * kb2;
            if fma_route {
                // Widen the weight slab once per call (amortized over every
                // m-block), keeping the chain's hi-then-lo step order; the
                // pad half of an odd depth widens to 0.0 like its zero bf16.
                let kw = 2 * kb2;
                let b_len = n_panels * nr * kw;
                let (mut b_buf, b_off) = gemm::take_scratch_aligned(b_len);
                let b_w = &mut b_buf[b_off..b_off + b_len];
                for (pair_panel, f32_panel) in
                    slab.chunks_exact(nr * kb2).zip(b_w.chunks_exact_mut(nr * kw))
                {
                    for (p2, prow) in pair_panel.chunks_exact(nr).enumerate() {
                        for (j, &pair) in prow.iter().enumerate() {
                            f32_panel[2 * p2 * nr + j] = f32::from_bits(pair & 0xFFFF_0000);
                            f32_panel[(2 * p2 + 1) * nr + j] = f32::from_bits(pair << 16);
                        }
                    }
                }
                let b_w = &b_buf[b_off..b_off + b_len];
                for_each_block(parallel, n, c, |i0, c_block| {
                    let mb = gemm::MC.min(m - i0);
                    let a_len = mb.div_ceil(mr) * mr * kw;
                    let (mut a_buf, a_off) = gemm::take_scratch_aligned(a_len);
                    let a_pack = &mut a_buf[a_off..a_off + a_len];
                    pack_a_bf16_widened(mr, a_pack, a, k, i0, mb, pc, kb);
                    macro_block_bf16_fma(self.kernel, a_pack, b_w, c_block, mb, kw, n, n, first);
                });
            } else {
                // The packed weights are already in the pair layout the
                // kernel consumes: zero per-call work on the B side.
                for_each_block(parallel, n, c, |i0, c_block| {
                    let mb = gemm::MC.min(m - i0);
                    let a_len = mb.div_ceil(mr) * mr * kb2;
                    let (mut a_buf, a_off) = gemm::take_scratch_aligned(a_len);
                    let a_pack = as_u32_mut(&mut a_buf[a_off..a_off + a_len]);
                    pack_a_bf16(mr, a_pack, a, k, i0, mb, pc, kb);
                    macro_block_bf16(bf16_kernel, a_pack, slab, c_block, mb, kb2, n, n, first);
                });
            }
        }
    }
}

/// Runs `run(i0, c_block)` over `MC`-row output blocks, in parallel when
/// the caller's flop heuristic asked for it.
fn for_each_block(parallel: bool, n: usize, c: &mut [f32], run: impl Fn(usize, &mut [f32]) + Sync) {
    if parallel {
        c.par_chunks_mut(gemm::MC * n)
            .enumerate()
            .for_each(|(bi, c_block)| run(bi * gemm::MC, c_block));
    } else {
        for (bi, c_block) in c.chunks_mut(gemm::MC * n).enumerate() {
            run(bi * gemm::MC, c_block);
        }
    }
}

/// Packs an `mb × kb` block of row-major `A` (rows `i0..`, depth `p0..`,
/// row stride `k`) into mr-row pair panels, quantizing each element to bf16
/// on the way: panel `pi` holds rows `i0 + pi*mr ..` at
/// `dst[pi*mr*kb2 + p2*mr + i]`, pairs packed `(hi << 16) | lo` exactly as
/// the weight panels. Rows past `mb` (and an odd depth's trailing `hi`)
/// are zero.
#[allow(clippy::too_many_arguments)]
fn pack_a_bf16(
    mr: usize,
    dst: &mut [u32],
    src: &[f32],
    k: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
) {
    let kb2 = kb.div_ceil(2);
    let mut qrow = [0.0f32; gemm::KC];
    for (pi, panel) in dst.chunks_exact_mut(mr * kb2).enumerate() {
        let i = pi * mr;
        let rows = mr.min(mb - i);
        if rows < mr {
            panel.fill(0);
        }
        for ii in 0..rows {
            let srow = &src[(i0 + i + ii) * k + p0..][..kb];
            // Vectorized quantize of the contiguous row, then a cheap
            // bit-move scatter into the pair layout (widen is exact, so
            // the top 16 bits of the widened value *are* the bf16).
            let qr = &mut qrow[..kb];
            simd::quantize_widen_into(qr, srow);
            for p2 in 0..kb2 {
                let lo = qr[2 * p2].to_bits() >> 16;
                let hi = if 2 * p2 + 1 < kb { qr[2 * p2 + 1].to_bits() >> 16 } else { 0 };
                panel[p2 * mr + ii] = (hi << 16) | lo;
            }
        }
    }
}

/// The widen-FMA twin of [`pack_a_bf16`]: quantizes each element to bf16,
/// widens it straight back to f32, and stores panels in the chain's
/// hi-then-lo step order (depth `2·p2 + 1` at step row `2·p2`, depth
/// `2·p2` right after), matching the widened weight slab. Rows past `mb`
/// and an odd depth's pad step are zero.
#[allow(clippy::too_many_arguments)]
fn pack_a_bf16_widened(
    mr: usize,
    dst: &mut [f32],
    src: &[f32],
    k: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
) {
    let kw = kb.div_ceil(2) * 2;
    let mut qrow = [0.0f32; gemm::KC];
    for (pi, panel) in dst.chunks_exact_mut(mr * kw).enumerate() {
        let i = pi * mr;
        let rows = mr.min(mb - i);
        if rows < mr {
            panel.fill(0.0);
        }
        for ii in 0..rows {
            let srow = &src[(i0 + i + ii) * k + p0..][..kb];
            let qr = &mut qrow[..kb];
            simd::quantize_widen_into(qr, srow);
            for p2 in 0..kb / 2 {
                panel[2 * p2 * mr + ii] = qr[2 * p2 + 1];
                panel[(2 * p2 + 1) * mr + ii] = qr[2 * p2];
            }
            if kb % 2 == 1 {
                panel[(kw - 2) * mr + ii] = 0.0;
                panel[(kw - 1) * mr + ii] = qr[kb - 1];
            }
        }
    }
}

/// Runs every micro-tile of one widened `mb × kw` A block against the
/// widened `kw × nb` B slab through the f32 micro-kernel under MXCSR
/// FTZ/DAZ ([`simd::run_f32_micro_ftz_daz`]) — the widen-FMA realization
/// of [`macro_block_bf16`]. Write-back happens with MXCSR restored, so
/// cross-slab accumulation keeps default (unflushed) f32 behavior exactly
/// like every other route.
#[allow(clippy::too_many_arguments)]
fn macro_block_bf16_fma(
    kernel: &Kernel,
    a_pack: &[f32],
    b_pack: &[f32],
    c_block: &mut [f32],
    mb: usize,
    kw: usize,
    nb: usize,
    row_stride: usize,
    first: bool,
) {
    let (mr, nr) = (kernel.mr, kernel.nr);
    #[repr(align(64))]
    struct AccTile([f32; simd::MAX_MR * simd::MAX_NR]);
    let mut acc = AccTile([0.0; simd::MAX_MR * simd::MAX_NR]);
    let acc = &mut acc.0[..mr * nr];
    for (pj, b_panel) in b_pack.chunks_exact(nr * kw).enumerate() {
        let j = pj * nr;
        let cols = nr.min(nb - j);
        for (pi, a_panel) in a_pack.chunks_exact(mr * kw).enumerate() {
            let i = pi * mr;
            let rows = mr.min(mb - i);
            simd::run_f32_micro_ftz_daz(kernel, kw, a_panel, b_panel, acc);
            for ii in 0..rows {
                let row = &acc[ii * nr..][..cols];
                let dst = &mut c_block[(i + ii) * row_stride + j..][..cols];
                if first {
                    dst.copy_from_slice(row);
                } else {
                    for (d, &v) in dst.iter_mut().zip(row) {
                        *d += v;
                    }
                }
            }
        }
    }
}

/// Runs every micro-tile of one pair-packed `mb × kb` A block against the
/// pair-packed `kb × nb` B slab — the bf16 twin of
/// [`crate::gemm::macro_block`], with identical edge masking and
/// first/accumulate write-back.
#[allow(clippy::too_many_arguments)]
fn macro_block_bf16(
    kernel: &Bf16Kernel,
    a_pack: &[u32],
    b_pack: &[u32],
    c_block: &mut [f32],
    mb: usize,
    kb2: usize,
    nb: usize,
    row_stride: usize,
    first: bool,
) {
    let (mr, nr) = (kernel.mr, kernel.nr);
    // Cache-line aligned accumulator tile so the micro-kernel's stores never
    // straddle lines.
    #[repr(align(64))]
    struct AccTile([f32; simd::MAX_MR * simd::MAX_NR]);
    let mut acc = AccTile([0.0; simd::MAX_MR * simd::MAX_NR]);
    let acc = &mut acc.0[..mr * nr];
    for (pj, b_panel) in b_pack.chunks_exact(nr * kb2).enumerate() {
        let j = pj * nr;
        let cols = nr.min(nb - j);
        for (pi, a_panel) in a_pack.chunks_exact(mr * kb2).enumerate() {
            let i = pi * mr;
            let rows = mr.min(mb - i);
            (kernel.micro)(kb2, a_panel, b_panel, acc);
            // Write-back masks the zero-padded lanes of edge tiles.
            for ii in 0..rows {
                let row = &acc[ii * nr..][..cols];
                let dst = &mut c_block[(i + ii) * row_stride + j..][..cols];
                if first {
                    dst.copy_from_slice(row);
                } else {
                    for (d, &v) in dst.iter_mut().zip(row) {
                        *d += v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::{gemm, MatLayout};

    #[test]
    fn widen_is_exact_and_quantize_round_trips_short_mantissas() {
        for x in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, -4.0, 1.5, 0.15625, 384.0, 2.0f32.powi(100)] {
            // ≤7 mantissa bits: bf16 represents these exactly.
            assert_eq!(widen_bf16(quantize_bf16(x)).to_bits(), x.to_bits(), "{x}");
        }
        assert_eq!(widen_bf16(quantize_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(widen_bf16(quantize_bf16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(widen_bf16(quantize_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn quantize_rounds_to_nearest_even() {
        // 0x3F80_8000 is exactly halfway between bf16 0x3F80 and 0x3F81:
        // ties go to the even mantissa.
        assert_eq!(quantize_bf16(f32::from_bits(0x3F80_8000)), 0x3F80);
        assert_eq!(quantize_bf16(f32::from_bits(0x3F81_8000)), 0x3F82);
        // Just above/below the tie round to nearest.
        assert_eq!(quantize_bf16(f32::from_bits(0x3F80_8001)), 0x3F81);
        assert_eq!(quantize_bf16(f32::from_bits(0x3F80_7FFF)), 0x3F80);
        // Mantissa carry ripples into the exponent: 1.9999999 -> 2.0.
        assert_eq!(widen_bf16(quantize_bf16(1.999_999_9)), 2.0);
    }

    #[test]
    fn finite_overflow_saturates_and_specials_survive() {
        // Finite values past the last finite bf16 saturate instead of
        // widening to inf — f32::MAX, the former RNE tie-to-inf point, and
        // the first value that would round up all land on ±0x7F7F.
        for bits in [0x7F7F_FFFFu32, 0x7F7F_8000, 0x7F7F_8001, 0x7F80_0000u32 - 1] {
            assert_eq!(quantize_bf16(f32::from_bits(bits)), 0x7F7F, "{bits:#010x}");
            assert_eq!(quantize_bf16(f32::from_bits(bits | 0x8000_0000)), 0xFF7F);
        }
        assert_eq!(quantize_bf16(f32::MAX), 0x7F7F);
        assert_eq!(quantize_bf16(f32::MIN), 0xFF7F);
        // Just below the rounding threshold still rounds normally.
        assert_eq!(quantize_bf16(f32::from_bits(0x7F7F_7FFF)), 0x7F7F);
        assert_eq!(quantize_bf16(f32::from_bits(0x7F7E_8001)), 0x7F7F);
        // True infinities pass through.
        assert_eq!(quantize_bf16(f32::INFINITY), 0x7F80);
        assert_eq!(quantize_bf16(f32::NEG_INFINITY), 0xFF80);
        // A NaN whose payload lives only in the truncated low mantissa bits
        // must stay NaN (the quiet bit is forced), never become inf.
        for bits in [0x7F80_0001u32, 0x7F80_FFFF, 0xFF80_0001, 0x7FC0_0000, 0xFFFF_FFFF] {
            let q = quantize_bf16(f32::from_bits(bits));
            assert!(widen_bf16(q).is_nan(), "{bits:#010x} -> {q:#06x}");
            assert_eq!(q >> 15, (bits >> 31) as u16, "sign preserved");
        }
    }

    #[test]
    fn quantization_error_is_within_a_half_ulp() {
        // |x - widen(q(x))| <= 2^-8 |x| for normal-range x (half of bf16's
        // 2^-7 mantissa step).
        let mut s = 123u32;
        for _ in 0..10_000 {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            let e = (s >> 8) % 60;
            let x = f32::from_bits((s >> 9 << 9) | 1).abs() % 1.0e20 * (2.0f32).powi(e as i32 - 30);
            if !x.is_finite() || x == 0.0 || x.abs() < f32::MIN_POSITIVE * 256.0 {
                continue;
            }
            let rt = widen_bf16(quantize_bf16(x));
            assert!(
                (f64::from(rt) - f64::from(x)).abs() <= f64::from(x.abs()) * 2.0f64.powi(-8),
                "{x:e} -> {rt:e}"
            );
        }
    }

    /// Shapes straddling tile, pair (odd `k`) and KC boundaries, shared by
    /// the store- and compute-tier tests.
    const SHAPES: [(usize, usize, usize); 6] =
        [(1, 1, 1), (7, 11, 32), (13, 300, 49), (70, 64, 17), (5, 257, 33), (3, 513, 40)];

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_mul(1664525).wrapping_add(1013904223);
                ((s >> 16) as i32 % 1001 - 500) as f32 / 256.0
            })
            .collect()
    }

    #[test]
    fn packed_matmul_is_bit_identical_to_f32_gemm_on_widened_weights() {
        for &(m, k, n) in &SHAPES {
            let a = fill(m * k, (m * 1000 + k * 10 + n) as u32);
            let w = fill(n * k, (k * 1000 + n) as u32); // [n, k]
            let packed = PackedBf16Gemm::from_nt_weight(&w, n, k);
            assert_eq!(packed.cols(), n);
            assert_eq!(packed.depth(), k);
            let mut got = vec![f32::NAN; m * n];
            packed.matmul(m, &a, &mut got);
            // Widen the quantized weights and run the ordinary f32 GEMM.
            let widened: Vec<f32> = w.iter().map(|&x| widen_bf16(quantize_bf16(x))).collect();
            let mut want = vec![f32::NAN; m * n];
            gemm(m, k, n, &a, MatLayout::Normal, &widened, MatLayout::Transposed, &mut want);
            for (i, (&g, &wv)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.to_bits(), wv.to_bits(), "{m}x{k}x{n} elem {i}: {g:e} vs {wv:e}");
            }
        }
    }

    /// The compute tier against a scalar transcription of its contract:
    /// per output element, KC-split depth loop over quantized pairs with
    /// the pinned `vdpbf16ps` chain (hi-then-lo fused steps). Runs on every
    /// host via the emulated route; on `avx512bf16` hosts the next test
    /// pins native ≡ emulated, closing the loop to hardware.
    #[test]
    fn matmul_bf16_matches_scalar_pair_chain() {
        for &(m, k, n) in &SHAPES {
            let a = fill(m * k, (m * 7 + k * 3 + n) as u32);
            let w = fill(n * k, (k * 31 + n) as u32); // [n, k]
            let packed = PackedBf16Gemm::from_nt_weight(&w, n, k);
            let mut got = vec![f32::NAN; m * n];
            packed.matmul_bf16(m, &a, &mut got);
            let qa = quantize_slice(&a);
            let qw = quantize_slice(&w);
            let daz = |q: u16| {
                if q & 0x7F80 == 0 {
                    f32::from_bits(u32::from(q & 0x8000) << 16)
                } else {
                    widen_bf16(q)
                }
            };
            let ftz = |x: f32| {
                if x.to_bits() & 0x7F80_0000 == 0 {
                    f32::from_bits(x.to_bits() & 0x8000_0000)
                } else {
                    x
                }
            };
            for i in 0..m {
                for j in 0..n {
                    let mut total = 0.0f32;
                    for pc in (0..k).step_by(gemm::KC) {
                        let kb = gemm::KC.min(k - pc);
                        let mut acc = 0.0f32;
                        for p2 in 0..kb.div_ceil(2) {
                            let p = pc + 2 * p2;
                            let (a_lo, w_lo) = (daz(qa[i * k + p]), daz(qw[j * k + p]));
                            let (a_hi, w_hi) = if 2 * p2 + 1 < kb {
                                (daz(qa[i * k + p + 1]), daz(qw[j * k + p + 1]))
                            } else {
                                (0.0, 0.0)
                            };
                            acc = ftz(acc);
                            acc = ftz(a_hi.mul_add(w_hi, acc));
                            acc = ftz(a_lo.mul_add(w_lo, acc));
                        }
                        total += acc;
                    }
                    let g = got[i * n + j];
                    assert_eq!(
                        g.to_bits(),
                        total.to_bits(),
                        "{m}x{k}x{n} ({i},{j}): {g:e} vs {total:e}"
                    );
                }
            }
        }
    }

    /// Native `vdpbf16ps` and the emulated route agree bit-for-bit through
    /// the full blocked driver (skipped, trivially green, without the
    /// hardware).
    #[test]
    fn matmul_bf16_native_and_emulated_routes_agree_bitwise() {
        if !simd::bf16_compute_is_native() {
            return;
        }
        for &(m, k, n) in &SHAPES {
            let a = fill(m * k, (m * 13 + k + n * 5) as u32);
            let w = fill(n * k, (k * 17 + n) as u32);
            let packed = PackedBf16Gemm::from_nt_weight(&w, n, k);
            let mut native = vec![f32::NAN; m * n];
            simd::set_bf16_emulated_override(Some(false));
            packed.matmul_bf16(m, &a, &mut native);
            let mut emulated = vec![f32::NAN; m * n];
            simd::set_bf16_emulated_override(Some(true));
            packed.matmul_bf16(m, &a, &mut emulated);
            simd::set_bf16_emulated_override(None);
            for (i, (&g, &e)) in native.iter().zip(&emulated).enumerate() {
                assert_eq!(g.to_bits(), e.to_bits(), "{m}x{k}x{n} elem {i}: {g:e} vs {e:e}");
            }
        }
    }

    /// Both native realizations — `vdpbf16ps` pair tiles and the widen-FMA
    /// transcription — produce the same bits as the emulated route through
    /// the full blocked driver, whatever calibration would have picked
    /// (skipped, trivially green, without the native route).
    #[test]
    fn matmul_bf16_native_variants_agree_bitwise() {
        #[cfg(target_arch = "x86_64")]
        {
            if !simd::bf16_compute_is_native() {
                return;
            }
            for variant in [simd::VARIANT_DP, simd::VARIANT_FMA] {
                simd::set_bf16_native_variant(Some(variant));
                for &(m, k, n) in &SHAPES {
                    let a = fill(m * k, (m * 11 + k * 5 + n) as u32);
                    let w = fill(n * k, (k * 23 + n) as u32);
                    let packed = PackedBf16Gemm::from_nt_weight(&w, n, k);
                    let mut native = vec![f32::NAN; m * n];
                    simd::set_bf16_emulated_override(Some(false));
                    packed.matmul_bf16(m, &a, &mut native);
                    let mut emulated = vec![f32::NAN; m * n];
                    simd::set_bf16_emulated_override(Some(true));
                    packed.matmul_bf16(m, &a, &mut emulated);
                    simd::set_bf16_emulated_override(None);
                    for (i, (&g, &e)) in native.iter().zip(&emulated).enumerate() {
                        assert_eq!(
                            g.to_bits(),
                            e.to_bits(),
                            "variant {variant} {m}x{k}x{n} elem {i}: {g:e} vs {e:e}"
                        );
                    }
                }
            }
            simd::set_bf16_native_variant(None);
        }
    }

    #[test]
    fn k_zero_zeroes_output() {
        let packed = PackedBf16Gemm::pack(0, 3, |_, _| unreachable!());
        let mut c = vec![5.0f32; 6];
        packed.matmul(2, &[], &mut c);
        assert!(c.iter().all(|&v| v == 0.0));
        let mut c = vec![5.0f32; 6];
        packed.matmul_bf16(2, &[], &mut c);
        assert!(c.iter().all(|&v| v == 0.0));
    }
}
