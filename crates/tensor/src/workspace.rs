//! Workspace buffer pool: a thread-safe freelist of size-bucketed `Vec<f32>`
//! buffers shared by every compute kernel in the training hot path.
//!
//! A training step allocates the same family of buffers over and over —
//! GEMM packing panels, im2col scratch, conv outputs, tape activations and
//! gradients. Instead of hitting the system allocator thousands of times per
//! step, buffers are checked out of a global pool and returned when dropped:
//!
//! - [`take_scratch`]/[`take_zeroed`] hand out an RAII [`WorkspaceGuard`]
//!   (auto-returns on drop) — use these for kernel-local scratch;
//! - [`take_vec_scratch`]/[`take_vec_zeroed`]/[`take_vec_capacity`] hand out a
//!   plain `Vec<f32>` for buffers that outlive the call (tensor storage);
//!   donate any buffer back with [`give_vec`] — `Tensor`'s `Drop` impl does
//!   this automatically, so the tape's per-step tensors recycle themselves.
//!
//! ## Ownership and safety rules
//!
//! - Buffers are bucketed by capacity rounded to powers of two (min
//!   [`MIN_BUCKET`] elements); smaller donations are simply freed.
//! - A *scratch* checkout has its requested length but **stale contents**
//!   (whatever the previous user left — always initialized memory, never
//!   uninitialized; there is no `unsafe` in this module). Callers must fully
//!   overwrite it. A *zeroed* checkout is `memset` to 0.0.
//! - The pool caps retained memory ([`set_capacity_bytes`], default 256 MiB)
//!   and buffers-per-bucket; excess donations are dropped on the floor, so the
//!   pool never grows beyond the cap even across long trainings.
//! - Hit/miss counters are cheap atomics, exported by the trainers as
//!   `mfn-telemetry` gauges and asserted on by the reuse tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Smallest pooled buffer, in `f32` elements. Donations below this are freed
/// immediately: tiny vectors (scalars, per-channel stats) are cheaper to
/// reallocate than to track.
pub const MIN_BUCKET: usize = 64;

/// Most buffers retained per size bucket; excess donations are freed.
const MAX_PER_BUCKET: usize = 32;

/// Number of power-of-two buckets: `MIN_BUCKET << (BUCKETS-1)` caps the
/// largest poolable buffer at 2^37 bytes — effectively unbounded.
const BUCKETS: usize = 32;

/// Aggregate statistics of the workspace pool since the last
/// [`reset_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Checkouts served from the freelist (no allocation).
    pub hits: u64,
    /// Checkouts that had to allocate.
    pub misses: u64,
    /// Buffers donated back and retained for reuse.
    pub recycled: u64,
    /// Buffers currently cached in the freelist.
    pub cached_buffers: usize,
    /// Bytes currently cached in the freelist.
    pub cached_bytes: usize,
}

struct Shelves {
    /// `shelves[b]` holds buffers with `capacity >= MIN_BUCKET << b`.
    shelves: Vec<Vec<Vec<f32>>>,
    cached_bytes: usize,
    capacity_bytes: usize,
    enabled: bool,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RECYCLED: AtomicU64 = AtomicU64::new(0);

static POOL: Mutex<Option<Shelves>> = Mutex::new(None);

fn with_pool<R>(f: impl FnOnce(&mut Shelves) -> R) -> R {
    let mut guard = POOL.lock().unwrap_or_else(|e| e.into_inner());
    let shelves = guard.get_or_insert_with(|| Shelves {
        shelves: (0..BUCKETS).map(|_| Vec::new()).collect(),
        cached_bytes: 0,
        capacity_bytes: 256 << 20,
        enabled: true,
    });
    f(shelves)
}

/// Bucket index whose capacity (`MIN_BUCKET << b`) is `>= len`.
fn bucket_for_len(len: usize) -> usize {
    let mut b = 0;
    let mut cap = MIN_BUCKET;
    while cap < len {
        cap <<= 1;
        b += 1;
    }
    b
}

/// Largest bucket index whose capacity is `<= cap` (donation side), or
/// `None` if the buffer is too small to pool.
fn bucket_for_cap(cap: usize) -> Option<usize> {
    if cap < MIN_BUCKET {
        return None;
    }
    let mut b = 0;
    while (MIN_BUCKET << (b + 1)) <= cap && b + 1 < BUCKETS {
        b += 1;
    }
    Some(b)
}

fn take_impl(len: usize, zero: bool) -> Vec<f32> {
    let b = bucket_for_len(len);
    let reused = if b < BUCKETS {
        with_pool(|p| {
            if !p.enabled {
                return None;
            }
            let v = p.shelves[b].pop()?;
            p.cached_bytes -= v.capacity() * 4;
            Some(v)
        })
    } else {
        None
    };
    match reused {
        Some(mut v) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            v.truncate(len);
            // Growing writes only the new region; stale prefix stays (scratch
            // semantics) unless a zeroed buffer was requested.
            v.resize(len, 0.0);
            if zero {
                v.fill(0.0);
            }
            v
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            let mut v = Vec::with_capacity((MIN_BUCKET << b.min(BUCKETS - 1)).max(len));
            v.resize(len, 0.0);
            v
        }
    }
}

/// Checks out a buffer of `len` elements with **stale contents** (fully
/// overwrite before reading). RAII: returns to the pool on drop.
pub fn take_scratch(len: usize) -> WorkspaceGuard {
    WorkspaceGuard { buf: take_impl(len, false) }
}

/// Checks out a buffer of `len` zeros. RAII: returns to the pool on drop.
pub fn take_zeroed(len: usize) -> WorkspaceGuard {
    WorkspaceGuard { buf: take_impl(len, true) }
}

/// Checks out a plain `Vec<f32>` of `len` elements with stale contents, for
/// storage that outlives the call (e.g. tensor data). Donate it back with
/// [`give_vec`] when done (or let `Tensor`'s `Drop` do it).
pub fn take_vec_scratch(len: usize) -> Vec<f32> {
    take_impl(len, false)
}

/// [`take_vec_scratch`] but zero-filled.
pub fn take_vec_zeroed(len: usize) -> Vec<f32> {
    take_impl(len, true)
}

/// Checks out an **empty** `Vec<f32>` with capacity `>= cap`, for
/// `push`/`extend` fill patterns that would otherwise reallocate.
pub fn take_vec_capacity(cap: usize) -> Vec<f32> {
    let mut v = take_impl(cap, false);
    v.clear();
    v
}

/// Donates a buffer to the pool. Buffers below [`MIN_BUCKET`] capacity, or
/// arriving when the pool is full/disabled, are simply freed.
pub fn give_vec(v: Vec<f32>) {
    let cap = v.capacity();
    let Some(b) = bucket_for_cap(cap) else {
        return;
    };
    with_pool(|p| {
        if p.enabled
            && p.shelves[b].len() < MAX_PER_BUCKET
            && p.cached_bytes + cap * 4 <= p.capacity_bytes
        {
            p.cached_bytes += cap * 4;
            p.shelves[b].push(v);
            RECYCLED.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// RAII checkout of a pooled buffer; derefs to `[f32]` and returns the
/// buffer to the pool when dropped.
pub struct WorkspaceGuard {
    buf: Vec<f32>,
}

impl WorkspaceGuard {
    /// Moves the buffer out of the guard (it will *not* auto-return; the
    /// caller owns it and may [`give_vec`] it later).
    pub fn detach(mut self) -> Vec<f32> {
        std::mem::take(&mut self.buf)
    }
}

impl std::ops::Deref for WorkspaceGuard {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl std::ops::DerefMut for WorkspaceGuard {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for WorkspaceGuard {
    fn drop(&mut self) {
        if !self.buf.is_empty() || self.buf.capacity() > 0 {
            give_vec(std::mem::take(&mut self.buf));
        }
    }
}

/// Current pool statistics.
pub fn stats() -> PoolStats {
    let (cached_buffers, cached_bytes) =
        with_pool(|p| (p.shelves.iter().map(Vec::len).sum(), p.cached_bytes));
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        recycled: RECYCLED.load(Ordering::Relaxed),
        cached_buffers,
        cached_bytes,
    }
}

/// Zeroes the hit/miss/recycle counters (cached buffers are kept).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    RECYCLED.store(0, Ordering::Relaxed);
}

/// Enables or disables pooling globally. Disabled, every checkout allocates
/// and every donation frees — the pre-pool allocator behaviour, kept for
/// A/B measurement in the bench harness.
pub fn set_enabled(enabled: bool) {
    with_pool(|p| p.enabled = enabled);
    if !enabled {
        clear();
    }
}

/// Sets the retained-memory cap in bytes.
pub fn set_capacity_bytes(bytes: usize) {
    with_pool(|p| p.capacity_bytes = bytes);
}

/// Frees every cached buffer (counters are kept; see [`reset_stats`]).
pub fn clear() {
    with_pool(|p| {
        for shelf in &mut p.shelves {
            shelf.clear();
        }
        p.cached_bytes = 0;
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize pool tests: they observe global counters.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn reuse_hits_the_freelist() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        reset_stats();
        let ptr = {
            let g = take_scratch(1000);
            g.as_ptr() as usize
        }; // dropped -> donated
        let g2 = take_scratch(900);
        assert_eq!(g2.as_ptr() as usize, ptr, "same bucket must reuse the same buffer");
        let s = stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn zeroed_checkout_is_zero_after_dirty_use() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        {
            let mut g = take_scratch(256);
            g.fill(7.0);
        }
        let g = take_zeroed(256);
        assert!(g.iter().all(|&x| x == 0.0), "zeroed checkout must be cleared");
        // Scratch checkout of the same bucket may see stale contents — that
        // is the documented contract; assert it has the right length only.
        drop(g);
        let g = take_scratch(256);
        assert_eq!(g.len(), 256);
    }

    #[test]
    fn growing_within_bucket_initializes_new_region() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        {
            let mut g = take_scratch(10);
            g.fill(3.0);
        }
        // Same bucket, longer request: the grown region must be initialized.
        let g = take_scratch(60);
        assert_eq!(g.len(), 60);
        for &x in g.iter().skip(10) {
            assert_eq!(x, 0.0, "grown region must be zero-initialized");
        }
    }

    #[test]
    fn tiny_buffers_are_not_pooled() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        reset_stats();
        give_vec(vec![1.0; 8]);
        assert_eq!(stats().cached_buffers, 0);
    }

    #[test]
    fn capacity_cap_bounds_retention() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        set_capacity_bytes(MIN_BUCKET * 4 * 2); // room for two minimal buffers
        give_vec(vec![0.0; MIN_BUCKET]);
        give_vec(vec![0.0; MIN_BUCKET]);
        give_vec(vec![0.0; MIN_BUCKET]); // over cap -> freed
        assert_eq!(stats().cached_buffers, 2);
        set_capacity_bytes(256 << 20);
        clear();
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        reset_stats();
        drop(take_scratch(128));
        drop(take_scratch(128));
        let s = stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        assert_eq!(s.cached_buffers, 0);
        set_enabled(true);
    }

    #[test]
    fn detach_transfers_ownership() {
        let _l = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear();
        let v = take_scratch(100).detach();
        assert_eq!(v.len(), 100);
        assert_eq!(stats().cached_buffers, 0, "detached buffer must not auto-return");
        give_vec(v);
        assert_eq!(stats().cached_buffers, 1);
    }
}
