//! Rayon-parallel dense matrix multiplication kernels.
//!
//! The continuous decoding network is dominated by batched fully-connected
//! layers, i.e. `[rows, in] x [in, out]` GEMMs with `rows` in the tens of
//! thousands (query points × 8 cell vertices). We parallelize over output
//! rows with rayon and keep the inner loops in a cache-friendly `ikj` order so
//! LLVM can vectorize the innermost accumulation.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// Threshold (in multiply-adds) below which we stay single-threaded: tiny
/// GEMMs are faster without the fork-join overhead.
const PAR_FLOP_THRESHOLD: usize = 64 * 1024;

/// `C = A @ B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
/// Panics if the shapes are not rank-2 and compatible.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    let a = a.data();
    let bd = b.data();
    let row = |i: usize, out_row: &mut [f32]| {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += aip * bv;
            }
        }
    };
    if m * n * k >= PAR_FLOP_THRESHOLD {
        out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| row(i, out_row));
    } else {
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            row(i, out_row);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A^T @ B` for `A: [k, m]`, `B: [k, n]` — the gradient-of-weights shape
/// in a linear layer backward pass, computed without materializing `A^T`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (k2, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    let row = |i: usize, out_row: &mut [f32]| {
        for p in 0..k {
            let av = ad[p * m + i];
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    };
    if m * n * k >= PAR_FLOP_THRESHOLD {
        out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| row(i, out_row));
    } else {
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            row(i, out_row);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A @ B^T` for `A: [m, k]`, `B: [n, k]` — the gradient-of-input shape in
/// a linear layer backward pass, computed without materializing `B^T`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, k2) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch");
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![0.0f32; m * n];
    let row = |i: usize, out_row: &mut [f32]| {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *o = acc;
        }
    };
    if m * n * k >= PAR_FLOP_THRESHOLD {
        out.par_chunks_mut(n).enumerate().for_each(|(i, out_row)| row(i, out_row));
    } else {
        for (i, out_row) in out.chunks_mut(n).enumerate() {
            row(i, out_row);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix–vector product `A @ x` for `A: [m, n]`, `x: [n]`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, n) = dims2(a, "matvec lhs");
    assert_eq!(x.numel(), n, "matvec vector length mismatch");
    let ad = a.data();
    let xd = x.data();
    let out: Vec<f32> = (0..m)
        .map(|i| {
            let row = &ad[i * n..(i + 1) * n];
            row.iter().zip(xd).map(|(&a, &b)| a * b).sum()
        })
        .collect();
    Tensor::from_vec(out, &[m])
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be rank 2, got {:?}", t.dims());
    (t.dims()[0], t.dims()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_small_exact() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_matches_naive_large() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Tensor::randn(&[67, 31], 1.0, &mut rng);
        let b = Tensor::randn(&[31, 53], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Large enough to cross PAR_FLOP_THRESHOLD.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = Tensor::randn(&[128, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[64, 96], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = Tensor::randn(&[19, 11], 1.0, &mut rng);
        let b = Tensor::randn(&[19, 7], 1.0, &mut rng);
        assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose2(), &b), 1e-4);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = Tensor::randn(&[13, 17], 1.0, &mut rng);
        let b = Tensor::randn(&[9, 17], 1.0, &mut rng);
        assert_close(&matmul_nt(&a, &b), &matmul(&a, &b.transpose2()), 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = Tensor::randn(&[8, 5], 1.0, &mut rng);
        let x = Tensor::randn(&[5], 1.0, &mut rng);
        let expect = matmul(&a, &x.clone().reshape(&[5, 1]));
        let got = matvec(&a, &x);
        for i in 0..8 {
            assert!((got.data()[i] - expect.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&matmul(&a, &eye), &a, 1e-6);
        assert_close(&matmul(&eye, &a), &a, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_shapes_panic() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }
}
