//! Dense matrix-multiplication entry points over the blocked GEMM kernel.
//!
//! The continuous decoding network is dominated by batched fully-connected
//! layers, i.e. `[rows, in] x [in, out]` GEMMs with `rows` in the tens of
//! thousands (query points × 8 cell vertices). All three transpose variants
//! (`matmul`, `matmul_tn`, `matmul_nt`) lower onto the single cache-blocked,
//! register-tiled micro-kernel in [`crate::gemm`](mod@crate::gemm) — transposition is folded
//! into the packing strides, so there is exactly one inner loop to keep fast.
//! See the [`crate::gemm`](mod@crate::gemm) module docs for the MC/KC/NC blocking scheme, the
//! MR×NR packing layout, and why the inner loop is branch-free (NaN/Inf
//! propagation). Output storage and packing buffers come from the
//! [`crate::workspace`] pool, so steady-state calls do not allocate.

use crate::gemm::{gemm, MatLayout};
use crate::tensor::Tensor;
use crate::workspace;

pub use crate::gemm::{effective_threads, PAR_FLOP_THRESHOLD};

/// `C = A @ B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
/// Panics if the shapes are not rank-2 and compatible.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul");
    let (k2, n) = dims2(b, "matmul");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = workspace::take_vec_scratch(m * n);
    gemm(m, k, n, a.data(), MatLayout::Normal, b.data(), MatLayout::Normal, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A^T @ B` for `A: [k, m]`, `B: [k, n]` — the gradient-of-weights shape
/// in a linear layer backward pass, computed without materializing `A^T`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn");
    let (k2, n) = dims2(b, "matmul_tn");
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch");
    let mut out = workspace::take_vec_scratch(m * n);
    gemm(m, k, n, a.data(), MatLayout::Transposed, b.data(), MatLayout::Normal, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A @ B^T` for `A: [m, k]`, `B: [n, k]` — the gradient-of-input shape in
/// a linear layer backward pass, computed without materializing `B^T`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt");
    let (n, k2) = dims2(b, "matmul_nt");
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch");
    let mut out = workspace::take_vec_scratch(m * n);
    gemm(m, k, n, a.data(), MatLayout::Normal, b.data(), MatLayout::Transposed, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// Matrix–vector product `A @ x` for `A: [m, n]`, `x: [n]`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    let (m, n) = dims2(a, "matvec");
    assert_eq!(x.numel(), n, "matvec vector length mismatch");
    let ad = a.data();
    let xd = x.data();
    let mut out = workspace::take_vec_capacity(m);
    out.extend((0..m).map(|i| {
        let row = &ad[i * n..(i + 1) * n];
        row.iter().zip(xd).map(|(&a, &b)| a * b).sum::<f32>()
    }));
    Tensor::from_vec(out, &[m])
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} operand must be rank 2, got {:?}", t.dims());
    (t.dims()[0], t.dims()[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_small_exact() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::from_vec(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_matches_naive_large() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Tensor::randn(&[67, 31], 1.0, &mut rng);
        let b = Tensor::randn(&[31, 53], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        // Large enough to cross PAR_FLOP_THRESHOLD.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = Tensor::randn(&[128, 64], 1.0, &mut rng);
        let b = Tensor::randn(&[64, 96], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = Tensor::randn(&[19, 11], 1.0, &mut rng);
        let b = Tensor::randn(&[19, 7], 1.0, &mut rng);
        assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose2(), &b), 1e-4);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let a = Tensor::randn(&[13, 17], 1.0, &mut rng);
        let b = Tensor::randn(&[9, 17], 1.0, &mut rng);
        assert_close(&matmul_nt(&a, &b), &matmul(&a, &b.transpose2()), 1e-4);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let a = Tensor::randn(&[8, 5], 1.0, &mut rng);
        let x = Tensor::randn(&[5], 1.0, &mut rng);
        let expect = matmul(&a, &x.clone().reshape(&[5, 1]));
        let got = matvec(&a, &x);
        for i in 0..8 {
            assert!((got.data()[i] - expect.data()[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&matmul(&a, &eye), &a, 1e-6);
        assert_close(&matmul(&eye, &a), &a, 1e-6);
    }

    #[test]
    fn nan_propagates_through_matmul() {
        // The old kernel's `if aip == 0.0 { continue }` shortcut dropped
        // 0·∞ and 0·NaN contributions; the blocked kernel must not.
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let b = Tensor::from_vec(vec![f32::INFINITY, 3.0], &[2, 1]);
        assert!(matmul(&a, &b).data()[0].is_nan());
        let at = Tensor::from_vec(vec![0.0, 1.0], &[2, 1]);
        assert!(matmul_tn(&at, &b).data()[0].is_nan());
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_shapes_panic() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Blocked GEMM equals the naive triple loop on shapes that are
        /// deliberately not multiples of MR/NR/MC/KC.
        #[test]
        fn blocked_matches_naive_random_shapes(
            m in 1usize..70,
            k in 1usize..70,
            n in 1usize..70,
            seed in 0u64..1 << 32,
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let want = naive(&a, &b);
            let got = matmul(&a, &b);
            for (x, y) in got.data().iter().zip(want.data()) {
                prop_assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + y.abs()),
                    "matmul {m}x{k}x{n}: {x} vs {y}"
                );
            }
            let gtn = matmul_tn(&a.transpose2(), &b);
            let gnt = matmul_nt(&a, &b.transpose2());
            for (x, y) in gtn.data().iter().zip(got.data()) {
                prop_assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "tn {m}x{k}x{n}");
            }
            for (x, y) in gnt.data().iter().zip(got.data()) {
                prop_assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "nt {m}x{k}x{n}");
            }
        }
    }
}
