//! The 2D Rayleigh–Bénard (Boussinesq) solver — the Dedalus substitute.
//!
//! Solves the paper's Eqns. (3a)–(3c) in dimensionless form on a domain
//! periodic in `x` and wall-bounded in `z`:
//!
//! ```text
//! ∇·u = 0
//! ∂T/∂t + u·∇T = P* ∇²T          P* = (Ra·Pr)^{-1/2}
//! ∂u/∂t + u·∇u + ∇p − T ẑ = R* ∇²u    R* = (Ra/Pr)^{-1/2}
//! ```
//!
//! Numerics: pseudo-spectral in `x` (with 2/3 dealiasing of the nonlinear
//! products), second-order finite differences in `z`, Adams–Bashforth-2
//! advection + buoyancy, Crank–Nicolson diffusion solved as per-x-mode
//! tridiagonal Helmholtz systems, and a pressure-projection step with
//! per-mode tridiagonal Poisson solves. Time step is CFL-adaptive, mirroring
//! the paper's "adaptive time stepping" remark. All mode solves run in
//! parallel with rayon.

use crate::ops::{self, ddx, ddz, laplacian, Domain};
use crate::tridiag::{solve_complex, Tridiag};
use mfn_fft::Complex;
use mfn_telemetry::{Recorder, SolverStepMetrics};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::time::Instant;

/// Physical and numerical configuration of a Rayleigh–Bénard run.
#[derive(Debug, Clone, Copy)]
pub struct RbcConfig {
    /// Grid points in `x` (power of two).
    pub nx: usize,
    /// Grid nodes in `z` including walls.
    pub nz: usize,
    /// Domain length in `x` (paper: 4).
    pub lx: f64,
    /// Plate separation (paper: 1).
    pub lz: f64,
    /// Rayleigh number.
    pub ra: f64,
    /// Prandtl number.
    pub pr: f64,
    /// CFL safety factor for the advective time-step limit.
    pub cfl: f64,
    /// Hard cap on the time step.
    pub dt_max: f64,
    /// Amplitude of the random temperature perturbation seeding the
    /// instability.
    pub noise_amp: f64,
    /// RNG seed for the initial perturbation (each dataset in the paper's
    /// Table 3 differs only in this).
    pub seed: u64,
    /// Whether to 2/3-dealias the nonlinear products (recommended).
    pub dealias: bool,
}

impl Default for RbcConfig {
    fn default() -> Self {
        RbcConfig {
            nx: 128,
            nz: 33,
            lx: 4.0,
            lz: 1.0,
            ra: 1e6,
            pr: 1.0,
            cfl: 0.4,
            dt_max: 5e-3,
            noise_amp: 1e-2,
            seed: 0,
            dealias: true,
        }
    }
}

impl RbcConfig {
    /// `P* = (Ra·Pr)^{-1/2}` — the dimensionless thermal diffusivity.
    pub fn p_star(&self) -> f64 {
        1.0 / (self.ra * self.pr).sqrt()
    }

    /// `R* = (Ra/Pr)^{-1/2}` — the dimensionless momentum diffusivity, which
    /// plays the role of `ν` in the turbulence statistics.
    pub fn r_star(&self) -> f64 {
        (self.pr / self.ra).sqrt()
    }

    /// The domain geometry implied by this configuration.
    pub fn domain(&self) -> Domain {
        Domain::new(self.nx, self.nz, self.lx, self.lz)
    }
}

/// One saved output frame (all four physical channels of the paper).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Simulation time.
    pub time: f64,
    /// Temperature field, `nz × nx` row-major.
    pub temp: Vec<f64>,
    /// Pressure (projection) field.
    pub p: Vec<f64>,
    /// Horizontal velocity.
    pub u: Vec<f64>,
    /// Vertical velocity.
    pub w: Vec<f64>,
}

/// A completed simulation: the HR "dataset" the learning stack consumes.
#[derive(Debug, Clone)]
pub struct Simulation {
    /// Configuration used.
    pub cfg: RbcConfig,
    /// Grid geometry.
    pub domain: Domain,
    /// Uniformly-spaced output frames.
    pub frames: Vec<Snapshot>,
}

impl Simulation {
    /// Time spacing between output frames.
    pub fn frame_dt(&self) -> f64 {
        if self.frames.len() < 2 {
            0.0
        } else {
            self.frames[1].time - self.frames[0].time
        }
    }
}

/// The time-stepping state of the Rayleigh–Bénard solver.
pub struct RbcSolver {
    cfg: RbcConfig,
    domain: Domain,
    /// Current simulation time.
    pub t: f64,
    /// Horizontal velocity field (`nz × nx`).
    pub u: Vec<f64>,
    /// Vertical velocity field.
    pub w: Vec<f64>,
    /// Temperature field.
    pub temp: Vec<f64>,
    /// Pressure (projection potential) field.
    pub p: Vec<f64>,
    /// Previous step's explicit terms for AB2 (`[Nu, Nw, NT]`).
    n_prev: Option<[Vec<f64>; 3]>,
    /// The dt used on the previous step (AB2 assumes near-constant dt; the
    /// CFL controller changes it slowly).
    dt_prev: f64,
    /// Total steps taken.
    pub steps: u64,
    /// Telemetry destination (disabled by default).
    recorder: Recorder,
}

/// Wall temperatures: hot bottom `T=1`, cold top `T=0` (normalized ΔT = 1).
pub const T_BOTTOM: f64 = 1.0;
/// Cold-plate temperature.
pub const T_TOP: f64 = 0.0;

impl RbcSolver {
    /// Initializes the solver with the conduction profile plus a random
    /// perturbation (vanishing at the walls) and fluid at rest.
    pub fn new(cfg: RbcConfig) -> Self {
        let domain = cfg.domain();
        let n = domain.n();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut temp = vec![0.0f64; n];
        for j in 0..domain.nz {
            let z = domain.z(j) / cfg.lz;
            let envelope = (std::f64::consts::PI * z).sin();
            for i in 0..domain.nx {
                let base = T_BOTTOM + (T_TOP - T_BOTTOM) * z;
                let noise = cfg.noise_amp * rng.gen_range(-1.0..1.0) * envelope;
                temp[ops::idx(&domain, j, i)] = base + noise;
            }
        }
        RbcSolver {
            cfg,
            domain,
            t: 0.0,
            u: vec![0.0; n],
            w: vec![0.0; n],
            temp,
            p: vec![0.0; n],
            n_prev: None,
            dt_prev: 0.0,
            steps: 0,
            recorder: Recorder::null(),
        }
    }

    /// Routes per-timestep metrics (`SolverStepMetrics`) to `recorder`.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The configuration in use.
    pub fn config(&self) -> &RbcConfig {
        &self.cfg
    }

    /// The grid geometry.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The CFL-limited time step at the current state.
    pub fn cfl_dt(&self) -> f64 {
        let umax = self.u.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let wmax = self.w.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let dtx = self.cfg.cfl * self.domain.dx() / (umax + 1e-12);
        let dtz = self.cfg.cfl * self.domain.dz() / (wmax + 1e-12);
        dtx.min(dtz).min(self.cfg.dt_max)
    }

    /// Explicit (advection + buoyancy) right-hand sides `[Nu, Nw, NT]`.
    fn nonlinear(&self) -> [Vec<f64>; 3] {
        let d = &self.domain;
        let ux = ddx(d, &self.u);
        let uz = ddz(d, &self.u);
        let wx = ddx(d, &self.w);
        let wz = ddz(d, &self.w);
        let tx = ddx(d, &self.temp);
        let tz = ddz(d, &self.temp);
        let n = d.n();
        // Buoyancy enters as the horizontal *fluctuation* of T: the mean part
        // T̄(z) ẑ is a gradient (hydrostatic balance) and is absorbed into the
        // modified pressure exactly, which keeps the discrete projection from
        // having to cancel a large irrotational forcing every step.
        let mut tbar = vec![0.0f64; d.nz];
        for (j, tb) in tbar.iter_mut().enumerate() {
            let row = &self.temp[j * d.nx..(j + 1) * d.nx];
            *tb = row.iter().sum::<f64>() / d.nx as f64;
        }
        let mut nu = vec![0.0f64; n];
        let mut nw = vec![0.0f64; n];
        let mut nt = vec![0.0f64; n];
        for k in 0..n {
            let j = k / d.nx;
            nu[k] = -(self.u[k] * ux[k] + self.w[k] * uz[k]);
            nw[k] = -(self.u[k] * wx[k] + self.w[k] * wz[k]) + (self.temp[k] - tbar[j]);
            nt[k] = -(self.u[k] * tx[k] + self.w[k] * tz[k]);
        }
        let mut out = [nu, nw, nt];
        if self.cfg.dealias {
            for f in out.iter_mut() {
                ops::dealias_x(d, f);
            }
        }
        out
    }

    /// Builds the Crank–Nicolson Helmholtz matrix
    /// `(1 + a k² ) I − a D_zz` with Dirichlet rows at both walls.
    fn helmholtz_matrix(&self, a: f64, k2: f64) -> Tridiag {
        let nz = self.domain.nz;
        let dz2 = self.domain.dz() * self.domain.dz();
        let mut m = Tridiag::zeros(nz);
        m.diag[0] = 1.0;
        m.diag[nz - 1] = 1.0;
        for j in 1..nz - 1 {
            m.lower[j] = -a / dz2;
            m.diag[j] = 1.0 + a * k2 + 2.0 * a / dz2;
            m.upper[j] = -a / dz2;
        }
        m
    }

    /// Builds the Poisson matrix `D_zz − k²` with Neumann walls
    /// (pinned at the bottom for the singular `k = 0` mode).
    fn poisson_matrix(&self, k2: f64) -> Tridiag {
        let nz = self.domain.nz;
        let dz = self.domain.dz();
        let dz2 = dz * dz;
        let mut m = Tridiag::zeros(nz);
        if k2 == 0.0 {
            // Pin phi(0) = 0; Neumann at the top.
            m.diag[0] = 1.0;
        } else {
            m.diag[0] = -1.0 / dz;
            m.upper[0] = 1.0 / dz;
        }
        m.lower[nz - 1] = -1.0 / dz;
        m.diag[nz - 1] = 1.0 / dz;
        for j in 1..nz - 1 {
            m.lower[j] = 1.0 / dz2;
            m.diag[j] = -2.0 / dz2 - k2;
            m.upper[j] = 1.0 / dz2;
        }
        m
    }

    /// Implicit Crank–Nicolson diffusion solve: returns the field satisfying
    /// `(I − a(D_zz − k²)) f = rhs` with Dirichlet values `(bottom, top)`.
    fn diffuse(&self, rhs: &[f64], a: f64, bottom: f64, top: f64) -> Vec<f64> {
        let d = &self.domain;
        let nz = d.nz;
        let spec = ops::rows_to_spectral(d, rhs);
        let nmodes = d.nx / 2 + 1;
        // Transpose to per-mode z-profiles, solve, transpose back.
        let solved: Vec<Vec<Complex>> = (0..nmodes)
            .into_par_iter()
            .map(|k| {
                let k2 = {
                    let kk = d.wavenumber(k);
                    kk * kk
                };
                let m = self.helmholtz_matrix(a, k2);
                let mut b: Vec<Complex> = (0..nz).map(|j| spec[j][k]).collect();
                // Dirichlet rows: the DFT of a constant boundary value is
                // `value * nx` in mode 0, zero elsewhere.
                b[0] = if k == 0 { Complex::real(bottom * d.nx as f64) } else { Complex::ZERO };
                b[nz - 1] = if k == 0 { Complex::real(top * d.nx as f64) } else { Complex::ZERO };
                solve_complex(&m, &b)
            })
            .collect();
        let rows: Vec<Vec<Complex>> =
            (0..nz).map(|j| (0..nmodes).map(|k| solved[k][j]).collect()).collect();
        ops::rows_from_spectral(d, &rows)
    }

    /// Pressure projection: makes `(u, w)` divergence-free, storing the
    /// accumulated potential `φ` (scaled to pressure units) in `self.p`.
    ///
    /// The spectral-x/FD-z gradient and divergence operators do not compose
    /// into the exact 3-point Laplacian the Poisson solve uses, so a single
    /// pass leaves an O(Δz²) residual; two extra fixed passes drive the
    /// interior divergence down by the same factor each time.
    fn project(&mut self, dt: f64) {
        self.p = vec![0.0; self.domain.n()];
        for _ in 0..3 {
            self.project_once(dt);
        }
        self.enforce_velocity_bc();
        // The projection potential φ is the *modified* pressure (buoyancy was
        // applied as the horizontal fluctuation of T). Add back the
        // hydrostatic column integral H(z) = ∫₀ᶻ T̄ dz' so the stored p
        // channel satisfies the paper's momentum equation with the full T:
        // ∇(φ + H) − T ẑ = ∇φ − (T − T̄) ẑ.
        let d = &self.domain;
        let dz = d.dz();
        let mut tbar = vec![0.0f64; d.nz];
        for (j, tb) in tbar.iter_mut().enumerate() {
            let row = &self.temp[j * d.nx..(j + 1) * d.nx];
            *tb = row.iter().sum::<f64>() / d.nx as f64;
        }
        let mut hydro = vec![0.0f64; d.nz];
        for j in 1..d.nz {
            hydro[j] = hydro[j - 1] + 0.5 * (tbar[j] + tbar[j - 1]) * dz;
        }
        for (j, &h) in hydro.iter().enumerate() {
            for v in &mut self.p[j * d.nx..(j + 1) * d.nx] {
                *v += h;
            }
        }
    }

    fn project_once(&mut self, dt: f64) {
        let d = &self.domain;
        let nz = d.nz;
        let mut div = ddx(d, &self.u);
        let wz = ddz(d, &self.w);
        for (a, b) in div.iter_mut().zip(&wz) {
            *a = (*a + b) / dt;
        }
        let spec = ops::rows_to_spectral(d, &div);
        let nmodes = d.nx / 2 + 1;
        let solved: Vec<Vec<Complex>> = (0..nmodes)
            .into_par_iter()
            .map(|k| {
                let k2 = {
                    let kk = d.wavenumber(k);
                    kk * kk
                };
                let m = self.poisson_matrix(k2);
                let mut b: Vec<Complex> = (0..nz).map(|j| spec[j][k]).collect();
                b[0] = Complex::ZERO; // Neumann (or pin) row
                b[nz - 1] = Complex::ZERO;
                solve_complex(&m, &b)
            })
            .collect();
        let rows: Vec<Vec<Complex>> =
            (0..nz).map(|j| (0..nmodes).map(|k| solved[k][j]).collect()).collect();
        let phi = ops::rows_from_spectral(d, &rows);
        let phix = ddx(d, &phi);
        let phiz = ddz(d, &phi);
        for k in 0..d.n() {
            self.u[k] -= dt * phix[k];
            self.w[k] -= dt * phiz[k];
            self.p[k] += phi[k];
        }
    }

    fn enforce_velocity_bc(&mut self) {
        let nx = self.domain.nx;
        let top = (self.domain.nz - 1) * nx;
        for i in 0..nx {
            self.u[i] = 0.0;
            self.w[i] = 0.0;
            self.u[top + i] = 0.0;
            self.w[top + i] = 0.0;
        }
    }

    /// Advances one step of size `dt`.
    pub fn step(&mut self, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        // When telemetry is on, sample the CFL limit before the state
        // advances (that is the limit this `dt` was chosen against).
        let cfl_dt = if self.recorder.is_enabled() { self.cfl_dt() } else { dt };
        let started = Instant::now();
        let d = self.domain;
        let n = d.n();
        let nl = self.nonlinear();
        // AB2 extrapolation with variable step: coefficients for (dt, dt_prev).
        let (c0, c1) = match &self.n_prev {
            Some(_) if self.dt_prev > 0.0 => {
                let r = dt / self.dt_prev;
                (1.0 + r / 2.0, -r / 2.0)
            }
            _ => (1.0, 0.0),
        };
        let kappa_u = self.cfg.r_star();
        let kappa_t = self.cfg.p_star();
        let lap_u = laplacian(&d, &self.u);
        let lap_w = laplacian(&d, &self.w);
        let lap_t = laplacian(&d, &self.temp);
        let zeros;
        let prev: &[Vec<f64>; 3] = match &self.n_prev {
            Some(p) => p,
            None => {
                zeros = [vec![0.0; n], vec![0.0; n], vec![0.0; n]];
                &zeros
            }
        };
        let mut rhs_u = vec![0.0f64; n];
        let mut rhs_w = vec![0.0f64; n];
        let mut rhs_t = vec![0.0f64; n];
        for k in 0..n {
            let nu = c0 * nl[0][k] + c1 * prev[0][k];
            let nw = c0 * nl[1][k] + c1 * prev[1][k];
            let nt = c0 * nl[2][k] + c1 * prev[2][k];
            rhs_u[k] = self.u[k] + dt * (nu + 0.5 * kappa_u * lap_u[k]);
            rhs_w[k] = self.w[k] + dt * (nw + 0.5 * kappa_u * lap_w[k]);
            rhs_t[k] = self.temp[k] + dt * (nt + 0.5 * kappa_t * lap_t[k]);
        }
        let a_u = 0.5 * dt * kappa_u;
        let a_t = 0.5 * dt * kappa_t;
        self.u = self.diffuse(&rhs_u, a_u, 0.0, 0.0);
        self.w = self.diffuse(&rhs_w, a_u, 0.0, 0.0);
        self.temp = self.diffuse(&rhs_t, a_t, T_BOTTOM, T_TOP);
        self.project(dt);
        self.n_prev = Some(nl);
        self.dt_prev = dt;
        self.t += dt;
        self.steps += 1;
        self.recorder.solver_step(SolverStepMetrics {
            step: self.steps,
            time: self.t,
            dt,
            cfl_dt,
            seconds: started.elapsed().as_secs_f64(),
        });
    }

    /// Advances with CFL-adaptive steps until exactly `t_target`.
    pub fn advance_to(&mut self, t_target: f64) {
        while self.t < t_target - 1e-12 {
            let dt = self.cfl_dt().min(t_target - self.t);
            self.step(dt);
        }
    }

    /// Volume-averaged kinetic energy `½⟨u² + w²⟩`.
    pub fn kinetic_energy(&self) -> f64 {
        let n = self.domain.n() as f64;
        0.5 * self.u.iter().zip(&self.w).map(|(&u, &w)| u * u + w * w).sum::<f64>() / n
    }

    /// Volume-averaged Nusselt number `Nu = 1 + <w·T> / (κ ΔT/L)` — the
    /// classic Rayleigh–Bénard heat-transport diagnostic (Nu = 1 in pure
    /// conduction, grows with Ra once convection sets in).
    pub fn nusselt(&self) -> f64 {
        let n = self.domain.n() as f64;
        let wt: f64 = self.w.iter().zip(&self.temp).map(|(&w, &t)| w * t).sum::<f64>() / n;
        let conductive = self.cfg.p_star() * (T_BOTTOM - T_TOP) / self.cfg.lz;
        1.0 + wt / conductive
    }

    /// Maximum |∇·u| over the interior (projection quality diagnostic).
    pub fn max_divergence(&self) -> f64 {
        let d = &self.domain;
        let ux = ddx(d, &self.u);
        let wz = ddz(d, &self.w);
        let mut m = 0.0f64;
        for j in 1..d.nz - 1 {
            for i in 0..d.nx {
                m = m.max((ux[ops::idx(d, j, i)] + wz[ops::idx(d, j, i)]).abs());
            }
        }
        m
    }

    /// Captures the current state as an output frame.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            time: self.t,
            temp: self.temp.clone(),
            p: self.p.clone(),
            u: self.u.clone(),
            w: self.w.clone(),
        }
    }
}

/// Runs a full simulation, saving `n_frames` uniformly-spaced snapshots
/// (including the initial condition at `t = 0`).
pub fn simulate(cfg: &RbcConfig, duration: f64, n_frames: usize) -> Simulation {
    simulate_recorded(cfg, duration, n_frames, Recorder::null())
}

/// [`simulate`] with telemetry: every solver timestep emits a
/// `SolverStepMetrics` event (CFL limit, dt taken, wall seconds), each saved
/// frame emits a `frame` span, and the final diagnostics (`nusselt`,
/// `kinetic_energy`) land as gauges.
pub fn simulate_recorded(
    cfg: &RbcConfig,
    duration: f64,
    n_frames: usize,
    recorder: Recorder,
) -> Simulation {
    assert!(n_frames >= 2, "need at least two frames");
    assert!(duration > 0.0);
    let mut solver = RbcSolver::new(*cfg);
    solver.set_recorder(recorder.clone());
    let mut frames = Vec::with_capacity(n_frames);
    frames.push(solver.snapshot());
    let frame_dt = duration / (n_frames - 1) as f64;
    for f in 1..n_frames {
        let span = recorder.span("frame");
        solver.advance_to(f as f64 * frame_dt);
        drop(span);
        recorder.incr("frames", 1);
        frames.push(solver.snapshot());
    }
    recorder.gauge("nusselt", solver.nusselt());
    recorder.gauge("kinetic_energy", solver.kinetic_energy());
    Simulation { cfg: *cfg, domain: solver.domain, frames }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> RbcConfig {
        RbcConfig { nx: 32, nz: 17, ra: 1e5, dt_max: 2e-3, noise_amp: 1e-2, ..Default::default() }
    }

    #[test]
    fn conduction_state_is_steady() {
        // No perturbation + subcritical Ra (< 1708): pure conduction persists.
        let cfg = RbcConfig { noise_amp: 0.0, ra: 1e3, ..quick_cfg() };
        let mut s = RbcSolver::new(cfg);
        for _ in 0..50 {
            let dt = s.cfl_dt();
            s.step(dt);
        }
        assert!(s.kinetic_energy() < 1e-12, "KE {}", s.kinetic_energy());
        for j in 0..s.domain().nz {
            let z = s.domain().z(j);
            let expect = T_BOTTOM + (T_TOP - T_BOTTOM) * z;
            assert!((s.temp[j * cfg.nx] - expect).abs() < 1e-8, "row {j}");
        }
    }

    #[test]
    fn projection_yields_small_divergence() {
        // Run to a developed flow so velocity gradients are O(1), then check
        // the interior divergence is small relative to them.
        let cfg = RbcConfig { ra: 1e6, ..quick_cfg() };
        let mut s = RbcSolver::new(cfg);
        s.advance_to(8.0);
        let umax = s.u.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1e-9);
        let scale = umax / s.domain().dx();
        assert!(
            s.max_divergence() < 0.05 * scale,
            "div {} vs grad scale {scale}",
            s.max_divergence()
        );
    }

    #[test]
    fn instability_grows_at_supercritical_ra() {
        let cfg = RbcConfig { ra: 1e6, noise_amp: 1e-2, ..quick_cfg() };
        let mut s = RbcSolver::new(cfg);
        let ke0 = s.kinetic_energy();
        s.advance_to(6.0);
        let ke1 = s.kinetic_energy();
        assert!(ke1 > ke0.max(1e-10), "KE did not grow: {ke0} -> {ke1}");
        assert!(ke1 > 1e-6, "convection never developed: {ke1}");
    }

    #[test]
    fn temperature_respects_maximum_principle() {
        let cfg = quick_cfg();
        let mut s = RbcSolver::new(cfg);
        s.advance_to(2.0);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &t in &s.temp {
            lo = lo.min(t);
            hi = hi.max(t);
        }
        // Small over/undershoots from the FD scheme are tolerated.
        assert!(lo > -0.15 && hi < 1.15, "T range [{lo}, {hi}]");
        assert!(!s.temp.iter().any(|t| t.is_nan()));
    }

    #[test]
    fn cfl_dt_capped_and_positive() {
        let cfg = quick_cfg();
        let s = RbcSolver::new(cfg);
        let dt = s.cfl_dt();
        assert!(dt > 0.0 && dt <= cfg.dt_max + 1e-15);
    }

    #[test]
    fn simulate_produces_uniform_frames() {
        let cfg = quick_cfg();
        let sim = simulate(&cfg, 0.1, 5);
        assert_eq!(sim.frames.len(), 5);
        let fdt = sim.frame_dt();
        for (f, frame) in sim.frames.iter().enumerate() {
            assert!((frame.time - f as f64 * fdt).abs() < 1e-9);
            assert_eq!(frame.temp.len(), cfg.nx * cfg.nz);
        }
        assert!((sim.frames.last().expect("frames").time - 0.1).abs() < 1e-9);
    }

    #[test]
    fn simulate_recorded_emits_per_step_metrics() {
        let cfg = quick_cfg();
        let (recorder, sink) = Recorder::memory(8192);
        let sim = simulate_recorded(&cfg, 0.05, 5, recorder);
        assert_eq!(sim.frames.len(), 5);
        let steps = sink.solver_steps();
        assert!(!steps.is_empty(), "no solver steps recorded");
        for (i, m) in steps.iter().enumerate() {
            // `advance_to` always takes dt <= min(CFL limit, dt_max).
            assert!(m.dt > 0.0 && m.dt <= m.cfl_dt + 1e-15, "step {i}: {m:?}");
            assert!(m.dt <= cfg.dt_max + 1e-15, "step {i}: {m:?}");
            assert!(m.seconds >= 0.0);
            assert_eq!(m.step, i as u64 + 1);
        }
        // Times are strictly increasing and end at the requested duration.
        assert!(steps.windows(2).all(|w| w[1].time > w[0].time));
        assert!((steps.last().expect("steps").time - 0.05).abs() < 1e-9);
        // One frame span + counter per saved frame (minus the initial one),
        // plus the end-of-run diagnostics gauges.
        assert_eq!(sink.counter_total("frames"), 4);
        assert!(sink.span_total("frame") >= 0.0);
        assert!(sink.gauge("nusselt").is_some());
        assert!(sink.gauge("kinetic_energy").is_some());
    }

    #[test]
    fn recorded_and_unrecorded_runs_are_identical() {
        // Telemetry must not perturb the numerics.
        let cfg = quick_cfg();
        let plain = simulate(&cfg, 0.05, 3);
        let (recorder, _sink) = Recorder::memory(8192);
        let recorded = simulate_recorded(&cfg, 0.05, 3, recorder);
        for (fa, fb) in plain.frames.iter().zip(&recorded.frames) {
            assert_eq!(fa.temp, fb.temp);
            assert_eq!(fa.u, fb.u);
            assert_eq!(fa.w, fb.w);
            assert_eq!(fa.p, fb.p);
        }
    }

    #[test]
    fn different_seeds_give_different_flows() {
        let a = simulate(&RbcConfig { seed: 1, ..quick_cfg() }, 0.05, 2);
        let b = simulate(&RbcConfig { seed: 2, ..quick_cfg() }, 0.05, 2);
        let diff: f64 =
            a.frames[1].temp.iter().zip(&b.frames[1].temp).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-6, "seeds produced identical fields");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = simulate(&quick_cfg(), 0.05, 3);
        let b = simulate(&quick_cfg(), 0.05, 3);
        for (fa, fb) in a.frames.iter().zip(&b.frames) {
            assert_eq!(fa.temp, fb.temp);
            assert_eq!(fa.u, fb.u);
        }
    }

    #[test]
    fn nusselt_number_behaviour() {
        // Pure conduction: Nu = 1 exactly.
        let cfg = RbcConfig { noise_amp: 0.0, ra: 1e3, ..quick_cfg() };
        let mut s = RbcSolver::new(cfg);
        s.advance_to(0.2);
        assert!((s.nusselt() - 1.0).abs() < 1e-9, "conduction Nu {}", s.nusselt());
        // Developed convection transports more heat: Nu > 1.
        let cfg = RbcConfig { ra: 1e6, ..quick_cfg() };
        let mut s = RbcSolver::new(cfg);
        s.advance_to(8.0);
        assert!(s.nusselt() > 1.5, "convective Nu {}", s.nusselt());
    }

    #[test]
    fn boundary_conditions_enforced() {
        let cfg = quick_cfg();
        let mut s = RbcSolver::new(cfg);
        s.advance_to(0.5);
        let nx = cfg.nx;
        let top = (cfg.nz - 1) * nx;
        for i in 0..nx {
            assert_eq!(s.u[i], 0.0);
            assert_eq!(s.w[i], 0.0);
            assert_eq!(s.u[top + i], 0.0);
            assert_eq!(s.w[top + i], 0.0);
            assert!((s.temp[i] - T_BOTTOM).abs() < 1e-6, "bottom T {}", s.temp[i]);
            assert!((s.temp[top + i] - T_TOP).abs() < 1e-6, "top T {}", s.temp[top + i]);
        }
    }
}
