//! # mfn-solver
//!
//! A from-scratch 2D Rayleigh–Bénard convection solver — the substitute for
//! the Dedalus spectral code the paper uses to generate its dataset
//! (Sec. 3.2). The solver is pseudo-spectral in the periodic `x` direction,
//! second-order finite-difference in the wall-normal `z` direction, with
//! Crank–Nicolson diffusion, AB2 advection, and a projection method whose
//! per-wavenumber Poisson/Helmholtz systems are tridiagonal solves
//! parallelized with rayon.
//!
//! Entry point: [`simulate`] produces the `(T, p, u, w)` snapshot sequence
//! that `mfn-data` turns into training datasets.

pub mod ops;
pub mod rbc;
pub mod tridiag;

pub use ops::{d2dx2, d2dz2, ddx, ddz, dealias_x, laplacian, Domain};
pub use rbc::{
    simulate, simulate_recorded, RbcConfig, RbcSolver, Simulation, Snapshot, T_BOTTOM, T_TOP,
};
pub use tridiag::{solve_complex, Tridiag};
