//! Discrete differential operators on the mixed Fourier/finite-difference grid.
//!
//! Fields live on an `nz × nx` node grid: periodic and equispaced in `x`
//! (spacing `lx/nx`), wall-bounded in `z` with nodes `z_j = j·dz`,
//! `dz = lz/(nz-1)`, so rows `0` and `nz-1` *are* the walls. Derivatives in
//! `x` are spectral (exact for resolved modes); derivatives in `z` are
//! second-order finite differences, one-sided at the walls — the same
//! operators the implicit solves use, keeping the Crank–Nicolson scheme
//! consistent.

use mfn_fft::{Complex, RealFftPlan};
use rayon::prelude::*;

/// Geometry of the Rayleigh–Bénard computational domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    /// Number of grid points in the periodic `x` direction (power of two).
    pub nx: usize,
    /// Number of grid nodes in `z`, including both walls.
    pub nz: usize,
    /// Physical length in `x` (the paper uses 4).
    pub lx: f64,
    /// Physical plate separation in `z` (the paper uses 1).
    pub lz: f64,
}

impl Domain {
    /// Creates a domain, validating the discretization.
    pub fn new(nx: usize, nz: usize, lx: f64, lz: f64) -> Self {
        assert!(nx.is_power_of_two() && nx >= 4, "nx must be a power of two >= 4");
        assert!(nz >= 4, "nz must be at least 4");
        assert!(lx > 0.0 && lz > 0.0);
        Domain { nx, nz, lx, lz }
    }

    /// Grid spacing in `x`.
    pub fn dx(&self) -> f64 {
        self.lx / self.nx as f64
    }

    /// Grid spacing in `z` (node grid including walls).
    pub fn dz(&self) -> f64 {
        self.lz / (self.nz - 1) as f64
    }

    /// Total number of grid points.
    pub fn n(&self) -> usize {
        self.nx * self.nz
    }

    /// Physical x-coordinate of column `i`.
    pub fn x(&self, i: usize) -> f64 {
        i as f64 * self.dx()
    }

    /// Physical z-coordinate of row `j`.
    pub fn z(&self, j: usize) -> f64 {
        j as f64 * self.dz()
    }

    /// Physical wavenumber of spectral bin `k`.
    pub fn wavenumber(&self, k: usize) -> f64 {
        2.0 * std::f64::consts::PI * k as f64 / self.lx
    }
}

/// Row-major field index helper: row `j` (z), column `i` (x).
#[inline]
pub fn idx(domain: &Domain, j: usize, i: usize) -> usize {
    j * domain.nx + i
}

/// Spectral ∂/∂x along each z-row. The Nyquist mode's derivative is set to
/// zero (its `i·k` image is not representable for a real signal).
pub fn ddx(domain: &Domain, f: &[f64]) -> Vec<f64> {
    assert_eq!(f.len(), domain.n());
    let plan = RealFftPlan::new(domain.nx);
    let nx = domain.nx;
    let mut out = vec![0.0f64; f.len()];
    out.par_chunks_mut(nx).zip(f.par_chunks(nx)).for_each(|(orow, frow)| {
        let mut spec = plan.forward(frow);
        for (k, c) in spec.iter_mut().enumerate() {
            if k == nx / 2 {
                *c = Complex::ZERO;
            } else {
                *c = c.mul_i().scale(domain.wavenumber(k));
            }
        }
        orow.copy_from_slice(&plan.inverse(&spec));
    });
    out
}

/// Spectral ∂²/∂x² along each z-row.
pub fn d2dx2(domain: &Domain, f: &[f64]) -> Vec<f64> {
    assert_eq!(f.len(), domain.n());
    let plan = RealFftPlan::new(domain.nx);
    let nx = domain.nx;
    let mut out = vec![0.0f64; f.len()];
    out.par_chunks_mut(nx).zip(f.par_chunks(nx)).for_each(|(orow, frow)| {
        let mut spec = plan.forward(frow);
        for (k, c) in spec.iter_mut().enumerate() {
            let kk = domain.wavenumber(k);
            *c = c.scale(-kk * kk);
        }
        orow.copy_from_slice(&plan.inverse(&spec));
    });
    out
}

/// Second-order ∂/∂z: central in the interior, one-sided (second-order
/// three-point) at the walls.
pub fn ddz(domain: &Domain, f: &[f64]) -> Vec<f64> {
    assert_eq!(f.len(), domain.n());
    let (nx, nz) = (domain.nx, domain.nz);
    let dz = domain.dz();
    let mut out = vec![0.0f64; f.len()];
    for i in 0..nx {
        out[i] = (-3.0 * f[i] + 4.0 * f[nx + i] - f[2 * nx + i]) / (2.0 * dz);
        let top = (nz - 1) * nx;
        out[top + i] =
            (3.0 * f[top + i] - 4.0 * f[top - nx + i] + f[top - 2 * nx + i]) / (2.0 * dz);
    }
    for j in 1..nz - 1 {
        for i in 0..nx {
            out[j * nx + i] = (f[(j + 1) * nx + i] - f[(j - 1) * nx + i]) / (2.0 * dz);
        }
    }
    out
}

/// Second-order ∂²/∂z²: central in the interior; at the walls a one-sided
/// four-point second-order formula.
pub fn d2dz2(domain: &Domain, f: &[f64]) -> Vec<f64> {
    assert_eq!(f.len(), domain.n());
    let (nx, nz) = (domain.nx, domain.nz);
    let dz2 = domain.dz() * domain.dz();
    let mut out = vec![0.0f64; f.len()];
    for i in 0..nx {
        out[i] = (2.0 * f[i] - 5.0 * f[nx + i] + 4.0 * f[2 * nx + i] - f[3 * nx + i]) / dz2;
        let top = (nz - 1) * nx;
        out[top + i] = (2.0 * f[top + i] - 5.0 * f[top - nx + i] + 4.0 * f[top - 2 * nx + i]
            - f[top - 3 * nx + i])
            / dz2;
    }
    for j in 1..nz - 1 {
        for i in 0..nx {
            out[j * nx + i] =
                (f[(j + 1) * nx + i] - 2.0 * f[j * nx + i] + f[(j - 1) * nx + i]) / dz2;
        }
    }
    out
}

/// The discrete Laplacian `∂²/∂x² + ∂²/∂z²` (spectral + FD).
pub fn laplacian(domain: &Domain, f: &[f64]) -> Vec<f64> {
    let mut lx = d2dx2(domain, f);
    let lz = d2dz2(domain, f);
    for (a, b) in lx.iter_mut().zip(&lz) {
        *a += b;
    }
    lx
}

/// Forward real FFT of every z-row: returns `nz` rows of `nx/2+1` modes.
pub fn rows_to_spectral(domain: &Domain, f: &[f64]) -> Vec<Vec<Complex>> {
    let plan = RealFftPlan::new(domain.nx);
    f.par_chunks(domain.nx).map(|row| plan.forward(row)).collect()
}

/// Inverse of [`rows_to_spectral`].
pub fn rows_from_spectral(domain: &Domain, spec: &[Vec<Complex>]) -> Vec<f64> {
    let plan = RealFftPlan::new(domain.nx);
    let mut out = vec![0.0f64; domain.n()];
    out.par_chunks_mut(domain.nx).zip(spec.par_iter()).for_each(|(orow, srow)| {
        orow.copy_from_slice(&plan.inverse(srow));
    });
    out
}

/// Zeroes the top third of x-modes of a physical field (the 2/3 dealiasing
/// rule applied to nonlinear products).
pub fn dealias_x(domain: &Domain, f: &mut [f64]) {
    let plan = RealFftPlan::new(domain.nx);
    let cutoff = domain.nx / 3;
    f.par_chunks_mut(domain.nx).for_each(|row| {
        let mut spec = plan.forward(row);
        for (k, c) in spec.iter_mut().enumerate() {
            if k > cutoff {
                *c = Complex::ZERO;
            }
        }
        row.copy_from_slice(&plan.inverse(&spec));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_domain() -> Domain {
        Domain::new(64, 33, 4.0, 1.0)
    }

    fn fill(domain: &Domain, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let mut out = vec![0.0; domain.n()];
        for j in 0..domain.nz {
            for i in 0..domain.nx {
                out[idx(domain, j, i)] = f(domain.x(i), domain.z(j));
            }
        }
        out
    }

    #[test]
    fn ddx_exact_for_sinusoids() {
        let d = make_domain();
        let k = 2.0 * std::f64::consts::PI * 3.0 / d.lx;
        let f = fill(&d, |x, _| (k * x).sin());
        let g = ddx(&d, &f);
        for j in 0..d.nz {
            for i in 0..d.nx {
                let exact = k * (k * d.x(i)).cos();
                assert!((g[idx(&d, j, i)] - exact).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn d2dx2_exact_for_sinusoids() {
        let d = make_domain();
        let k = 2.0 * std::f64::consts::PI * 5.0 / d.lx;
        let f = fill(&d, |x, _| (k * x).cos());
        let g = d2dx2(&d, &f);
        for (i, &gv) in g.iter().enumerate() {
            let exact = -k * k * (k * d.x(i)).cos();
            assert!((gv - exact).abs() < 1e-8);
        }
    }

    #[test]
    fn ddz_second_order_on_quadratic() {
        // Exact for polynomials up to degree 2 everywhere, including walls.
        let d = make_domain();
        let f = fill(&d, |_, z| 2.0 * z * z - 3.0 * z + 1.0);
        let g = ddz(&d, &f);
        for j in 0..d.nz {
            let exact = 4.0 * d.z(j) - 3.0;
            assert!((g[idx(&d, j, 0)] - exact).abs() < 1e-10, "row {j}");
        }
    }

    #[test]
    fn d2dz2_exact_on_cubic() {
        let d = make_domain();
        let f = fill(&d, |_, z| z * z * z);
        let g = d2dz2(&d, &f);
        for j in 0..d.nz {
            let exact = 6.0 * d.z(j);
            assert!((g[idx(&d, j, 5)] - exact).abs() < 1e-8, "row {j}");
        }
    }

    #[test]
    fn laplacian_of_harmonic_function_is_zero() {
        // f = sin(kx) * e^{kz} is harmonic; FD error in z is O(dz^2).
        let d = Domain::new(64, 65, 4.0, 1.0);
        let k = 2.0 * std::f64::consts::PI / d.lx;
        let f = fill(&d, |x, z| (k * x).sin() * (k * z).exp());
        let g = laplacian(&d, &f);
        let scale = (k * d.lz).exp() * k * k;
        for j in 1..d.nz - 1 {
            for i in 0..d.nx {
                assert!(g[idx(&d, j, i)].abs() / scale < 5e-4, "({j},{i}): {}", g[idx(&d, j, i)]);
            }
        }
    }

    #[test]
    fn spectral_roundtrip() {
        let d = make_domain();
        let f = fill(&d, |x, z| (x * 1.3).sin() * (z * 0.7).cos() + z);
        let spec = rows_to_spectral(&d, &f);
        let back = rows_from_spectral(&d, &spec);
        for (a, b) in back.iter().zip(&f) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dealias_kills_high_modes_only() {
        let d = make_domain();
        let klo = 2.0 * std::f64::consts::PI * 2.0 / d.lx;
        let khi = 2.0 * std::f64::consts::PI * 30.0 / d.lx;
        let mut f = fill(&d, |x, _| (klo * x).sin() + (khi * x).sin());
        let expect = fill(&d, |x, _| (klo * x).sin());
        dealias_x(&d, &mut f);
        for (a, b) in f.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn domain_coordinates() {
        let d = make_domain();
        assert!((d.dx() - 4.0 / 64.0).abs() < 1e-15);
        assert!((d.dz() - 1.0 / 32.0).abs() < 1e-15);
        assert_eq!(d.z(0), 0.0);
        assert!((d.z(d.nz - 1) - 1.0).abs() < 1e-15);
    }
}
