//! Tridiagonal solvers (Thomas algorithm), real and complex.
//!
//! The Fourier–finite-difference solver reduces every implicit step to a
//! family of independent tridiagonal systems in `z` — one Helmholtz solve
//! `(a I + b D_zz) f = rhs` per x-wavenumber per field — so this little
//! module is the linear-algebra core of the whole CFD substrate.

use mfn_fft::Complex;

/// A real tridiagonal system stored by its three diagonals.
#[derive(Debug, Clone)]
pub struct Tridiag {
    /// Sub-diagonal, `lower[i]` multiplies `x[i-1]` in row `i` (`lower[0]` unused).
    pub lower: Vec<f64>,
    /// Main diagonal.
    pub diag: Vec<f64>,
    /// Super-diagonal, `upper[i]` multiplies `x[i+1]` in row `i` (last unused).
    pub upper: Vec<f64>,
}

impl Tridiag {
    /// Creates an `n × n` zero system.
    pub fn zeros(n: usize) -> Self {
        Tridiag { lower: vec![0.0; n], diag: vec![0.0; n], upper: vec![0.0; n] }
    }

    /// System size.
    pub fn len(&self) -> usize {
        self.diag.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.diag.is_empty()
    }

    /// Solves `A x = rhs` by the Thomas algorithm (no pivoting; valid for the
    /// diagonally-dominant Helmholtz/Poisson systems we build).
    ///
    /// # Panics
    /// Panics if sizes mismatch or a pivot vanishes.
    pub fn solve(&self, rhs: &[f64]) -> Vec<f64> {
        let n = self.len();
        assert_eq!(rhs.len(), n, "rhs length mismatch");
        assert!(n > 0, "empty system");
        let mut c = vec![0.0f64; n];
        let mut d = vec![0.0f64; n];
        let mut piv = self.diag[0];
        assert!(piv.abs() > 1e-300, "zero pivot at row 0");
        c[0] = self.upper[0] / piv;
        d[0] = rhs[0] / piv;
        for i in 1..n {
            piv = self.diag[i] - self.lower[i] * c[i - 1];
            assert!(piv.abs() > 1e-300, "zero pivot at row {i}");
            c[i] = if i + 1 < n { self.upper[i] / piv } else { 0.0 };
            d[i] = (rhs[i] - self.lower[i] * d[i - 1]) / piv;
        }
        let mut x = d;
        for i in (0..n - 1).rev() {
            let next = x[i + 1];
            x[i] -= c[i] * next;
        }
        x
    }

    /// Matrix–vector product (used by tests to verify solves).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.len();
        assert_eq!(x.len(), n);
        (0..n)
            .map(|i| {
                let mut v = self.diag[i] * x[i];
                if i > 0 {
                    v += self.lower[i] * x[i - 1];
                }
                if i + 1 < n {
                    v += self.upper[i] * x[i + 1];
                }
                v
            })
            .collect()
    }
}

/// Solves a *real-coefficient* tridiagonal system with complex right-hand
/// side (the per-mode Helmholtz systems have real matrices but complex
/// Fourier-coefficient RHS). Solving the real and imaginary parts shares one
/// factorization sweep.
pub fn solve_complex(a: &Tridiag, rhs: &[Complex]) -> Vec<Complex> {
    let n = a.len();
    assert_eq!(rhs.len(), n);
    let mut c = vec![0.0f64; n];
    let mut d = vec![Complex::ZERO; n];
    let mut piv = a.diag[0];
    assert!(piv.abs() > 1e-300, "zero pivot at row 0");
    c[0] = a.upper[0] / piv;
    d[0] = rhs[0] / piv;
    for i in 1..n {
        piv = a.diag[i] - a.lower[i] * c[i - 1];
        assert!(piv.abs() > 1e-300, "zero pivot at row {i}");
        c[i] = if i + 1 < n { a.upper[i] / piv } else { 0.0 };
        d[i] = (rhs[i] - d[i - 1] * a.lower[i]) / piv;
    }
    let mut x = d;
    for i in (0..n - 1).rev() {
        let next = x[i + 1];
        x[i] -= next * c[i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_dd_system(n: usize, seed: u64) -> Tridiag {
        // Diagonally dominant => Thomas is stable and exact-ish.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut t = Tridiag::zeros(n);
        for i in 0..n {
            t.lower[i] = if i > 0 { rng.gen_range(-1.0..1.0) } else { 0.0 };
            t.upper[i] = if i + 1 < n { rng.gen_range(-1.0..1.0) } else { 0.0 };
            t.diag[i] = 3.0 + rng.gen_range(0.0..1.0);
        }
        t
    }

    #[test]
    fn solve_recovers_known_solution() {
        for &n in &[1usize, 2, 3, 17, 64] {
            let t = random_dd_system(n, n as u64);
            let mut rng = ChaCha8Rng::seed_from_u64(100 + n as u64);
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let rhs = t.matvec(&x_true);
            let x = t.solve(&rhs);
            for (a, b) in x.iter().zip(&x_true) {
                assert!((a - b).abs() < 1e-10, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn identity_system() {
        let mut t = Tridiag::zeros(4);
        t.diag = vec![1.0; 4];
        let rhs = vec![1.0, -2.0, 3.0, -4.0];
        assert_eq!(t.solve(&rhs), rhs);
    }

    #[test]
    fn second_difference_poisson() {
        // -u'' = pi^2 sin(pi z) on [0,1], u(0)=u(1)=0 -> u = sin(pi z).
        let n = 200;
        let h = 1.0 / (n as f64 + 1.0);
        let mut t = Tridiag::zeros(n);
        for i in 0..n {
            t.diag[i] = 2.0 / (h * h);
            if i > 0 {
                t.lower[i] = -1.0 / (h * h);
            }
            if i + 1 < n {
                t.upper[i] = -1.0 / (h * h);
            }
        }
        let pi = std::f64::consts::PI;
        let rhs: Vec<f64> = (1..=n).map(|i| pi * pi * (pi * i as f64 * h).sin()).collect();
        let u = t.solve(&rhs);
        for (i, &ui) in u.iter().enumerate() {
            let exact = (pi * (i as f64 + 1.0) * h).sin();
            assert!((ui - exact).abs() < 1e-3, "z={}: {ui} vs {exact}", (i + 1) as f64 * h);
        }
    }

    #[test]
    fn complex_solve_matches_split_real_solves() {
        let n = 33;
        let t = random_dd_system(n, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let rhs: Vec<Complex> = (0..n)
            .map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let x = solve_complex(&t, &rhs);
        let re = t.solve(&rhs.iter().map(|z| z.re).collect::<Vec<_>>());
        let im = t.solve(&rhs.iter().map(|z| z.im).collect::<Vec<_>>());
        for i in 0..n {
            assert!((x[i].re - re[i]).abs() < 1e-12);
            assert!((x[i].im - im[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn length_mismatch_panics() {
        Tridiag::zeros(3).solve(&[1.0, 2.0]);
    }
}
