//! Numerical gradient checks for every differentiable op on the tape.
//!
//! Each check builds a scalar loss from the op under test, computes reverse-
//! mode gradients, and compares them against central finite differences of
//! the re-executed forward pass.

use mfn_autodiff::{Activation, Graph, Mlp, ParamStore, Var};
use mfn_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Central-difference gradient check of `f` at `x0`.
///
/// `f` maps (graph, leaf var) to a scalar loss var; it is re-invoked on
/// perturbed copies of `x0`. Tolerance is relative with an absolute floor.
fn gradcheck(x0: &Tensor, tol: f32, f: impl Fn(&mut Graph, Var) -> Var) {
    let mut g = Graph::new();
    let x = g.leaf_with_grad(x0.clone());
    let loss = f(&mut g, x);
    g.backward(loss);
    let analytic = g.grad(x).clone();

    let eps = 1e-2f32;
    let eval = |t: &Tensor| -> f32 {
        let mut g = Graph::new();
        let x = g.leaf_with_grad(t.clone());
        let loss = f(&mut g, x);
        g.value(loss).item()
    };
    for i in 0..x0.numel() {
        let mut xp = x0.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x0.clone();
        xm.data_mut()[i] -= eps;
        let fd = (eval(&xp) - eval(&xm)) / (2.0 * eps);
        let a = analytic.data()[i];
        assert!(
            (a - fd).abs() <= tol * (1.0 + fd.abs()),
            "element {i}: analytic {a} vs fd {fd}"
        );
    }
}

fn randn(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::randn(dims, 0.7, &mut rng)
}

#[test]
fn add_sub_mul_chain() {
    let c = randn(&[3, 4], 1);
    gradcheck(&randn(&[3, 4], 0), 1e-2, |g, x| {
        let cv = g.constant(c.clone());
        let a = g.add(x, cv);
        let b = g.sub(a, x);
        let m = g.mul(a, b);
        g.sum(m)
    });
}

#[test]
fn mul_with_self() {
    gradcheck(&randn(&[5], 2), 1e-2, |g, x| {
        let sq = g.mul(x, x);
        let cu = g.mul(sq, x);
        g.mean(cu)
    });
}

#[test]
fn scale_neg_addscalar() {
    gradcheck(&randn(&[4], 3), 1e-2, |g, x| {
        let a = g.scale(x, -2.5);
        let b = g.neg(a);
        let c = g.add_scalar(b, 1.0);
        let m = g.mul(c, c);
        g.sum(m)
    });
}

#[test]
fn matmul_both_sides() {
    let b = randn(&[4, 3], 11);
    gradcheck(&randn(&[2, 4], 10), 1e-2, |g, x| {
        let bv = g.constant(b.clone());
        let y = g.matmul(x, bv);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    let a = randn(&[2, 4], 12);
    gradcheck(&randn(&[4, 3], 13), 1e-2, |g, x| {
        let av = g.constant(a.clone());
        let y = g.matmul(av, x);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn matmul_nt_both_sides() {
    let w = randn(&[5, 4], 21);
    gradcheck(&randn(&[3, 4], 20), 1e-2, |g, x| {
        let wv = g.constant(w.clone());
        let y = g.matmul_nt(x, wv);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    let a = randn(&[3, 4], 22);
    gradcheck(&randn(&[5, 4], 23), 1e-2, |g, x| {
        let av = g.constant(a.clone());
        let y = g.matmul_nt(av, x);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn bias_row_and_channel() {
    let x0 = randn(&[6, 3], 30);
    gradcheck(&randn(&[3], 31), 1e-2, |g, b| {
        let xv = g.constant(x0.clone());
        let y = g.bias_row(xv, b);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    let x5 = randn(&[2, 3, 2, 2, 2], 32);
    gradcheck(&randn(&[3], 33), 1e-2, |g, b| {
        let xv = g.constant(x5.clone());
        let y = g.bias_channel(xv, b);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn activations() {
    // Keep inputs away from ReLU/abs kinks so FD is valid.
    let mut x0 = randn(&[8], 40);
    for v in x0.data_mut() {
        if v.abs() < 0.2 {
            *v += 0.4;
        }
    }
    gradcheck(&x0, 1e-2, |g, x| {
        let y = g.relu(x);
        g.sum(y)
    });
    gradcheck(&x0, 1e-2, |g, x| {
        let y = g.softplus(x);
        g.sum(y)
    });
    gradcheck(&x0, 1e-2, |g, x| {
        let y = g.tanh(x);
        g.sum(y)
    });
    gradcheck(&x0, 1e-2, |g, x| {
        let y = g.abs(x);
        g.sum(y)
    });
}

#[test]
fn concat_and_slice() {
    let other = randn(&[3, 2], 51);
    gradcheck(&randn(&[3, 4], 50), 1e-2, |g, x| {
        let o = g.constant(other.clone());
        let c = g.concat(&[x, o], 1);
        let s = g.slice_cols(c, 1, 3);
        let sq = g.mul(s, s);
        g.sum(sq)
    });
}

#[test]
fn reshape_flows_through() {
    gradcheck(&randn(&[2, 6], 60), 1e-2, |g, x| {
        let r = g.reshape(x, &[3, 4]);
        let sq = g.mul(r, r);
        g.mean(sq)
    });
}

#[test]
fn conv3d_input_and_weight() {
    let w = randn(&[2, 2, 3, 3, 3], 71);
    gradcheck(&randn(&[1, 2, 3, 3, 3], 70), 2e-2, |g, x| {
        let wv = g.constant(w.clone());
        let y = g.conv3d(x, wv);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    let x = randn(&[1, 2, 3, 3, 3], 72);
    gradcheck(&randn(&[2, 2, 1, 1, 1], 73), 2e-2, |g, w| {
        let xv = g.constant(x.clone());
        let y = g.conv3d(xv, w);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn pooling_and_upsampling() {
    // Perturb away from pooling ties.
    let mut x0 = randn(&[1, 1, 2, 4, 4], 80);
    for (i, v) in x0.data_mut().iter_mut().enumerate() {
        *v += i as f32 * 1e-3;
    }
    gradcheck(&x0, 2e-2, |g, x| {
        let y = g.maxpool3d(x, [2, 2, 2]);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    gradcheck(&randn(&[1, 2, 2, 2, 2], 81), 1e-2, |g, x| {
        let y = g.upsample3d(x, [2, 1, 2]);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn batch_norm_all_three_inputs() {
    let gamma = Tensor::from_vec(vec![1.3, 0.7], &[2]);
    let beta = Tensor::from_vec(vec![0.1, -0.2], &[2]);
    let x0 = randn(&[3, 2, 2, 2, 2], 90);
    gradcheck(&x0, 5e-2, |g, x| {
        let ga = g.constant(gamma.clone());
        let be = g.constant(beta.clone());
        let y = g.batch_norm(x, ga, be, 1e-5, None);
        let t = g.constant(Tensor::ones(&[3, 2, 2, 2, 2]));
        let d = g.sub(y, t);
        let sq = g.mul(d, d);
        g.sum(sq)
    });
    let xc = randn(&[3, 2, 2, 2, 2], 91);
    gradcheck(&randn(&[2], 92), 2e-2, |g, ga| {
        let x = g.constant(xc.clone());
        let be = g.constant(beta.clone());
        let y = g.batch_norm(x, ga, be, 1e-5, None);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    gradcheck(&randn(&[2], 93), 2e-2, |g, be| {
        let x = g.constant(xc.clone());
        let ga = g.constant(gamma.clone());
        let y = g.batch_norm(x, ga, be, 1e-5, None);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn channel_affine_grad() {
    gradcheck(&randn(&[2, 3, 2, 2, 2], 100), 1e-2, |g, x| {
        let y = g.channel_affine(x, vec![2.0, -1.0, 0.5], vec![0.0, 1.0, -1.0]);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn gather_and_blend() {
    // grid [1, 2, 2, 2, 2], gather 4 vertices twice, blend groups of 2.
    let index = vec![0u32, 3, 5, 6];
    let weights = vec![0.25f32, 0.75, 0.6, 0.4];
    gradcheck(&randn(&[1, 2, 2, 2, 2], 110), 1e-2, |g, grid| {
        let rows = g.gather_vertices(grid, index.clone());
        let blended = g.vertex_blend(rows, weights.clone(), 2);
        let sq = g.mul(blended, blended);
        g.sum(sq)
    });
}

#[test]
fn l1_and_mse_losses() {
    let target = randn(&[4, 2], 121);
    let mut x0 = randn(&[4, 2], 120);
    // keep away from |.| kink
    for (v, t) in x0.data_mut().iter_mut().zip(target.data()) {
        if (*v - t).abs() < 0.2 {
            *v += 0.5;
        }
    }
    gradcheck(&x0, 1e-2, |g, x| {
        let t = g.constant(target.clone());
        g.l1_loss(x, t)
    });
    gradcheck(&x0, 1e-2, |g, x| {
        let t = g.constant(target.clone());
        g.mse_loss(x, t)
    });
}

#[test]
fn full_mlp_param_gradients() {
    // End-to-end: gradients of an MLP loss w.r.t. every registered parameter.
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(130);
    let mlp = Mlp::new(&mut store, "m", &[3, 8, 2], Activation::Softplus, &mut rng);
    let x0 = Tensor::randn(&[5, 3], 1.0, &mut rng);
    let target = Tensor::randn(&[5, 2], 1.0, &mut rng);

    let run = |store: &ParamStore| -> f32 {
        let mut g = Graph::new();
        let x = g.constant(x0.clone());
        let y = mlp.forward(&mut g, store, x);
        let t = g.constant(target.clone());
        let loss = g.mse_loss(y, t);
        g.value(loss).item()
    };

    let mut g = Graph::new();
    let x = g.constant(x0.clone());
    let y = mlp.forward(&mut g, &store, x);
    let t = g.constant(target.clone());
    let loss = g.mse_loss(y, t);
    g.backward(loss);
    let grads = g.param_grads(&store);

    let eps = 1e-2f32;
    for (pid, _, _) in store.clone().iter() {
        let numel = store.get(pid).numel();
        for i in (0..numel).step_by(3) {
            let mut sp = store.clone();
            sp.get_mut(pid).data_mut()[i] += eps;
            let mut sm = store.clone();
            sm.get_mut(pid).data_mut()[i] -= eps;
            let fd = (run(&sp) - run(&sm)) / (2.0 * eps);
            let a = grads[pid.index()].data()[i];
            assert!(
                (a - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "param {} [{i}]: {a} vs {fd}",
                store.name(pid)
            );
        }
    }
}

#[test]
fn grad_accumulates_on_reused_nodes() {
    // x used twice: d/dx (x*x + x) = 2x + 1.
    let x0 = Tensor::from_vec(vec![3.0], &[1]);
    let mut g = Graph::new();
    let x = g.leaf_with_grad(x0);
    let sq = g.mul(x, x);
    let s = g.add(sq, x);
    let loss = g.sum(s);
    g.backward(loss);
    assert!((g.grad(x).data()[0] - 7.0).abs() < 1e-5);
}

#[test]
fn no_grad_for_constants() {
    let mut g = Graph::new();
    let x = g.constant(Tensor::ones(&[2]));
    let y = g.scale(x, 2.0);
    let loss = g.sum(y);
    g.backward(loss);
    assert!(g.try_grad(x).is_none());
}
