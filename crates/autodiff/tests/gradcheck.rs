//! Numerical gradient checks for every differentiable op on the tape.
//!
//! Each check builds a scalar loss from the op under test, computes reverse-
//! mode gradients, and compares them against central finite differences of
//! the re-executed forward pass.

use mfn_autodiff::{Activation, Graph, Mlp, ParamStore, Var};
use mfn_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Central-difference gradient check of `f` at `x0`.
///
/// `f` maps (graph, leaf var) to a scalar loss var; it is re-invoked on
/// perturbed copies of `x0`. Tolerance is relative with an absolute floor.
fn gradcheck(x0: &Tensor, tol: f32, f: impl Fn(&mut Graph, Var) -> Var) {
    let mut g = Graph::new();
    let x = g.leaf_with_grad(x0.clone());
    let loss = f(&mut g, x);
    g.backward(loss);
    let analytic = g.grad(x).clone();

    let eps = 1e-2f32;
    let eval = |t: &Tensor| -> f32 {
        let mut g = Graph::new();
        let x = g.leaf_with_grad(t.clone());
        let loss = f(&mut g, x);
        g.value(loss).item()
    };
    for i in 0..x0.numel() {
        let mut xp = x0.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x0.clone();
        xm.data_mut()[i] -= eps;
        let fd = (eval(&xp) - eval(&xm)) / (2.0 * eps);
        let a = analytic.data()[i];
        assert!((a - fd).abs() <= tol * (1.0 + fd.abs()), "element {i}: analytic {a} vs fd {fd}");
    }
}

fn randn(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Tensor::randn(dims, 0.7, &mut rng)
}

#[test]
fn add_sub_mul_chain() {
    let c = randn(&[3, 4], 1);
    gradcheck(&randn(&[3, 4], 0), 1e-2, |g, x| {
        let cv = g.constant(c.clone());
        let a = g.add(x, cv);
        let b = g.sub(a, x);
        let m = g.mul(a, b);
        g.sum(m)
    });
}

#[test]
fn mul_with_self() {
    gradcheck(&randn(&[5], 2), 1e-2, |g, x| {
        let sq = g.mul(x, x);
        let cu = g.mul(sq, x);
        g.mean(cu)
    });
}

#[test]
fn scale_neg_addscalar() {
    gradcheck(&randn(&[4], 3), 1e-2, |g, x| {
        let a = g.scale(x, -2.5);
        let b = g.neg(a);
        let c = g.add_scalar(b, 1.0);
        let m = g.mul(c, c);
        g.sum(m)
    });
}

#[test]
fn matmul_both_sides() {
    let b = randn(&[4, 3], 11);
    gradcheck(&randn(&[2, 4], 10), 1e-2, |g, x| {
        let bv = g.constant(b.clone());
        let y = g.matmul(x, bv);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    let a = randn(&[2, 4], 12);
    gradcheck(&randn(&[4, 3], 13), 1e-2, |g, x| {
        let av = g.constant(a.clone());
        let y = g.matmul(av, x);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn matmul_nt_both_sides() {
    let w = randn(&[5, 4], 21);
    gradcheck(&randn(&[3, 4], 20), 1e-2, |g, x| {
        let wv = g.constant(w.clone());
        let y = g.matmul_nt(x, wv);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    let a = randn(&[3, 4], 22);
    gradcheck(&randn(&[5, 4], 23), 1e-2, |g, x| {
        let av = g.constant(a.clone());
        let y = g.matmul_nt(av, x);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn bias_row_and_channel() {
    let x0 = randn(&[6, 3], 30);
    gradcheck(&randn(&[3], 31), 1e-2, |g, b| {
        let xv = g.constant(x0.clone());
        let y = g.bias_row(xv, b);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    let x5 = randn(&[2, 3, 2, 2, 2], 32);
    gradcheck(&randn(&[3], 33), 1e-2, |g, b| {
        let xv = g.constant(x5.clone());
        let y = g.bias_channel(xv, b);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn activations() {
    // Keep inputs away from ReLU/abs kinks so FD is valid.
    let mut x0 = randn(&[8], 40);
    for v in x0.data_mut() {
        if v.abs() < 0.2 {
            *v += 0.4;
        }
    }
    gradcheck(&x0, 1e-2, |g, x| {
        let y = g.relu(x);
        g.sum(y)
    });
    gradcheck(&x0, 1e-2, |g, x| {
        let y = g.softplus(x);
        g.sum(y)
    });
    gradcheck(&x0, 1e-2, |g, x| {
        let y = g.tanh(x);
        g.sum(y)
    });
    gradcheck(&x0, 1e-2, |g, x| {
        let y = g.abs(x);
        g.sum(y)
    });
}

#[test]
fn concat_and_slice() {
    let other = randn(&[3, 2], 51);
    gradcheck(&randn(&[3, 4], 50), 1e-2, |g, x| {
        let o = g.constant(other.clone());
        let c = g.concat(&[x, o], 1);
        let s = g.slice_cols(c, 1, 3);
        let sq = g.mul(s, s);
        g.sum(sq)
    });
}

#[test]
fn reshape_flows_through() {
    gradcheck(&randn(&[2, 6], 60), 1e-2, |g, x| {
        let r = g.reshape(x, &[3, 4]);
        let sq = g.mul(r, r);
        g.mean(sq)
    });
}

#[test]
fn conv3d_input_and_weight() {
    let w = randn(&[2, 2, 3, 3, 3], 71);
    gradcheck(&randn(&[1, 2, 3, 3, 3], 70), 2e-2, |g, x| {
        let wv = g.constant(w.clone());
        let y = g.conv3d(x, wv);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    let x = randn(&[1, 2, 3, 3, 3], 72);
    gradcheck(&randn(&[2, 2, 1, 1, 1], 73), 2e-2, |g, w| {
        let xv = g.constant(x.clone());
        let y = g.conv3d(xv, w);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn pooling_and_upsampling() {
    // Perturb away from pooling ties. The spacing must exceed the
    // finite-difference span (2·eps = 2e-2) so no ±eps evaluation flips
    // which element wins a window — 5e-2 keeps the check seed-independent.
    let mut x0 = randn(&[1, 1, 2, 4, 4], 80);
    for (i, v) in x0.data_mut().iter_mut().enumerate() {
        *v += i as f32 * 5e-2;
    }
    gradcheck(&x0, 2e-2, |g, x| {
        let y = g.maxpool3d(x, [2, 2, 2]);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    gradcheck(&randn(&[1, 2, 2, 2, 2], 81), 1e-2, |g, x| {
        let y = g.upsample3d(x, [2, 1, 2]);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn batch_norm_all_three_inputs() {
    let gamma = Tensor::from_vec(vec![1.3, 0.7], &[2]);
    let beta = Tensor::from_vec(vec![0.1, -0.2], &[2]);
    let x0 = randn(&[3, 2, 2, 2, 2], 90);
    gradcheck(&x0, 5e-2, |g, x| {
        let ga = g.constant(gamma.clone());
        let be = g.constant(beta.clone());
        let y = g.batch_norm(x, ga, be, 1e-5, None);
        let t = g.constant(Tensor::ones(&[3, 2, 2, 2, 2]));
        let d = g.sub(y, t);
        let sq = g.mul(d, d);
        g.sum(sq)
    });
    let xc = randn(&[3, 2, 2, 2, 2], 91);
    gradcheck(&randn(&[2], 92), 2e-2, |g, ga| {
        let x = g.constant(xc.clone());
        let be = g.constant(beta.clone());
        let y = g.batch_norm(x, ga, be, 1e-5, None);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    gradcheck(&randn(&[2], 93), 2e-2, |g, be| {
        let x = g.constant(xc.clone());
        let ga = g.constant(gamma.clone());
        let y = g.batch_norm(x, ga, be, 1e-5, None);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn channel_affine_grad() {
    gradcheck(&randn(&[2, 3, 2, 2, 2], 100), 1e-2, |g, x| {
        let y = g.channel_affine(x, vec![2.0, -1.0, 0.5], vec![0.0, 1.0, -1.0]);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn gather_and_blend() {
    // grid [1, 2, 2, 2, 2], gather 4 vertices twice, blend groups of 2.
    let index = vec![0u32, 3, 5, 6];
    let weights = vec![0.25f32, 0.75, 0.6, 0.4];
    gradcheck(&randn(&[1, 2, 2, 2, 2], 110), 1e-2, |g, grid| {
        let rows = g.gather_vertices(grid, index.clone());
        let blended = g.vertex_blend(rows, weights.clone(), 2);
        let sq = g.mul(blended, blended);
        g.sum(sq)
    });
}

#[test]
fn l1_and_mse_losses() {
    let target = randn(&[4, 2], 121);
    let mut x0 = randn(&[4, 2], 120);
    // keep away from |.| kink
    for (v, t) in x0.data_mut().iter_mut().zip(target.data()) {
        if (*v - t).abs() < 0.2 {
            *v += 0.5;
        }
    }
    gradcheck(&x0, 1e-2, |g, x| {
        let t = g.constant(target.clone());
        g.l1_loss(x, t)
    });
    gradcheck(&x0, 1e-2, |g, x| {
        let t = g.constant(target.clone());
        g.mse_loss(x, t)
    });
}

#[test]
fn full_mlp_param_gradients() {
    // End-to-end: gradients of an MLP loss w.r.t. every registered parameter.
    let mut store = ParamStore::new();
    let mut rng = ChaCha8Rng::seed_from_u64(130);
    let mlp = Mlp::new(&mut store, "m", &[3, 8, 2], Activation::Softplus, &mut rng);
    let x0 = Tensor::randn(&[5, 3], 1.0, &mut rng);
    let target = Tensor::randn(&[5, 2], 1.0, &mut rng);

    let run = |store: &ParamStore| -> f32 {
        let mut g = Graph::new();
        let x = g.constant(x0.clone());
        let y = mlp.forward(&mut g, store, x);
        let t = g.constant(target.clone());
        let loss = g.mse_loss(y, t);
        g.value(loss).item()
    };

    let mut g = Graph::new();
    let x = g.constant(x0.clone());
    let y = mlp.forward(&mut g, &store, x);
    let t = g.constant(target.clone());
    let loss = g.mse_loss(y, t);
    g.backward(loss);
    let grads = g.param_grads(&store);

    let eps = 1e-2f32;
    for (pid, _, _) in store.clone().iter() {
        let numel = store.get(pid).numel();
        for i in (0..numel).step_by(3) {
            let mut sp = store.clone();
            sp.get_mut(pid).data_mut()[i] += eps;
            let mut sm = store.clone();
            sm.get_mut(pid).data_mut()[i] -= eps;
            let fd = (run(&sp) - run(&sm)) / (2.0 * eps);
            let a = grads[pid.index()].data()[i];
            assert!(
                (a - fd).abs() < 2e-2 * (1.0 + fd.abs()),
                "param {} [{i}]: {a} vs {fd}",
                store.name(pid)
            );
        }
    }
}

#[test]
fn grad_accumulates_on_reused_nodes() {
    // x used twice: d/dx (x*x + x) = 2x + 1.
    let x0 = Tensor::from_vec(vec![3.0], &[1]);
    let mut g = Graph::new();
    let x = g.leaf_with_grad(x0);
    let sq = g.mul(x, x);
    let s = g.add(sq, x);
    let loss = g.sum(s);
    g.backward(loss);
    assert!((g.grad(x).data()[0] - 7.0).abs() < 1e-5);
}

#[test]
fn no_grad_for_constants() {
    let mut g = Graph::new();
    let x = g.constant(Tensor::ones(&[2]));
    let y = g.scale(x, 2.0);
    let loss = g.sum(y);
    g.backward(loss);
    assert!(g.try_grad(x).is_none());
}

/// Trilinear weights of a unit-cell point `(u, v, w)` over the 8 vertices in
/// `(d, h, w)` bit order — the decoder's Eqn. 6 blending, reproduced here so
/// the gradcheck exercises realistic (convex, partly zero) weight vectors.
fn trilinear_weights(u: f32, v: f32, w: f32) -> Vec<f32> {
    let mut ws = Vec::with_capacity(8);
    for d in 0..2 {
        for h in 0..2 {
            for x in 0..2 {
                let wd = if d == 1 { u } else { 1.0 - u };
                let wh = if h == 1 { v } else { 1.0 - v };
                let wx = if x == 1 { w } else { 1.0 - w };
                ws.push(wd * wh * wx);
            }
        }
    }
    ws
}

#[test]
fn conv3d_overlapping_windows_and_batch() {
    // The basic conv3d checks use a kernel that exactly covers the input, so
    // each input element feeds one output. Here the 1x3x3 kernel slides over
    // a [2, 2, 2, 4, 4] batch: input gradients accumulate across overlapping
    // windows and weight gradients sum over both batch entries.
    let w = randn(&[3, 2, 1, 3, 3], 140);
    gradcheck(&randn(&[2, 2, 2, 4, 4], 141), 2e-2, |g, x| {
        let wv = g.constant(w.clone());
        let y = g.conv3d(x, wv);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
    let x = randn(&[2, 2, 2, 4, 4], 142);
    gradcheck(&randn(&[3, 2, 1, 3, 3], 143), 2e-2, |g, w| {
        let xv = g.constant(x.clone());
        let y = g.conv3d(xv, w);
        let sq = g.mul(y, y);
        g.sum(sq)
    });
}

#[test]
fn trilinear_decoder_path_batched_grid() {
    // The decoder path: gather 8 cell vertices per query from a batched
    // latent grid, trilinear-blend them, and push through a nonlinearity.
    // Query 1 reads batch entry 0, query 2 reads batch entry 1 with u = 0,
    // which zeroes half the weights and exercises the skip branch.
    let vol = 2 * 2 * 2;
    let mut index = Vec::new();
    for n in 0..2u32 {
        for v in 0..vol as u32 {
            index.push(n * vol as u32 + v);
        }
    }
    let mut weights = trilinear_weights(0.3, 0.6, 0.2);
    weights.extend(trilinear_weights(0.0, 0.45, 0.8));
    let target = randn(&[2, 3], 150);
    gradcheck(&randn(&[2, 3, 2, 2, 2], 151), 1e-2, |g, grid| {
        let rows = g.gather_vertices(grid, index.clone());
        let blended = g.vertex_blend(rows, weights.clone(), 8);
        let act = g.tanh(blended);
        let t = g.constant(target.clone());
        g.mse_loss(act, t)
    });
}

#[test]
fn fd_stencil_jet_path_accumulates_through_shared_grid() {
    // The PDE-residual path: the equation loss decodes the same latent grid
    // at stencil-shifted query points and combines them with central-
    // difference coefficients. Gradients must accumulate into the one grid
    // leaf through all three gathers.
    let h = 0.05f32;
    let index: Vec<u32> = (0..8).collect();
    let center = trilinear_weights(0.5, 0.5, 0.5);
    let plus = trilinear_weights(0.5, 0.5, 0.5 + h);
    let minus = trilinear_weights(0.5, 0.5, 0.5 - h);
    let target = randn(&[1, 2], 160);
    gradcheck(&randn(&[1, 2, 2, 2, 2], 161), 2e-2, |g, grid| {
        let decode = |g: &mut Graph, grid: Var, w: &[f32]| {
            let rows = g.gather_vertices(grid, index.clone());
            let blended = g.vertex_blend(rows, w.to_vec(), 8);
            g.tanh(blended)
        };
        let fc = decode(g, grid, &center);
        let fp = decode(g, grid, &plus);
        let fm = decode(g, grid, &minus);
        // residual = f + df/dw (central difference), squared against target.
        let diff = g.sub(fp, fm);
        let deriv = g.scale(diff, 1.0 / (2.0 * h));
        let resid = g.add(fc, deriv);
        let t = g.constant(target.clone());
        g.mse_loss(resid, t)
    });
}

#[test]
fn batch_norm_with_captured_stats() {
    // The `stats_out` branch must leave both the forward value and the
    // gradient identical to the plain path, while capturing batch moments.
    let gamma = Tensor::from_vec(vec![0.9, 1.4], &[2]);
    let beta = Tensor::from_vec(vec![-0.3, 0.2], &[2]);
    let x0 = randn(&[3, 2, 2, 2, 2], 170);
    gradcheck(&x0, 5e-2, |g, x| {
        let ga = g.constant(gamma.clone());
        let be = g.constant(beta.clone());
        let mut stats = (Vec::new(), Vec::new());
        let y = g.batch_norm(x, ga, be, 1e-5, Some(&mut stats));
        let t = g.constant(Tensor::ones(&[3, 2, 2, 2, 2]));
        let d = g.sub(y, t);
        let sq = g.mul(d, d);
        g.sum(sq)
    });
    // Captured moments are the batch mean/variance per channel.
    let mut g = Graph::new();
    let x = g.leaf_with_grad(x0.clone());
    let ga = g.constant(gamma.clone());
    let be = g.constant(beta.clone());
    let mut stats = (Vec::new(), Vec::new());
    g.batch_norm(x, ga, be, 1e-5, Some(&mut stats));
    let inner = 8;
    for c in 0..2 {
        let vals: Vec<f32> = (0..3)
            .flat_map(|n| {
                let off = (n * 2 + c) * inner;
                x0.data()[off..off + inner].to_vec()
            })
            .collect();
        let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
        let var: f32 =
            vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
        assert!((stats.0[c] - mean).abs() < 1e-4, "mean[{c}]");
        assert!((stats.1[c] - var).abs() < 1e-4, "var[{c}]");
    }
}

// ---- non-finite taint checks (debug builds) ----

#[test]
fn non_finite_leaf_values_flow_without_tripping_taint() {
    // Feeding NaN/inf *in* is the caller's prerogative: the leaf is marked
    // tainted and every downstream op stays silent about inherited poison.
    let mut g = Graph::new();
    let x = g.constant(Tensor::from_vec(vec![f32::NAN, f32::INFINITY, -1.0, 2.0], &[4]));
    let y = g.relu(x);
    let z = g.add(y, x);
    let s = g.sum(z);
    // relu maps NaN -> 0, so y is finite; the add re-poisons from x.
    assert!(g.value(s).data()[0].is_nan() || g.value(s).data()[0].is_infinite());
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "produced non-finite values from finite inputs")]
fn op_creating_non_finite_from_finite_inputs_is_blamed() {
    let mut g = Graph::new();
    // 3e38 is finite; scaling by 10 overflows f32 — the taint check must
    // name `scale` as the producing op instead of letting inf flow on.
    let x = g.constant(Tensor::from_vec(vec![3.0e38], &[1]));
    let _ = g.scale(x, 10.0);
}
