//! Reusable neural-network layers on top of the tape.
//!
//! Layers own [`ParamId`] handles into a shared [`ParamStore`]; their
//! `forward` methods record operations onto a caller-provided [`Graph`].
//! This split keeps parameters (long-lived, optimized, all-reduced) apart
//! from activations (per-step tape state), which is what both the Adam
//! optimizer and the data-parallel trainer need.

use crate::graph::{Graph, Var};
use crate::params::{ParamId, ParamStore};
use mfn_tensor::{conv3d_auto, matmul_nt, rowops, Tensor};
use rand::Rng;

/// Element-wise activation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit (paper Fig. 5 default).
    Relu,
    /// Smooth softplus; required when exact second derivatives of the decoder
    /// are wanted (PDE constraints), since ReLU has zero curvature a.e.
    Softplus,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no activation).
    Linear,
}

impl Activation {
    /// Records this activation on the tape.
    pub fn apply(self, g: &mut Graph, x: Var) -> Var {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Softplus => g.softplus(x),
            Activation::Tanh => g.tanh(x),
            Activation::Linear => x,
        }
    }

    /// Eager tensor evaluation for the no-grad inference path. Elementwise
    /// identical to the tape ops recorded by [`Activation::apply`]: both
    /// dispatch to the same scalar kernels, so outputs are bit-equal.
    pub fn apply_value(self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Softplus => x.map(crate::graph::softplus_scalar),
            Activation::Tanh => x.map(f32::tanh),
            Activation::Linear => x.clone(),
        }
    }

    /// Scalar evaluation (used by the forward-mode jet propagator).
    pub fn eval(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Softplus => crate::graph::softplus_scalar(x),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    /// First derivative at `x`.
    pub fn d1(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Softplus => crate::graph::sigmoid_scalar(x),
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Linear => 1.0,
        }
    }

    /// Second derivative at `x`.
    pub fn d2(self, x: f32) -> f32 {
        match self {
            Activation::Relu | Activation::Linear => 0.0,
            Activation::Softplus => {
                let s = crate::graph::sigmoid_scalar(x);
                s * (1.0 - s)
            }
            Activation::Tanh => {
                let t = x.tanh();
                -2.0 * t * (1.0 - t * t)
            }
        }
    }
}

/// A fully-connected layer `y = x W^T + b` (weights stored `[out, in]`).
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight parameter, shape `[out, in]`.
    pub weight: ParamId,
    /// Bias parameter, shape `[out]`.
    pub bias: ParamId,
    /// Input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
}

impl Linear {
    /// Registers a Kaiming-uniform-initialized linear layer.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut R,
    ) -> Self {
        let bound = (1.0 / in_features as f32).sqrt();
        let w = Tensor::rand_uniform(&[out_features, in_features], -bound, bound, rng);
        let b = Tensor::rand_uniform(&[out_features], -bound, bound, rng);
        Linear {
            weight: store.register(format!("{name}.weight"), w),
            bias: store.register(format!("{name}.bias"), b),
            in_features,
            out_features,
        }
    }

    /// Applies the layer to `x: [M, in]`, producing `[M, out]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.weight);
        let b = g.param(store, self.bias);
        let y = g.matmul_nt(x, w); // x @ W^T with W stored [out, in]
        g.bias_row(y, b)
    }

    /// Eager no-grad forward: the same `matmul_nt` + row-bias kernels as the
    /// tape path, with no node recorded — bit-identical to [`Linear::forward`].
    pub fn forward_nograd(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut y = matmul_nt(x, store.get(self.weight));
        rowops::add_bias_rows(&mut y, store.get(self.bias).data());
        y
    }
}

/// A 3D convolution layer with bias (stride 1, same padding).
#[derive(Debug, Clone)]
pub struct Conv3dLayer {
    /// Kernel parameter `[out, in, kd, kh, kw]`.
    pub weight: ParamId,
    /// Bias parameter `[out]`.
    pub bias: ParamId,
}

impl Conv3dLayer {
    /// Registers a Kaiming-initialized conv layer with kernel `[kd, kh, kw]`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cout: usize,
        kernel: [usize; 3],
        rng: &mut R,
    ) -> Self {
        let fan_in = cin * kernel[0] * kernel[1] * kernel[2];
        let std = (2.0 / fan_in as f32).sqrt();
        let w = Tensor::randn(&[cout, cin, kernel[0], kernel[1], kernel[2]], std, rng);
        let b = Tensor::zeros(&[cout]);
        Conv3dLayer {
            weight: store.register(format!("{name}.weight"), w),
            bias: store.register(format!("{name}.bias"), b),
        }
    }

    /// Applies the convolution to `x: [N, Cin, D, H, W]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.param(store, self.weight);
        let b = g.param(store, self.bias);
        let y = g.conv3d(x, w);
        g.bias_channel(y, b)
    }

    /// Eager no-grad forward: same `conv3d_auto` + channel-bias kernels as
    /// the tape path — bit-identical to [`Conv3dLayer::forward`].
    pub fn forward_nograd(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut y = conv3d_auto(x, store.get(self.weight));
        rowops::add_bias_channels(&mut y, store.get(self.bias).data());
        y
    }
}

/// Batch normalization over `[N, C, D, H, W]` with running statistics.
#[derive(Debug, Clone)]
pub struct BatchNorm3d {
    /// Scale parameter `[C]`.
    pub gamma: ParamId,
    /// Shift parameter `[C]`.
    pub beta: ParamId,
    /// Running mean, updated in training mode.
    pub running_mean: Vec<f32>,
    /// Running variance, updated in training mode.
    pub running_var: Vec<f32>,
    /// Exponential-moving-average momentum for running stats.
    pub momentum: f32,
    /// Variance fuzz.
    pub eps: f32,
}

impl BatchNorm3d {
    /// Registers a batch-norm layer for `c` channels (γ=1, β=0).
    pub fn new(store: &mut ParamStore, name: &str, c: usize) -> Self {
        BatchNorm3d {
            gamma: store.register(format!("{name}.gamma"), Tensor::ones(&[c])),
            beta: store.register(format!("{name}.beta"), Tensor::zeros(&[c])),
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Training-mode forward: normalizes with batch statistics and updates
    /// the running averages.
    pub fn forward_train(&mut self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let gamma = g.param(store, self.gamma);
        let beta = g.param(store, self.beta);
        let mut stats = (Vec::new(), Vec::new());
        let y = g.batch_norm(x, gamma, beta, self.eps, Some(&mut stats));
        for (r, &m) in self.running_mean.iter_mut().zip(&stats.0) {
            *r = (1.0 - self.momentum) * *r + self.momentum * m;
        }
        for (r, &v) in self.running_var.iter_mut().zip(&stats.1) {
            *r = (1.0 - self.momentum) * *r + self.momentum * v;
        }
        y
    }

    /// The frozen per-channel affine implied by the running statistics:
    /// `scale = γ/√(var+eps)`, `shift = β − mean·scale`. Both the tape eval
    /// path and the no-grad path derive their affine from here.
    pub fn eval_scale_shift(&self, store: &ParamStore) -> (Vec<f32>, Vec<f32>) {
        let gamma = store.get(self.gamma).data();
        let beta = store.get(self.beta).data();
        let scale: Vec<f32> =
            gamma.iter().zip(&self.running_var).map(|(&g, &v)| g / (v + self.eps).sqrt()).collect();
        let shift: Vec<f32> = beta
            .iter()
            .zip(&self.running_mean)
            .zip(&scale)
            .map(|((&b, &m), &s)| b - m * s)
            .collect();
        (scale, shift)
    }

    /// Inference-mode forward: frozen affine using the running statistics.
    pub fn forward_eval(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let (scale, shift) = self.eval_scale_shift(store);
        g.channel_affine(x, scale, shift)
    }

    /// Eager no-grad inference forward: the same frozen affine as
    /// [`BatchNorm3d::forward_eval`], applied without a tape. Never touches
    /// the running statistics.
    pub fn forward_nograd(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let (scale, shift) = self.eval_scale_shift(store);
        let mut y = x.clone();
        rowops::channel_affine(&mut y, &scale, &shift);
        y
    }

    /// Dispatches on `training`.
    pub fn forward(&mut self, g: &mut Graph, store: &ParamStore, x: Var, training: bool) -> Var {
        if training {
            self.forward_train(g, store, x)
        } else {
            self.forward_eval(g, store, x)
        }
    }
}

/// A multilayer perceptron with a shared hidden activation and linear head.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// The stacked layers, applied in order.
    pub layers: Vec<Linear>,
    /// Hidden activation (the last layer is always linear).
    pub activation: Activation,
}

impl Mlp {
    /// Registers an MLP with the given layer widths, e.g. `[35, 512, ..., 4]`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        widths: &[usize],
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(widths.len() >= 2, "an MLP needs at least input and output widths");
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.fc{i}"), w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.layers.first().expect("non-empty").in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.layers.last().expect("non-empty").out_features
    }

    /// Records the forward pass for `x: [M, in]`.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            if i != last {
                h = self.activation.apply(g, h);
            }
        }
        h
    }

    /// Eager no-grad forward — bit-identical to [`Mlp::forward`] (same layer
    /// and activation kernels, applied in the same order, no tape).
    pub fn forward_nograd(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let last = self.layers.len() - 1;
        let mut h: Option<Tensor> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let inp = h.as_ref().unwrap_or(x);
            let mut y = layer.forward_nograd(store, inp);
            if i != last {
                y = self.activation.apply_value(&y);
            }
            h = Some(y);
        }
        h.expect("non-empty MLP")
    }
}

/// A frozen, inference-only snapshot of an [`Mlp`] with weights quantized to
/// bf16 and prepacked into the GEMM micro-kernel's panel layout.
///
/// Numerics contract: weights are rounded once (RNE) at quantize time;
/// activations, biases, and every accumulation stay f32 — each output is the
/// same k-ordered f32 FMA chain as the full-precision path, over weights that
/// carry 8 mantissa bits instead of 24. Halves the resident weight bytes and
/// the weight-stream memory traffic of the decode hot loop.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<(mfn_tensor::bf16::PackedBf16Gemm, Vec<f32>)>,
    activation: Activation,
    in_features: usize,
}

impl QuantizedMlp {
    /// Quantizes an MLP's current weights out of `store`. The source model
    /// is untouched; the snapshot does not track later weight updates.
    pub fn quantize(mlp: &Mlp, store: &ParamStore) -> Self {
        let layers = mlp
            .layers
            .iter()
            .map(|layer| {
                let w = store.get(layer.weight);
                let packed = mfn_tensor::bf16::PackedBf16Gemm::from_nt_weight(
                    w.data(),
                    layer.out_features,
                    layer.in_features,
                );
                (packed, store.get(layer.bias).data().to_vec())
            })
            .collect();
        QuantizedMlp { layers, activation: mlp.activation, in_features: mlp.in_features() }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.layers.last().expect("non-empty").1.len()
    }

    /// Resident bytes of the quantized weight panels (biases excluded).
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(|(w, _)| w.weight_bytes()).sum()
    }

    /// Eager forward for `x: [M, in]` — mirrors [`Mlp::forward_nograd`] with
    /// the bf16 weight panels in place of the f32 `matmul_nt`. This is the
    /// bf16-*store* tier: activations and accumulation stay exact f32.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_impl(x, false)
    }

    /// Eager forward through the bf16-*compute* tier: each layer's
    /// activations are quantized to bf16 during GEMM packing and the tiles
    /// run `vdpbf16ps` arithmetic (`PackedBf16Gemm::matmul_bf16`). Biases
    /// and the activation function still apply in f32 between layers.
    /// Looser error contract than [`Self::forward`] — both operands
    /// rounded — in exchange for double FMA throughput on `avx512bf16`
    /// hosts.
    pub fn forward_compute(&self, x: &Tensor) -> Tensor {
        self.forward_impl(x, true)
    }

    fn forward_impl(&self, x: &Tensor, bf16_compute: bool) -> Tensor {
        let m = x.dims()[0];
        let last = self.layers.len() - 1;
        let mut h: Option<Tensor> = None;
        for (i, (weight, bias)) in self.layers.iter().enumerate() {
            let inp = h.as_ref().unwrap_or(x);
            let mut y = Tensor::zeros(&[m, weight.cols()]);
            if bf16_compute {
                weight.matmul_bf16(m, inp.data(), y.data_mut());
            } else {
                weight.matmul(m, inp.data(), y.data_mut());
            }
            rowops::add_bias_rows(&mut y, bias);
            if i != last {
                y = self.activation.apply_value(&y);
            }
            h = Some(y);
        }
        h.expect("non-empty MLP")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn linear_forward_matches_manual() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let y = lin.forward(&mut g, &store, x);
        let w = store.get(lin.weight);
        let b = store.get(lin.bias);
        for o in 0..2 {
            let manual: f32 =
                (0..3).map(|i| w.at(&[o, i]) * (i as f32 + 1.0)).sum::<f32>() + b.data()[o];
            assert!((g.value(y).data()[o] - manual).abs() < 1e-5);
        }
    }

    #[test]
    fn conv_layer_shapes() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let conv = Conv3dLayer::new(&mut store, "c", 2, 4, [3, 3, 3], &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[1, 2, 3, 4, 5]));
        let y = conv.forward(&mut g, &store, x);
        assert_eq!(g.value(y).dims(), &[1, 4, 3, 4, 5]);
    }

    #[test]
    fn batchnorm_train_normalizes() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm3d::new(&mut store, "bn", 2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = Tensor::randn(&[4, 2, 2, 2, 2], 3.0, &mut rng).map(|v| v + 5.0);
        let mut g = Graph::new();
        let xv = g.constant(x);
        let y = bn.forward_train(&mut g, &store, xv);
        let yv = g.value(y);
        // Per-channel mean ~0, var ~1 after normalization with gamma=1, beta=0.
        let inner = 8;
        let (n, c) = (4, 2);
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                let off = (ni * c + ci) * inner;
                vals.extend_from_slice(&yv.data()[off..off + inner]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
        // Running stats moved toward the batch stats.
        assert!(bn.running_mean[0] != 0.0);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut store = ParamStore::new();
        let mut bn = BatchNorm3d::new(&mut store, "bn", 1);
        bn.running_mean = vec![2.0];
        bn.running_var = vec![4.0];
        let mut g = Graph::new();
        let x = g.constant(Tensor::full(&[1, 1, 1, 1, 2], 6.0));
        let y = bn.forward_eval(&mut g, &store, x);
        // (6 - 2)/2 = 2
        for &v in g.value(y).data() {
            assert!((v - 2.0).abs() < 1e-4);
        }
    }

    #[test]
    fn mlp_shapes_and_determinism() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mlp = Mlp::new(&mut store, "mlp", &[5, 8, 8, 2], Activation::Softplus, &mut rng);
        assert_eq!(mlp.in_features(), 5);
        assert_eq!(mlp.out_features(), 2);
        let x = Tensor::ones(&[4, 5]);
        let mut g1 = Graph::new();
        let v1 = {
            let xv = g1.constant(x.clone());
            let y = mlp.forward(&mut g1, &store, xv);
            g1.value(y).clone()
        };
        let mut g2 = Graph::new();
        let xv = g2.constant(x);
        let y = mlp.forward(&mut g2, &store, xv);
        assert_eq!(&v1, g2.value(y));
        assert_eq!(v1.dims(), &[4, 2]);
    }

    #[test]
    fn activation_derivatives_match_finite_differences() {
        for act in [Activation::Softplus, Activation::Tanh, Activation::Linear] {
            for &x in &[-2.0f32, -0.3, 0.7, 3.0] {
                // f32 round-off dominates second differences at tiny h, so use
                // a moderate step and loose-but-meaningful tolerances.
                let h = 5e-2f32;
                let d1_fd = (act.eval(x + h) - act.eval(x - h)) / (2.0 * h);
                let d2_fd = (act.eval(x + h) - 2.0 * act.eval(x) + act.eval(x - h)) / (h * h);
                assert!((act.d1(x) - d1_fd).abs() < 1e-3, "{act:?} d1 at {x}");
                assert!((act.d2(x) - d2_fd).abs() < 2e-2, "{act:?} d2 at {x}");
            }
        }
    }
}
