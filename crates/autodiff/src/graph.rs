//! The reverse-mode autodiff tape.
//!
//! A [`Graph`] records every operation of one forward pass as a node holding
//! the op kind, its input [`Var`]s, and the computed value. [`Graph::backward`]
//! then walks the tape in reverse, accumulating adjoints. The design mirrors a
//! classic "Wengert list": no interior mutability, no `Rc` cycles — a graph is
//! a plain `Vec` owned by the caller, which makes it trivially `Send` and lets
//! the data-parallel trainer give every worker thread its own tape.

use crate::params::{ParamId, ParamStore};
use mfn_tensor::{
    conv3d_auto, conv3d_grad_input, conv3d_grad_weight, matmul, matmul_nt, matmul_tn, maxpool3d,
    maxpool3d_backward, upsample_nearest3d, upsample_nearest3d_backward, Conv3dDims, Tensor,
};
use mfn_tensor::{rowops, workspace};

/// A handle to a node on the tape (an SSA value of the recorded program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// The operation that produced a node's value.
#[derive(Debug, Clone)]
enum Op {
    /// An input: parameter, constant, or mini-batch data.
    Leaf,
    Add(Var, Var),
    Sub(Var, Var),
    /// Element-wise (Hadamard) product.
    Mul(Var, Var),
    Neg(Var),
    Scale(Var, f32),
    AddScalar(Var),
    /// `A @ B` for rank-2 operands.
    Matmul(Var, Var),
    /// `A @ B^T` for rank-2 operands (`B` stored `[n, k]`); the natural shape
    /// for linear layers with `[out, in]` weights.
    MatmulNT(Var, Var),
    /// `x + b` broadcasting `b: [N]` over the rows of `x: [M, N]`.
    BiasRow(Var, Var),
    /// `x + b` broadcasting `b: [C]` over channel dim 1 of `x: [N, C, ...]`.
    BiasChannel(Var, Var),
    Relu(Var),
    Softplus(Var),
    Tanh(Var),
    Abs(Var),
    /// Sum of all elements → scalar.
    Sum(Var),
    /// Mean of all elements → scalar.
    Mean(Var),
    /// Concatenation along `axis`; stores each part's size on that axis.
    Concat {
        inputs: Vec<Var>,
        axis: usize,
        sizes: Vec<usize>,
    },
    /// Column slice `x[:, lo..hi]` of a rank-2 tensor.
    SliceCols {
        input: Var,
        lo: usize,
        cols: usize,
    },
    Reshape(Var),
    Conv3d {
        input: Var,
        weight: Var,
        dims: Conv3dDims,
    },
    MaxPool3d {
        input: Var,
        indices: Vec<u32>,
        in_dims: Vec<usize>,
    },
    Upsample3d {
        input: Var,
        factors: [usize; 3],
    },
    /// Batch normalization over all axes but the channel axis (dim 1), in
    /// training mode: saves the per-channel batch statistics for backward.
    BatchNorm {
        input: Var,
        gamma: Var,
        beta: Var,
        mean: Vec<f32>,
        invstd: Vec<f32>,
    },
    /// Frozen per-channel affine `y = x * scale[c] + shift[c]` (inference-mode
    /// batch norm); only `x` receives gradient (the shift needs no storage).
    ChannelAffine {
        input: Var,
        scale: Vec<f32>,
    },
    /// Row gather from a 5D latent grid: row `m` of the output is
    /// `grid[n_m, :, d_m, h_m, w_m]` with the flat spatial index stored in
    /// `index[m]` (already combined as `n*vol + offset`).
    GatherVertices {
        grid: Var,
        index: Vec<u32>,
    },
    /// Blend groups of `group` consecutive rows with fixed weights:
    /// `out[q, c] = sum_v weights[q*group + v] * x[q*group + v, c]`.
    VertexBlend {
        input: Var,
        weights: Vec<f32>,
        group: usize,
    },
}

impl Op {
    /// Short name for taint diagnostics.
    #[cfg(debug_assertions)]
    fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Neg(..) => "neg",
            Op::Scale(..) => "scale",
            Op::AddScalar(..) => "add_scalar",
            Op::Matmul(..) => "matmul",
            Op::MatmulNT(..) => "matmul_nt",
            Op::BiasRow(..) => "bias_row",
            Op::BiasChannel(..) => "bias_channel",
            Op::Relu(..) => "relu",
            Op::Softplus(..) => "softplus",
            Op::Tanh(..) => "tanh",
            Op::Abs(..) => "abs",
            Op::Sum(..) => "sum",
            Op::Mean(..) => "mean",
            Op::Concat { .. } => "concat",
            Op::SliceCols { .. } => "slice_cols",
            Op::Reshape(..) => "reshape",
            Op::Conv3d { .. } => "conv3d",
            Op::MaxPool3d { .. } => "maxpool3d",
            Op::Upsample3d { .. } => "upsample3d",
            Op::BatchNorm { .. } => "batch_norm",
            Op::ChannelAffine { .. } => "channel_affine",
            Op::GatherVertices { .. } => "gather_vertices",
            Op::VertexBlend { .. } => "vertex_blend",
        }
    }

    /// Graph-input operands of this op (for taint propagation).
    #[cfg(debug_assertions)]
    fn inputs(&self) -> Vec<Var> {
        match self {
            Op::Leaf => vec![],
            Op::Add(a, b)
            | Op::Sub(a, b)
            | Op::Mul(a, b)
            | Op::Matmul(a, b)
            | Op::MatmulNT(a, b)
            | Op::BiasRow(a, b)
            | Op::BiasChannel(a, b) => vec![*a, *b],
            Op::Neg(a)
            | Op::Scale(a, _)
            | Op::AddScalar(a)
            | Op::Relu(a)
            | Op::Softplus(a)
            | Op::Tanh(a)
            | Op::Abs(a)
            | Op::Sum(a)
            | Op::Mean(a)
            | Op::Reshape(a) => vec![*a],
            Op::Concat { inputs, .. } => inputs.clone(),
            Op::SliceCols { input, .. }
            | Op::MaxPool3d { input, .. }
            | Op::Upsample3d { input, .. }
            | Op::ChannelAffine { input, .. }
            | Op::VertexBlend { input, .. } => vec![*input],
            Op::Conv3d { input, weight, .. } => vec![*input, *weight],
            Op::BatchNorm { input, gamma, beta, .. } => vec![*input, *gamma, *beta],
            Op::GatherVertices { grid, .. } => vec![*grid],
        }
    }
}

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
    requires_grad: bool,
    /// Debug builds track whether this node's value contains a non-finite
    /// element, so the first op that *creates* one from healthy inputs can be
    /// blamed directly instead of surfacing as a NaN loss much later.
    #[cfg(debug_assertions)]
    tainted: bool,
}

/// A single-use forward/backward tape.
pub struct Graph {
    nodes: Vec<Node>,
    /// Parameter leaves registered via [`Graph::param`], for gradient export.
    param_vars: Vec<(ParamId, Var)>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Graph { nodes: Vec::with_capacity(256), param_vars: Vec::new() }
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        // Taint check (debug builds only): if this op's output contains a
        // NaN/inf but none of its inputs did, the non-finite value was
        // *produced here* — fail at the op that made it, not at the loss.
        // Leaves are exempt: feeding non-finite data in is the caller's
        // prerogative (it marks the node tainted, silencing downstream ops).
        #[cfg(debug_assertions)]
        let tainted = {
            let bad = value.has_non_finite();
            if bad && !matches!(op, Op::Leaf) {
                let inherited = op.inputs().iter().any(|v| self.nodes[v.0].tainted);
                debug_assert!(
                    inherited,
                    "op `{}` (node {}) produced non-finite values from finite inputs",
                    op.name(),
                    self.nodes.len()
                );
            }
            bad
        };
        self.nodes.push(Node {
            value,
            grad: None,
            op,
            requires_grad,
            #[cfg(debug_assertions)]
            tainted,
        });
        Var(self.nodes.len() - 1)
    }

    fn rg(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }

    /// Records a trainable-parameter leaf (value copied from the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.push(store.get(id).clone(), Op::Leaf, true);
        self.param_vars.push((id, v));
        v
    }

    /// Records a non-trainable input (data, coordinates, targets).
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, false)
    }

    /// Records a leaf that requires gradient but is not a parameter
    /// (used in tests and for input-sensitivity probes).
    pub fn leaf_with_grad(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf, true)
    }

    /// The value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of a node (after [`Graph::backward`]).
    ///
    /// # Panics
    /// Panics if no gradient was accumulated for the node.
    pub fn grad(&self, v: Var) -> &Tensor {
        self.nodes[v.0]
            .grad
            .as_ref()
            .unwrap_or_else(|| panic!("no gradient for node {}; did you call backward()?", v.0))
    }

    /// The gradient of a node, or `None` if it never received one.
    pub fn try_grad(&self, v: Var) -> Option<&Tensor> {
        self.nodes[v.0].grad.as_ref()
    }

    /// Number of recorded nodes (for diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- arithmetic ----

    /// Element-wise sum of two same-shaped nodes.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg)
    }

    /// Element-wise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg)
    }

    /// Element-wise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), rg)
    }

    /// Negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.scale(-1.0);
        let rg = self.rg(a);
        self.push(v, Op::Neg(a), rg)
    }

    /// Multiplication by a compile-time-known scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.scale(s);
        let rg = self.rg(a);
        self.push(v, Op::Scale(a, s), rg)
    }

    /// Addition of a scalar constant.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let v = self.nodes[a.0].value.map(|x| x + s);
        let rg = self.rg(a);
        self.push(v, Op::AddScalar(a), rg)
    }

    /// Matrix product of rank-2 nodes.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = matmul(&self.nodes[a.0].value, &self.nodes[b.0].value);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Matmul(a, b), rg)
    }

    /// `a @ b^T` for rank-2 nodes, with gradients delivered to `b` in its
    /// native `[n, k]` layout (the linear-layer weight shape).
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let v = matmul_nt(&self.nodes[a.0].value, &self.nodes[b.0].value);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MatmulNT(a, b), rg)
    }

    /// Adds bias vector `b: [N]` to every row of `x: [M, N]`.
    pub fn bias_row(&mut self, x: Var, b: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[b.0].value;
        let mut out = xv.clone();
        rowops::add_bias_rows(&mut out, bv.data());
        let rg = self.rg(x) || self.rg(b);
        self.push(out, Op::BiasRow(x, b), rg)
    }

    /// Adds bias `b: [C]` over channel dim 1 of `x: [N, C, ...]`.
    pub fn bias_channel(&mut self, x: Var, b: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[b.0].value;
        let mut out = xv.clone();
        rowops::add_bias_channels(&mut out, bv.data());
        let rg = self.rg(x) || self.rg(b);
        self.push(out, Op::BiasChannel(x, b), rg)
    }

    // ---- activations ----

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        let rg = self.rg(a);
        self.push(v, Op::Relu(a), rg)
    }

    /// Softplus `ln(1 + e^x)` — a smooth (C^∞) ReLU surrogate, used by the
    /// continuous decoder so second spatial derivatives exist for the PDE
    /// constraints.
    pub fn softplus(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(softplus_scalar);
        let rg = self.rg(a);
        self.push(v, Op::Softplus(a), rg)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::tanh);
        let rg = self.rg(a);
        self.push(v, Op::Tanh(a), rg)
    }

    /// Element-wise absolute value (the L1-loss kernel).
    pub fn abs(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f32::abs);
        let rg = self.rg(a);
        self.push(v, Op::Abs(a), rg)
    }

    // ---- reductions & shape ----

    /// Sum of all elements, yielding a scalar node.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.sum());
        let rg = self.rg(a);
        self.push(v, Op::Sum(a), rg)
    }

    /// Mean of all elements, yielding a scalar node.
    pub fn mean(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(self.nodes[a.0].value.mean());
        let rg = self.rg(a);
        self.push(v, Op::Mean(a), rg)
    }

    /// Concatenates nodes along `axis`.
    pub fn concat(&mut self, inputs: &[Var], axis: usize) -> Var {
        let tensors: Vec<&Tensor> = inputs.iter().map(|v| &self.nodes[v.0].value).collect();
        let sizes: Vec<usize> = tensors.iter().map(|t| t.dims()[axis]).collect();
        let v = Tensor::concat(&tensors, axis);
        let rg = inputs.iter().any(|&i| self.rg(i));
        self.push(v, Op::Concat { inputs: inputs.to_vec(), axis, sizes }, rg)
    }

    /// Column slice `x[:, lo..lo+cols]` of a rank-2 node.
    pub fn slice_cols(&mut self, x: Var, lo: usize, cols: usize) -> Var {
        let xv = &self.nodes[x.0].value;
        assert_eq!(xv.shape().rank(), 2, "slice_cols input must be rank 2");
        let (m, n) = (xv.dims()[0], xv.dims()[1]);
        assert!(lo + cols <= n, "slice_cols out of range");
        let mut out = workspace::take_vec_capacity(m * cols);
        for row in xv.data().chunks(n) {
            out.extend_from_slice(&row[lo..lo + cols]);
        }
        let rg = self.rg(x);
        self.push(Tensor::from_vec(out, &[m, cols]), Op::SliceCols { input: x, lo, cols }, rg)
    }

    /// Reinterprets a node's buffer with a new shape.
    pub fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        let v = self.nodes[a.0].value.clone().reshape(dims);
        let rg = self.rg(a);
        self.push(v, Op::Reshape(a), rg)
    }

    // ---- structured NN ops ----

    /// 3D convolution (stride 1, same padding).
    pub fn conv3d(&mut self, input: Var, weight: Var) -> Var {
        let dims = Conv3dDims::infer(&self.nodes[input.0].value, &self.nodes[weight.0].value);
        let v = conv3d_auto(&self.nodes[input.0].value, &self.nodes[weight.0].value);
        let rg = self.rg(input) || self.rg(weight);
        self.push(v, Op::Conv3d { input, weight, dims }, rg)
    }

    /// Max pooling by integer factors.
    pub fn maxpool3d(&mut self, input: Var, factors: [usize; 3]) -> Var {
        let in_dims = self.nodes[input.0].value.dims().to_vec();
        let (v, indices) = maxpool3d(&self.nodes[input.0].value, factors);
        let rg = self.rg(input);
        self.push(v, Op::MaxPool3d { input, indices, in_dims }, rg)
    }

    /// Nearest-neighbor upsampling by integer factors.
    pub fn upsample3d(&mut self, input: Var, factors: [usize; 3]) -> Var {
        let v = upsample_nearest3d(&self.nodes[input.0].value, factors);
        let rg = self.rg(input);
        self.push(v, Op::Upsample3d { input, factors }, rg)
    }

    /// Training-mode batch normalization over every axis except channel dim 1.
    ///
    /// Returns the normalized output; the batch mean/variance used are
    /// reported through `stats_out` so the layer can maintain running
    /// statistics.
    pub fn batch_norm(
        &mut self,
        input: Var,
        gamma: Var,
        beta: Var,
        eps: f32,
        stats_out: Option<&mut (Vec<f32>, Vec<f32>)>,
    ) -> Var {
        let xv = &self.nodes[input.0].value;
        assert!(xv.shape().rank() >= 2);
        let (n, c) = (xv.dims()[0], xv.dims()[1]);
        let inner: usize = xv.dims()[2..].iter().product();
        let count = (n * inner) as f64;
        assert!(count >= 1.0, "batch_norm on empty batch");
        let mut mean = vec![0.0f64; c];
        let mut var = vec![0.0f64; c];
        let x = xv.data();
        for ni in 0..n {
            for ci in 0..c {
                let slab = &x[(ni * c + ci) * inner..(ni * c + ci + 1) * inner];
                for &v in slab {
                    mean[ci] += v as f64;
                }
            }
        }
        for m in mean.iter_mut() {
            *m /= count;
        }
        for ni in 0..n {
            for ci in 0..c {
                let slab = &x[(ni * c + ci) * inner..(ni * c + ci + 1) * inner];
                for &v in slab {
                    let d = v as f64 - mean[ci];
                    var[ci] += d * d;
                }
            }
        }
        for v in var.iter_mut() {
            *v /= count;
        }
        let mean32: Vec<f32> = mean.iter().map(|&m| m as f32).collect();
        let invstd: Vec<f32> = var.iter().map(|&v| 1.0 / ((v as f32 + eps).sqrt())).collect();
        if let Some(stats) = stats_out {
            stats.0 = mean32.clone();
            stats.1 = var.iter().map(|&v| v as f32).collect();
        }
        let g = self.nodes[gamma.0].value.data().to_vec();
        let b = self.nodes[beta.0].value.data().to_vec();
        let mut out = workspace::take_vec_scratch(x.len());
        for ni in 0..n {
            for ci in 0..c {
                let off = (ni * c + ci) * inner;
                let (m, is, gg, bb) = (mean32[ci], invstd[ci], g[ci], b[ci]);
                for k in 0..inner {
                    out[off + k] = (x[off + k] - m) * is * gg + bb;
                }
            }
        }
        let value = Tensor::from_vec(out, xv.dims());
        let rg = self.rg(input) || self.rg(gamma) || self.rg(beta);
        self.push(value, Op::BatchNorm { input, gamma, beta, mean: mean32, invstd }, rg)
    }

    /// Inference-mode per-channel affine `y[c] = x[c] * scale[c] + shift[c]`.
    pub fn channel_affine(&mut self, input: Var, scale: Vec<f32>, shift: Vec<f32>) -> Var {
        let xv = &self.nodes[input.0].value;
        let mut out = xv.clone();
        rowops::channel_affine(&mut out, &scale, &shift);
        let rg = self.rg(input);
        self.push(out, Op::ChannelAffine { input, scale }, rg)
    }

    /// Gathers rows from a latent grid `grid: [N, C, D, H, W]`.
    ///
    /// `index[m] = n*D*H*W + (d*H + h)*W + w` selects the vertex for output
    /// row `m`; the output is `[M, C]`.
    pub fn gather_vertices(&mut self, grid: Var, index: Vec<u32>) -> Var {
        let out = rowops::gather_rows(&self.nodes[grid.0].value, &index);
        let rg = self.rg(grid);
        self.push(out, Op::GatherVertices { grid, index }, rg)
    }

    /// Blends groups of `group` consecutive rows of `x: [Q*group, C]` with
    /// fixed weights (`weights.len() == Q*group`), producing `[Q, C]` — the
    /// trilinear vertex interpolation of paper Eqn. 6.
    pub fn vertex_blend(&mut self, input: Var, weights: Vec<f32>, group: usize) -> Var {
        let out = rowops::blend_rows(&self.nodes[input.0].value, &weights, group);
        let rg = self.rg(input);
        self.push(out, Op::VertexBlend { input, weights, group }, rg)
    }

    // ---- composite losses ----

    /// Mean absolute error between two same-shaped nodes (paper's L1 norm in
    /// Eqns. 8–9).
    pub fn l1_loss(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let a = self.abs(d);
        self.mean(a)
    }

    /// Mean squared error between two same-shaped nodes.
    pub fn mse_loss(&mut self, pred: Var, target: Var) -> Var {
        let d = self.sub(pred, target);
        let sq = self.mul(d, d);
        self.mean(sq)
    }

    // ---- backward ----

    /// Reverse-mode sweep seeding `d loss / d loss = 1`.
    ///
    /// # Panics
    /// Panics if `loss` is not a single-element node.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.nodes[loss.0].value.numel(), 1, "backward seed must be scalar");
        let n = self.nodes.len();
        self.nodes[loss.0].grad = Some(Tensor::ones(self.nodes[loss.0].value.dims()));
        for i in (0..n).rev() {
            if !self.nodes[i].requires_grad || self.nodes[i].grad.is_none() {
                continue;
            }
            let grad = self.nodes[i].grad.clone().expect("checked above");
            let op = self.nodes[i].op.clone();
            self.backprop_node(i, &grad, &op);
        }
    }

    fn accumulate(&mut self, v: Var, g: Tensor) {
        if !self.nodes[v.0].requires_grad {
            return;
        }
        match &mut self.nodes[v.0].grad {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    fn backprop_node(&mut self, node_idx: usize, grad: &Tensor, op: &Op) {
        match op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                self.accumulate(*a, grad.clone());
                self.accumulate(*b, grad.clone());
            }
            Op::Sub(a, b) => {
                self.accumulate(*a, grad.clone());
                self.accumulate(*b, grad.scale(-1.0));
            }
            Op::Mul(a, b) => {
                let ga = grad.mul(&self.nodes[b.0].value);
                let gb = grad.mul(&self.nodes[a.0].value);
                self.accumulate(*a, ga);
                self.accumulate(*b, gb);
            }
            Op::Neg(a) => self.accumulate(*a, grad.scale(-1.0)),
            Op::Scale(a, s) => self.accumulate(*a, grad.scale(*s)),
            Op::AddScalar(a) => self.accumulate(*a, grad.clone()),
            Op::Matmul(a, b) => {
                let ga = matmul_nt(grad, &self.nodes[b.0].value);
                let gb = matmul_tn(&self.nodes[a.0].value, grad);
                self.accumulate(*a, ga);
                self.accumulate(*b, gb);
            }
            Op::MatmulNT(a, b) => {
                // y = a @ b^T  =>  da = grad @ b,  db = grad^T @ a.
                let ga = matmul(grad, &self.nodes[b.0].value);
                let gb = matmul_tn(grad, &self.nodes[a.0].value);
                self.accumulate(*a, ga);
                self.accumulate(*b, gb);
            }
            Op::BiasRow(x, b) => {
                self.accumulate(*x, grad.clone());
                let n = self.nodes[b.0].value.numel();
                let mut gb = workspace::take_vec_zeroed(n);
                for row in grad.data().chunks(n) {
                    for (g, &r) in gb.iter_mut().zip(row) {
                        *g += r;
                    }
                }
                self.accumulate(*b, Tensor::from_vec(gb, self.nodes[b.0].value.dims()));
            }
            Op::BiasChannel(x, b) => {
                self.accumulate(*x, grad.clone());
                let c = self.nodes[b.0].value.numel();
                let inner: usize = grad.dims()[2..].iter().product();
                let mut gb = workspace::take_vec_zeroed(c);
                for slab in grad.data().chunks(c * inner) {
                    for (ch, sub) in slab.chunks(inner).enumerate() {
                        gb[ch] += sub.iter().sum::<f32>();
                    }
                }
                self.accumulate(*b, Tensor::from_vec(gb, self.nodes[b.0].value.dims()));
            }
            Op::Relu(a) => {
                let g = grad.zip(&self.nodes[a.0].value, |g, x| if x > 0.0 { g } else { 0.0 });
                self.accumulate(*a, g);
            }
            Op::Softplus(a) => {
                // d/dx softplus = sigmoid(x)
                let g = grad.zip(&self.nodes[a.0].value, |g, x| g * sigmoid_scalar(x));
                self.accumulate(*a, g);
            }
            Op::Tanh(a) => {
                // d/dx tanh = 1 - tanh^2; the node's own value is tanh(x).
                let y = &self.nodes[node_idx].value;
                let g = grad.zip(y, |g, t| g * (1.0 - t * t));
                self.accumulate(*a, g);
            }
            Op::Abs(a) => {
                let g = grad.zip(&self.nodes[a.0].value, |g, x| {
                    if x > 0.0 {
                        g
                    } else if x < 0.0 {
                        -g
                    } else {
                        0.0
                    }
                });
                self.accumulate(*a, g);
            }
            Op::Sum(a) => {
                let s = grad.item();
                let dims = self.nodes[a.0].value.dims().to_vec();
                self.accumulate(*a, Tensor::full(&dims, s));
            }
            Op::Mean(a) => {
                let n = self.nodes[a.0].value.numel().max(1);
                let s = grad.item() / n as f32;
                let dims = self.nodes[a.0].value.dims().to_vec();
                self.accumulate(*a, Tensor::full(&dims, s));
            }
            Op::Concat { inputs, axis, sizes } => {
                let parts = grad.split(*axis, sizes);
                for (v, g) in inputs.iter().zip(parts) {
                    self.accumulate(*v, g);
                }
            }
            Op::SliceCols { input, lo, cols } => {
                let xv = &self.nodes[input.0].value;
                let (m, n) = (xv.dims()[0], xv.dims()[1]);
                let mut gi = workspace::take_vec_zeroed(m * n);
                for (row, grow) in grad.data().chunks(*cols).enumerate() {
                    gi[row * n + lo..row * n + lo + cols].copy_from_slice(grow);
                }
                self.accumulate(*input, Tensor::from_vec(gi, &[m, n]));
            }
            Op::Reshape(a) => {
                let dims = self.nodes[a.0].value.dims().to_vec();
                self.accumulate(*a, grad.clone().reshape(&dims));
            }
            Op::Conv3d { input, weight, dims } => {
                if self.rg(*input) {
                    let gi = conv3d_grad_input(grad, &self.nodes[weight.0].value, *dims);
                    self.accumulate(*input, gi);
                }
                if self.rg(*weight) {
                    let gw = conv3d_grad_weight(&self.nodes[input.0].value, grad, *dims);
                    self.accumulate(*weight, gw);
                }
            }
            Op::MaxPool3d { input, indices, in_dims } => {
                let gi = maxpool3d_backward(grad, indices, in_dims);
                self.accumulate(*input, gi);
            }
            Op::Upsample3d { input, factors } => {
                let gi = upsample_nearest3d_backward(grad, *factors);
                self.accumulate(*input, gi);
            }
            Op::BatchNorm { input, gamma, beta, mean, invstd } => {
                let xv = &self.nodes[input.0].value;
                let (n, c) = (xv.dims()[0], xv.dims()[1]);
                let inner: usize = xv.dims()[2..].iter().product();
                let count = (n * inner) as f32;
                let g = self.nodes[gamma.0].value.data().to_vec();
                let x = xv.data();
                let dy = grad.data();
                // Per-channel sums of dy and dy*xhat.
                let mut sum_dy = vec![0.0f64; c];
                let mut sum_dyx = vec![0.0f64; c];
                for ni in 0..n {
                    for ci in 0..c {
                        let off = (ni * c + ci) * inner;
                        for k in 0..inner {
                            let xhat = (x[off + k] - mean[ci]) * invstd[ci];
                            sum_dy[ci] += dy[off + k] as f64;
                            sum_dyx[ci] += (dy[off + k] * xhat) as f64;
                        }
                    }
                }
                let mut dx = workspace::take_vec_scratch(x.len());
                for ni in 0..n {
                    for ci in 0..c {
                        let off = (ni * c + ci) * inner;
                        let m_dy = (sum_dy[ci] / count as f64) as f32;
                        let m_dyx = (sum_dyx[ci] / count as f64) as f32;
                        for k in 0..inner {
                            let xhat = (x[off + k] - mean[ci]) * invstd[ci];
                            dx[off + k] = g[ci] * invstd[ci] * (dy[off + k] - m_dy - xhat * m_dyx);
                        }
                    }
                }
                self.accumulate(*input, Tensor::from_vec(dx, xv.dims()));
                let dgamma: Vec<f32> = sum_dyx.iter().map(|&v| v as f32).collect();
                let dbeta: Vec<f32> = sum_dy.iter().map(|&v| v as f32).collect();
                let gdims = self.nodes[gamma.0].value.dims().to_vec();
                let bdims = self.nodes[beta.0].value.dims().to_vec();
                self.accumulate(*gamma, Tensor::from_vec(dgamma, &gdims));
                self.accumulate(*beta, Tensor::from_vec(dbeta, &bdims));
            }
            Op::ChannelAffine { input, scale, .. } => {
                let c = scale.len();
                let inner: usize = grad.dims()[2..].iter().product();
                let mut gi = grad.clone();
                for slab in gi.data_mut().chunks_mut(c * inner) {
                    for (ch, sub) in slab.chunks_mut(inner).enumerate() {
                        for o in sub {
                            *o *= scale[ch];
                        }
                    }
                }
                self.accumulate(*input, gi);
            }
            Op::GatherVertices { grid, index } => {
                let gv = &self.nodes[grid.0].value;
                let (_, c) = (gv.dims()[0], gv.dims()[1]);
                let vol: usize = gv.dims()[2..].iter().product();
                let mut gg = workspace::take_vec_zeroed(gv.numel());
                for (row, &flat) in index.iter().enumerate() {
                    let flat = flat as usize;
                    let ni = flat / vol;
                    let sp = flat % vol;
                    for ci in 0..c {
                        gg[(ni * c + ci) * vol + sp] += grad.data()[row * c + ci];
                    }
                }
                self.accumulate(*grid, Tensor::from_vec(gg, gv.dims()));
            }
            Op::VertexBlend { input, weights, group } => {
                let xv = &self.nodes[input.0].value;
                let (rows, c) = (xv.dims()[0], xv.dims()[1]);
                let mut gi = workspace::take_vec_scratch(rows * c);
                for qi in 0..rows / group {
                    let grow = &grad.data()[qi * c..(qi + 1) * c];
                    for v in 0..*group {
                        let w = weights[qi * group + v];
                        let dst = &mut gi[(qi * group + v) * c..(qi * group + v + 1) * c];
                        for (o, &g) in dst.iter_mut().zip(grow) {
                            *o = w * g;
                        }
                    }
                }
                self.accumulate(*input, Tensor::from_vec(gi, &[rows, c]));
            }
        }
    }

    /// Gradients of every registered parameter, aligned with `store`'s order;
    /// parameters that received no gradient get zeros.
    pub fn param_grads(&self, store: &ParamStore) -> Vec<Tensor> {
        let mut grads: Vec<Tensor> =
            (0..store.len()).map(|i| Tensor::zeros(store.get(ParamId(i)).dims())).collect();
        for &(pid, var) in &self.param_vars {
            if let Some(g) = self.try_grad(var) {
                grads[pid.0].add_assign(g);
            }
        }
        grads
    }
}

/// `e^x` by base-2 range reduction and a degree-5 polynomial (Cephes `expf`
/// coefficients, ≤ 2 ULP on the reduced interval). The caller must keep `x`
/// inside roughly `[-87, 88]` so the `2^n` exponent-bit reconstruction stays
/// in normal-float territory. Branch-free on purpose: this is the shape the
/// loop vectorizer folds into SIMD across a `Tensor::map`.
// Coefficients keep Cephes' published digits; clippy would have us round them.
#[allow(clippy::excessive_precision)]
#[inline(always)]
fn exp_poly(x: f32) -> f32 {
    // n = round(x / ln 2) via the shift-magic trick (valid since |n| < 2^22);
    // the integer lands in the low mantissa bits of z.
    const SHIFT: f32 = 12_582_912.0; // 1.5 * 2^23
    let z = x.mul_add(std::f32::consts::LOG2_E, SHIFT);
    let ni = (z.to_bits() as i32).wrapping_sub(SHIFT.to_bits() as i32);
    let n = z - SHIFT;
    // r = x - n*ln2 in two pieces (high then low part) so the reduction is exact.
    let r = n.mul_add(-0.693_359_375, x);
    let r = n.mul_add(2.121_944_4e-4, r);
    // e^r = 1 + r + r^2 * P(r) on |r| <= ln2 / 2.
    let mut p = 1.987_569_15e-4f32;
    p = p.mul_add(r, 1.398_199_95e-3);
    p = p.mul_add(r, 8.333_451_9e-3);
    p = p.mul_add(r, 4.166_579_6e-2);
    p = p.mul_add(r, 1.666_666_55e-1);
    p = p.mul_add(r, 5.000_000_1e-1);
    let y = (p * r).mul_add(r, r) + 1.0;
    // Scale by 2^n through the exponent field.
    y * f32::from_bits(((ni + 127) << 23) as u32)
}

/// `ln x` for finite positive `x` (Cephes `logf`): split off the exponent,
/// normalize the mantissa into `[√½, √2)`, degree-8 polynomial in `m − 1`.
/// Branch-free for the same vectorization reason as [`exp_poly`].
#[allow(clippy::excessive_precision)]
#[inline(always)]
fn ln_poly(x: f32) -> f32 {
    let bits = x.to_bits() as i32;
    let mut e = ((bits >> 23) - 126) as f32;
    // Mantissa into [0.5, 1), then fold m < √½ up a binade so f = m - 1 stays small.
    let mut m = f32::from_bits(((bits & 0x007F_FFFF) | 0x3F00_0000) as u32);
    let small = (m < std::f32::consts::FRAC_1_SQRT_2) as u32 as f32;
    e -= small;
    m += small * m;
    let f = m - 1.0;
    let z = f * f;
    let mut p = 7.037_683_6e-2f32;
    p = p.mul_add(f, -1.151_461_03e-1);
    p = p.mul_add(f, 1.167_699_87e-1);
    p = p.mul_add(f, -1.242_014_08e-1);
    p = p.mul_add(f, 1.424_932_28e-1);
    p = p.mul_add(f, -1.666_805_77e-1);
    p = p.mul_add(f, 2.000_071_48e-1);
    p = p.mul_add(f, -2.499_999_4e-1);
    p = p.mul_add(f, 3.333_333_1e-1);
    let mut y = f * z * p;
    y = e.mul_add(-2.121_944_4e-4, y);
    y -= 0.5 * z;
    e.mul_add(0.693_359_375, f + y)
}

/// Numerically-stable softplus.
///
/// Same regime structure as the textbook `ln(1 + eˣ)` with saturation at
/// `|x| = 20`, but built on the inlined `exp_poly`/`ln_poly` kernels
/// instead of libm calls: the whole body is straight-line selects, so a
/// `Tensor::map` over it auto-vectorizes (~5x on the decode hot path, where
/// the MLP's hidden activations dominate serving cost). Stays within the
/// reftest oracle's ULP budget; both the tape and no-grad forwards share
/// this exact function, which is what keeps them bit-identical.
#[inline]
pub fn softplus_scalar(x: f32) -> f32 {
    // One clamped exp serves both low regimes; e^-87 is still a normal float.
    let t = x.clamp(-87.0, 20.0);
    let z = exp_poly(t);
    let mid = ln_poly(1.0 + z);
    let mut y = if x < -20.0 { z } else { mid };
    y = if x > 20.0 { x } else { y }; // also catches +inf
    if x.is_nan() {
        x
    } else {
        y
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}
