//! Forward-mode "jets": exact first and second directional derivatives.
//!
//! A [`Jet3`] carries a value together with its gradient and *diagonal*
//! Hessian with respect to three independent directions (the decoder's
//! space-time coordinates `x`, `z`, `t`). Propagating jets through the
//! continuous decoding MLP yields the exact `∂y/∂x_i` and `∂²y/∂x_i²` needed
//! by the Rayleigh–Bénard residuals (the PDE uses no mixed second
//! derivatives, so the diagonal is sufficient — and diagonal-Hessian
//! forward propagation is exact, not an approximation).
//!
//! Training uses finite-difference stencils instead (so that `∂Loss/∂θ` comes
//! straight off the reverse tape); the jets serve inference and act as the
//! ground truth the stencils are validated against in tests.

use crate::nn::{Activation, Mlp};
use crate::params::ParamStore;
use mfn_tensor::Tensor;

/// A second-order jet in three directions: value, gradient, diagonal Hessian.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Jet3 {
    /// The value.
    pub v: f32,
    /// First derivatives `[d/dx, d/dz, d/dt]`.
    pub d: [f32; 3],
    /// Diagonal second derivatives `[d²/dx², d²/dz², d²/dt²]`.
    pub dd: [f32; 3],
}

impl Jet3 {
    /// A constant (all derivatives zero).
    pub fn constant(v: f32) -> Self {
        Jet3 { v, d: [0.0; 3], dd: [0.0; 3] }
    }

    /// The variable for direction `axis`: value `v`, unit first derivative.
    pub fn variable(v: f32, axis: usize) -> Self {
        let mut d = [0.0; 3];
        d[axis] = 1.0;
        Jet3 { v, d, dd: [0.0; 3] }
    }

    /// A variable with a scaled derivative `dv` along `axis` — used for
    /// normalized patch coordinates where `d(local)/d(physical) = 1/Δ`.
    pub fn scaled_variable(v: f32, axis: usize, dv: f32) -> Self {
        let mut d = [0.0; 3];
        d[axis] = dv;
        Jet3 { v, d, dd: [0.0; 3] }
    }

    /// Jet sum.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Jet3) -> Jet3 {
        Jet3 {
            v: self.v + o.v,
            d: [self.d[0] + o.d[0], self.d[1] + o.d[1], self.d[2] + o.d[2]],
            dd: [self.dd[0] + o.dd[0], self.dd[1] + o.dd[1], self.dd[2] + o.dd[2]],
        }
    }

    /// Jet product with the full second-order product rule
    /// `(fg)'' = f''g + 2f'g' + fg''` per direction.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Jet3) -> Jet3 {
        let mut d = [0.0; 3];
        let mut dd = [0.0; 3];
        for k in 0..3 {
            d[k] = self.d[k] * o.v + self.v * o.d[k];
            dd[k] = self.dd[k] * o.v + 2.0 * self.d[k] * o.d[k] + self.v * o.dd[k];
        }
        Jet3 { v: self.v * o.v, d, dd }
    }

    /// Scaling by a real constant.
    pub fn scale(self, s: f32) -> Jet3 {
        Jet3 {
            v: self.v * s,
            d: [self.d[0] * s, self.d[1] * s, self.d[2] * s],
            dd: [self.dd[0] * s, self.dd[1] * s, self.dd[2] * s],
        }
    }

    /// Applies a scalar activation via its chain rules:
    /// `σ(u)' = σ'(u) u'`, `σ(u)'' = σ''(u) u'² + σ'(u) u''`.
    pub fn activate(self, act: Activation) -> Jet3 {
        let s1 = act.d1(self.v);
        let s2 = act.d2(self.v);
        let mut d = [0.0; 3];
        let mut dd = [0.0; 3];
        for k in 0..3 {
            d[k] = s1 * self.d[k];
            dd[k] = s2 * self.d[k] * self.d[k] + s1 * self.dd[k];
        }
        Jet3 { v: act.eval(self.v), d, dd }
    }
}

/// A vector of jets (one per neuron of an MLP layer), in struct-of-arrays
/// layout for cache-friendly linear transforms.
#[derive(Debug, Clone, Default)]
pub struct JetVec {
    /// Values, one per feature.
    pub val: Vec<f32>,
    /// First derivatives per feature.
    pub d: Vec<[f32; 3]>,
    /// Diagonal second derivatives per feature.
    pub dd: Vec<[f32; 3]>,
}

impl JetVec {
    /// Builds a jet vector from per-feature jets.
    pub fn from_jets(jets: &[Jet3]) -> Self {
        JetVec {
            val: jets.iter().map(|j| j.v).collect(),
            d: jets.iter().map(|j| j.d).collect(),
            dd: jets.iter().map(|j| j.dd).collect(),
        }
    }

    /// The jet of feature `i`.
    pub fn jet(&self, i: usize) -> Jet3 {
        Jet3 { v: self.val[i], d: self.d[i], dd: self.dd[i] }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.val.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.val.is_empty()
    }
}

/// Linear layer `y = W x + b` applied to a jet vector (`W: [out, in]`).
/// Linear maps commute with differentiation, so derivatives transform by the
/// same matrix and the bias touches only the value.
pub fn linear_jet(w: &Tensor, b: &Tensor, x: &JetVec) -> JetVec {
    let (out, inp) = (w.dims()[0], w.dims()[1]);
    assert_eq!(x.len(), inp, "jet width mismatch");
    let wd = w.data();
    let mut val = vec![0.0f32; out];
    let mut d = vec![[0.0f32; 3]; out];
    let mut dd = vec![[0.0f32; 3]; out];
    for o in 0..out {
        let row = &wd[o * inp..(o + 1) * inp];
        let mut v = b.data()[o];
        let mut g = [0.0f32; 3];
        let mut h = [0.0f32; 3];
        for (i, &wv) in row.iter().enumerate() {
            if wv == 0.0 {
                continue;
            }
            v += wv * x.val[i];
            for k in 0..3 {
                g[k] += wv * x.d[i][k];
                h[k] += wv * x.dd[i][k];
            }
        }
        val[o] = v;
        d[o] = g;
        dd[o] = h;
    }
    JetVec { val, d, dd }
}

/// Element-wise activation over a jet vector.
pub fn activation_jet(act: Activation, x: &JetVec) -> JetVec {
    let n = x.len();
    let mut out = JetVec { val: vec![0.0; n], d: vec![[0.0; 3]; n], dd: vec![[0.0; 3]; n] };
    for i in 0..n {
        let j = x.jet(i).activate(act);
        out.val[i] = j.v;
        out.d[i] = j.d;
        out.dd[i] = j.dd;
    }
    out
}

/// Full forward-mode pass of an [`Mlp`] on a jet vector.
pub fn mlp_jet(mlp: &Mlp, store: &ParamStore, input: &JetVec) -> JetVec {
    let mut h = input.clone();
    let last = mlp.layers.len() - 1;
    for (i, layer) in mlp.layers.iter().enumerate() {
        h = linear_jet(store.get(layer.weight), store.get(layer.bias), &h);
        if i != last {
            h = activation_jet(mlp.activation, &h);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn product_rule_on_polynomials() {
        // f = x (axis 0), g = x -> fg = x^2: d = 2x, dd = 2.
        let x0 = 1.7f32;
        let x = Jet3::variable(x0, 0);
        let sq = x.mul(x);
        assert!((sq.v - x0 * x0).abs() < 1e-6);
        assert!((sq.d[0] - 2.0 * x0).abs() < 1e-6);
        assert!((sq.dd[0] - 2.0).abs() < 1e-6);
        // Cube: d = 3x^2, dd = 6x.
        let cube = sq.mul(x);
        assert!((cube.d[0] - 3.0 * x0 * x0).abs() < 1e-5);
        assert!((cube.dd[0] - 6.0 * x0).abs() < 1e-5);
    }

    #[test]
    fn independent_directions_stay_independent() {
        let x = Jet3::variable(2.0, 0);
        let z = Jet3::variable(3.0, 1);
        let p = x.mul(z); // xz: d/dx = z, d/dz = x, dd = 0 diagonal
        assert!((p.d[0] - 3.0).abs() < 1e-6);
        assert!((p.d[1] - 2.0).abs() < 1e-6);
        assert!(p.dd[0].abs() < 1e-6 && p.dd[1].abs() < 1e-6);
        assert!(p.d[2].abs() < 1e-6);
    }

    #[test]
    fn activation_jets_match_finite_differences() {
        for act in [Activation::Softplus, Activation::Tanh] {
            let x0 = 0.37f32;
            let j = Jet3::variable(x0, 2).activate(act);
            let f = |x: f32| act.eval(x);
            let h = 1e-3f32;
            let d_fd = (f(x0 + h) - f(x0 - h)) / (2.0 * h);
            assert!((j.d[2] - d_fd).abs() < 1e-3);
            // The second difference divides by h², amplifying each f32
            // evaluation's rounding by ~4·ulp(f)/h² — at h=1e-3 that is
            // already ~0.5, swamping the signal. h=1e-2 keeps the rounding
            // amplification ~5e-3 while the O(h²) truncation stays ~1e-4.
            let h = 1e-2f32;
            let dd_fd = (f(x0 + h) - 2.0 * f(x0) + f(x0 - h)) / (h * h);
            assert!((j.dd[2] - dd_fd).abs() < 1e-2);
        }
    }

    #[test]
    fn mlp_jet_matches_finite_differences() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mlp = Mlp::new(&mut store, "m", &[4, 16, 16, 2], Activation::Softplus, &mut rng);

        // Input: first 3 features are the coordinate variables, 4th is latent.
        let coords = [0.3f32, -0.2, 0.5];
        let latent = 0.8f32;
        let eval = |c: [f32; 3]| -> Vec<f32> {
            let jets: Vec<Jet3> = (0..3)
                .map(|k| Jet3::constant(c[k]))
                .chain(std::iter::once(Jet3::constant(latent)))
                .collect();
            let out = mlp_jet(&mlp, &store, &JetVec::from_jets(&jets));
            out.val
        };
        let jets: Vec<Jet3> = (0..3)
            .map(|k| Jet3::variable(coords[k], k))
            .chain(std::iter::once(Jet3::constant(latent)))
            .collect();
        let out = mlp_jet(&mlp, &store, &JetVec::from_jets(&jets));

        let h = 1e-2f32;
        for axis in 0..3 {
            let mut cp = coords;
            cp[axis] += h;
            let mut cm = coords;
            cm[axis] -= h;
            let fp = eval(cp);
            let fm = eval(cm);
            let f0 = eval(coords);
            for o in 0..2 {
                let d_fd = (fp[o] - fm[o]) / (2.0 * h);
                let dd_fd = (fp[o] - 2.0 * f0[o] + fm[o]) / (h * h);
                assert!(
                    (out.d[o][axis] - d_fd).abs() < 5e-3 * (1.0 + d_fd.abs()),
                    "axis {axis} out {o}: jet {} fd {}",
                    out.d[o][axis],
                    d_fd
                );
                assert!(
                    (out.dd[o][axis] - dd_fd).abs() < 5e-2 * (1.0 + dd_fd.abs()),
                    "axis {axis} out {o}: jet {} fd {}",
                    out.dd[o][axis],
                    dd_fd
                );
            }
        }
    }

    #[test]
    fn scaled_variable_applies_chain_rule() {
        // local = phys / 4 -> d(local)/d(phys) = 0.25; f(local) = local^2
        // df/dphys = 2*local*0.25.
        let local = Jet3::scaled_variable(0.5, 0, 0.25);
        let f = local.mul(local);
        assert!((f.d[0] - 2.0 * 0.5 * 0.25).abs() < 1e-6);
        assert!((f.dd[0] - 2.0 * 0.25 * 0.25).abs() < 1e-6);
    }

    #[test]
    fn jetvec_roundtrip() {
        let jets = vec![Jet3::variable(1.0, 0), Jet3::constant(2.0)];
        let v = JetVec::from_jets(&jets);
        assert_eq!(v.len(), 2);
        assert_eq!(v.jet(0), jets[0]);
        assert_eq!(v.jet(1), jets[1]);
    }
}
