//! Parameter checkpointing: save/restore a [`ParamStore`] to disk.
//!
//! The format is a little-endian binary payload (magic, per-tensor name,
//! shape, and data) — self-describing, dependency-free, and stable across
//! platforms. Loading validates names and shapes against the live store, so
//! a checkpoint can only be restored into a model with the same
//! architecture.

use crate::params::{ParamId, ParamStore};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MFNCKPT1";

/// Writes every parameter (name, shape, values) to `path`.
pub fn save_params(store: &ParamStore, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    for (id, name, tensor) in store.iter() {
        let _ = id;
        let nb = name.as_bytes();
        w.write_all(&(nb.len() as u32).to_le_bytes())?;
        w.write_all(nb)?;
        w.write_all(&(tensor.shape().rank() as u32).to_le_bytes())?;
        for &d in tensor.dims() {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in tensor.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Restores parameters saved by [`save_params`] into `store`.
///
/// # Errors
/// Fails if the file is corrupt, or if any name/shape does not match the
/// store (architecture mismatch).
pub fn load_params(store: &mut ParamStore, path: &Path) -> io::Result<()> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic bytes"));
    }
    let count = read_u64(&mut r)? as usize;
    if count != store.len() {
        return Err(bad(&format!("checkpoint has {count} parameters, model has {}", store.len())));
    }
    for i in 0..count {
        let id = ParamId(i);
        let name_len = read_u32(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("non-UTF8 parameter name"))?;
        if name != store.name(id) {
            return Err(bad(&format!(
                "parameter {i} name mismatch: checkpoint '{name}', model '{}'",
                store.name(id)
            )));
        }
        let rank = read_u32(&mut r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(&mut r)? as usize);
        }
        if dims != store.get(id).dims() {
            return Err(bad(&format!(
                "parameter '{name}' shape mismatch: checkpoint {dims:?}, model {:?}",
                store.get(id).dims()
            )));
        }
        let numel: usize = dims.iter().product();
        let mut bytes = vec![0u8; numel * 4];
        r.read_exact(&mut bytes)?;
        let data = store.get_mut(id).data_mut();
        for (k, chunk) in bytes.chunks_exact(4).enumerate() {
            data[k] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    Ok(())
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn example_store(seed: u64) -> ParamStore {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut s = ParamStore::new();
        s.register("layer.weight", Tensor::randn(&[4, 3], 1.0, &mut rng));
        s.register("layer.bias", Tensor::randn(&[4], 1.0, &mut rng));
        s.register("bn.gamma", Tensor::ones(&[2]));
        s
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let dir = std::env::temp_dir().join("mfn_ckpt_roundtrip");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.ckpt");
        let trained = example_store(1);
        save_params(&trained, &path).expect("save");
        let mut fresh = example_store(2); // different values, same shapes
        assert_ne!(fresh.flatten(), trained.flatten());
        load_params(&mut fresh, &path).expect("load");
        assert_eq!(fresh.flatten(), trained.flatten());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let dir = std::env::temp_dir().join("mfn_ckpt_mismatch");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.ckpt");
        save_params(&example_store(1), &path).expect("save");
        // Wrong shape.
        let mut other = ParamStore::new();
        other.register("layer.weight", Tensor::zeros(&[5, 3]));
        other.register("layer.bias", Tensor::zeros(&[4]));
        other.register("bn.gamma", Tensor::zeros(&[2]));
        assert!(load_params(&mut other, &path).is_err());
        // Wrong name.
        let mut other = ParamStore::new();
        other.register("oops.weight", Tensor::zeros(&[4, 3]));
        other.register("layer.bias", Tensor::zeros(&[4]));
        other.register("bn.gamma", Tensor::zeros(&[2]));
        assert!(load_params(&mut other, &path).is_err());
        // Wrong count.
        let mut other = ParamStore::new();
        other.register("layer.weight", Tensor::zeros(&[4, 3]));
        assert!(load_params(&mut other, &path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_corrupt_file() {
        let dir = std::env::temp_dir().join("mfn_ckpt_corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.ckpt");
        std::fs::write(&path, b"definitely not a checkpoint").expect("write");
        let mut s = example_store(1);
        assert!(load_params(&mut s, &path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
