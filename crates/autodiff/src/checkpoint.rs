//! Parameter checkpointing: save/restore a [`ParamStore`] to disk.
//!
//! The format is a little-endian binary payload (magic, per-tensor name,
//! shape, and data) — self-describing, dependency-free, and stable across
//! platforms. Loading validates names and shapes against the live store, so
//! a checkpoint can only be restored into a model with the same
//! architecture.

use crate::optim::{Adam, AdamConfig};
use crate::params::{ParamId, ParamStore};
use mfn_tensor::Tensor;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"MFNCKPT1";

/// Writes every parameter (name, shape, values) to `path`.
pub fn save_params(store: &ParamStore, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_params(store, &mut w)?;
    w.flush()
}

/// Streams every parameter (magic, count, then name/shape/values per
/// parameter) into `w`. The payload-embedding form of [`save_params`], used
/// by the full training-state checkpoint in `mfn-core`.
pub fn write_params(store: &ParamStore, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(store.len() as u64).to_le_bytes())?;
    for (id, name, tensor) in store.iter() {
        let _ = id;
        let nb = name.as_bytes();
        w.write_all(&(nb.len() as u32).to_le_bytes())?;
        w.write_all(nb)?;
        tensor.write_to(w)?;
    }
    Ok(())
}

/// Restores parameters saved by [`save_params`] into `store`.
///
/// # Errors
/// Fails if the file is corrupt, or if any name/shape does not match the
/// store (architecture mismatch).
pub fn load_params(store: &mut ParamStore, path: &Path) -> io::Result<()> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    read_params(store, &mut r)
}

/// Streams parameters written by [`write_params`] back into `store`,
/// validating names and shapes against the live registrations.
pub fn read_params(store: &mut ParamStore, r: &mut impl Read) -> io::Result<()> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("bad magic bytes"));
    }
    let count = read_u64(r)? as usize;
    if count != store.len() {
        return Err(bad(&format!("checkpoint has {count} parameters, model has {}", store.len())));
    }
    for i in 0..count {
        let id = ParamId(i);
        let name_len = read_u32(r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name).map_err(|_| bad("non-UTF8 parameter name"))?;
        if name != store.name(id) {
            return Err(bad(&format!(
                "parameter {i} name mismatch: checkpoint '{name}', model '{}'",
                store.name(id)
            )));
        }
        let rank = read_u32(r)? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(read_u64(r)? as usize);
        }
        if dims != store.get(id).dims() {
            return Err(bad(&format!(
                "parameter '{name}' shape mismatch: checkpoint {dims:?}, model {:?}",
                store.get(id).dims()
            )));
        }
        let numel: usize = dims.iter().product();
        let mut bytes = vec![0u8; numel * 4];
        r.read_exact(&mut bytes)?;
        let data = store.get_mut(id).data_mut();
        for (k, chunk) in bytes.chunks_exact(4).enumerate() {
            data[k] = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }
    Ok(())
}

const ADAM_MAGIC: &[u8; 8] = b"MFNADAM1";

/// Streams the complete Adam state — hyperparameters, step count, and both
/// moment buffers — into `w`, so a resumed run continues the exact update
/// trajectory (bias correction depends on `t`; the moments carry momentum).
pub fn write_adam(opt: &Adam, w: &mut impl Write) -> io::Result<()> {
    w.write_all(ADAM_MAGIC)?;
    let cfg = opt.config();
    for v in [cfg.lr, cfg.beta1, cfg.beta2, cfg.eps, cfg.weight_decay] {
        w.write_all(&v.to_le_bytes())?;
    }
    w.write_all(&opt.steps().to_le_bytes())?;
    let (m, v) = opt.moments();
    w.write_all(&(m.len() as u64).to_le_bytes())?;
    for t in m.iter().chain(v) {
        t.write_to(w)?;
    }
    Ok(())
}

/// Reads Adam state written by [`write_adam`] and binds it to `store`,
/// validating the moment shapes against the live parameters.
pub fn read_adam(store: &ParamStore, r: &mut impl Read) -> io::Result<Adam> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != ADAM_MAGIC {
        return Err(bad("bad Adam state magic bytes"));
    }
    let mut f = [0f32; 5];
    for v in f.iter_mut() {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        *v = f32::from_le_bytes(b);
    }
    let cfg = AdamConfig { lr: f[0], beta1: f[1], beta2: f[2], eps: f[3], weight_decay: f[4] };
    let t = read_u64(r)?;
    let count = read_u64(r)? as usize;
    if count != store.len() {
        return Err(bad(&format!("Adam state has {count} moments, model has {}", store.len())));
    }
    let mut read_list = |what: &str| -> io::Result<Vec<Tensor>> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let m = Tensor::read_from(r)?;
            if m.dims() != store.get(ParamId(i)).dims() {
                return Err(bad(&format!(
                    "Adam {what} moment {i} shape {:?} does not match parameter {:?}",
                    m.dims(),
                    store.get(ParamId(i)).dims()
                )));
            }
            out.push(m);
        }
        Ok(out)
    };
    let m = read_list("first")?;
    let v = read_list("second")?;
    let mut opt = Adam::new(store, cfg);
    opt.restore_state(cfg, m, v, t);
    Ok(opt)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn example_store(seed: u64) -> ParamStore {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut s = ParamStore::new();
        s.register("layer.weight", Tensor::randn(&[4, 3], 1.0, &mut rng));
        s.register("layer.bias", Tensor::randn(&[4], 1.0, &mut rng));
        s.register("bn.gamma", Tensor::ones(&[2]));
        s
    }

    #[test]
    fn roundtrip_restores_exact_values() {
        let dir = std::env::temp_dir().join("mfn_ckpt_roundtrip");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.ckpt");
        let trained = example_store(1);
        save_params(&trained, &path).expect("save");
        let mut fresh = example_store(2); // different values, same shapes
        assert_ne!(fresh.flatten(), trained.flatten());
        load_params(&mut fresh, &path).expect("load");
        assert_eq!(fresh.flatten(), trained.flatten());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let dir = std::env::temp_dir().join("mfn_ckpt_mismatch");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.ckpt");
        save_params(&example_store(1), &path).expect("save");
        // Wrong shape.
        let mut other = ParamStore::new();
        other.register("layer.weight", Tensor::zeros(&[5, 3]));
        other.register("layer.bias", Tensor::zeros(&[4]));
        other.register("bn.gamma", Tensor::zeros(&[2]));
        assert!(load_params(&mut other, &path).is_err());
        // Wrong name.
        let mut other = ParamStore::new();
        other.register("oops.weight", Tensor::zeros(&[4, 3]));
        other.register("layer.bias", Tensor::zeros(&[4]));
        other.register("bn.gamma", Tensor::zeros(&[2]));
        assert!(load_params(&mut other, &path).is_err());
        // Wrong count.
        let mut other = ParamStore::new();
        other.register("layer.weight", Tensor::zeros(&[4, 3]));
        assert!(load_params(&mut other, &path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adam_roundtrip_continues_identical_trajectory() {
        let mut a = example_store(3);
        let mut b = example_store(3);
        let cfg = AdamConfig { lr: 0.05, ..Default::default() };
        let mut opt_a = Adam::new(&a, cfg);
        let grads: Vec<Tensor> =
            (0..a.len()).map(|i| Tensor::full(a.get(ParamId(i)).dims(), 0.3)).collect();
        for _ in 0..4 {
            opt_a.step(&mut a, &grads);
        }
        // Serialize mid-run state, restore into a fresh optimizer bound to `b`.
        let mut buf = Vec::new();
        write_adam(&opt_a, &mut buf).expect("write");
        b.unflatten_into(&a.flatten());
        let mut opt_b = read_adam(&b, &mut buf.as_slice()).expect("read");
        assert_eq!(opt_b.steps(), 4);
        // Both continue for 3 more steps; trajectories must match bitwise.
        for _ in 0..3 {
            opt_a.step(&mut a, &grads);
            opt_b.step(&mut b, &grads);
        }
        assert_eq!(a.flatten(), b.flatten());
    }

    #[test]
    fn read_adam_rejects_garbage_and_mismatch() {
        let store = example_store(1);
        // Garbage magic.
        assert!(read_adam(&store, &mut &b"not an adam state..."[..]).is_err());
        // State captured from a differently-shaped store.
        let mut other = ParamStore::new();
        other.register("layer.weight", Tensor::zeros(&[2, 2]));
        other.register("layer.bias", Tensor::zeros(&[4]));
        other.register("bn.gamma", Tensor::zeros(&[2]));
        let opt = Adam::new(&other, AdamConfig::default());
        let mut buf = Vec::new();
        write_adam(&opt, &mut buf).expect("write");
        assert!(read_adam(&store, &mut buf.as_slice()).is_err());
        // Truncated payload.
        let opt = Adam::new(&store, AdamConfig::default());
        let mut buf = Vec::new();
        write_adam(&opt, &mut buf).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(read_adam(&store, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_corrupt_file() {
        let dir = std::env::temp_dir().join("mfn_ckpt_corrupt");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("model.ckpt");
        std::fs::write(&path, b"definitely not a checkpoint").expect("write");
        let mut s = example_store(1);
        assert!(load_params(&mut s, &path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
