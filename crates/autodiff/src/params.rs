//! Parameter storage shared between model layers and the optimizer.
//!
//! Layers register their weights in a [`ParamStore`] at construction time and
//! keep [`ParamId`] handles; every training step copies the current values
//! onto a fresh [`crate::Graph`] tape. Gradients come back as a list aligned
//! with the store's registration order, which is also the order used by the
//! flat buffers of the distributed all-reduce.

use mfn_tensor::Tensor;

/// A stable handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter in its store.
    pub fn index(self) -> usize {
        self.0
    }
}

/// An ordered collection of named parameter tensors.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.params.push(value);
        self.names.push(name.into());
        ParamId(self.params.len() - 1)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.params[id.0]
    }

    /// Mutable access to a parameter (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.params[id.0]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over `(id, name, tensor)` triples in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.params
            .iter()
            .zip(&self.names)
            .enumerate()
            .map(|(i, (t, n))| (ParamId(i), n.as_str(), t))
    }

    /// Total number of scalar parameters.
    pub fn total_numel(&self) -> usize {
        self.params.iter().map(Tensor::numel).sum()
    }

    /// Copies every parameter into one flat buffer (registration order).
    pub fn flatten(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.total_numel());
        for p in &self.params {
            out.extend_from_slice(p.data());
        }
        out
    }

    /// Overwrites every parameter from a flat buffer produced by
    /// [`ParamStore::flatten`] (or an all-reduced copy of it).
    ///
    /// # Panics
    /// Panics if `flat.len() != self.total_numel()`.
    pub fn unflatten_into(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.total_numel(), "flat parameter buffer length mismatch");
        let mut off = 0;
        for p in &mut self.params {
            let n = p.numel();
            p.data_mut().copy_from_slice(&flat[off..off + n]);
            off += n;
        }
    }

    /// A read-only view for inference engines (see [`FrozenParams`]).
    pub fn frozen(&self) -> FrozenParams<'_> {
        FrozenParams { store: self }
    }
}

/// A read-only view of a [`ParamStore`] for inference.
///
/// Serving code holds this view instead of the store itself, so the type
/// system rules out accidental weight mutation (`get_mut`, `unflatten_into`)
/// on a loaded checkpoint — the optimizer and trainer APIs all demand
/// `&mut ParamStore`, which cannot be reached through this view.
#[derive(Debug, Clone, Copy)]
pub struct FrozenParams<'a> {
    store: &'a ParamStore,
}

impl<'a> FrozenParams<'a> {
    /// Current value of a parameter.
    pub fn get(&self, id: ParamId) -> &'a Tensor {
        self.store.get(id)
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &'a str {
        self.store.name(id)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn total_numel(&self) -> usize {
        self.store.total_numel()
    }

    /// Iterates over `(id, name, tensor)` triples in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &'a str, &'a Tensor)> {
        self.store.iter()
    }
}

/// Flattens a gradient list (aligned with a store) into one buffer, the
/// layout consumed by the ring all-reduce.
pub fn flatten_grads(grads: &[Tensor]) -> Vec<f32> {
    let total: usize = grads.iter().map(Tensor::numel).sum();
    let mut out = Vec::with_capacity(total);
    for g in grads {
        out.extend_from_slice(g.data());
    }
    out
}

/// Splits a flat gradient buffer back into per-parameter tensors shaped like
/// the store's parameters.
pub fn unflatten_grads(store: &ParamStore, flat: &[f32]) -> Vec<Tensor> {
    assert_eq!(flat.len(), store.total_numel());
    let mut out = Vec::with_capacity(store.len());
    let mut off = 0;
    for (_, _, p) in store.iter() {
        let n = p.numel();
        out.push(Tensor::from_vec(flat[off..off + n].to_vec(), p.dims()));
        off += n;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let a = store.register("w", Tensor::ones(&[2, 2]));
        let b = store.register("b", Tensor::zeros(&[2]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.name(a), "w");
        assert_eq!(store.name(b), "b");
        assert_eq!(store.total_numel(), 6);
        assert_eq!(store.get(a).sum(), 4.0);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        store.register("b", Tensor::from_vec(vec![3.0], &[1]));
        let flat = store.flatten();
        assert_eq!(flat, vec![1.0, 2.0, 3.0]);
        store.unflatten_into(&[4.0, 5.0, 6.0]);
        assert_eq!(store.flatten(), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn grad_flatten_roundtrip() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(&[2, 3]));
        store.register("b", Tensor::zeros(&[3]));
        let grads = vec![Tensor::ones(&[2, 3]), Tensor::full(&[3], 2.0)];
        let flat = flatten_grads(&grads);
        assert_eq!(flat.len(), 9);
        let back = unflatten_grads(&store, &flat);
        assert_eq!(back[0], grads[0]);
        assert_eq!(back[1], grads[1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn unflatten_checks_length() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::zeros(&[2]));
        store.unflatten_into(&[1.0]);
    }
}
