//! First-order optimizers operating on a [`ParamStore`].
//!
//! The paper trains with Adam (Sec. 5, lr 1e-2); plain SGD with momentum is
//! provided for the ablation benches. Both consume a gradient list aligned
//! with the store's registration order, which is exactly what
//! [`crate::Graph::param_grads`] and the distributed all-reduce produce.

use crate::params::{ParamId, ParamStore};
use mfn_tensor::Tensor;

/// Configuration for the [`Adam`] optimizer.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Step size.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled L2 weight decay (0 disables). The paper applies an l1
    /// regularization term to the *loss*; weight decay here is kept for
    /// ablations and defaults to off.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-2, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// The Adam optimizer (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    /// Creates an optimizer with zeroed moment buffers matching `store`.
    pub fn new(store: &ParamStore, cfg: AdamConfig) -> Self {
        let m = (0..store.len()).map(|i| Tensor::zeros(store.get(ParamId(i)).dims())).collect();
        let v = (0..store.len()).map(|i| Tensor::zeros(store.get(ParamId(i)).dims())).collect();
        Adam { cfg, m, v, t: 0 }
    }

    /// The configuration in use.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }

    /// Changes the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Read-only view of the first/second moment buffers (registration
    /// order, like the store). Exposed so checkpoints can persist the full
    /// optimizer state — losing the moments on crash-resume silently changes
    /// the trajectory even when the parameters are restored exactly.
    pub fn moments(&self) -> (&[Tensor], &[Tensor]) {
        (&self.m, &self.v)
    }

    /// Replaces the optimizer state wholesale (checkpoint restore).
    ///
    /// # Panics
    /// Panics if the moment lists do not match the existing buffers in
    /// count or per-tensor shape — a restored state must describe the same
    /// parameter registration order it was captured from.
    pub fn restore_state(&mut self, cfg: AdamConfig, m: Vec<Tensor>, v: Vec<Tensor>, t: u64) {
        assert_eq!(m.len(), self.m.len(), "Adam first-moment count mismatch");
        assert_eq!(v.len(), self.v.len(), "Adam second-moment count mismatch");
        for (i, (nm, nv)) in m.iter().zip(&v).enumerate() {
            assert_eq!(nm.dims(), self.m[i].dims(), "first-moment shape mismatch at param {i}");
            assert_eq!(nv.dims(), self.v[i].dims(), "second-moment shape mismatch at param {i}");
        }
        self.cfg = cfg;
        self.m = m;
        self.v = v;
        self.t = t;
    }

    /// Applies one update. `grads` must align with the store.
    ///
    /// # Panics
    /// Panics if `grads.len() != store.len()` or shapes mismatch.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Tensor]) {
        assert_eq!(grads.len(), store.len(), "gradient list length mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for (i, g) in grads.iter().enumerate() {
            let p = store.get_mut(ParamId(i));
            assert_eq!(p.dims(), g.dims(), "gradient shape mismatch at param {i}");
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let pd = p.data_mut();
            let gd = g.data();
            for k in 0..pd.len() {
                let grad = gd[k] + self.cfg.weight_decay * pd[k];
                m[k] = self.cfg.beta1 * m[k] + (1.0 - self.cfg.beta1) * grad;
                v[k] = self.cfg.beta2 * v[k] + (1.0 - self.cfg.beta2) * grad * grad;
                let mhat = m[k] / bc1;
                let vhat = v[k] / bc2;
                pd[k] -= self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
            }
        }
    }
}

/// Plain SGD with optional momentum (baseline optimizer for ablations).
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer for `store`.
    pub fn new(store: &ParamStore, lr: f32, momentum: f32) -> Self {
        let velocity =
            (0..store.len()).map(|i| Tensor::zeros(store.get(ParamId(i)).dims())).collect();
        Sgd { lr, momentum, velocity }
    }

    /// Applies one update.
    pub fn step(&mut self, store: &mut ParamStore, grads: &[Tensor]) {
        assert_eq!(grads.len(), store.len());
        for (i, g) in grads.iter().enumerate() {
            let p = store.get_mut(ParamId(i));
            let v = self.velocity[i].data_mut();
            let pd = p.data_mut();
            for k in 0..pd.len() {
                v[k] = self.momentum * v[k] + g.data()[k];
                pd[k] -= self.lr * v[k];
            }
        }
    }
}

/// Global L2 norm over a gradient list (accumulated in f64).
pub fn grad_l2_norm(grads: &[Tensor]) -> f32 {
    let total: f64 = grads.iter().map(|g| g.norm_sqr() as f64).sum();
    total.sqrt() as f32
}

/// Clips a gradient list to a global L2 norm, returning the pre-clip norm.
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let norm = grad_l2_norm(grads);
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for g in grads.iter_mut() {
            for x in g.data_mut() {
                *x *= s;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(x) = (x - 3)^2 with Adam converges to 3.
    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::scalar(0.0));
        let mut opt = Adam::new(&store, AdamConfig { lr: 0.1, ..Default::default() });
        for _ in 0..500 {
            let xv = store.get(x).item();
            let grad = vec![Tensor::scalar(2.0 * (xv - 3.0))];
            opt.step(&mut store, &grad);
        }
        assert!((store.get(x).item() - 3.0).abs() < 1e-3);
    }

    /// First Adam step has magnitude ≈ lr regardless of gradient scale.
    #[test]
    fn adam_first_step_is_lr_sized() {
        for &g0 in &[1e-4f32, 1.0, 1e4] {
            let mut store = ParamStore::new();
            let x = store.register("x", Tensor::scalar(0.0));
            let mut opt = Adam::new(&store, AdamConfig { lr: 0.01, ..Default::default() });
            opt.step(&mut store, &[Tensor::scalar(g0)]);
            let step = store.get(x).item().abs();
            assert!((step - 0.01).abs() < 1e-4, "g0={g0} step={step}");
        }
    }

    #[test]
    fn adam_matches_reference_two_steps() {
        // Hand-computed reference for lr=0.1, b1=0.9, b2=0.999, eps=0, g=1 twice.
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::scalar(0.0));
        let mut opt = Adam::new(&store, AdamConfig { lr: 0.1, eps: 0.0, ..Default::default() });
        opt.step(&mut store, &[Tensor::scalar(1.0)]);
        // step 1: mhat = 1, vhat = 1 -> x = -0.1
        assert!((store.get(x).item() + 0.1).abs() < 1e-6);
        opt.step(&mut store, &[Tensor::scalar(1.0)]);
        // step 2: m = .19, bc1 = .19 -> mhat = 1; v similar -> x = -0.2
        assert!((store.get(x).item() + 0.2).abs() < 1e-5);
    }

    #[test]
    fn sgd_with_momentum_accumulates() {
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::scalar(0.0));
        let mut opt = Sgd::new(&store, 0.1, 0.9);
        opt.step(&mut store, &[Tensor::scalar(1.0)]);
        assert!((store.get(x).item() + 0.1).abs() < 1e-6);
        opt.step(&mut store, &[Tensor::scalar(1.0)]);
        // velocity = 0.9*1 + 1 = 1.9 -> x = -0.1 - 0.19 = -0.29
        assert!((store.get(x).item() + 0.29).abs() < 1e-6);
    }

    #[test]
    fn set_lr_takes_effect_immediately() {
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::scalar(0.0));
        let mut opt = Adam::new(&store, AdamConfig { lr: 0.5, ..Default::default() });
        opt.set_lr(0.01);
        opt.step(&mut store, &[Tensor::scalar(1.0)]);
        // First Adam step magnitude == lr.
        assert!((store.get(x).item().abs() - 0.01).abs() < 1e-4);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn clip_rescales_only_when_needed() {
        let mut grads = vec![Tensor::from_vec(vec![3.0, 4.0], &[2])];
        let norm = clip_grad_norm(&mut grads, 10.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert_eq!(grads[0].data(), &[3.0, 4.0]);
        let norm = clip_grad_norm(&mut grads, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let after: f32 = grads[0].norm_sqr().sqrt();
        assert!((after - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut store = ParamStore::new();
        let x = store.register("x", Tensor::scalar(10.0));
        let mut opt =
            Adam::new(&store, AdamConfig { lr: 0.1, weight_decay: 0.1, ..Default::default() });
        for _ in 0..2000 {
            opt.step(&mut store, &[Tensor::scalar(0.0)]);
        }
        assert!(store.get(x).item().abs() < 0.5, "decayed to {}", store.get(x).item());
    }
}
