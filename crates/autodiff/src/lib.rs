//! # mfn-autodiff
//!
//! A from-scratch reverse-mode automatic-differentiation engine plus the
//! neural-network building blocks used by the MeshfreeFlowNet reproduction:
//!
//! - [`Graph`]: a Wengert-list tape recording tensor ops (conv3d, pooling,
//!   upsampling, batch norm, GEMM, activations, gathers and trilinear vertex
//!   blending) with exact reverse-mode gradients;
//! - [`nn`]: `Linear`, `Conv3dLayer`, `BatchNorm3d`, `Mlp` layers over a
//!   shared [`ParamStore`];
//! - [`optim`]: Adam (the paper's optimizer) and SGD;
//! - [`jet`]: exact forward-mode first/second directional derivatives through
//!   an MLP, for evaluating the PDE residuals of the continuous decoder.
//!
//! Graphs are plain owned values (`Send`), so the data-parallel trainer can
//! run one tape per worker thread with no shared mutable state.

pub mod checkpoint;
pub mod graph;
pub mod jet;
pub mod nn;
pub mod optim;
pub mod params;

pub use checkpoint::{load_params, read_adam, read_params, save_params, write_adam, write_params};
pub use graph::{sigmoid_scalar, softplus_scalar, Graph, Var};
pub use jet::{activation_jet, linear_jet, mlp_jet, Jet3, JetVec};
pub use nn::{Activation, BatchNorm3d, Conv3dLayer, Linear, Mlp, QuantizedMlp};
pub use optim::{clip_grad_norm, grad_l2_norm, Adam, AdamConfig, Sgd};
pub use params::{flatten_grads, unflatten_grads, FrozenParams, ParamId, ParamStore};
