//! # mfn-sample
//!
//! Residual-guided importance sampling of continuous query points.
//!
//! MeshfreeFlowNet draws its space-time query points uniformly over the
//! patch, but the PDE residual is concentrated near plumes and walls. The
//! octree-based sampling follow-up (Wang et al., arXiv:2306.05133) shows
//! that drawing points where residuals are large buys convergence per
//! decoder/stencil evaluation. [`OctreeSampler`] implements that idea as a
//! [`mfn_data::QueryStrategy`]:
//!
//! - an adaptive octree over local patch coordinates `(t, z, x) ∈ [0, 1]³`
//!   whose leaves carry an exponential moving average of the training
//!   residual observed inside them;
//! - draws proportional to per-leaf residual *mass* (EMA × volume), blended
//!   with a uniform floor `ε` so no region ever starves;
//! - self-normalized importance weights per draw, so a weighted estimate
//!   keeps tracking the same uniform integral the paper optimizes (unbiased
//!   up to the usual `O(1/n)` self-normalization bias);
//! - a uniform exploration scaffold down to `base_depth`, then online
//!   splits wherever residual *density* exceeds `split_gain`× the tree
//!   average and merges where it falls below `merge_gain`×, with
//!   hysteresis between the two gains;
//! - a deterministic byte serialization so checkpoint resume restores the
//!   exact tree (and therefore the exact draw sequence).
//!
//! All randomness flows through the caller's `Rng`, so draws are replayable
//! from a checkpointed RNG position alone.

use mfn_data::{QueryStrategy, WeightedQuery};
use rand::Rng;

/// Tuning knobs for the adaptive octree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OctreeConfig {
    /// Uniform blend floor in `[0, 1]`: a leaf's draw probability is
    /// `ε·vol + (1−ε)·mass/total_mass`. `1.0` degenerates to uniform.
    pub epsilon: f32,
    /// EMA weight of a new residual observation (higher = faster tracking).
    pub ema_alpha: f32,
    /// Maximum leaf depth (depth `d` leaves have side `2^−d`).
    pub max_depth: u8,
    /// Hard cap on the number of leaves (a split needs 7 free slots).
    pub max_leaves: usize,
    /// Exploration scaffold: leaves coarser than this depth split as soon
    /// as they have `min_count` observations, regardless of mass, so the
    /// tree can *see* where residual concentrates before exploiting it (a
    /// single coarse leaf's EMA is one scalar and carries no structure).
    /// Scaffold leaves never merge away.
    pub base_depth: u8,
    /// Split a leaf below `base_depth` when its residual mass *density*
    /// (EMA) exceeds this multiple of the tree-average density — a
    /// scale-free criterion, so refinement keeps following concentration
    /// to `max_depth` instead of stalling once every leaf's absolute mass
    /// fraction is small.
    pub split_gain: f64,
    /// Merge 8 sibling leaves (deeper than `base_depth`) when their mean
    /// density falls below this multiple of the tree average — the
    /// concentration that justified refining has moved elsewhere. Keep
    /// below `split_gain` for hysteresis: a merged parent's density is its
    /// children's mean, so it cannot immediately re-split.
    pub merge_gain: f64,
    /// Observations a leaf (or sibling group) must accumulate before it is
    /// eligible to split (or merge).
    pub min_count: u64,
    /// Per-[`OctreeSampler::update`] geometric decay of the EMA in leaves
    /// that received *no* observation that round. Deep leaves are hit
    /// rarely, so without this a leaf whose region went quiet would hold
    /// its stale EMA for hundreds of steps (an EMA only moves when fed),
    /// blocking merges and triggering splits on long-gone concentration.
    pub idle_decay: f32,
}

impl Default for OctreeConfig {
    fn default() -> Self {
        OctreeConfig {
            epsilon: 0.2,
            ema_alpha: 0.25,
            max_depth: 4,
            max_leaves: 512,
            base_depth: 2,
            split_gain: 2.0,
            merge_gain: 0.7,
            min_count: 64,
            idle_decay: 0.05,
        }
    }
}

/// One octree leaf: a cube of side `2^−depth` at `lo`, with the residual
/// EMA observed inside it and the number of observations behind that EMA.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Leaf {
    lo: [f32; 3],
    depth: u8,
    ema: f32,
    count: u64,
}

impl Leaf {
    fn size(&self) -> f32 {
        0.5f32.powi(self.depth as i32)
    }

    fn volume(&self) -> f64 {
        (self.size() as f64).powi(3)
    }

    /// Residual mass: EMA × volume. Mass is what draw probabilities and the
    /// split/merge thresholds compare, so refining a region does not by
    /// itself change how often it is drawn.
    fn mass(&self) -> f64 {
        (self.ema.max(0.0) as f64) * self.volume()
    }

    fn contains(&self, q: [f32; 3]) -> bool {
        let s = self.size();
        (0..3).all(|a| {
            let x = q[a].clamp(0.0, 1.0 - f32::EPSILON);
            x >= self.lo[a] && x < self.lo[a] + s
        })
    }
}

/// Adaptive octree importance sampler over `(t, z, x) ∈ [0, 1]³`.
///
/// The tree is a flat list of leaves that always partitions the unit cube.
/// Feed per-point residuals back with [`OctreeSampler::update`]; draw
/// weighted query points through the [`QueryStrategy`] impl.
#[derive(Debug, Clone, PartialEq)]
pub struct OctreeSampler {
    cfg: OctreeConfig,
    leaves: Vec<Leaf>,
}

impl OctreeSampler {
    /// A fresh sampler: one root leaf, zero residual mass (draws start
    /// uniform).
    pub fn new(cfg: OctreeConfig) -> Self {
        assert!((0.0..=1.0).contains(&cfg.epsilon), "epsilon must be in [0, 1]");
        assert!(cfg.ema_alpha > 0.0 && cfg.ema_alpha <= 1.0, "ema_alpha must be in (0, 1]");
        assert!(cfg.max_leaves >= 8, "octree needs room for at least one split");
        assert!(cfg.merge_gain < cfg.split_gain, "merge/split gains need hysteresis");
        assert!(cfg.base_depth <= cfg.max_depth, "scaffold cannot exceed max depth");
        assert!((0.0..1.0).contains(&cfg.idle_decay), "idle_decay must be in [0, 1)");
        OctreeSampler { cfg, leaves: vec![Leaf { lo: [0.0; 3], depth: 0, ema: 0.0, count: 0 }] }
    }

    /// The configuration in use.
    pub fn config(&self) -> OctreeConfig {
        self.cfg
    }

    /// Current leaf count.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// Deepest current leaf.
    pub fn max_depth(&self) -> u8 {
        self.leaves.iter().map(|l| l.depth).max().unwrap_or(0)
    }

    /// Draw probabilities per leaf (`ε`-blended, summing to 1).
    fn probabilities(&self) -> Vec<f64> {
        let eps = self.cfg.epsilon as f64;
        let total: f64 = self.leaves.iter().map(Leaf::mass).sum();
        if total <= 0.0 || eps >= 1.0 {
            return self.leaves.iter().map(Leaf::volume).collect();
        }
        self.leaves.iter().map(|l| eps * l.volume() + (1.0 - eps) * l.mass() / total).collect()
    }

    /// Shannon entropy (nats) of the leaf draw distribution. Uniform over
    /// `n` equal leaves gives `ln n`; concentration drives it toward 0
    /// relative to that ceiling.
    pub fn entropy(&self) -> f64 {
        self.probabilities().iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum()
    }

    /// Fraction of total residual mass held by the top decile (by mass) of
    /// leaves — 0.1 means mass is spread evenly, near 1.0 means a few
    /// leaves dominate. Returns 0 when no residual mass has been observed.
    pub fn top_decile_mass(&self) -> f64 {
        let mut masses: Vec<f64> = self.leaves.iter().map(Leaf::mass).collect();
        let total: f64 = masses.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        masses.sort_by(|a, b| b.partial_cmp(a).expect("finite masses"));
        let k = masses.len().div_ceil(10);
        masses[..k].iter().sum::<f64>() / total
    }

    /// Records one observed residual magnitude per query point and then
    /// adapts the tree (splits where mass concentrated, merges where it
    /// dissipated). Points outside `[0, 1]³` are clamped to the boundary
    /// leaf they abut.
    pub fn update(&mut self, points: &[[f32; 3]], residuals: &[f32]) {
        assert_eq!(points.len(), residuals.len(), "one residual per point");
        let mut hit = vec![false; self.leaves.len()];
        for (q, &r) in points.iter().zip(residuals) {
            if !r.is_finite() {
                continue;
            }
            let a = self.cfg.ema_alpha;
            let (i, leaf) = self
                .leaves
                .iter_mut()
                .enumerate()
                .find(|(_, l)| l.contains(*q))
                .expect("leaves partition the unit cube");
            leaf.ema = (1.0 - a) * leaf.ema + a * r.max(0.0);
            leaf.count += 1;
            hit[i] = true;
        }
        // Leaves the batch never touched forget a little: an EMA only moves
        // when fed, so without decay a quiet region would keep its stale
        // value for as long as the ε-floor takes to revisit it.
        for (l, &h) in self.leaves.iter_mut().zip(&hit) {
            if !h {
                l.ema *= 1.0 - self.cfg.idle_decay;
            }
        }
        self.adapt();
    }

    /// One split/merge pass over the current leaves.
    fn adapt(&mut self) {
        let n = self.leaves.len();
        let total: f64 = self.leaves.iter().map(Leaf::mass).sum();
        if total <= 0.0 {
            return;
        }

        // Splits, processed at descending indices so pending indices stay
        // valid while each split replaces one leaf with its 8 children.
        // The tree-average residual density over the unit cube equals the
        // total mass, and a leaf's density is its EMA, so the density-gain
        // comparisons reduce to `ema` vs `gain · total`.
        let split: Vec<usize> = (0..n)
            .filter(|&i| {
                let l = &self.leaves[i];
                l.count >= self.cfg.min_count
                    && (l.depth < self.cfg.base_depth
                        || (l.depth < self.cfg.max_depth
                            && (l.ema.max(0.0) as f64) > self.cfg.split_gain * total))
            })
            .collect();
        for &i in split.iter().rev() {
            if self.leaves.len() + 7 > self.cfg.max_leaves {
                break;
            }
            let parent = self.leaves[i];
            let half = parent.size() * 0.5;
            let children = (0..8).map(|c| Leaf {
                lo: [
                    parent.lo[0] + if c & 4 != 0 { half } else { 0.0 },
                    parent.lo[1] + if c & 2 != 0 { half } else { 0.0 },
                    parent.lo[2] + if c & 1 != 0 { half } else { 0.0 },
                ],
                depth: parent.depth + 1,
                // Children inherit the parent's EMA (total mass is
                // preserved: 8 × vol/8 × ema) but must re-earn min_count
                // before splitting further.
                ema: parent.ema,
                count: 0,
            });
            self.leaves.splice(i..=i, children);
        }

        // Merges: a full sibling group whose combined mass fraction dropped
        // below the merge threshold collapses back into its parent. Group
        // key = the parent cube; all 8 children must currently be leaves.
        loop {
            let total: f64 = self.leaves.iter().map(Leaf::mass).sum();
            let mut merged = false;
            let mut i = 0;
            while i < self.leaves.len() {
                let l = self.leaves[i];
                // The exploration scaffold (depth ≤ base_depth) never
                // merges away; only exploitation refinement retracts.
                if l.depth <= self.cfg.base_depth {
                    i += 1;
                    continue;
                }
                let parent_size = l.size() * 2.0;
                let parent_lo = [
                    (l.lo[0] / parent_size).floor() * parent_size,
                    (l.lo[1] / parent_size).floor() * parent_size,
                    (l.lo[2] / parent_size).floor() * parent_size,
                ];
                let siblings: Vec<usize> = (0..self.leaves.len())
                    .filter(|&j| {
                        let s = self.leaves[j];
                        s.depth == l.depth
                            && (0..3).all(|a| {
                                s.lo[a] >= parent_lo[a] && s.lo[a] < parent_lo[a] + parent_size
                            })
                    })
                    .collect();
                let group_count: u64 = siblings.iter().map(|&j| self.leaves[j].count).sum();
                // Count-weighted group density: a freshly inherited EMA with
                // no observations behind it is unverified and must not keep
                // a dissipated group refined. Merging needs only half the
                // split evidence — it is the reversible direction (the
                // parent keeps the mean; a real hot spot re-splits).
                let group_density: f64 = if group_count == 0 {
                    f64::INFINITY
                } else {
                    siblings
                        .iter()
                        .map(|&j| {
                            let l = &self.leaves[j];
                            l.count as f64 * l.ema.max(0.0) as f64
                        })
                        .sum::<f64>()
                        / group_count as f64
                };
                if siblings.len() == 8
                    && group_count >= (self.cfg.min_count / 2).max(1)
                    && group_density < self.cfg.merge_gain * total
                {
                    // Equal child volumes make the parent EMA a plain mean.
                    let ema = siblings.iter().map(|&j| self.leaves[j].ema).sum::<f32>() / 8.0;
                    let first = *siblings.first().expect("eight siblings");
                    let mut k = 0;
                    self.leaves.retain(|_| {
                        let keep = !siblings.contains(&k);
                        k += 1;
                        keep
                    });
                    self.leaves.insert(
                        first.min(self.leaves.len()),
                        Leaf { lo: parent_lo, depth: l.depth - 1, ema, count: group_count },
                    );
                    merged = true;
                    break;
                }
                i += 1;
            }
            if !merged {
                break;
            }
        }
    }

    /// Serializes the dynamic tree state (leaves only — configuration comes
    /// from the training config on restore). The byte layout is exact
    /// (f32/f64 bit patterns), so a restored tree reproduces draws
    /// bit-identically.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + self.leaves.len() * 25);
        buf.extend_from_slice(&(self.leaves.len() as u64).to_le_bytes());
        for l in &self.leaves {
            for a in 0..3 {
                buf.extend_from_slice(&l.lo[a].to_bits().to_le_bytes());
            }
            buf.push(l.depth);
            buf.extend_from_slice(&l.ema.to_bits().to_le_bytes());
            buf.extend_from_slice(&l.count.to_le_bytes());
        }
        buf
    }

    /// Restores a tree serialized by [`OctreeSampler::to_bytes`].
    pub fn from_bytes(bytes: &[u8], cfg: OctreeConfig) -> Result<Self, String> {
        let rec = 3 * 4 + 1 + 4 + 8;
        if bytes.len() < 8 {
            return Err(format!("octree state is {} bytes, header is 8", bytes.len()));
        }
        let n = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        if n == 0 || n > 1 << 20 {
            return Err(format!("implausible octree leaf count {n}"));
        }
        if bytes.len() != 8 + n * rec {
            return Err(format!(
                "octree state is {} bytes, {} leaves need {}",
                bytes.len(),
                n,
                8 + n * rec
            ));
        }
        let mut leaves = Vec::with_capacity(n);
        for i in 0..n {
            let at = 8 + i * rec;
            let f32le = |o: usize| {
                f32::from_bits(u32::from_le_bytes(
                    bytes[at + o..at + o + 4].try_into().expect("4 bytes"),
                ))
            };
            leaves.push(Leaf {
                lo: [f32le(0), f32le(4), f32le(8)],
                depth: bytes[at + 12],
                ema: f32le(13),
                count: u64::from_le_bytes(bytes[at + 17..at + 25].try_into().expect("8 bytes")),
            });
        }
        let tree = OctreeSampler { cfg, leaves };
        let vol: f64 = tree.leaves.iter().map(Leaf::volume).sum();
        if (vol - 1.0).abs() > 1e-6 {
            return Err(format!("octree leaves do not partition the unit cube (Σvol = {vol})"));
        }
        Ok(tree)
    }
}

impl QueryStrategy for OctreeSampler {
    /// Draws `n` points: per point, one uniform variate picks a leaf by the
    /// blended CDF and three more place the point uniformly inside it. The
    /// importance weight of a point in leaf `i` is `∝ vol_i / p_i` (inverse
    /// density relative to uniform), self-normalized over the `n` draws.
    fn draw_queries<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<WeightedQuery> {
        assert!(n > 0, "need at least one query");
        let probs = self.probabilities();
        // Prefix-sum CDF once per call, then binary-search per point: a
        // refined tree holds hundreds of leaves and a linear scan per draw
        // dominates the adaptive path's overhead (the picks are identical —
        // `partition_point` returns the first leaf whose prefix sum exceeds
        // the variate, exactly what the scan found).
        let cdf: Vec<f64> = probs
            .iter()
            .scan(0.0f64, |acc, &p| {
                *acc += p;
                Some(*acc)
            })
            .collect();
        let mut raw = Vec::with_capacity(n);
        let mut sum = 0.0f64;
        for _ in 0..n {
            let u = rng.gen::<f32>() as f64;
            let pick = cdf.partition_point(|&c| c <= u).min(self.leaves.len() - 1);
            let leaf = &self.leaves[pick];
            let s = leaf.size();
            let local = [
                leaf.lo[0] + rng.gen::<f32>() * s,
                leaf.lo[1] + rng.gen::<f32>() * s,
                leaf.lo[2] + rng.gen::<f32>() * s,
            ];
            let w = leaf.volume() / probs[pick].max(f64::MIN_POSITIVE);
            sum += w;
            raw.push((local, w));
        }
        raw.into_iter()
            .map(|(local, w)| WeightedQuery { local, weight: (w / sum) as f32 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn corner_heavy(tree: &mut OctreeSampler, rounds: usize) {
        // High residuals concentrated in the (0,0,0) octant corner, low
        // elsewhere — the canonical plume/wall shape.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..rounds {
            let pts: Vec<[f32; 3]> =
                (0..64).map(|_| [rng.gen::<f32>(), rng.gen::<f32>(), rng.gen::<f32>()]).collect();
            let res: Vec<f32> =
                pts.iter().map(|q| if q.iter().all(|&c| c < 0.25) { 10.0 } else { 0.01 }).collect();
            tree.update(&pts, &res);
        }
    }

    #[test]
    fn fresh_tree_draws_uniform_unit_weights() {
        let mut tree = OctreeSampler::new(OctreeConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let qs = tree.draw_queries(256, &mut rng);
        assert_eq!(qs.len(), 256);
        let wsum: f32 = qs.iter().map(|q| q.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-4, "weights must sum to 1, got {wsum}");
        for q in &qs {
            assert!((q.weight - 1.0 / 256.0).abs() < 1e-6, "fresh tree is uniform");
            assert!(q.local.iter().all(|&c| (0.0..=1.0).contains(&c)));
        }
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.max_depth(), 0);
        assert_eq!(tree.entropy(), 0.0);
        assert_eq!(tree.top_decile_mass(), 0.0);
    }

    #[test]
    fn residual_concentration_splits_and_biases_draws() {
        let mut tree = OctreeSampler::new(OctreeConfig::default());
        corner_heavy(&mut tree, 40);
        assert!(tree.leaf_count() > 1, "concentrated mass must split the root");
        assert!(tree.max_depth() >= 1);
        // Volumes always partition the cube.
        let vol: f64 = tree.leaves.iter().map(Leaf::volume).sum();
        assert!((vol - 1.0).abs() < 1e-9, "Σvol = {vol}");
        // Draws concentrate in the hot corner well beyond its 1/64 volume.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let qs = tree.draw_queries(4000, &mut rng);
        let hot = qs.iter().filter(|q| q.local.iter().all(|&c| c < 0.25)).count();
        assert!(
            hot as f64 / 4000.0 > 0.2,
            "hot corner should draw >20% of points, got {}",
            hot as f64 / 4000.0
        );
        // Weighted points still carry normalized weights.
        let wsum: f32 = qs.iter().map(|q| q.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-4);
        // Concentration shows up in the telemetry statistics.
        assert!(tree.top_decile_mass() > 0.5, "top decile {}", tree.top_decile_mass());
        assert!(tree.entropy() < (tree.leaf_count() as f64).ln());
    }

    #[test]
    fn importance_weights_keep_estimates_unbiased() {
        // ∫ (t + z·x) over the unit cube = 0.75. A heavily skewed tree must
        // still estimate it through the self-normalized weights.
        let mut tree = OctreeSampler::new(OctreeConfig::default());
        corner_heavy(&mut tree, 40);
        let f = |q: [f32; 3]| q[0] as f64 + (q[1] * q[2]) as f64;
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut estimates = Vec::new();
        for _ in 0..8 {
            let qs = tree.draw_queries(8192, &mut rng);
            estimates.push(qs.iter().map(|q| q.weight as f64 * f(q.local)).sum::<f64>());
        }
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!((mean - 0.75).abs() < 0.02, "biased estimate: {mean} vs 0.75");
    }

    #[test]
    fn mass_dissipation_merges_leaves_back() {
        let cfg = OctreeConfig { min_count: 16, ..OctreeConfig::default() };
        let mut tree = OctreeSampler::new(cfg);
        corner_heavy(&mut tree, 60);
        let depth_at = |tree: &OctreeSampler, q: [f32; 3]| {
            tree.leaves.iter().find(|l| l.contains(q)).expect("partition").depth
        };
        let old_corner = [0.05f32, 0.05, 0.05];
        let refined = depth_at(&tree, old_corner);
        assert!(refined >= 2, "hot corner should be refined, depth {refined}");
        // The residual mass relocates to the opposite corner; the old hot
        // region's mass fraction collapses and its leaves merge back.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..200 {
            let pts: Vec<[f32; 3]> =
                (0..64).map(|_| [rng.gen::<f32>(), rng.gen::<f32>(), rng.gen::<f32>()]).collect();
            let res: Vec<f32> = pts
                .iter()
                .map(|q| if q.iter().all(|&c| c > 0.75) { 10.0 } else { 0.001 })
                .collect();
            tree.update(&pts, &res);
        }
        let coarsened = depth_at(&tree, old_corner);
        assert!(
            coarsened < refined,
            "dissipated region must coarsen: depth {refined} -> {coarsened}"
        );
        let vol: f64 = tree.leaves.iter().map(Leaf::volume).sum();
        assert!((vol - 1.0).abs() < 1e-9);
    }

    #[test]
    fn epsilon_one_is_pure_uniform_regardless_of_mass() {
        let cfg = OctreeConfig { epsilon: 1.0, ..OctreeConfig::default() };
        let mut tree = OctreeSampler::new(cfg);
        corner_heavy(&mut tree, 20);
        let probs = tree.probabilities();
        for (p, l) in probs.iter().zip(&tree.leaves) {
            assert!((p - l.volume()).abs() < 1e-12, "ε=1 must ignore residual mass");
        }
    }

    #[test]
    fn serialization_roundtrips_bit_exactly_and_replays_draws() {
        let mut tree = OctreeSampler::new(OctreeConfig::default());
        corner_heavy(&mut tree, 30);
        let bytes = tree.to_bytes();
        let mut restored = OctreeSampler::from_bytes(&bytes, tree.config()).expect("roundtrip");
        assert_eq!(tree, restored);
        assert_eq!(restored.to_bytes(), bytes);
        // Same tree + same RNG position ⇒ identical draws, bit for bit.
        let a = tree.draw_queries(512, &mut ChaCha8Rng::seed_from_u64(9));
        let b = restored.draw_queries(512, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn corrupt_state_is_rejected() {
        let tree = OctreeSampler::new(OctreeConfig::default());
        let good = tree.to_bytes();
        assert!(OctreeSampler::from_bytes(&good[..4], OctreeConfig::default()).is_err());
        let mut truncated = good.clone();
        truncated.pop();
        assert!(OctreeSampler::from_bytes(&truncated, OctreeConfig::default()).is_err());
        let mut count_lie = good.clone();
        count_lie[0] = 99;
        assert!(OctreeSampler::from_bytes(&count_lie, OctreeConfig::default()).is_err());
        // A leaf set that does not partition the cube is structurally bad.
        let mut two_roots = OctreeSampler::new(OctreeConfig::default());
        two_roots.leaves.push(Leaf { lo: [0.0; 3], depth: 0, ema: 0.0, count: 0 });
        assert!(OctreeSampler::from_bytes(&two_roots.to_bytes(), OctreeConfig::default()).is_err());
    }

    #[test]
    fn leaf_cap_bounds_growth() {
        let cfg =
            OctreeConfig { max_leaves: 64, min_count: 1, max_depth: 6, ..OctreeConfig::default() };
        let mut tree = OctreeSampler::new(cfg);
        corner_heavy(&mut tree, 200);
        assert!(tree.leaf_count() <= 64, "leaf cap violated: {}", tree.leaf_count());
        assert!(tree.max_depth() <= 6);
    }
}
