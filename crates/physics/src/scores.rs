//! Error scores used throughout the paper's tables: normalized mean absolute
//! error (NMAE) and the coefficient of determination (R²), evaluated between
//! a ground-truth series and a predicted series of a physical metric.

/// Normalized mean absolute error:
/// `mean(|pred - gt|) / (max(gt) - min(gt))`.
///
/// The tables report `100 × NMAE`. Returns 0 for empty input; if the ground
/// truth is constant the normalizer falls back to `max(|gt|, 1)` so the score
/// stays finite.
pub fn nmae(gt: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(gt.len(), pred.len(), "series length mismatch");
    if gt.is_empty() {
        return 0.0;
    }
    let mae = gt.iter().zip(pred).map(|(a, b)| (a - b).abs()).sum::<f64>() / gt.len() as f64;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in gt {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = hi - lo;
    let denom =
        if range > 1e-12 { range } else { gt.iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(1.0) };
    mae / denom
}

/// Coefficient of determination `R² = 1 − SS_res / SS_tot`.
///
/// Matches the convention of the paper's tables: can be arbitrarily negative
/// for bad predictions (e.g. Baseline (I) rows). A constant ground truth with
/// non-zero residual yields `-inf`-ish behaviour; we guard by returning 0
/// when `SS_tot` vanishes and the residual does too, else a large negative.
pub fn r2(gt: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(gt.len(), pred.len(), "series length mismatch");
    if gt.is_empty() {
        return 0.0;
    }
    let mean = gt.iter().sum::<f64>() / gt.len() as f64;
    let ss_tot: f64 = gt.iter().map(|&v| (v - mean) * (v - mean)).sum();
    let ss_res: f64 = gt.iter().zip(pred).map(|(a, b)| (a - b) * (a - b)).sum();
    if ss_tot <= 1e-24 {
        if ss_res <= 1e-24 {
            return 1.0;
        }
        return f64::NEG_INFINITY.max(-1e12);
    }
    1.0 - ss_res / ss_tot
}

/// A named `(100×NMAE, R²)` pair — one table cell.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricScore {
    /// Metric name (one of [`crate::stats::METRIC_NAMES`]).
    pub name: String,
    /// `100 × NMAE`, as printed in the tables.
    pub nmae_pct: f64,
    /// R² score.
    pub r2: f64,
}

/// Scores every metric column of a pair of stat series.
///
/// `gt` and `pred` are per-snapshot metric arrays (see
/// [`crate::stats::FlowStats::as_array`]); returns one [`MetricScore`] per
/// metric plus the average R² (the tables' last column).
pub fn score_metric_series(gt: &[[f64; 9]], pred: &[[f64; 9]]) -> (Vec<MetricScore>, f64) {
    assert_eq!(gt.len(), pred.len(), "series length mismatch");
    let mut scores = Vec::with_capacity(9);
    let mut r2_sum = 0.0;
    for m in 0..9 {
        let g: Vec<f64> = gt.iter().map(|row| row[m]).collect();
        let p: Vec<f64> = pred.iter().map(|row| row[m]).collect();
        let score = MetricScore {
            name: crate::stats::METRIC_NAMES[m].to_string(),
            nmae_pct: 100.0 * nmae(&g, &p),
            r2: r2(&g, &p),
        };
        r2_sum += score.r2;
        scores.push(score);
    }
    (scores, r2_sum / 9.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores() {
        let gt = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(nmae(&gt, &gt), 0.0);
        assert_eq!(r2(&gt, &gt), 1.0);
    }

    #[test]
    fn nmae_is_range_normalized() {
        let gt = [0.0, 10.0];
        let pred = [1.0, 11.0]; // MAE 1, range 10
        assert!((nmae(&gt, &pred) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_prediction_is_zero() {
        let gt = [1.0, 2.0, 3.0];
        let pred = [2.0, 2.0, 2.0];
        assert!(r2(&gt, &pred).abs() < 1e-12);
    }

    #[test]
    fn r2_can_be_negative() {
        let gt = [1.0, 2.0, 3.0];
        let pred = [30.0, -10.0, 5.0];
        assert!(r2(&gt, &pred) < -1.0);
    }

    #[test]
    fn constant_ground_truth_guards() {
        let gt = [5.0, 5.0, 5.0];
        assert_eq!(r2(&gt, &gt), 1.0);
        assert!(r2(&gt, &[5.0, 6.0, 5.0]) < -1e6);
        // NMAE normalizer falls back to |gt|.
        assert!((nmae(&gt, &[6.0, 6.0, 6.0]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn series_scoring_shapes() {
        let gt = vec![[1.0; 9], [2.0; 9], [3.0; 9]];
        let mut pred = gt.clone();
        pred[0][0] = 1.5;
        let (scores, avg) = score_metric_series(&gt, &pred);
        assert_eq!(scores.len(), 9);
        assert!(scores[0].nmae_pct > 0.0);
        for s in &scores[1..] {
            assert_eq!(s.nmae_pct, 0.0);
            assert_eq!(s.r2, 1.0);
        }
        assert!(avg < 1.0 && avg > 0.8);
        assert_eq!(scores[0].name, "Etot");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        nmae(&[1.0], &[1.0, 2.0]);
    }
}
