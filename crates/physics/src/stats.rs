//! The physics-based evaluation metrics of paper Sec. 3.3.
//!
//! Every metric is computed from a single `(u, w)` velocity snapshot on the
//! solver grid, with `ν` being the dimensionless momentum diffusivity `R*`.
//! Velocity gradients use the same mixed spectral/finite-difference operators
//! as the solver, and the integral scale uses the 1D kinetic-energy spectrum
//! along the periodic direction from `mfn-fft`.

use mfn_fft::energy_spectrum_x;
use mfn_solver::{ddx, ddz, Domain};

/// The nine named flow metrics of Table 1 (left-to-right order).
pub const METRIC_NAMES: [&str; 9] = [
    "Etot",
    "urms",
    "dissipation",
    "taylor_microscale",
    "re_lambda",
    "kolmogorov_time",
    "kolmogorov_length",
    "integral_scale",
    "eddy_turnover",
];

/// All nine turbulence statistics for one snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowStats {
    /// Total kinetic energy `E_tot = ½⟨u_i u_i⟩`.
    pub etot: f64,
    /// RMS velocity `u_rms = sqrt((2/3) E_tot)`.
    pub urms: f64,
    /// Dissipation `ε = 2ν⟨S_ij S_ij⟩`.
    pub dissipation: f64,
    /// Taylor microscale `λ = sqrt(15 ν u_rms² / ε)`.
    pub taylor_microscale: f64,
    /// Taylor-scale Reynolds number `Re_λ = u_rms λ / ν`.
    pub re_lambda: f64,
    /// Kolmogorov time scale `τ_η = sqrt(ν/ε)`.
    pub kolmogorov_time: f64,
    /// Kolmogorov length scale `η = (ν³/ε)^{1/4}`.
    pub kolmogorov_length: f64,
    /// Turbulent integral scale `L = π/(2 u_rms²) ∫ E(k)/k dk`.
    pub integral_scale: f64,
    /// Large-eddy turnover time `T_L = L / u_rms`.
    pub eddy_turnover: f64,
}

impl FlowStats {
    /// The metrics as an array in [`METRIC_NAMES`] order.
    pub fn as_array(&self) -> [f64; 9] {
        [
            self.etot,
            self.urms,
            self.dissipation,
            self.taylor_microscale,
            self.re_lambda,
            self.kolmogorov_time,
            self.kolmogorov_length,
            self.integral_scale,
            self.eddy_turnover,
        ]
    }
}

/// Guard against division by ~zero dissipation/velocity in quiescent flows.
const TINY: f64 = 1e-30;

/// Computes all metrics from a `(u, w)` snapshot.
///
/// `nu` is the kinematic viscosity; in the dimensionless Rayleigh–Bénard
/// system this is `R* = (Ra/Pr)^{-1/2}` ([`mfn_solver::RbcConfig::r_star`]).
pub fn flow_stats(domain: &Domain, u: &[f64], w: &[f64], nu: f64) -> FlowStats {
    assert_eq!(u.len(), domain.n(), "u shape mismatch");
    assert_eq!(w.len(), domain.n(), "w shape mismatch");
    assert!(nu > 0.0, "viscosity must be positive");
    let n = domain.n() as f64;

    let etot = 0.5 * u.iter().zip(w).map(|(&a, &b)| a * a + b * b).sum::<f64>() / n;
    let urms = (2.0 / 3.0 * etot).max(0.0).sqrt();

    // Rate-of-strain tensor contraction: S_ij S_ij = u_x² + w_z² + ½(u_z + w_x)².
    let ux = ddx(domain, u);
    let uz = ddz(domain, u);
    let wx = ddx(domain, w);
    let wz = ddz(domain, w);
    let mut sij2 = 0.0f64;
    for k in 0..domain.n() {
        let s12 = 0.5 * (uz[k] + wx[k]);
        sij2 += ux[k] * ux[k] + wz[k] * wz[k] + 2.0 * s12 * s12;
    }
    sij2 /= n;
    let dissipation = 2.0 * nu * sij2;

    let eps = dissipation.max(TINY);
    let taylor_microscale = (15.0 * nu * urms * urms / eps).sqrt();
    let re_lambda = urms * taylor_microscale / nu;
    let kolmogorov_time = (nu / eps).sqrt();
    let kolmogorov_length = (nu.powi(3) / eps).powf(0.25);

    let spectrum = energy_spectrum_x(&[u, w], domain.nz, domain.nx, domain.lx);
    let integral_scale = spectrum.integral_scale(urms.max(TINY.sqrt()));
    let eddy_turnover = integral_scale / urms.max(TINY.sqrt());

    FlowStats {
        etot,
        urms,
        dissipation,
        taylor_microscale,
        re_lambda,
        kolmogorov_time,
        kolmogorov_length,
        integral_scale,
        eddy_turnover,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(domain: &Domain, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let mut out = vec![0.0; domain.n()];
        for j in 0..domain.nz {
            for i in 0..domain.nx {
                out[j * domain.nx + i] = f(domain.x(i), domain.z(j));
            }
        }
        out
    }

    #[test]
    fn uniform_flow_statistics() {
        // Constant u = 2, w = 0: E = 2, urms = sqrt(4/3), zero dissipation.
        let d = Domain::new(32, 17, 4.0, 1.0);
        let u = vec![2.0; d.n()];
        let w = vec![0.0; d.n()];
        let s = flow_stats(&d, &u, &w, 0.01);
        assert!((s.etot - 2.0).abs() < 1e-12);
        assert!((s.urms - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.dissipation.abs() < 1e-10);
    }

    #[test]
    fn shear_flow_dissipation() {
        // u = a z, w = 0 (interior): S12 = a/2, SijSij = a²/2, eps = nu a².
        let d = Domain::new(32, 65, 4.0, 1.0);
        let a = 3.0;
        let u = fill(&d, |_, z| a * z);
        let w = vec![0.0; d.n()];
        let nu = 0.05;
        let s = flow_stats(&d, &u, &w, nu);
        assert!(
            (s.dissipation - nu * a * a).abs() < 1e-8,
            "eps {} expect {}",
            s.dissipation,
            nu * a * a
        );
    }

    #[test]
    fn sinusoidal_flow_full_consistency() {
        // u = A sin(kx): checks the derived scales against hand formulas.
        let d = Domain::new(64, 33, 4.0, 1.0);
        let kx = 2.0 * std::f64::consts::PI * 2.0 / d.lx;
        let amp = 1.5;
        let u = fill(&d, |x, _| amp * (kx * x).sin());
        let w = vec![0.0; d.n()];
        let nu = 0.02;
        let s = flow_stats(&d, &u, &w, nu);
        let etot = 0.25 * amp * amp; // ½⟨u²⟩ = ½·A²/2
        assert!((s.etot - etot).abs() < 1e-10);
        // SijSij = ⟨u_x²⟩ = A²k²/2, eps = 2ν·that = ν A² k².
        let eps = nu * amp * amp * kx * kx;
        assert!((s.dissipation - eps).abs() < 1e-8);
        let urms = (2.0 / 3.0 * etot).sqrt();
        assert!((s.taylor_microscale - (15.0 * nu * urms * urms / eps).sqrt()).abs() < 1e-10);
        assert!((s.re_lambda - urms * s.taylor_microscale / nu).abs() < 1e-10);
        assert!((s.kolmogorov_time - (nu / eps).sqrt()).abs() < 1e-12);
        assert!((s.kolmogorov_length - (nu.powi(3) / eps).powf(0.25)).abs() < 1e-12);
        // Integral scale of a single mode: L = pi/(2 urms²)·E0/k.
        let expect_l = std::f64::consts::PI / (2.0 * urms * urms) * etot / kx;
        assert!((s.integral_scale - expect_l).abs() < 1e-8, "{} vs {expect_l}", s.integral_scale);
        assert!((s.eddy_turnover - s.integral_scale / urms).abs() < 1e-12);
    }

    #[test]
    fn quiescent_flow_does_not_produce_nans() {
        let d = Domain::new(16, 9, 4.0, 1.0);
        let zeros = vec![0.0; d.n()];
        let s = flow_stats(&d, &zeros, &zeros, 0.01);
        for v in s.as_array() {
            assert!(v.is_finite(), "non-finite metric: {s:?}");
        }
        assert_eq!(s.etot, 0.0);
    }

    #[test]
    fn metric_array_order_matches_names() {
        assert_eq!(METRIC_NAMES.len(), 9);
        let d = Domain::new(16, 9, 4.0, 1.0);
        let u = fill(&d, |x, _| (x * 2.0).sin());
        let w = fill(&d, |x, z| (x + z).cos() * 0.1);
        let s = flow_stats(&d, &u, &w, 0.01);
        let arr = s.as_array();
        assert_eq!(arr[0], s.etot);
        assert_eq!(arr[8], s.eddy_turnover);
    }
}
