//! # mfn-physics
//!
//! The physics toolbox of the MeshfreeFlowNet reproduction:
//!
//! - [`stats`]: the nine turbulence metrics of paper Sec. 3.3 (total kinetic
//!   energy, RMS velocity, dissipation, Taylor microscale, Taylor-scale
//!   Reynolds number, Kolmogorov time/length, integral scale, eddy turnover);
//! - [`scores`]: NMAE and R² scoring of metric series — the numbers printed
//!   in Tables 1–4;
//! - [`residual`]: the Rayleigh–Bénard PDE residual definitions shared by
//!   the training equation loss, the jet-based inference evaluation, and the
//!   solver cross-check.

pub mod residual;
pub mod scores;
pub mod stats;

pub use residual::{grid_residuals, residuals, PointState, RbcParams};
pub use scores::{nmae, r2, score_metric_series, MetricScore};
pub use stats::{flow_stats, FlowStats, METRIC_NAMES};
