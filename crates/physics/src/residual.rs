//! Rayleigh–Bénard PDE residuals (the paper's Eqns. 3a–3c).
//!
//! The residual definitions live here, in one place, and are consumed by
//! three different callers:
//!
//! 1. the training-time *equation loss* in `mfn-core` (same formulas recorded
//!    on the autodiff tape),
//! 2. the inference-time residual evaluation through forward-mode jets,
//! 3. the grid-based residual diagnostic that cross-checks the CFD solver
//!    itself (see [`grid_residuals`]).

use mfn_solver::{d2dx2, d2dz2, ddx, ddz, Simulation};

/// Dimensionless diffusivities of the Rayleigh–Bénard system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbcParams {
    /// `P* = (Ra·Pr)^{-1/2}` — thermal diffusivity.
    pub p_star: f64,
    /// `R* = (Ra/Pr)^{-1/2}` — momentum diffusivity.
    pub r_star: f64,
}

impl RbcParams {
    /// Builds the parameter pair from Rayleigh and Prandtl numbers.
    pub fn from_ra_pr(ra: f64, pr: f64) -> Self {
        RbcParams { p_star: 1.0 / (ra * pr).sqrt(), r_star: (pr / ra).sqrt() }
    }
}

/// All field values and derivatives the four residuals need at one
/// space-time point.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointState {
    /// Temperature and its derivatives.
    pub t: f64,
    /// Pressure gradient components (only gradients of `p` enter the PDE).
    pub p_x: f64,
    /// ∂p/∂z.
    pub p_z: f64,
    /// Velocity components.
    pub u: f64,
    /// Vertical velocity.
    pub w: f64,
    /// ∂T/∂t.
    pub t_t: f64,
    /// ∂T/∂x.
    pub t_x: f64,
    /// ∂T/∂z.
    pub t_z: f64,
    /// ∂²T/∂x².
    pub t_xx: f64,
    /// ∂²T/∂z².
    pub t_zz: f64,
    /// ∂u/∂t.
    pub u_t: f64,
    /// ∂u/∂x.
    pub u_x: f64,
    /// ∂u/∂z.
    pub u_z: f64,
    /// ∂²u/∂x².
    pub u_xx: f64,
    /// ∂²u/∂z².
    pub u_zz: f64,
    /// ∂w/∂t.
    pub w_t: f64,
    /// ∂w/∂x.
    pub w_x: f64,
    /// ∂w/∂z.
    pub w_z: f64,
    /// ∂²w/∂x².
    pub w_xx: f64,
    /// ∂²w/∂z².
    pub w_zz: f64,
}

/// The four PDE residuals `[continuity, temperature, momentum-x, momentum-z]`
/// — all zero for an exact solution:
///
/// ```text
/// r_c = u_x + w_z
/// r_T = T_t + u T_x + w T_z − P*(T_xx + T_zz)
/// r_u = u_t + u u_x + w u_z + p_x − R*(u_xx + u_zz)
/// r_w = w_t + u w_x + w w_z + p_z − T − R*(w_xx + w_zz)
/// ```
pub fn residuals(params: RbcParams, s: &PointState) -> [f64; 4] {
    let r_c = s.u_x + s.w_z;
    let r_t = s.t_t + s.u * s.t_x + s.w * s.t_z - params.p_star * (s.t_xx + s.t_zz);
    let r_u = s.u_t + s.u * s.u_x + s.w * s.u_z + s.p_x - params.r_star * (s.u_xx + s.u_zz);
    let r_w = s.w_t + s.u * s.w_x + s.w * s.w_z + s.p_z - s.t - params.r_star * (s.w_xx + s.w_zz);
    [r_c, r_t, r_u, r_w]
}

/// Mean absolute residuals of a simulation frame, evaluated on the interior
/// of the grid with spectral-x/FD-z space derivatives and central time
/// differences across neighbouring frames.
///
/// This is a *diagnostic for the solver itself*: a consistent solver drives
/// these toward zero as the grid refines. The solver stores the hydrostatic
/// column integral inside its pressure channel, so the paper-form residuals
/// (full `T` buoyancy) apply directly.
///
/// # Panics
/// Panics unless `1 <= frame < sim.frames.len() - 1`.
pub fn grid_residuals(sim: &Simulation, frame: usize) -> [f64; 4] {
    assert!(frame >= 1 && frame + 1 < sim.frames.len(), "need interior frame");
    let d = &sim.domain;
    let params = RbcParams::from_ra_pr(sim.cfg.ra, sim.cfg.pr);
    let f0 = &sim.frames[frame - 1];
    let f1 = &sim.frames[frame];
    let f2 = &sim.frames[frame + 1];
    let dt2 = f2.time - f0.time;

    let dt_field = |a: &[f64], b: &[f64]| -> Vec<f64> {
        a.iter().zip(b).map(|(x0, x2)| (x2 - x0) / dt2).collect()
    };
    let t_t = dt_field(&f0.temp, &f2.temp);
    let u_t = dt_field(&f0.u, &f2.u);
    let w_t = dt_field(&f0.w, &f2.w);

    let der = |f: &[f64]| (ddx(d, f), ddz(d, f), d2dx2(d, f), d2dz2(d, f));
    let (t_x, t_z, t_xx, t_zz) = der(&f1.temp);
    let (u_x, u_z, u_xx, u_zz) = der(&f1.u);
    let (w_x, w_z, w_xx, w_zz) = der(&f1.w);
    let p_x = ddx(d, &f1.p);
    let p_z = ddz(d, &f1.p);

    let mut acc = [0.0f64; 4];
    let mut count = 0usize;
    for j in 1..d.nz - 1 {
        for i in 0..d.nx {
            let k = j * d.nx + i;
            let s = PointState {
                t: f1.temp[k],
                p_x: p_x[k],
                p_z: p_z[k],
                u: f1.u[k],
                w: f1.w[k],
                t_t: t_t[k],
                t_x: t_x[k],
                t_z: t_z[k],
                t_xx: t_xx[k],
                t_zz: t_zz[k],
                u_t: u_t[k],
                u_x: u_x[k],
                u_z: u_z[k],
                u_xx: u_xx[k],
                u_zz: u_zz[k],
                w_t: w_t[k],
                w_x: w_x[k],
                w_z: w_z[k],
                w_xx: w_xx[k],
                w_zz: w_zz[k],
            };
            let r = residuals(params, &s);
            for (a, v) in acc.iter_mut().zip(r) {
                *a += v.abs();
            }
            count += 1;
        }
    }
    for a in acc.iter_mut() {
        *a /= count as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_solver::{simulate, RbcConfig};

    #[test]
    fn conduction_state_has_zero_residuals() {
        // u = w = 0, T = 1 - z, p_z = T fluctuation = 0: every residual 0.
        let params = RbcParams::from_ra_pr(1e5, 1.0);
        let s = PointState { t: 0.0, t_z: -1.0, ..Default::default() };
        let r = residuals(params, &s);
        for v in r {
            assert!(v.abs() < 1e-15, "{r:?}");
        }
    }

    #[test]
    fn buoyancy_enters_momentum_z() {
        let params = RbcParams::from_ra_pr(1e4, 1.0);
        let s = PointState { t: 0.5, ..Default::default() };
        let r = residuals(params, &s);
        assert!((r[3] + 0.5).abs() < 1e-15);
        assert_eq!(r[0], 0.0);
        assert_eq!(r[1], 0.0);
        assert_eq!(r[2], 0.0);
    }

    #[test]
    fn diffusivities_scale_residuals() {
        let p1 = RbcParams::from_ra_pr(1e4, 1.0);
        let p2 = RbcParams::from_ra_pr(1e6, 1.0);
        let s = PointState { t_xx: 1.0, ..Default::default() };
        let r1 = residuals(p1, &s)[1];
        let r2 = residuals(p2, &s)[1];
        // Higher Ra -> smaller P* -> smaller diffusion residual magnitude.
        assert!(r1.abs() > r2.abs());
        assert!((r1 + p1.p_star).abs() < 1e-15);
    }

    #[test]
    fn params_from_ra_pr() {
        let p = RbcParams::from_ra_pr(1e6, 4.0);
        assert!((p.p_star - 1.0 / (4e6f64).sqrt()).abs() < 1e-15);
        assert!((p.r_star - (4.0f64 / 1e6).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn solver_output_approximately_satisfies_pde() {
        // Cross-validation: the CFD solver's frames should have small PDE
        // residuals relative to the magnitude of the individual terms.
        let cfg = RbcConfig {
            nx: 64,
            nz: 33,
            ra: 1e5,
            dt_max: 1e-3,
            noise_amp: 1e-2,
            ..Default::default()
        };
        let sim = simulate(&cfg, 4.0, 81);
        let r = grid_residuals(&sim, 60);
        // Scale of the advective term at this time.
        let f = &sim.frames[60];
        let umax = f.u.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(umax > 1e-3, "flow never developed, umax {umax}");
        // Continuity: compare to velocity gradient scale.
        let grad_scale = umax / sim.domain.dx();
        assert!(r[0] < 0.05 * grad_scale, "continuity {} vs {grad_scale}", r[0]);
        // Temperature / momentum residuals: dominated by the O(Δt) frame
        // sampling of the time derivative; just require they are small
        // relative to the advective scale u·|∇T| ~ umax/dx.
        assert!(r[1] < 0.2 * grad_scale, "temperature {} vs {grad_scale}", r[1]);
        assert!(r[3] < 0.5 * grad_scale, "momentum-z {} vs {grad_scale}", r[3]);
    }
}
