//! A minimal complex-number type for the FFT kernels.
//!
//! We deliberately implement our own small `Complex` rather than pulling in an
//! external crate: the FFT only needs add/sub/mul/conj/abs and a couple of
//! constructors, and keeping the type local lets the compiler see through every
//! operation in the hot butterfly loops.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i*im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{i theta}` — a unit-modulus complex number at angle `theta`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex { re: self.re, im: -self.im }
    }

    /// Squared modulus `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex { re: self.re * s, im: self.im * s }
    }

    /// Multiplication by `i` (a quarter-turn), cheaper than a full complex mul.
    #[inline]
    pub fn mul_i(self) -> Self {
        Complex { re: -self.im, im: self.re }
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex { re: -self.re, im: -self.im }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert!(close(z + Complex::ZERO, z));
        assert!(close(z * Complex::ONE, z));
        assert!(close(z - z, Complex::ZERO));
        assert!(close(z / z, Complex::ONE));
    }

    #[test]
    fn modulus_of_3_4_is_5() {
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-14);
        assert!((Complex::new(3.0, 4.0).norm_sqr() - 25.0).abs() < 1e-14);
    }

    #[test]
    fn cis_is_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * 0.5;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn mul_i_matches_multiplication_by_i() {
        let z = Complex::new(1.5, -2.5);
        assert!(close(z.mul_i(), z * Complex::I));
    }

    #[test]
    fn conjugation_flips_imaginary_part() {
        let z = Complex::new(2.0, 7.0);
        assert_eq!(z.conj(), Complex::new(2.0, -7.0));
        assert!(close(z * z.conj(), Complex::real(z.norm_sqr())));
    }

    #[test]
    fn division_by_scalar() {
        let z = Complex::new(2.0, -6.0);
        assert!(close(z / 2.0, Complex::new(1.0, -3.0)));
    }
}
