//! # mfn-fft
//!
//! A from-scratch fast Fourier transform library used throughout the
//! MeshfreeFlowNet reproduction:
//!
//! - the [`FftPlan`] / [`RealFftPlan`] kernels back the Rayleigh–Bénard
//!   solver's pseudo-spectral x-derivatives and its per-mode Poisson solves,
//! - [`spectrum::energy_spectrum_x`] provides the 1D kinetic-energy spectrum
//!   from which the turbulent integral scale `L` (paper Sec. 3.3) is computed.
//!
//! Only power-of-two lengths are supported (the paper's grids are 512×128);
//! the kernels are deliberately simple, allocation-light, and exactly
//! reproducible across runs.

pub mod complex;
pub mod fft;
pub mod spectrum;

pub use complex::Complex;
pub use fft::{dft_naive, fft, ifft, FftPlan, RealFftPlan};
pub use spectrum::{energy_spectrum_x, EnergySpectrum};
