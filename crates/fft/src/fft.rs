//! Iterative radix-2 Cooley–Tukey FFT with a precomputed-twiddle plan,
//! plus a real-to-complex transform built on top of it.
//!
//! The solver and the turbulence statistics only ever transform power-of-two
//! lengths (the paper's grids are 512×128), so a radix-2 kernel is sufficient;
//! we reject non-power-of-two lengths explicitly rather than silently padding.

use crate::complex::Complex;

/// A reusable FFT plan for a fixed power-of-two length.
///
/// The plan precomputes the bit-reversal permutation and the twiddle factors,
/// so repeated transforms of the same length (the common case in the solver's
/// per-timestep mode loops) avoid recomputing any trigonometry.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation table: `rev[i]` is `i` with log2(n) bits reversed.
    rev: Vec<u32>,
    /// Forward twiddles, laid out stage by stage: for stage with half-size `m`,
    /// the factors `e^{-2 pi i k / (2m)}` for `k in 0..m`.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n.is_power_of_two(), "FFT length must be a power of two, got {n}");
        let bits = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for (i, r) in rev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - bits.max(1));
        }
        if n == 1 {
            rev[0] = 0;
        }
        // Total twiddle count is 1 + 2 + 4 + ... + n/2 = n - 1.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut m = 1;
        while m < n {
            for k in 0..m {
                let theta = -std::f64::consts::PI * (k as f64) / (m as f64);
                twiddles.push(Complex::cis(theta));
            }
            m *= 2;
        }
        FftPlan { n, rev, twiddles }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan length is 1 (a degenerate but valid plan).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward DFT: `X[k] = sum_j x[j] e^{-2 pi i jk / n}`.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length does not match plan");
        self.transform(data, false);
    }

    /// In-place inverse DFT with 1/n normalization:
    /// `x[j] = (1/n) sum_k X[k] e^{+2 pi i jk / n}`.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex]) {
        assert_eq!(data.len(), self.n, "buffer length does not match plan");
        self.transform(data, true);
        let scale = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(scale);
        }
    }

    fn transform(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        // Bit-reversal reordering.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies, stage by stage.
        let mut m = 1;
        let mut toff = 0; // offset into the twiddle table for the current stage
        while m < n {
            let step = 2 * m;
            for start in (0..n).step_by(step) {
                for k in 0..m {
                    let w = if inverse {
                        self.twiddles[toff + k].conj()
                    } else {
                        self.twiddles[toff + k]
                    };
                    let a = data[start + k];
                    let b = data[start + k + m] * w;
                    data[start + k] = a + b;
                    data[start + k + m] = a - b;
                }
            }
            toff += m;
            m = step;
        }
    }
}

/// One-shot forward FFT of a complex slice (builds a plan internally).
pub fn fft(data: &mut [Complex]) {
    FftPlan::new(data.len()).forward(data);
}

/// One-shot inverse FFT of a complex slice (builds a plan internally).
pub fn ifft(data: &mut [Complex]) {
    FftPlan::new(data.len()).inverse(data);
}

/// A plan for transforms of *real* signals of power-of-two length `n`.
///
/// Returns the `n/2 + 1` non-redundant spectral coefficients (the remaining
/// ones follow from Hermitian symmetry `X[n-k] = conj(X[k])`).
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    plan: FftPlan,
}

impl RealFftPlan {
    /// Creates a real-FFT plan of length `n` (power of two, `n >= 2`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "real FFT length must be at least 2");
        RealFftPlan { plan: FftPlan::new(n) }
    }

    /// The signal length.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Whether the signal length is zero (never true for a constructed plan).
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The number of non-redundant output coefficients, `n/2 + 1`.
    pub fn spectrum_len(&self) -> usize {
        self.plan.len() / 2 + 1
    }

    /// Forward transform of a real signal. Returns `n/2 + 1` coefficients
    /// `X[0..=n/2]` of the full complex DFT.
    pub fn forward(&self, signal: &[f64]) -> Vec<Complex> {
        assert_eq!(signal.len(), self.plan.len());
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
        self.plan.forward(&mut buf);
        buf.truncate(self.spectrum_len());
        buf
    }

    /// Inverse transform from `n/2 + 1` Hermitian coefficients back to a real
    /// signal of length `n`. The imaginary parts of `X[0]` and `X[n/2]` are
    /// ignored (they must be zero for a genuinely real signal).
    pub fn inverse(&self, spectrum: &[Complex]) -> Vec<f64> {
        let n = self.plan.len();
        assert_eq!(spectrum.len(), self.spectrum_len());
        let mut buf = vec![Complex::ZERO; n];
        buf[0] = Complex::real(spectrum[0].re);
        for k in 1..n / 2 {
            buf[k] = spectrum[k];
            buf[n - k] = spectrum[k].conj();
        }
        buf[n / 2] = Complex::real(spectrum[n / 2].re);
        self.plan.inverse(&mut buf);
        buf.into_iter().map(|z| z.re).collect()
    }
}

/// Naive O(n^2) DFT used as a correctness oracle in tests.
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (j, &x) in data.iter().enumerate() {
            let theta = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
            acc += x * Complex::cis(theta);
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect()
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        for &n in &[1usize, 2, 4, 8, 16, 64, 256] {
            let sig = rand_signal(n, n as u64);
            let expect = dft_naive(&sig);
            let mut got = sig.clone();
            fft(&mut got);
            for (g, e) in got.iter().zip(&expect) {
                assert!((*g - *e).abs() < 1e-9 * (n as f64), "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let sig = rand_signal(128, 7);
        let mut buf = sig.clone();
        fft(&mut buf);
        ifft(&mut buf);
        for (a, b) in buf.iter().zip(&sig) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        FftPlan::new(12);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut sig = vec![Complex::ZERO; 32];
        sig[0] = Complex::ONE;
        fft(&mut sig);
        for z in &sig {
            assert!((*z - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_mode_lands_in_single_bin() {
        let n = 64;
        let k0 = 5;
        let mut sig: Vec<Complex> = (0..n)
            .map(|j| Complex::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        fft(&mut sig);
        for (k, z) in sig.iter().enumerate() {
            let expect = if k == k0 { n as f64 } else { 0.0 };
            assert!((z.re - expect).abs() < 1e-9 && z.im.abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn parseval_theorem_holds() {
        let sig = rand_signal(256, 42);
        let time_energy: f64 = sig.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = sig.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn real_fft_matches_complex_fft() {
        let n = 128;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sig: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let plan = RealFftPlan::new(n);
        let half = plan.forward(&sig);
        let mut full: Vec<Complex> = sig.iter().map(|&x| Complex::real(x)).collect();
        fft(&mut full);
        for k in 0..=n / 2 {
            assert!((half[k] - full[k]).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn real_fft_roundtrip() {
        let n = 64;
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let sig: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let plan = RealFftPlan::new(n);
        let spec = plan.forward(&sig);
        let back = plan.inverse(&spec);
        for (a, b) in back.iter().zip(&sig) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn hermitian_symmetry_of_real_signal() {
        let n = 32;
        let sig: Vec<f64> = (0..n).map(|j| (j as f64 * 0.37).sin() + 0.2).collect();
        let mut full: Vec<Complex> = sig.iter().map(|&x| Complex::real(x)).collect();
        fft(&mut full);
        for k in 1..n / 2 {
            assert!((full[k] - full[n - k].conj()).abs() < 1e-10);
        }
    }

    #[test]
    fn plan_reuse_is_consistent() {
        let plan = FftPlan::new(64);
        let sig = rand_signal(64, 99);
        let mut a = sig.clone();
        let mut b = sig.clone();
        plan.forward(&mut a);
        plan.forward(&mut b);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }
}
