//! 1D turbulence energy spectra.
//!
//! The Rayleigh–Bénard domain is periodic only in `x`, so — as is standard for
//! channel-like flows — we compute the one-dimensional energy spectrum `E(k)`
//! along `x` and average it over the wall-normal rows. The spectrum is
//! normalized so that `sum_k E(k) = 0.5 * <u_i u_i>` (the total kinetic energy
//! per unit mass), which is the convention the integral-scale formula in the
//! paper's Sec. 3.3 expects.

use crate::complex::Complex;
use crate::fft::{dft_naive, RealFftPlan};

/// The 1D kinetic-energy spectrum of a set of velocity components.
#[derive(Debug, Clone)]
pub struct EnergySpectrum {
    /// Wavenumber magnitudes: `k[i] = 2*pi*i / Lx` for bin `i`.
    pub wavenumbers: Vec<f64>,
    /// Energy per bin; `energy.len() == nx/2 + 1`.
    pub energy: Vec<f64>,
}

impl EnergySpectrum {
    /// Total kinetic energy `sum_k E(k)`; equals `0.5 <u_i u_i>` up to FFT
    /// round-off.
    pub fn total_energy(&self) -> f64 {
        self.energy.iter().sum()
    }

    /// The integral length scale
    /// `L = pi / (2 u_rms^2) * sum_{k>0} E(k)/k` (discrete form of the
    /// integral in Sec. 3.3 of the paper), where `u_rms^2 = (2/3) * 2 * E_tot`
    /// is *not* used here; the caller passes `u_rms` computed from its own
    /// convention so the metric definitions stay in one place.
    pub fn integral_scale(&self, u_rms: f64) -> f64 {
        if u_rms <= 0.0 {
            return 0.0;
        }
        let integral: f64 = self
            .wavenumbers
            .iter()
            .zip(&self.energy)
            .skip(1) // k = 0 carries the mean flow, excluded from the integral
            .map(|(&k, &e)| e / k)
            .sum();
        std::f64::consts::PI / (2.0 * u_rms * u_rms) * integral
    }
}

/// Computes the 1D energy spectrum along the periodic `x` direction.
///
/// `components` are velocity-component fields, each stored row-major as
/// `[nz][nx]` (so `field[z * nx + x]`). `lx` is the physical length of the
/// periodic direction. Rows are transformed independently and the resulting
/// per-mode energies averaged over `z`.
///
/// Power-of-two widths use the FFT; other widths fall back to a naive
/// O(nx²) real DFT, so arbitrary grids (e.g. cropped patches) are accepted.
///
/// # Panics
/// Panics if any field's length is not `nz * nx` or if `nx` is zero.
pub fn energy_spectrum_x(components: &[&[f64]], nz: usize, nx: usize, lx: f64) -> EnergySpectrum {
    assert!(!components.is_empty(), "need at least one velocity component");
    assert!(nx > 0, "nx must be positive");
    for c in components {
        assert_eq!(c.len(), nz * nx, "field shape mismatch");
    }
    let plan = if nx >= 2 && nx.is_power_of_two() { Some(RealFftPlan::new(nx)) } else { None };
    let nbins = nx / 2 + 1;
    let mut energy = vec![0.0; nbins];
    let mut row = vec![0.0f64; nx];
    for comp in components {
        for z in 0..nz {
            row.copy_from_slice(&comp[z * nx..(z + 1) * nx]);
            let spec = match &plan {
                Some(p) => p.forward(&row),
                None => {
                    let full: Vec<Complex> = row.iter().map(|&v| Complex::new(v, 0.0)).collect();
                    let mut half = dft_naive(&full);
                    half.truncate(nbins);
                    half
                }
            };
            accumulate_row_energy(&spec, nx, &mut energy);
        }
    }
    let norm = 1.0 / nz as f64;
    for e in energy.iter_mut() {
        *e *= norm;
    }
    let dk = 2.0 * std::f64::consts::PI / lx;
    let wavenumbers = (0..nbins).map(|i| i as f64 * dk).collect();
    EnergySpectrum { wavenumbers, energy }
}

/// Adds one row's spectral energy into `energy`, with the normalization that
/// makes `sum_k E(k) = 0.5 * mean(u^2)` for that row. Interior bins are
/// doubled to account for the conjugate-symmetric negative wavenumbers; only
/// DC and — for even `nx` — the Nyquist bin are their own conjugates and
/// counted once. (`k == nx / 2` would silently halve the last bin for odd
/// `nx`, where mode `nx/2` still has a distinct conjugate partner and must
/// be doubled; `2 * k == nx` holds only for a true Nyquist bin.)
fn accumulate_row_energy(spec: &[Complex], nx: usize, energy: &mut [f64]) {
    let n2 = (nx * nx) as f64;
    for (k, z) in spec.iter().enumerate() {
        let mult = if k == 0 || 2 * k == nx { 1.0 } else { 2.0 };
        energy[k] += 0.5 * mult * z.norm_sqr() / n2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_energy_matches_physical_energy() {
        // A field with a couple of modes: check sum_k E(k) == 0.5 <u^2>.
        let (nz, nx) = (4, 64);
        let lx = 4.0;
        let mut u = vec![0.0; nz * nx];
        for z in 0..nz {
            for x in 0..nx {
                let xx = x as f64 / nx as f64;
                u[z * nx + x] = 1.3 * (2.0 * std::f64::consts::PI * 3.0 * xx).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * 7.0 * xx).cos()
                    + 0.1;
            }
        }
        let spec = energy_spectrum_x(&[&u], nz, nx, lx);
        let phys: f64 = 0.5 * u.iter().map(|v| v * v).sum::<f64>() / (nz * nx) as f64;
        assert!((spec.total_energy() - phys).abs() < 1e-12, "{} vs {phys}", spec.total_energy());
    }

    #[test]
    fn parseval_holds_for_all_parities() {
        // Parseval must hold whether or not a Nyquist bin exists: even
        // power-of-two (FFT path), even and odd non-power-of-two (naive
        // path). Odd widths are the regression case for the old
        // `k == nx / 2` weighting, which halved the last bin.
        for &(nz, nx) in &[(3, 8), (2, 12), (2, 7), (3, 9), (1, 1)] {
            let mut u = vec![0.0; nz * nx];
            for (i, v) in u.iter_mut().enumerate() {
                *v = (i as f64 * 0.37).sin() + 0.2 * (i as f64 * 1.91).cos() - 0.05;
            }
            let spec = energy_spectrum_x(&[&u], nz, nx, 2.0);
            let phys: f64 = 0.5 * u.iter().map(|v| v * v).sum::<f64>() / (nz * nx) as f64;
            assert!(
                (spec.total_energy() - phys).abs() < 1e-12 * (1.0 + phys),
                "Parseval broken at nz={nz} nx={nx}: {} vs {phys}",
                spec.total_energy()
            );
        }
    }

    #[test]
    fn single_mode_concentrates_energy() {
        let (nz, nx) = (2, 32);
        let mut u = vec![0.0; nz * nx];
        for z in 0..nz {
            for x in 0..nx {
                u[z * nx + x] =
                    (2.0 * std::f64::consts::PI * 5.0 * x as f64 / nx as f64).sin() * 2.0;
            }
        }
        let spec = energy_spectrum_x(&[&u], nz, nx, 1.0);
        // sin amplitude 2 -> mean square 2, KE = 1, all in bin 5.
        assert!((spec.energy[5] - 1.0).abs() < 1e-12);
        for (k, &e) in spec.energy.iter().enumerate() {
            if k != 5 {
                assert!(e.abs() < 1e-12, "bin {k} leaked {e}");
            }
        }
    }

    #[test]
    fn wavenumbers_scale_with_domain_length() {
        let u = vec![0.0; 16];
        let s1 = energy_spectrum_x(&[&u], 1, 16, 1.0);
        let s4 = energy_spectrum_x(&[&u], 1, 16, 4.0);
        assert!((s1.wavenumbers[1] - 2.0 * std::f64::consts::PI).abs() < 1e-12);
        assert!((s4.wavenumbers[1] - std::f64::consts::PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn integral_scale_of_single_mode() {
        // For energy E0 entirely at wavenumber k0: L = pi/(2 urms^2) * E0/k0.
        let (nz, nx) = (1, 64);
        let mut u = vec![0.0; nz * nx];
        for (x, uv) in u.iter_mut().enumerate() {
            *uv = (2.0 * std::f64::consts::PI * 4.0 * x as f64 / nx as f64).sin();
        }
        let lx = 2.0;
        let spec = energy_spectrum_x(&[&u], nz, nx, lx);
        let k0 = spec.wavenumbers[4];
        let e0 = spec.energy[4];
        let urms = 0.7;
        let expect = std::f64::consts::PI / (2.0 * urms * urms) * e0 / k0;
        assert!((spec.integral_scale(urms) - expect).abs() < 1e-12);
    }

    #[test]
    fn integral_scale_zero_for_zero_velocity() {
        let u = vec![0.0; 32];
        let spec = energy_spectrum_x(&[&u], 1, 32, 1.0);
        assert_eq!(spec.integral_scale(0.0), 0.0);
        assert_eq!(spec.integral_scale(1.0), 0.0);
    }

    #[test]
    fn multiple_components_sum() {
        let (nz, nx) = (2, 16);
        let u: Vec<f64> = (0..nz * nx).map(|i| (i as f64 * 0.3).sin()).collect();
        let w: Vec<f64> = (0..nz * nx).map(|i| (i as f64 * 0.11).cos()).collect();
        let su = energy_spectrum_x(&[&u], nz, nx, 1.0);
        let sw = energy_spectrum_x(&[&w], nz, nx, 1.0);
        let both = energy_spectrum_x(&[&u, &w], nz, nx, 1.0);
        for k in 0..both.energy.len() {
            assert!((both.energy[k] - su.energy[k] - sw.energy[k]).abs() < 1e-12);
        }
    }
}
