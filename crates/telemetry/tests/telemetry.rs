//! Integration tests for mfn-telemetry: sink semantics, thread safety, and
//! JSONL well-formedness (validated with a tiny standalone JSON parser so the
//! crate stays dependency-free).

use mfn_telemetry::{Event, MemorySink, Recorder, Sink, SolverStepMetrics, StepMetrics};
use std::sync::Arc;

/// Minimal recursive-descent JSON validity checker (objects, arrays,
/// strings, numbers, booleans, null). Returns Err with position on the
/// first syntax error.
mod json {
    pub fn validate(s: &str) -> Result<(), usize> {
        let b = s.as_bytes();
        let mut i = 0;
        value(b, &mut i)?;
        skip_ws(b, &mut i);
        if i == b.len() {
            Ok(())
        } else {
            Err(i)
        }
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Result<(), usize> {
        skip_ws(b, i);
        match b.get(*i) {
            Some(b'{') => object(b, i),
            Some(b'[') => array(b, i),
            Some(b'"') => string(b, i),
            Some(b't') => literal(b, i, b"true"),
            Some(b'f') => literal(b, i, b"false"),
            Some(b'n') => literal(b, i, b"null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
            _ => Err(*i),
        }
    }

    fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
        if b[*i..].starts_with(lit) {
            *i += lit.len();
            Ok(())
        } else {
            Err(*i)
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Result<(), usize> {
        *i += 1; // '{'
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Ok(());
        }
        loop {
            skip_ws(b, i);
            string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(*i);
            }
            *i += 1;
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b'}') => {
                    *i += 1;
                    return Ok(());
                }
                _ => return Err(*i),
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Result<(), usize> {
        *i += 1; // '['
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Ok(());
        }
        loop {
            value(b, i)?;
            skip_ws(b, i);
            match b.get(*i) {
                Some(b',') => *i += 1,
                Some(b']') => {
                    *i += 1;
                    return Ok(());
                }
                _ => return Err(*i),
            }
        }
    }

    fn string(b: &[u8], i: &mut usize) -> Result<(), usize> {
        if b.get(*i) != Some(&b'"') {
            return Err(*i);
        }
        *i += 1;
        while let Some(&c) = b.get(*i) {
            match c {
                b'"' => {
                    *i += 1;
                    return Ok(());
                }
                b'\\' => {
                    *i += 1;
                    match b.get(*i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                        Some(b'u') => {
                            if b.len() < *i + 5
                                || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return Err(*i);
                            }
                            *i += 5;
                        }
                        _ => return Err(*i),
                    }
                }
                0x20.. => *i += 1,
                _ => return Err(*i),
            }
        }
        Err(*i)
    }

    fn number(b: &[u8], i: &mut usize) -> Result<(), usize> {
        let start = *i;
        if b.get(*i) == Some(&b'-') {
            *i += 1;
        }
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        if b.get(*i) == Some(&b'.') {
            *i += 1;
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
        }
        if matches!(b.get(*i), Some(b'e' | b'E')) {
            *i += 1;
            if matches!(b.get(*i), Some(b'+' | b'-')) {
                *i += 1;
            }
            while *i < b.len() && b[*i].is_ascii_digit() {
                *i += 1;
            }
        }
        if *i == start {
            Err(start)
        } else {
            Ok(())
        }
    }
}

fn sample_step(step: u64) -> StepMetrics {
    StepMetrics {
        step,
        epoch: (step / 4) as usize,
        rank: 0,
        loss_total: 1.0 / (step as f32 + 1.0),
        loss_prediction: 0.8 / (step as f32 + 1.0),
        loss_equation: 0.2 / (step as f32 + 1.0),
        grad_norm_pre: 2.5,
        grad_norm_post: 1.0,
        lr: 1e-2,
        samples: 4,
        data_s: 1e-4,
        forward_s: 2e-3,
        backward_s: 3e-3,
        allreduce_wait_s: 0.0,
        optimizer_s: 5e-4,
    }
}

#[test]
fn memory_sink_ring_buffer_bounds_and_drop_count() {
    let sink = MemorySink::new(8);
    for s in 0..20u64 {
        sink.record(&Event::TrainStep(sample_step(s)));
    }
    assert_eq!(sink.len(), 8);
    assert_eq!(sink.dropped(), 12);
    // Oldest events were evicted: the buffer holds steps 12..20.
    let steps: Vec<u64> = sink.train_steps().iter().map(|m| m.step).collect();
    assert_eq!(steps, (12..20).collect::<Vec<_>>());
}

#[test]
fn memory_sink_accessors_filter_by_event_kind() {
    let (rec, sink) = Recorder::memory(64);
    rec.train_step(sample_step(0));
    rec.solver_step(SolverStepMetrics {
        step: 1,
        time: 0.1,
        dt: 1e-3,
        cfl_dt: 2e-3,
        seconds: 1e-5,
    });
    rec.incr("batches", 3);
    rec.incr("batches", 2);
    rec.incr("other", 100);
    rec.gauge("lr", 0.01);
    rec.gauge("lr", 0.005);
    rec.span_seconds("epoch", 1.5);
    rec.span_seconds("epoch", 0.5);
    assert_eq!(sink.train_steps().len(), 1);
    assert_eq!(sink.solver_steps().len(), 1);
    assert_eq!(sink.counter_total("batches"), 5);
    assert_eq!(sink.counter_total("missing"), 0);
    assert_eq!(sink.gauge("lr"), Some(0.005));
    assert!((sink.span_total("epoch") - 2.0).abs() < 1e-12);
}

#[test]
fn span_guard_records_on_drop() {
    let (rec, sink) = Recorder::memory(8);
    {
        let _g = rec.span("scoped");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let total = sink.span_total("scoped");
    assert!(total >= 0.002, "span under-measured: {total}");
    let timed: u32 = rec.time("timed", || 41 + 1);
    assert_eq!(timed, 42);
    assert!(sink.span_total("timed") >= 0.0);
    assert_eq!(sink.events().len(), 2);
}

#[test]
fn null_recorder_is_disabled_and_silent() {
    let rec = Recorder::null();
    assert!(!rec.is_enabled());
    // None of these should panic or allocate a sink.
    rec.train_step(sample_step(0));
    rec.incr("n", 1);
    rec.gauge("g", 1.0);
    rec.span_seconds("s", 1.0);
    rec.flush();
}

#[test]
fn recorder_is_shared_across_threads() {
    let (rec, sink) = Recorder::memory(4096);
    std::thread::scope(|scope| {
        for rank in 0..4usize {
            let rec = rec.clone();
            scope.spawn(move || {
                for s in 0..100u64 {
                    let mut m = sample_step(s);
                    m.rank = rank;
                    rec.train_step(m);
                }
            });
        }
    });
    let steps = sink.train_steps();
    assert_eq!(steps.len(), 400);
    for rank in 0..4 {
        assert_eq!(steps.iter().filter(|m| m.rank == rank).count(), 100);
    }
}

#[test]
fn jsonl_sink_lines_are_valid_json_with_expected_fields() {
    let path = std::env::temp_dir().join("mfn_telemetry_jsonl_test.jsonl");
    let rec = Recorder::jsonl(&path).expect("create jsonl sink");
    rec.train_step(sample_step(3));
    rec.solver_step(SolverStepMetrics {
        step: 9,
        time: 0.5,
        dt: 1e-3,
        cfl_dt: 2e-3,
        seconds: 1e-5,
    });
    rec.incr("frames", 2);
    rec.gauge("nu", 1.7);
    rec.span_seconds("simulate", 0.25);
    // NaN must degrade to null, not poison the line.
    rec.gauge("bad", f64::NAN);
    rec.flush();
    let text = std::fs::read_to_string(&path).expect("read jsonl");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 6);
    for (i, line) in lines.iter().enumerate() {
        json::validate(line)
            .unwrap_or_else(|pos| panic!("line {i} invalid JSON at byte {pos}: {line}"));
        assert!(line.starts_with("{\"type\":\""), "line {i} missing type: {line}");
    }
    assert!(lines[0].contains("\"loss_total\":"));
    assert!(lines[0].contains("\"grad_norm_pre\":"));
    assert!(lines[0].contains("\"samples_per_sec\":"));
    assert!(lines[1].contains("\"cfl_dt\":"));
    assert!(lines[5].contains("\"value\":null"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn event_json_escapes_special_characters() {
    let e = Event::Counter { name: "weird\"name\\with\ncontrol\u{1}", delta: 1 };
    let s = e.to_json();
    json::validate(&s).unwrap_or_else(|pos| panic!("invalid at {pos}: {s}"));
    assert!(s.contains("\\\"name\\\\with\\ncontrol\\u0001"));
}

#[test]
fn sink_trait_objects_compose() {
    // A Recorder can wrap any user-provided sink.
    struct CountingSink(std::sync::atomic::AtomicUsize);
    impl Sink for CountingSink {
        fn record(&self, _event: &Event) {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }
    let sink = Arc::new(CountingSink(std::sync::atomic::AtomicUsize::new(0)));
    let rec = Recorder::with_sink(sink.clone());
    assert!(rec.is_enabled());
    rec.incr("a", 1);
    rec.gauge("b", 2.0);
    assert_eq!(sink.0.load(std::sync::atomic::Ordering::Relaxed), 2);
}

#[test]
fn step_metrics_throughput_math() {
    let m = sample_step(0);
    let t = m.total_seconds();
    assert!((t - (1e-4 + 2e-3 + 3e-3 + 5e-4)).abs() < 1e-12);
    assert!((m.samples_per_sec() - 4.0 / t).abs() < 1e-6);
    let zero = StepMetrics::default();
    assert_eq!(zero.samples_per_sec(), 0.0);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ring_buffer_never_exceeds_capacity(cap in 1usize..64, n in 0usize..256) {
            let sink = MemorySink::new(cap);
            for s in 0..n as u64 {
                sink.record(&Event::TrainStep(sample_step(s)));
            }
            prop_assert!(sink.len() <= cap);
            prop_assert_eq!(sink.len(), n.min(cap));
            prop_assert_eq!(sink.dropped(), n.saturating_sub(cap) as u64);
        }

        #[test]
        fn gauge_json_is_always_valid(value in -1e12f64..1e12) {
            let e = Event::Gauge { name: "g", value };
            let s = e.to_json();
            prop_assert!(json::validate(&s).is_ok(), "invalid JSON: {}", s);
        }

        #[test]
        fn train_step_json_is_always_valid(
            loss in -1e6f32..1e6,
            norm in 0.0f32..1e6,
            secs in 0.0f64..1e3,
        ) {
            let mut m = sample_step(1);
            m.loss_total = loss;
            m.grad_norm_pre = norm;
            m.forward_s = secs;
            let s = Event::TrainStep(m).to_json();
            prop_assert!(json::validate(&s).is_ok(), "invalid JSON: {}", s);
        }
    }
}
