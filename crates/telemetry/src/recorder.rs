//! The [`Recorder`] handle and timing helpers.

use crate::record::{Event, SolverStepMetrics, StepMetrics};
use crate::sink::{JsonlSink, MemorySink, NullSink, Sink};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Cheaply-clonable handle through which instrumented code emits events.
///
/// A `Recorder` is an `Arc` around a [`Sink`] plus an `enabled` flag; the
/// default ([`Recorder::null`]) is disabled and every record call returns
/// after one branch. Clone it freely — clones share the sink, which is how
/// the data-parallel trainer gives every worker thread the same destination.
#[derive(Clone)]
pub struct Recorder {
    sink: Arc<dyn Sink>,
    enabled: bool,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::null()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.enabled).finish()
    }
}

impl Recorder {
    /// A disabled recorder (the default): records nothing, costs nothing.
    pub fn null() -> Self {
        Recorder { sink: Arc::new(NullSink), enabled: false }
    }

    /// A recorder buffering up to `capacity` events in memory. Returns the
    /// sink too so callers (tests) can inspect what was recorded.
    pub fn memory(capacity: usize) -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new(capacity));
        (Recorder { sink: sink.clone(), enabled: true }, sink)
    }

    /// A recorder appending JSONL to the file at `path` (truncates).
    pub fn jsonl(path: &Path) -> std::io::Result<Self> {
        let sink = Arc::new(JsonlSink::create(path)?);
        Ok(Recorder { sink, enabled: true })
    }

    /// Wraps an arbitrary sink.
    pub fn with_sink(sink: Arc<dyn Sink>) -> Self {
        Recorder { sink, enabled: true }
    }

    /// Whether this recorder forwards events (false for [`Recorder::null`]).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one trainer gradient step.
    pub fn train_step(&self, metrics: StepMetrics) {
        if self.enabled {
            self.sink.record(&Event::TrainStep(metrics));
        }
    }

    /// Records one solver timestep.
    pub fn solver_step(&self, metrics: SolverStepMetrics) {
        if self.enabled {
            self.sink.record(&Event::SolverStep(metrics));
        }
    }

    /// Increments the counter `name` by `delta`.
    pub fn incr(&self, name: &'static str, delta: u64) {
        if self.enabled {
            self.sink.record(&Event::Counter { name, delta });
        }
    }

    /// Records the current value of gauge `name`.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if self.enabled {
            self.sink.record(&Event::Gauge { name, value });
        }
    }

    /// Records a completed span of `seconds` under `name`.
    pub fn span_seconds(&self, name: &'static str, seconds: f64) {
        if self.enabled {
            self.sink.record(&Event::Span { name, seconds });
        }
    }

    /// Starts a scoped timer that records a [`Event::Span`] when dropped.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard { recorder: self.clone(), name, start: Instant::now() }
    }

    /// Times `f` and records the elapsed seconds as a span named `name`.
    pub fn time<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.span_seconds(name, start.elapsed().as_secs_f64());
        out
    }

    /// Flushes the underlying sink.
    pub fn flush(&self) {
        self.sink.flush();
    }
}

/// Scoped timer returned by [`Recorder::span`]; records on drop.
pub struct SpanGuard {
    recorder: Recorder,
    name: &'static str,
    start: Instant,
}

impl SpanGuard {
    /// Elapsed seconds so far.
    pub fn elapsed(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.recorder.span_seconds(self.name, self.start.elapsed().as_secs_f64());
    }
}

/// Minimal manual stopwatch for splitting one hot loop into phases without
/// repeated `Instant::now()` bookkeeping at every call site.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    last: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts (or restarts) the watch.
    pub fn start() -> Self {
        Stopwatch { last: Instant::now() }
    }

    /// Seconds since the last lap (or start), and resets the lap marker.
    pub fn lap(&mut self) -> f64 {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        dt
    }
}
