//! Structured event types and their JSONL encoding.

/// Per-gradient-step metrics emitted by the trainers (`mfn-core::Trainer`,
/// `mfn-core::BaselineTrainer`, and each `mfn-dist` worker).
///
/// All timings are wall-clock seconds for that step only. `rank` is 0 for
/// single-process training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMetrics {
    /// Global step index (monotonic per trainer / per worker).
    pub step: u64,
    /// Epoch this step belongs to (0-based).
    pub epoch: usize,
    /// Worker rank (0 for single-process training).
    pub rank: usize,
    /// Combined loss (Eqn. 10).
    pub loss_total: f32,
    /// Prediction loss component (Eqn. 8).
    pub loss_prediction: f32,
    /// Equation loss component (Eqn. 9).
    pub loss_equation: f32,
    /// Gradient L2 norm before clipping.
    pub grad_norm_pre: f32,
    /// Gradient L2 norm after clipping (equals `grad_norm_pre` when no
    /// clipping was applied).
    pub grad_norm_post: f32,
    /// Learning rate used for this step.
    pub lr: f32,
    /// Number of training samples in the batch (patches).
    pub samples: usize,
    /// Seconds spent assembling the batch (patch extraction + queries).
    pub data_s: f64,
    /// Seconds in the forward pass (graph build + loss).
    pub forward_s: f64,
    /// Seconds in the backward pass (backprop + gradient gather).
    pub backward_s: f64,
    /// Seconds blocked in the ring all-reduce (0 for single-process).
    pub allreduce_wait_s: f64,
    /// Seconds in the optimizer update (clip + Adam).
    pub optimizer_s: f64,
}

impl Default for StepMetrics {
    fn default() -> Self {
        StepMetrics {
            step: 0,
            epoch: 0,
            rank: 0,
            loss_total: 0.0,
            loss_prediction: 0.0,
            loss_equation: 0.0,
            grad_norm_pre: 0.0,
            grad_norm_post: 0.0,
            lr: 0.0,
            samples: 0,
            data_s: 0.0,
            forward_s: 0.0,
            backward_s: 0.0,
            allreduce_wait_s: 0.0,
            optimizer_s: 0.0,
        }
    }
}

impl StepMetrics {
    /// Total wall-clock seconds accounted to this step.
    pub fn total_seconds(&self) -> f64 {
        self.data_s + self.forward_s + self.backward_s + self.allreduce_wait_s + self.optimizer_s
    }

    /// Samples per second for this step (0 if no time was recorded).
    pub fn samples_per_sec(&self) -> f64 {
        let t = self.total_seconds();
        if t > 0.0 {
            self.samples as f64 / t
        } else {
            0.0
        }
    }
}

/// Per-timestep metrics emitted by the Rayleigh–Bénard solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverStepMetrics {
    /// Timestep index (monotonic over the solver's lifetime).
    pub step: u64,
    /// Simulation time *after* this step.
    pub time: f64,
    /// Timestep size actually taken.
    pub dt: f64,
    /// The CFL-limited dt that was available at the start of the step;
    /// `dt <= cfl_dt` holds whenever the CFL controller (`advance_to`)
    /// chose the step size.
    pub cfl_dt: f64,
    /// Wall-clock seconds for this step.
    pub seconds: f64,
}

/// A telemetry event. Sinks receive these by reference.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One trainer gradient step.
    TrainStep(StepMetrics),
    /// One solver timestep.
    SolverStep(SolverStepMetrics),
    /// A named monotonic counter increment.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Increment (may be any magnitude, but semantically additive).
        delta: u64,
    },
    /// A named point-in-time value.
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Observed value.
        value: f64,
    },
    /// A named scoped wall-clock timing.
    Span {
        /// Span name.
        name: &'static str,
        /// Elapsed seconds.
        seconds: f64,
    },
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Formats a float as a JSON-legal number (JSON has no NaN/Inf; those are
/// mapped to `null` so downstream parsers never choke on a bad step).
fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` prints enough digits to round-trip and always includes a
        // decimal point or exponent.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

impl Event {
    /// Encodes the event as a single-line JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        match self {
            Event::TrainStep(m) => {
                s.push_str("{\"type\":\"train_step\"");
                s.push_str(&format!(
                    ",\"step\":{},\"epoch\":{},\"rank\":{},\"samples\":{}",
                    m.step, m.epoch, m.rank, m.samples
                ));
                for (k, v) in [
                    ("loss_total", m.loss_total as f64),
                    ("loss_prediction", m.loss_prediction as f64),
                    ("loss_equation", m.loss_equation as f64),
                    ("grad_norm_pre", m.grad_norm_pre as f64),
                    ("grad_norm_post", m.grad_norm_post as f64),
                    ("lr", m.lr as f64),
                    ("data_s", m.data_s),
                    ("forward_s", m.forward_s),
                    ("backward_s", m.backward_s),
                    ("allreduce_wait_s", m.allreduce_wait_s),
                    ("optimizer_s", m.optimizer_s),
                    ("samples_per_sec", m.samples_per_sec()),
                ] {
                    s.push_str(",\"");
                    s.push_str(k);
                    s.push_str("\":");
                    json_f64(v, &mut s);
                }
                s.push('}');
            }
            Event::SolverStep(m) => {
                s.push_str("{\"type\":\"solver_step\"");
                s.push_str(&format!(",\"step\":{}", m.step));
                for (k, v) in
                    [("time", m.time), ("dt", m.dt), ("cfl_dt", m.cfl_dt), ("seconds", m.seconds)]
                {
                    s.push_str(",\"");
                    s.push_str(k);
                    s.push_str("\":");
                    json_f64(v, &mut s);
                }
                s.push('}');
            }
            Event::Counter { name, delta } => {
                s.push_str("{\"type\":\"counter\",\"name\":\"");
                json_escape(name, &mut s);
                s.push_str(&format!("\",\"delta\":{delta}}}"));
            }
            Event::Gauge { name, value } => {
                s.push_str("{\"type\":\"gauge\",\"name\":\"");
                json_escape(name, &mut s);
                s.push_str("\",\"value\":");
                json_f64(*value, &mut s);
                s.push('}');
            }
            Event::Span { name, seconds } => {
                s.push_str("{\"type\":\"span\",\"name\":\"");
                json_escape(name, &mut s);
                s.push_str("\",\"seconds\":");
                json_f64(*seconds, &mut s);
                s.push('}');
            }
        }
        s
    }
}
