//! Pluggable event sinks: no-op, bounded in-memory ring buffer, and
//! JSON-lines file writer.

use crate::record::{Event, SolverStepMetrics, StepMetrics};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Destination for telemetry events. Implementations must be cheap and
/// thread-safe: trainers record from multiple worker threads concurrently.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&self) {}
}

/// Discards every event. The default sink; recording through it is a single
/// dynamic call that does no work.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Bounded in-memory ring buffer of events, for tests and in-process
/// inspection. When full, the oldest event is dropped (and counted).
#[derive(Debug)]
pub struct MemorySink {
    inner: Mutex<MemoryInner>,
    capacity: usize,
}

#[derive(Debug)]
struct MemoryInner {
    events: VecDeque<Event>,
    dropped: u64,
}

impl MemorySink {
    /// Creates a sink holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        MemorySink {
            inner: Mutex::new(MemoryInner {
                events: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("telemetry lock").events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("telemetry lock").dropped
    }

    /// Snapshot of all buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().expect("telemetry lock").events.iter().cloned().collect()
    }

    /// All buffered train-step metrics, oldest first.
    pub fn train_steps(&self) -> Vec<StepMetrics> {
        self.inner
            .lock()
            .expect("telemetry lock")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::TrainStep(m) => Some(*m),
                _ => None,
            })
            .collect()
    }

    /// All buffered solver-step metrics, oldest first.
    pub fn solver_steps(&self) -> Vec<SolverStepMetrics> {
        self.inner
            .lock()
            .expect("telemetry lock")
            .events
            .iter()
            .filter_map(|e| match e {
                Event::SolverStep(m) => Some(*m),
                _ => None,
            })
            .collect()
    }

    /// Sum of all `Counter` deltas recorded under `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("telemetry lock")
            .events
            .iter()
            .map(|e| match e {
                Event::Counter { name: n, delta } if *n == name => *delta,
                _ => 0,
            })
            .sum()
    }

    /// Last recorded value of gauge `name`, if any.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().expect("telemetry lock").events.iter().rev().find_map(|e| match e {
            Event::Gauge { name: n, value } if *n == name => Some(*value),
            _ => None,
        })
    }

    /// Total seconds across all `Span` events named `name`.
    pub fn span_total(&self, name: &str) -> f64 {
        self.inner
            .lock()
            .expect("telemetry lock")
            .events
            .iter()
            .map(|e| match e {
                Event::Span { name: n, seconds } if *n == name => *seconds,
                _ => 0.0,
            })
            .sum()
    }

    /// Discards all buffered events (the drop counter is kept).
    pub fn clear(&self) {
        self.inner.lock().expect("telemetry lock").events.clear();
    }

    /// Dumps every buffered event to `path` in the JSONL format
    /// [`JsonlSink`] writes, oldest first. The chaos-test CI job uses this
    /// to attach a failed run's in-memory telemetry as an artifact.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        for e in self.inner.lock().expect("telemetry lock").events.iter() {
            writeln!(w, "{}", e.to_json())?;
        }
        w.flush()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        let mut inner = self.inner.lock().expect("telemetry lock");
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event.clone());
    }
}

/// Appends one JSON object per event to a file (the JSONL format consumed by
/// the bench harness). Lines are buffered; call [`Sink::flush`] (or drop the
/// owning `Recorder`) to ensure everything hits disk.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink { writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().expect("telemetry lock");
        // Write errors are swallowed: telemetry must never take down a run.
        let _ = writeln!(w, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("telemetry lock").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_dumps_buffered_events_as_jsonl() {
        let sink = MemorySink::new(16);
        sink.record(&Event::Counter { name: "dist.failures", delta: 2 });
        sink.record(&Event::Gauge { name: "dist.world", value: 3.0 });
        let dir = std::env::temp_dir().join(format!("mfn_sink_jsonl_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("events.jsonl");
        sink.write_jsonl(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_dir_all(&dir).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one line per buffered event: {text}");
        assert!(lines[0].contains("\"type\":\"counter\"") && lines[0].contains("dist.failures"));
        assert!(lines[1].contains("\"type\":\"gauge\"") && lines[1].contains("dist.world"));
    }
}
