//! # mfn-telemetry
//!
//! Lightweight, thread-safe observability for the MeshfreeFlowNet
//! reproduction: counters, gauges, scoped wall-clock spans, and structured
//! per-step metrics for both the trainer and the Rayleigh–Bénard solver.
//!
//! The design goals, in order:
//!
//! 1. **Near-zero overhead when disabled.** The default [`Recorder`] wraps a
//!    [`NullSink`] and every record call exits after a single branch, so
//!    instrumented hot loops (the gradient step, the solver step) pay
//!    essentially nothing when nobody is listening.
//! 2. **Test-friendly capture.** [`MemorySink`] keeps a bounded ring buffer
//!    of events, letting tests assert on per-step metrics (loss trajectories,
//!    gradient norms, all-reduce waits) instead of coarse epoch means.
//! 3. **Machine-readable runs.** [`JsonlSink`] appends one JSON object per
//!    event to a file, giving the bench harness a replayable record of every
//!    training/solver run without pulling in any serialization dependency.
//!
//! The crate is dependency-free on purpose: it sits below every other crate
//! in the workspace (solver, core, dist, bench all depend on it).
//!
//! ## JSONL schema
//!
//! Every line is a single JSON object with a `"type"` discriminator:
//!
//! ```json
//! {"type":"train_step","step":7,"epoch":0,"rank":0,"loss_total":0.91,...}
//! {"type":"solver_step","step":42,"time":0.084,"dt":0.002,...}
//! {"type":"counter","name":"batches","delta":1}
//! {"type":"gauge","name":"lr","value":0.01}
//! {"type":"span","name":"epoch","seconds":1.25}
//! ```

mod record;
mod recorder;
mod sink;

pub use record::{Event, SolverStepMetrics, StepMetrics};
pub use recorder::{Recorder, SpanGuard, Stopwatch};
pub use sink::{JsonlSink, MemorySink, NullSink, Sink};

/// Canonical gauge names for the adaptive query sampler (`mfn-sample`), so
/// emitters and dashboards agree on spelling.
pub mod sampler_gauges {
    /// Current octree leaf count.
    pub const LEAVES: &str = "sampler.leaves";
    /// Deepest current octree leaf.
    pub const MAX_DEPTH: &str = "sampler.max_depth";
    /// Shannon entropy (nats) of the leaf draw distribution.
    pub const ENTROPY: &str = "sampler.entropy";
    /// Fraction of residual mass in the top decile of leaves by mass.
    pub const TOP_DECILE_MASS: &str = "sampler.top_decile_mass";
}
