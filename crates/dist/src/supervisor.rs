//! Elastic supervisor: fault-tolerant data-parallel training.
//!
//! The plain trainer in [`crate::trainer`] assumes every worker survives the
//! whole run — one dead thread deadlocks the ring. The supervisor here runs
//! training as a sequence of *epoch rounds*, each executed by a pool of
//! worker threads against a shared train-state snapshot:
//!
//! 1. Before a round, the supervisor encodes the master state (params, BN
//!    stats, Adam, per-logical-rank sampler positions) and — when configured
//!    — persists it through the atomic CRC-framed checkpoint writer.
//! 2. Workers train one epoch with *bounded* all-reduces. A scripted (or
//!    real) failure surfaces as an error on every rank instead of a hang.
//! 3. On failure the supervisor rolls back to the snapshot (no partial
//!    epoch is ever committed), re-forms the ring — either over the
//!    surviving world or, with [`SupervisorConfig::restart_failed`], at full
//!    strength — re-shards the corpus across the new world, and retries.
//!
//! Because a round either commits whole or not at all, a run that suffered
//! a kill-and-restart is bit-identical to one that never faulted (the
//! kill-and-resume determinism test pins this), and a run that shrank keeps
//! converging on the reduced world.
//!
//! Logical ranks are stable identities: rank `r` keeps its sampler stream
//! (`seed + r * 7919`) across re-forms, so shrinking the world never makes
//! two workers draw the same batches. With adaptive query sampling enabled,
//! each logical rank additionally owns a residual-guided octree whose bytes
//! ride the same snapshot/commit/rollback lifecycle as the RNG positions.

use crate::fault::{FaultKind, FaultPlan};
use crate::ring::{ring, RingError, RingHandle};
use crate::trainer::param_digest;
use mfn_autodiff::{clip_grad_norm, flatten_grads, unflatten_grads, Adam, Graph};
use mfn_core::{
    decode_train_state, encode_train_state, load_train_state_with_fallback, octree_config,
    save_train_state, CheckpointError, Corpus, MeshfreeFlowNet, MfnConfig, RngState, SampleRng,
    TrainConfig, TrainStateMeta,
};
use mfn_data::{make_batch, make_batch_with, PatchSampler};
use mfn_sample::OctreeSampler;
use mfn_telemetry::{Recorder, StepMetrics, Stopwatch};
use rand::Rng;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Supervisor policy knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Initial world size (logical ranks 0..workers).
    pub workers: usize,
    /// Budget for one whole all-reduce collective; a peer silent for this
    /// long is treated as failed.
    pub allreduce_timeout: Duration,
    /// On worker death: true re-spawns the failed rank next round (fixed
    /// world — preemption-with-replacement); false continues on the
    /// surviving world (elastic shrink).
    pub restart_failed: bool,
    /// Stop shrinking below this world size; the run aborts instead.
    pub min_world: usize,
    /// Upper bound on failure-retry rounds across the run (guards chaos
    /// tests against livelock if a plan keeps killing workers).
    pub max_retries: usize,
    /// When set, the master state is checkpointed here before every epoch
    /// and after the last; an existing file is resumed from (falling back
    /// to `<path>.prev` if the newest write is damaged).
    pub checkpoint_path: Option<PathBuf>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            workers: 2,
            allreduce_timeout: Duration::from_secs(10),
            restart_failed: false,
            min_world: 1,
            max_retries: 8,
            checkpoint_path: None,
        }
    }
}

/// What an elastic run did and produced.
#[derive(Debug, Clone)]
pub struct ElasticRunResult {
    /// Mean combined loss per committed epoch (over the ranks that ran it).
    pub epoch_losses: Vec<f32>,
    /// World size that committed each epoch.
    pub epoch_worlds: Vec<usize>,
    /// Final master parameters.
    pub final_params: Vec<f32>,
    /// FNV-1a digest of [`ElasticRunResult::final_params`].
    pub final_digest: u64,
    /// Worker failures observed (kills and stall-timeouts).
    pub failures: u64,
    /// Times the ring was re-formed after a failure.
    pub ring_reforms: u64,
    /// World size at the end of the run.
    pub final_world: usize,
    /// True when the run committed every configured epoch (false when the
    /// retry budget or `min_world` stopped it early).
    pub completed: bool,
}

/// Everything a surviving round worker hands back to the supervisor.
struct RoundOk {
    /// The trained replica — returned only by ring position 0 (replicas are
    /// bit-identical, shipping one is enough).
    model: Option<Box<(MeshfreeFlowNet, Adam)>>,
    /// Logical rank this result belongs to.
    logical_rank: usize,
    /// Sampler position after the epoch.
    rng: RngState,
    /// Serialized adaptive-sampler octree after the epoch (None when the
    /// round ran the uniform query path).
    sampler: Option<Vec<u8>>,
    loss_sum: f32,
    batches: usize,
}

/// Why a round worker did not finish its epoch.
#[derive(Debug)]
enum RoundFailure {
    /// The fault plan killed this worker (it dropped its ring endpoints).
    Killed { rank: usize, step: u64 },
    /// A collective failed — typically collateral from a peer's death.
    Ring { rank: usize, err: RingError },
}

/// Runs fault-tolerant data-parallel training of MeshfreeFlowNet under
/// `plan` (pass [`FaultPlan::none`] for production behavior).
///
/// # Panics
/// Panics if `sup.workers == 0`, `sup.min_world == 0`, or a configured
/// checkpoint cannot be written; a *damaged* checkpoint on resume falls
/// back to `<path>.prev` and only panics when both copies are bad.
pub fn train_elastic(
    corpus: &Corpus,
    model_cfg: &MfnConfig,
    train_cfg: &TrainConfig,
    sup: &SupervisorConfig,
    plan: &FaultPlan,
    recorder: Recorder,
) -> ElasticRunResult {
    assert!(sup.workers >= 1, "supervisor needs at least one worker");
    assert!(sup.min_world >= 1, "min_world must be at least 1");

    // Master state: authoritative between rounds.
    let mut master = MeshfreeFlowNet::new(model_cfg.clone());
    let mut opt = Adam::new(
        &master.store,
        mfn_autodiff::AdamConfig { lr: train_cfg.lr, ..Default::default() },
    );
    // Logical-rank sampler streams, seeded exactly like the plain
    // data-parallel trainer so the two agree on shard contents.
    let mut rngs: Vec<RngState> = (0..sup.workers)
        .map(|r| RngState { seed: train_cfg.seed.wrapping_add(r as u64 * 7919), words: 0 })
        .collect();
    // One octree per logical rank when adaptive sampling is on; empty for
    // the uniform path so snapshots stay byte-identical to the legacy format.
    let mut sampler_states: Vec<Vec<u8>> = if train_cfg.adaptive_sampling {
        (0..sup.workers).map(|_| OctreeSampler::new(octree_config(train_cfg)).to_bytes()).collect()
    } else {
        Vec::new()
    };
    let mut start_epoch = 0usize;

    // Resume from an existing checkpoint (surviving a torn newest write via
    // the rotated previous copy).
    if let Some(path) = &sup.checkpoint_path {
        match load_train_state_with_fallback(path) {
            Ok(payload) => {
                let mut r = payload.as_slice();
                let (restored, meta) =
                    decode_train_state(&mut master, &mut r).expect("resumable checkpoint");
                assert_eq!(
                    meta.rngs.len(),
                    sup.workers,
                    "checkpoint world size {} != configured {}",
                    meta.rngs.len(),
                    sup.workers
                );
                if !meta.samplers.is_empty() {
                    assert!(
                        train_cfg.adaptive_sampling,
                        "checkpoint carries adaptive-sampler state but adaptive_sampling is off"
                    );
                    sampler_states = meta.samplers;
                }
                opt = restored;
                rngs = meta.rngs;
                start_epoch = meta.epoch;
            }
            Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                // Fresh run: nothing to resume.
            }
            Err(e) => panic!("cannot resume from {}: {e}", path.display()),
        }
    }

    let mut active: Vec<usize> = (0..sup.workers).collect();
    let mut epoch_losses = Vec::with_capacity(train_cfg.epochs);
    let mut epoch_worlds = Vec::with_capacity(train_cfg.epochs);
    let mut failures = 0u64;
    let mut ring_reforms = 0u64;
    let mut retries_left = sup.max_retries;
    let mut completed = true;

    let mut epoch = start_epoch;
    while epoch < train_cfg.epochs {
        // Snapshot the master state. Checkpoint meta carries *all* logical
        // rank streams so a resumed supervisor can rebuild every shard.
        let meta = TrainStateMeta {
            global_step: (epoch * train_cfg.batches_per_epoch) as u64,
            epoch,
            batch_cursor: 0,
            rngs: rngs.clone(),
            samplers: sampler_states.clone(),
        };
        let snapshot = encode_train_state(&master, &opt, &meta);
        if let Some(path) = &sup.checkpoint_path {
            let start = Instant::now();
            let bytes = save_train_state(path, &snapshot)
                .unwrap_or_else(|e| panic!("checkpoint write to {} failed: {e}", path.display()));
            recorder.incr("ckpt.bytes", bytes);
            recorder.incr("ckpt.writes", 1);
            recorder.gauge("ckpt.write_s", start.elapsed().as_secs_f64());
        }
        recorder.gauge("dist.world", active.len() as f64);

        // One epoch round over the active world.
        let handles = ring(active.len());
        let results: Vec<Result<RoundOk, RoundFailure>> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .zip(active.iter())
                .map(|(h, &logical_rank)| {
                    let model_cfg = model_cfg.clone();
                    let train_cfg = *train_cfg;
                    let recorder = recorder.clone();
                    let snapshot = snapshot.as_slice();
                    let rng_state = rngs[logical_rank];
                    let sampler_state = sampler_states.get(logical_rank).cloned();
                    let timeout = sup.allreduce_timeout;
                    scope.spawn(move || {
                        epoch_round(
                            corpus,
                            model_cfg,
                            train_cfg,
                            h,
                            logical_rank,
                            epoch,
                            snapshot,
                            rng_state,
                            sampler_state,
                            plan,
                            timeout,
                            recorder,
                        )
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("round worker panicked")).collect()
        });

        let killed: Vec<usize> = results
            .iter()
            .filter_map(|r| match r {
                Err(RoundFailure::Killed { rank, .. }) => Some(*rank),
                _ => None,
            })
            .collect();
        let any_failed = results.iter().any(|r| r.is_err());

        if !any_failed {
            // Commit: adopt ring-position-0's replica and every sampler
            // position; the round becomes the new master state.
            let (mut loss, mut batches) = (0.0f32, 0usize);
            for r in results {
                let ok = r.unwrap_or_else(|_| unreachable!("checked above"));
                rngs[ok.logical_rank] = ok.rng;
                if let Some(bytes) = ok.sampler {
                    sampler_states[ok.logical_rank] = bytes;
                }
                loss += ok.loss_sum;
                batches += ok.batches;
                if let Some(boxed) = ok.model {
                    let (m, o) = *boxed;
                    master = m;
                    opt = o;
                }
            }
            epoch_losses.push(loss / batches.max(1) as f32);
            epoch_worlds.push(active.len());
            epoch += 1;
            continue;
        }

        // Failure path: nothing from this round is committed (rollback to
        // the snapshot is implicit — master/opt/rngs were never touched).
        for r in &results {
            match r {
                Err(RoundFailure::Killed { rank, step }) => {
                    eprintln!(
                        "supervisor: rank {rank} died at step {step}; rolling back epoch {epoch}"
                    );
                }
                Err(RoundFailure::Ring { rank, err }) => {
                    eprintln!("supervisor: rank {rank} collective failed ({err}); rolling back epoch {epoch}");
                }
                Ok(_) => {}
            }
        }
        failures += killed.len().max(1) as u64; // stall-only rounds count once
        recorder.incr("dist.failures", killed.len().max(1) as u64);
        if !sup.restart_failed {
            active.retain(|r| !killed.contains(r));
        }
        ring_reforms += 1;
        recorder.incr("dist.ring_reforms", 1);
        if active.len() < sup.min_world {
            completed = false;
            break;
        }
        if retries_left == 0 {
            completed = false;
            break;
        }
        retries_left -= 1;
    }

    // Persist the final committed state so a follow-on run resumes cleanly.
    if let Some(path) = &sup.checkpoint_path {
        let meta = TrainStateMeta {
            global_step: (epoch * train_cfg.batches_per_epoch) as u64,
            epoch,
            batch_cursor: 0,
            rngs: rngs.clone(),
            samplers: sampler_states.clone(),
        };
        let start = Instant::now();
        let bytes = save_train_state(path, &encode_train_state(&master, &opt, &meta))
            .unwrap_or_else(|e| panic!("checkpoint write to {} failed: {e}", path.display()));
        recorder.incr("ckpt.bytes", bytes);
        recorder.incr("ckpt.writes", 1);
        recorder.gauge("ckpt.write_s", start.elapsed().as_secs_f64());
    }

    let final_params = master.store.flatten();
    let final_digest = param_digest(&final_params);
    ElasticRunResult {
        epoch_losses,
        epoch_worlds,
        final_params,
        final_digest,
        failures,
        ring_reforms,
        final_world: active.len(),
        completed,
    }
}

/// One worker's epoch inside a supervised round: decode the snapshot, train
/// `batches_per_epoch` batches with bounded all-reduces, honoring the fault
/// plan.
#[allow(clippy::too_many_arguments)]
fn epoch_round(
    corpus: &Corpus,
    model_cfg: MfnConfig,
    train_cfg: TrainConfig,
    handle: RingHandle,
    logical_rank: usize,
    epoch: usize,
    snapshot: &[u8],
    rng_state: RngState,
    sampler_state: Option<Vec<u8>>,
    plan: &FaultPlan,
    timeout: Duration,
    recorder: Recorder,
) -> Result<RoundOk, RoundFailure> {
    let mut model = MeshfreeFlowNet::new(model_cfg);
    let mut r = snapshot;
    let (mut opt, _meta) =
        decode_train_state(&mut model, &mut r).expect("supervisor snapshot must decode");
    let mut rng = SampleRng::restore(rng_state);
    let mut tree = sampler_state.map(|bytes| {
        OctreeSampler::from_bytes(&bytes, octree_config(&train_cfg))
            .expect("supervisor snapshot sampler must decode")
    });
    let samplers: Vec<PatchSampler<'_>> =
        corpus.pairs.iter().map(|(hr, lr)| PatchSampler::new(hr, lr, model.cfg.patch)).collect();
    let (mut loss_sum, mut batches) = (0.0f32, 0usize);
    for b in 0..train_cfg.batches_per_epoch {
        let gstep = (epoch * train_cfg.batches_per_epoch + b + 1) as u64;
        let fault = plan.fire(logical_rank, gstep);
        if matches!(fault, Some(FaultKind::Kill)) {
            // Early return drops the ring endpoints — peers see a
            // disconnect, exactly like a crashed process's sockets.
            return Err(RoundFailure::Killed { rank: logical_rank, step: gstep });
        }
        let mut sw = Stopwatch::start();
        let di = rng.gen_range(0..samplers.len());
        let batch = if let Some(tree) = tree.as_mut() {
            make_batch_with(&samplers[di], train_cfg.batch_size, tree, &mut rng)
        } else {
            make_batch(&samplers[di], train_cfg.batch_size, &mut rng)
        };
        let data_s = sw.lap();
        let mut g = Graph::new();
        let (loss, comps, scores) = if tree.is_some() {
            let (loss, comps, scores) =
                model.loss_on_batch_scored(&mut g, &batch, corpus.params(di), corpus.stats, true);
            (loss, comps, Some(scores))
        } else {
            let (loss, comps) =
                model.loss_on_batch(&mut g, &batch, corpus.params(di), corpus.stats, true);
            (loss, comps, None)
        };
        let forward_s = sw.lap();
        g.backward(loss);
        let grads = g.param_grads(&model.store);
        let mut flat = flatten_grads(&grads);
        let backward_s = sw.lap();
        if let Some(FaultKind::Delay(d)) = fault {
            std::thread::sleep(d);
        }
        handle
            .all_reduce_mean_bounded(&mut flat, timeout)
            .map_err(|err| RoundFailure::Ring { rank: logical_rank, err })?;
        let allreduce_wait_s = sw.lap();
        let mut grads = unflatten_grads(&model.store, &flat);
        let grad_norm_pre = if train_cfg.grad_clip > 0.0 {
            clip_grad_norm(&mut grads, train_cfg.grad_clip)
        } else if recorder.is_enabled() {
            mfn_autodiff::grad_l2_norm(&grads)
        } else {
            0.0
        };
        opt.step(&mut model.store, &grads);
        let optimizer_s = sw.lap();
        if let (Some(tree), Some(scores)) = (tree.as_mut(), scores) {
            let points: Vec<[f32; 3]> =
                batch.samples.iter().flat_map(|s| s.query_local.iter().copied()).collect();
            tree.update(&points, &scores);
        }
        loss_sum += comps.total;
        batches += 1;
        if recorder.is_enabled() {
            let clip = train_cfg.grad_clip;
            recorder.train_step(StepMetrics {
                step: gstep,
                epoch,
                rank: logical_rank,
                loss_total: comps.total,
                loss_prediction: comps.prediction,
                loss_equation: comps.equation,
                grad_norm_pre,
                grad_norm_post: if clip > 0.0 { grad_norm_pre.min(clip) } else { grad_norm_pre },
                lr: opt.config().lr,
                samples: train_cfg.batch_size,
                data_s,
                forward_s,
                backward_s,
                allreduce_wait_s,
                optimizer_s,
            });
        }
    }
    let model = (handle.rank() == 0).then(|| Box::new((model, opt)));
    let sampler = tree.map(|t| t.to_bytes());
    Ok(RoundOk { model, logical_rank, rng: rng.state(), sampler, loss_sum, batches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_data::{downsample, Dataset, PatchSpec};
    use mfn_solver::{simulate, RbcConfig};

    fn tiny_setup() -> (Corpus, MfnConfig, TrainConfig) {
        let sim = simulate(
            &RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.1,
            9,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        let corpus = Corpus::new(vec![(hr, lr)]);
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 8 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        let tc = TrainConfig {
            epochs: 3,
            batches_per_epoch: 4,
            batch_size: 2,
            lr: 5e-3,
            ..Default::default()
        };
        (corpus, cfg, tc)
    }

    /// With no faults, the elastic supervisor is just a slower spelling of
    /// the plain data-parallel trainer: identical final parameters.
    #[test]
    fn matches_plain_data_parallel_without_faults() {
        let (corpus, cfg, tc) = tiny_setup();
        let sup = SupervisorConfig { workers: 2, ..Default::default() };
        let elastic = train_elastic(&corpus, &cfg, &tc, &sup, &FaultPlan::none(), Recorder::null());
        let plain = crate::trainer::train_data_parallel(&corpus, &cfg, &tc, 2);
        assert!(elastic.completed);
        assert_eq!(elastic.failures, 0);
        assert_eq!(elastic.ring_reforms, 0);
        assert_eq!(elastic.epoch_worlds, vec![2; tc.epochs]);
        assert_eq!(
            elastic.final_params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            plain.final_params.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "elastic supervisor without faults must reproduce the plain trainer"
        );
    }

    /// Killing a worker mid-epoch with restart: the run commits every epoch
    /// at full strength and lands on the same parameters as a faultless run.
    #[test]
    fn kill_with_restart_is_deterministic() {
        let (corpus, cfg, tc) = tiny_setup();
        let sup = SupervisorConfig { workers: 2, restart_failed: true, ..Default::default() };
        let clean = train_elastic(&corpus, &cfg, &tc, &sup, &FaultPlan::none(), Recorder::null());
        // Kill logical rank 1 at global step 6 (mid-epoch 1).
        let plan = FaultPlan::none().kill(1, 6);
        let faulted = train_elastic(&corpus, &cfg, &tc, &sup, &plan, Recorder::null());
        assert!(faulted.completed);
        assert_eq!(faulted.failures, 1);
        assert_eq!(faulted.ring_reforms, 1);
        assert_eq!(faulted.final_world, 2);
        assert_eq!(
            faulted.final_digest, clean.final_digest,
            "rollback + restart must reproduce the faultless run bit-for-bit"
        );
    }

    /// Adaptive query sampling: each rank's octree must ride the same
    /// commit/rollback lifecycle as the RNG positions, so a killed round
    /// leaks no residual-EMA updates and kill+restart still reproduces the
    /// faultless adaptive run bit-for-bit.
    #[test]
    fn adaptive_kill_with_restart_is_deterministic() {
        let (corpus, cfg, mut tc) = tiny_setup();
        tc.adaptive_sampling = true;
        let sup = SupervisorConfig { workers: 2, restart_failed: true, ..Default::default() };
        let clean = train_elastic(&corpus, &cfg, &tc, &sup, &FaultPlan::none(), Recorder::null());
        let plan = FaultPlan::none().kill(1, 6);
        let faulted = train_elastic(&corpus, &cfg, &tc, &sup, &plan, Recorder::null());
        assert!(faulted.completed);
        assert_eq!(faulted.failures, 1);
        assert_eq!(
            faulted.final_digest, clean.final_digest,
            "adaptive sampler rollback must be as exact as parameter rollback"
        );
        // The adaptive path must actually diverge from the uniform one —
        // otherwise this test would pass vacuously.
        let uniform = train_elastic(
            &corpus,
            &cfg,
            &tiny_setup().2,
            &sup,
            &FaultPlan::none(),
            Recorder::null(),
        );
        assert_ne!(
            clean.final_digest, uniform.final_digest,
            "adaptive sampling should change which query points are drawn"
        );
    }
}
