//! Deterministic fault injection for the distributed trainer.
//!
//! A [`FaultPlan`] scripts failures against *logical ranks* at chosen global
//! steps: a worker can be killed (its thread returns early, dropping its
//! ring endpoints — exactly what a crashed process does to its sockets) or
//! stalled long enough to trip the bounded all-reduce's deadline. Each fault
//! fires at most once, so a supervisor retry after rollback does not re-hit
//! the same scripted failure and the chaos tests terminate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What happens to the targeted worker when its fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker dies on the spot: early-returns and drops its ring
    /// endpoints mid-epoch.
    Kill,
    /// The worker sleeps this long right before its all-reduce — longer
    /// than the collective timeout, this looks like a hung peer.
    Delay(Duration),
}

/// One scripted fault.
#[derive(Debug)]
struct Fault {
    /// Logical rank the fault targets (stable across ring re-forms).
    rank: usize,
    /// Global gradient step (1-based, `epoch * batches_per_epoch + batch + 1`)
    /// at which it fires.
    at_step: u64,
    kind: FaultKind,
    fired: AtomicBool,
}

/// A set of one-shot scripted faults, shared by every worker in a run.
///
/// The empty plan ([`FaultPlan::none`]) is the production configuration:
/// checking it is two loads and training behavior is bit-identical to a
/// build without fault injection.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with no faults (no-op).
    pub fn none() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// Adds a kill of `rank` at global step `at_step` (builder form).
    pub fn kill(mut self, rank: usize, at_step: u64) -> Self {
        self.faults.push(Fault {
            rank,
            at_step,
            kind: FaultKind::Kill,
            fired: AtomicBool::new(false),
        });
        self
    }

    /// Adds a pre-all-reduce stall of `delay` on `rank` at global step
    /// `at_step` (builder form).
    pub fn delay(mut self, rank: usize, at_step: u64, delay: Duration) -> Self {
        self.faults.push(Fault {
            rank,
            at_step,
            kind: FaultKind::Delay(delay),
            fired: AtomicBool::new(false),
        });
        self
    }

    /// True when the plan scripts nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Consumes and returns the fault scheduled for `rank` at `step`, if
    /// any. One-shot: the same fault is never returned twice, even across
    /// supervisor retries of the same step.
    pub fn fire(&self, rank: usize, step: u64) -> Option<FaultKind> {
        for f in &self.faults {
            if f.rank == rank
                && f.at_step == step
                && f.fired
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
            {
                return Some(f.kind);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_at_the_scripted_point() {
        let plan = FaultPlan::none().kill(1, 5).delay(0, 3, Duration::from_millis(10));
        assert!(!plan.is_empty());
        // Wrong rank or step: nothing fires.
        assert_eq!(plan.fire(1, 4), None);
        assert_eq!(plan.fire(0, 5), None);
        // The scripted point fires exactly once.
        assert_eq!(plan.fire(1, 5), Some(FaultKind::Kill));
        assert_eq!(plan.fire(1, 5), None, "faults must be one-shot");
        assert_eq!(plan.fire(0, 3), Some(FaultKind::Delay(Duration::from_millis(10))));
        assert_eq!(plan.fire(0, 3), None);
    }

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for rank in 0..4 {
            for step in 0..100 {
                assert_eq!(plan.fire(rank, step), None);
            }
        }
    }
}
