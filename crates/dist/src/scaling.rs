//! The analytic throughput model used to extend measured scaling curves to
//! the paper's 128-GPU regime (Fig. 7a).
//!
//! The host has far fewer cores than Cori had GPUs, so we *measure* up to
//! the core count and *model* beyond it (a substitution documented in
//! DESIGN.md). The model captures exactly the mechanism the paper describes:
//! per-step time is compute plus the *exposed* part of the ring all-reduce,
//! where communication of one layer's gradients overlaps with backprop of
//! the previous layer.

/// Calibrated throughput model for synchronous data-parallel training with
/// ring all-reduce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingModel {
    /// Per-worker compute seconds per step (forward + backward + optimizer).
    pub t_compute: f64,
    /// Gradient bytes exchanged per step.
    pub grad_bytes: f64,
    /// Link bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Fraction of communication hidden under backprop (0 = fully exposed,
    /// 1 = fully overlapped).
    pub overlap: f64,
    /// Samples per worker per step.
    pub batch: f64,
}

impl ScalingModel {
    /// Ring all-reduce wire time for `n` workers: `2 (n−1)/n · B / bw`.
    pub fn comm_time(&self, n: usize) -> f64 {
        if n <= 1 {
            0.0
        } else {
            2.0 * (n as f64 - 1.0) / n as f64 * self.grad_bytes / self.bandwidth
        }
    }

    /// Seconds per synchronous step with `n` workers.
    pub fn step_time(&self, n: usize) -> f64 {
        let exposed = (self.comm_time(n) - self.overlap * self.t_compute).max(0.0);
        self.t_compute + exposed
    }

    /// Aggregate throughput (samples/second) with `n` workers.
    pub fn throughput(&self, n: usize) -> f64 {
        n as f64 * self.batch / self.step_time(n)
    }

    /// Scaling efficiency vs. ideal linear scaling from one worker.
    pub fn efficiency(&self, n: usize) -> f64 {
        self.throughput(n) / (n as f64 * self.throughput(1))
    }

    /// Calibrates the model from measured `(workers, samples/sec)` points.
    ///
    /// `t_compute` comes from the 1-worker point; the bandwidth is fitted so
    /// the model passes through the largest measured worker count (given an
    /// assumed overlap fraction). With only a 1-worker measurement the link
    /// is assumed fast enough for ~97% efficiency at 128 workers (the
    /// paper's observed figure).
    pub fn calibrate(measured: &[(usize, f64)], grad_bytes: f64, batch: f64, overlap: f64) -> Self {
        assert!(!measured.is_empty(), "need at least the single-worker measurement");
        let single = measured.iter().find(|(n, _)| *n == 1).unwrap_or(&measured[0]);
        let t_compute = batch * single.0 as f64 / single.1;
        let mut model =
            ScalingModel { t_compute, grad_bytes, bandwidth: f64::INFINITY, overlap, batch };
        let largest = measured.iter().max_by_key(|(n, _)| *n).expect("non-empty");
        if largest.0 > 1 {
            // Solve step_time(n) = n*batch/throughput for the bandwidth.
            let (n, thr) = (largest.0, largest.1);
            let step = n as f64 * batch / thr;
            let exposed = step - t_compute;
            let wire = exposed + overlap * t_compute;
            if wire > 0.0 {
                model.bandwidth = 2.0 * (n as f64 - 1.0) / n as f64 * grad_bytes / wire;
            }
        } else {
            // No multi-worker measurement: pick a bandwidth giving the
            // paper's ~96.8% efficiency at 128 workers.
            let target_eff = 0.968;
            let n = 128.0;
            let exposed = t_compute * (1.0 - target_eff) / target_eff;
            let wire = exposed + overlap * t_compute;
            model.bandwidth = 2.0 * (n - 1.0) / n * grad_bytes / wire;
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ScalingModel {
        ScalingModel { t_compute: 0.1, grad_bytes: 4e6, bandwidth: 1e9, overlap: 0.8, batch: 8.0 }
    }

    #[test]
    fn single_worker_has_no_comm() {
        let m = model();
        assert_eq!(m.comm_time(1), 0.0);
        assert!((m.step_time(1) - m.t_compute).abs() < 1e-15);
        assert!((m.efficiency(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comm_time_saturates_with_n() {
        let m = model();
        let t2 = m.comm_time(2);
        let t128 = m.comm_time(128);
        assert!(t128 > t2);
        // Bounded by 2B/bw.
        assert!(t128 < 2.0 * m.grad_bytes / m.bandwidth + 1e-12);
    }

    #[test]
    fn efficiency_monotonically_decreases() {
        let m = ScalingModel { overlap: 0.0, ..model() };
        let mut prev = 1.01;
        for n in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let e = m.efficiency(n);
            assert!(e <= prev + 1e-12, "efficiency rose at {n}: {e} > {prev}");
            assert!(e > 0.0 && e <= 1.0 + 1e-12);
            prev = e;
        }
    }

    #[test]
    fn full_overlap_gives_ideal_scaling_when_comm_fits() {
        let m = ScalingModel { overlap: 1.0, bandwidth: 1e12, ..model() };
        for n in [2usize, 16, 128] {
            assert!((m.efficiency(n) - 1.0).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn throughput_never_exceeds_ideal_linear() {
        let m = model();
        let ideal_1 = m.throughput(1);
        for n in [2usize, 8, 32, 128, 512] {
            assert!(m.throughput(n) <= n as f64 * ideal_1 + 1e-9, "superlinear at {n}");
        }
    }

    #[test]
    fn calibrate_reproduces_measured_points() {
        let truth = model();
        let measured: Vec<(usize, f64)> =
            [1usize, 8].iter().map(|&n| (n, truth.throughput(n))).collect();
        let fit = ScalingModel::calibrate(&measured, truth.grad_bytes, truth.batch, truth.overlap);
        assert!((fit.t_compute - truth.t_compute).abs() < 1e-9);
        for &(n, thr) in &measured {
            assert!(
                (fit.throughput(n) - thr).abs() < 1e-6 * thr,
                "n={n}: {} vs {thr}",
                fit.throughput(n)
            );
        }
    }

    #[test]
    fn calibrate_single_point_targets_paper_efficiency() {
        let fit = ScalingModel::calibrate(&[(1, 80.0)], 4e6, 8.0, 0.8);
        let eff = fit.efficiency(128);
        assert!((eff - 0.968).abs() < 0.01, "efficiency {eff}");
    }
}
