//! Synchronous data-parallel training (paper Sec. 3.4 / 5.4).
//!
//! Mirrors PyTorch `DistributedDataParallel`: the model is replicated on
//! every worker ("GPUs" are OS threads on this host — see DESIGN.md for the
//! substitution), each worker computes gradients on its own mini-batch,
//! gradients are averaged with a ring all-reduce, and every replica applies
//! the identical Adam update, keeping parameters bit-identical across
//! workers without ever broadcasting them.

use crate::ring::{ring, RingHandle};
use mfn_autodiff::flatten_grads;
use mfn_autodiff::{clip_grad_norm, unflatten_grads, Adam, AdamConfig, Graph};
use mfn_core::{log_kernel_config, Corpus, MeshfreeFlowNet, MfnConfig, TrainConfig};
use mfn_data::{make_batch, PatchSampler};
use mfn_telemetry::{Recorder, StepMetrics, Stopwatch};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Result of one data-parallel training run.
#[derive(Debug, Clone)]
pub struct DistRunResult {
    /// Number of workers.
    pub workers: usize,
    /// Mean combined loss per epoch (averaged over workers and batches).
    pub epoch_losses: Vec<f32>,
    /// Cumulative wall-clock seconds at the end of each epoch.
    pub epoch_wall: Vec<f64>,
    /// Aggregate throughput in *samples per second* (batch × queries count
    /// as one sample per patch, matching the paper's Fig. 7a axis).
    pub throughput: f64,
    /// Trained parameters of worker 0 (all workers are identical).
    pub final_params: Vec<f32>,
    /// Gradient buffer size in elements (for the scaling model).
    pub grad_elems: usize,
    /// Seconds each rank spent blocked in the ring all-reduce, summed over
    /// the whole run (index = rank).
    pub allreduce_wait: Vec<f64>,
    /// Parameter digest of every rank after every epoch
    /// (`epoch_param_digests[rank][epoch]`), for replica-consistency checks:
    /// synchronous data-parallel SGD must keep these identical across ranks.
    pub epoch_param_digests: Vec<Vec<u64>>,
    /// Every rank's final flattened parameters (index = rank). Rank 0 is
    /// duplicated in [`DistRunResult::final_params`].
    pub final_params_by_rank: Vec<Vec<f32>>,
}

/// One epoch's per-worker partial record.
struct WorkerEpoch {
    loss_sum: f32,
    batches: usize,
}

/// Everything one worker thread reports back.
struct WorkerResult {
    epochs: Vec<WorkerEpoch>,
    walls: Vec<f64>,
    final_params: Vec<f32>,
    grad_elems: usize,
    allreduce_wait: f64,
    epoch_digests: Vec<u64>,
}

/// FNV-1a over the bit patterns of a parameter vector: a cheap, order-
/// sensitive fingerprint used to assert replicas stay bit-identical (and,
/// in the chaos suite, that crash-resume reproduces a run exactly).
pub fn param_digest(params: &[f32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &p in params {
        for b in p.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Runs synchronous data-parallel training of MeshfreeFlowNet.
///
/// `per_worker_batches` mini-batches are processed by *each* worker per
/// epoch (weak scaling, like the paper: the global batch grows with the
/// worker count).
pub fn train_data_parallel(
    corpus: &Corpus,
    model_cfg: &MfnConfig,
    train_cfg: &TrainConfig,
    workers: usize,
) -> DistRunResult {
    train_data_parallel_recorded(corpus, model_cfg, train_cfg, workers, Recorder::null())
}

/// [`train_data_parallel`] with telemetry: every rank emits one
/// [`StepMetrics`] per gradient step (tagged with its rank, including the
/// seconds it spent blocked in the ring all-reduce) through a clone of
/// `recorder`, and the run-level aggregates land in the returned
/// [`DistRunResult`].
pub fn train_data_parallel_recorded(
    corpus: &Corpus,
    model_cfg: &MfnConfig,
    train_cfg: &TrainConfig,
    workers: usize,
    recorder: Recorder,
) -> DistRunResult {
    assert!(workers >= 1);
    // One set of kernel-path gauges for the whole run: every rank shares
    // the process, so thread count and conv lowering are rank-invariant.
    log_kernel_config(&recorder, model_cfg, train_cfg.batch_size);
    let handles = ring(workers);
    let start = Instant::now();
    let epochs = train_cfg.epochs;
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let joins: Vec<_> = handles
            .into_iter()
            .map(|h| {
                let model_cfg = model_cfg.clone();
                let train_cfg = *train_cfg;
                let recorder = recorder.clone();
                scope.spawn(move || worker_loop(corpus, model_cfg, train_cfg, h, start, recorder))
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("worker panicked")).collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let mut epoch_losses = vec![0.0f32; epochs];
    let mut epoch_wall = vec![0.0f64; epochs];
    for r in &results {
        for (e, we) in r.epochs.iter().enumerate() {
            epoch_losses[e] += we.loss_sum / we.batches.max(1) as f32;
        }
        for (e, &w) in r.walls.iter().enumerate() {
            epoch_wall[e] = epoch_wall[e].max(w);
        }
    }
    for l in epoch_losses.iter_mut() {
        *l /= workers as f32;
    }
    let total_samples =
        (workers * train_cfg.batches_per_epoch * train_cfg.batch_size * epochs) as f64;
    let throughput = total_samples / elapsed;
    recorder.gauge("throughput_samples_per_sec", throughput);
    DistRunResult {
        workers,
        epoch_losses,
        epoch_wall,
        throughput,
        final_params: results[0].final_params.clone(),
        grad_elems: results[0].grad_elems,
        allreduce_wait: results.iter().map(|r| r.allreduce_wait).collect(),
        epoch_param_digests: results.iter().map(|r| r.epoch_digests.clone()).collect(),
        final_params_by_rank: results.into_iter().map(|r| r.final_params).collect(),
    }
}

fn worker_loop(
    corpus: &Corpus,
    model_cfg: MfnConfig,
    train_cfg: TrainConfig,
    handle: RingHandle,
    start: Instant,
    recorder: Recorder,
) -> WorkerResult {
    let rank = handle.rank();
    // Identical seed across replicas → identical initialization; no
    // parameter broadcast needed (verified by `replicas_stay_identical`).
    let mut model = MeshfreeFlowNet::new(model_cfg);
    let mut opt = Adam::new(&model.store, AdamConfig { lr: train_cfg.lr, ..Default::default() });
    // Distinct data shards: seed differs per worker.
    let mut rng = ChaCha8Rng::seed_from_u64(train_cfg.seed.wrapping_add(rank as u64 * 7919));
    let samplers: Vec<PatchSampler<'_>> =
        corpus.pairs.iter().map(|(hr, lr)| PatchSampler::new(hr, lr, model.cfg.patch)).collect();
    let mut epochs_out = Vec::with_capacity(train_cfg.epochs);
    let mut walls = Vec::with_capacity(train_cfg.epochs);
    let mut epoch_digests = Vec::with_capacity(train_cfg.epochs);
    let mut grad_elems = 0usize;
    let mut allreduce_wait = 0.0f64;
    let mut step_no = 0u64;
    for epoch in 0..train_cfg.epochs {
        let mut we = WorkerEpoch { loss_sum: 0.0, batches: 0 };
        for _ in 0..train_cfg.batches_per_epoch {
            let mut sw = Stopwatch::start();
            let di = rng.gen_range(0..samplers.len());
            let batch = make_batch(&samplers[di], train_cfg.batch_size, &mut rng);
            let data_s = sw.lap();
            let mut g = Graph::new();
            let (loss, comps) =
                model.loss_on_batch(&mut g, &batch, corpus.params(di), corpus.stats, true);
            let forward_s = sw.lap();
            g.backward(loss);
            let grads = g.param_grads(&model.store);
            let mut flat = flatten_grads(&grads);
            grad_elems = flat.len();
            let backward_s = sw.lap();
            // Average gradients across the ring (the synchronization point).
            handle.all_reduce_mean(&mut flat);
            let allreduce_wait_s = sw.lap();
            allreduce_wait += allreduce_wait_s;
            let mut grads = unflatten_grads(&model.store, &flat);
            let grad_norm_pre = if train_cfg.grad_clip > 0.0 {
                clip_grad_norm(&mut grads, train_cfg.grad_clip)
            } else if recorder.is_enabled() {
                mfn_autodiff::grad_l2_norm(&grads)
            } else {
                0.0
            };
            opt.step(&mut model.store, &grads);
            let optimizer_s = sw.lap();
            we.loss_sum += comps.total;
            we.batches += 1;
            step_no += 1;
            if recorder.is_enabled() {
                let clip = train_cfg.grad_clip;
                recorder.train_step(StepMetrics {
                    step: step_no,
                    epoch,
                    rank,
                    loss_total: comps.total,
                    loss_prediction: comps.prediction,
                    loss_equation: comps.equation,
                    grad_norm_pre,
                    grad_norm_post: if clip > 0.0 {
                        grad_norm_pre.min(clip)
                    } else {
                        grad_norm_pre
                    },
                    lr: opt.config().lr,
                    samples: train_cfg.batch_size,
                    data_s,
                    forward_s,
                    backward_s,
                    allreduce_wait_s,
                    optimizer_s,
                });
            }
        }
        epoch_digests.push(param_digest(&model.store.flatten()));
        epochs_out.push(we);
        walls.push(start.elapsed().as_secs_f64());
    }
    WorkerResult {
        epochs: epochs_out,
        walls,
        final_params: model.store.flatten(),
        grad_elems,
        allreduce_wait,
        epoch_digests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_data::{downsample, Dataset, PatchSpec};
    use mfn_solver::{simulate, RbcConfig};

    fn tiny_setup() -> (Corpus, MfnConfig, TrainConfig) {
        let sim = simulate(
            &RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.1,
            9,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        let corpus = Corpus::new(vec![(hr, lr)]);
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 8 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        let tc = TrainConfig {
            epochs: 3,
            batches_per_epoch: 4,
            batch_size: 2,
            lr: 5e-3,
            ..Default::default()
        };
        (corpus, cfg, tc)
    }

    #[test]
    fn replicas_stay_identical() {
        let (corpus, cfg, tc) = tiny_setup();
        // Run twice with 2 workers and verify worker-0 params are
        // deterministic, plus single-run internal consistency is enforced by
        // identical updates (checked via cross-run determinism here).
        let a = train_data_parallel(&corpus, &cfg, &tc, 2);
        let b = train_data_parallel(&corpus, &cfg, &tc, 2);
        assert_eq!(a.final_params.len(), b.final_params.len());
        for (x, y) in a.final_params.iter().zip(&b.final_params) {
            assert_eq!(x, y, "data-parallel training is not deterministic");
        }
    }

    #[test]
    fn replicas_identical_within_run_after_every_epoch() {
        let (corpus, cfg, tc) = tiny_setup();
        let workers = 3;
        let r = train_data_parallel(&corpus, &cfg, &tc, workers);
        // After every epoch, every rank must hold bit-identical parameters:
        // same init, same averaged gradients, same Adam update.
        assert_eq!(r.epoch_param_digests.len(), workers);
        for rank in 1..workers {
            assert_eq!(
                r.epoch_param_digests[rank], r.epoch_param_digests[0],
                "rank {rank} params diverged from rank 0 mid-run"
            );
        }
        // And the final parameter vectors themselves are bit-identical.
        assert_eq!(r.final_params_by_rank.len(), workers);
        for rank in 1..workers {
            assert_eq!(
                r.final_params_by_rank[rank].iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                r.final_params_by_rank[0].iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
                "rank {rank} final params differ from rank 0"
            );
        }
        assert_eq!(r.final_params, r.final_params_by_rank[0]);
    }

    #[test]
    fn per_rank_step_metrics_report_allreduce_wait() {
        let (corpus, cfg, tc) = tiny_setup();
        let workers = 2;
        let (recorder, sink) = Recorder::memory(4096);
        let r = train_data_parallel_recorded(&corpus, &cfg, &tc, workers, recorder);
        let steps = sink.train_steps();
        // Every rank recorded every one of its gradient steps.
        let per_rank = tc.epochs * tc.batches_per_epoch;
        assert_eq!(steps.len(), workers * per_rank);
        for rank in 0..workers {
            let mine: Vec<_> = steps.iter().filter(|m| m.rank == rank).collect();
            assert_eq!(mine.len(), per_rank);
            // The ring synchronization point was actually timed.
            let wait: f64 = mine.iter().map(|m| m.allreduce_wait_s).sum();
            assert!(wait >= 0.0);
            assert!(
                (wait - r.allreduce_wait[rank]).abs() <= 1e-9,
                "aggregated wait disagrees with step metrics for rank {rank}"
            );
            assert!(mine.iter().all(|m| m.grad_norm_pre.is_finite()));
            assert!(mine.iter().all(|m| m.samples == tc.batch_size));
        }
        // The run-level throughput gauge was emitted and matches the result.
        let gauge = sink.gauge("throughput_samples_per_sec").expect("throughput gauge");
        assert!((gauge - r.throughput).abs() < 1e-9);
    }

    #[test]
    fn multi_worker_loss_decreases() {
        let (corpus, cfg, mut tc) = tiny_setup();
        tc.epochs = 8;
        tc.batches_per_epoch = 6;
        tc.lr = 1e-2;
        let r = train_data_parallel(&corpus, &cfg, &tc, 2);
        let first = r.epoch_losses[0];
        let last = *r.epoch_losses.last().expect("losses");
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(r.throughput > 0.0);
        assert!(r.grad_elems > 0);
    }

    #[test]
    fn single_worker_matches_structure() {
        let (corpus, cfg, tc) = tiny_setup();
        let r = train_data_parallel(&corpus, &cfg, &tc, 1);
        assert_eq!(r.workers, 1);
        assert_eq!(r.epoch_losses.len(), tc.epochs);
        assert_eq!(r.epoch_wall.len(), tc.epochs);
        assert!(r.epoch_wall.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn worker_counts_shard_data_differently_but_converge_together() {
        let (corpus, cfg, tc) = tiny_setup();
        let r1 = train_data_parallel(&corpus, &cfg, &tc, 1);
        let r2 = train_data_parallel(&corpus, &cfg, &tc, 2);
        // Different effective batch orders → different params, same rough
        // loss scale.
        assert_ne!(r1.final_params, r2.final_params);
        let l1 = *r1.epoch_losses.last().expect("losses");
        let l2 = *r2.epoch_losses.last().expect("losses");
        assert!((l1 - l2).abs() < 0.5 * (l1 + l2), "losses diverged: {l1} vs {l2}");
    }
}
