//! Synchronous data-parallel training (paper Sec. 3.4 / 5.4).
//!
//! Mirrors PyTorch `DistributedDataParallel`: the model is replicated on
//! every worker ("GPUs" are OS threads on this host — see DESIGN.md for the
//! substitution), each worker computes gradients on its own mini-batch,
//! gradients are averaged with a ring all-reduce, and every replica applies
//! the identical Adam update, keeping parameters bit-identical across
//! workers without ever broadcasting them.

use crate::ring::{ring, RingHandle};
use mfn_autodiff::{clip_grad_norm, unflatten_grads, Adam, AdamConfig, Graph};
use mfn_core::{Corpus, MeshfreeFlowNet, MfnConfig, TrainConfig};
use mfn_data::{make_batch, PatchSampler};
use mfn_autodiff::flatten_grads;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Result of one data-parallel training run.
#[derive(Debug, Clone)]
pub struct DistRunResult {
    /// Number of workers.
    pub workers: usize,
    /// Mean combined loss per epoch (averaged over workers and batches).
    pub epoch_losses: Vec<f32>,
    /// Cumulative wall-clock seconds at the end of each epoch.
    pub epoch_wall: Vec<f64>,
    /// Aggregate throughput in *samples per second* (batch × queries count
    /// as one sample per patch, matching the paper's Fig. 7a axis).
    pub throughput: f64,
    /// Trained parameters of worker 0 (all workers are identical).
    pub final_params: Vec<f32>,
    /// Gradient buffer size in elements (for the scaling model).
    pub grad_elems: usize,
}

/// One epoch's per-worker partial record.
struct WorkerEpoch {
    loss_sum: f32,
    batches: usize,
}

/// Runs synchronous data-parallel training of MeshfreeFlowNet.
///
/// `per_worker_batches` mini-batches are processed by *each* worker per
/// epoch (weak scaling, like the paper: the global batch grows with the
/// worker count).
pub fn train_data_parallel(
    corpus: &Corpus,
    model_cfg: &MfnConfig,
    train_cfg: &TrainConfig,
    workers: usize,
) -> DistRunResult {
    assert!(workers >= 1);
    let handles = ring(workers);
    let start = Instant::now();
    let epochs = train_cfg.epochs;
    let results: Vec<(Vec<WorkerEpoch>, Vec<f64>, Vec<f32>, usize)> =
        std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    let model_cfg = model_cfg.clone();
                    let train_cfg = *train_cfg;
                    scope.spawn(move || worker_loop(corpus, model_cfg, train_cfg, h, start))
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker panicked")).collect()
        });
    let elapsed = start.elapsed().as_secs_f64();
    let mut epoch_losses = vec![0.0f32; epochs];
    let mut epoch_wall = vec![0.0f64; epochs];
    for (per_epoch, walls, _, _) in &results {
        for (e, we) in per_epoch.iter().enumerate() {
            epoch_losses[e] += we.loss_sum / we.batches.max(1) as f32;
        }
        for (e, &w) in walls.iter().enumerate() {
            epoch_wall[e] = epoch_wall[e].max(w);
        }
    }
    for l in epoch_losses.iter_mut() {
        *l /= workers as f32;
    }
    let total_samples =
        (workers * train_cfg.batches_per_epoch * train_cfg.batch_size * epochs) as f64;
    DistRunResult {
        workers,
        epoch_losses,
        epoch_wall,
        throughput: total_samples / elapsed,
        final_params: results[0].2.clone(),
        grad_elems: results[0].3,
    }
}

fn worker_loop(
    corpus: &Corpus,
    model_cfg: MfnConfig,
    train_cfg: TrainConfig,
    handle: RingHandle,
    start: Instant,
) -> (Vec<WorkerEpoch>, Vec<f64>, Vec<f32>, usize) {
    // Identical seed across replicas → identical initialization; no
    // parameter broadcast needed (verified by `replicas_stay_identical`).
    let mut model = MeshfreeFlowNet::new(model_cfg);
    let mut opt =
        Adam::new(&model.store, AdamConfig { lr: train_cfg.lr, ..Default::default() });
    // Distinct data shards: seed differs per worker.
    let mut rng = ChaCha8Rng::seed_from_u64(
        train_cfg.seed.wrapping_add(handle.rank() as u64 * 7919),
    );
    let samplers: Vec<PatchSampler<'_>> = corpus
        .pairs
        .iter()
        .map(|(hr, lr)| PatchSampler::new(hr, lr, model.cfg.patch))
        .collect();
    let mut epochs_out = Vec::with_capacity(train_cfg.epochs);
    let mut walls = Vec::with_capacity(train_cfg.epochs);
    let mut grad_elems = 0usize;
    for _ in 0..train_cfg.epochs {
        let mut we = WorkerEpoch { loss_sum: 0.0, batches: 0 };
        for _ in 0..train_cfg.batches_per_epoch {
            let di = rng.gen_range(0..samplers.len());
            let batch = make_batch(&samplers[di], train_cfg.batch_size, &mut rng);
            let mut g = Graph::new();
            let (loss, comps) =
                model.loss_on_batch(&mut g, &batch, corpus.params(di), corpus.stats, true);
            g.backward(loss);
            let grads = g.param_grads(&model.store);
            let mut flat = flatten_grads(&grads);
            grad_elems = flat.len();
            // Average gradients across the ring (the synchronization point).
            handle.all_reduce_mean(&mut flat);
            let mut grads = unflatten_grads(&model.store, &flat);
            if train_cfg.grad_clip > 0.0 {
                clip_grad_norm(&mut grads, train_cfg.grad_clip);
            }
            opt.step(&mut model.store, &grads);
            we.loss_sum += comps.total;
            we.batches += 1;
        }
        epochs_out.push(we);
        walls.push(start.elapsed().as_secs_f64());
    }
    (epochs_out, walls, model.store.flatten(), grad_elems)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_data::{downsample, Dataset, PatchSpec};
    use mfn_solver::{simulate, RbcConfig};

    fn tiny_setup() -> (Corpus, MfnConfig, TrainConfig) {
        let sim = simulate(
            &RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.1,
            9,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        let corpus = Corpus::new(vec![(hr, lr)]);
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 8 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        let tc = TrainConfig {
            epochs: 3,
            batches_per_epoch: 4,
            batch_size: 2,
            lr: 5e-3,
            ..Default::default()
        };
        (corpus, cfg, tc)
    }

    #[test]
    fn replicas_stay_identical() {
        let (corpus, cfg, tc) = tiny_setup();
        // Run twice with 2 workers and verify worker-0 params are
        // deterministic, plus single-run internal consistency is enforced by
        // identical updates (checked via cross-run determinism here).
        let a = train_data_parallel(&corpus, &cfg, &tc, 2);
        let b = train_data_parallel(&corpus, &cfg, &tc, 2);
        assert_eq!(a.final_params.len(), b.final_params.len());
        for (x, y) in a.final_params.iter().zip(&b.final_params) {
            assert_eq!(x, y, "data-parallel training is not deterministic");
        }
    }

    #[test]
    fn multi_worker_loss_decreases() {
        let (corpus, cfg, mut tc) = tiny_setup();
        tc.epochs = 8;
        tc.batches_per_epoch = 6;
        tc.lr = 1e-2;
        let r = train_data_parallel(&corpus, &cfg, &tc, 2);
        let first = r.epoch_losses[0];
        let last = *r.epoch_losses.last().expect("losses");
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(r.throughput > 0.0);
        assert!(r.grad_elems > 0);
    }

    #[test]
    fn single_worker_matches_structure() {
        let (corpus, cfg, tc) = tiny_setup();
        let r = train_data_parallel(&corpus, &cfg, &tc, 1);
        assert_eq!(r.workers, 1);
        assert_eq!(r.epoch_losses.len(), tc.epochs);
        assert_eq!(r.epoch_wall.len(), tc.epochs);
        assert!(r.epoch_wall.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn worker_counts_shard_data_differently_but_converge_together() {
        let (corpus, cfg, tc) = tiny_setup();
        let r1 = train_data_parallel(&corpus, &cfg, &tc, 1);
        let r2 = train_data_parallel(&corpus, &cfg, &tc, 2);
        // Different effective batch orders → different params, same rough
        // loss scale.
        assert_ne!(r1.final_params, r2.final_params);
        let l1 = *r1.epoch_losses.last().expect("losses");
        let l2 = *r2.epoch_losses.last().expect("losses");
        assert!((l1 - l2).abs() < 0.5 * (l1 + l2), "losses diverged: {l1} vs {l2}");
    }
}
