//! # mfn-dist
//!
//! The HPC layer of the MeshfreeFlowNet reproduction (paper Secs. 3.4 and
//! 5.4): synchronous data-parallel training with a bandwidth-optimal
//! [`ring`](mod@crate::ring) all-reduce (reduce-scatter + all-gather, the NCCL
//! schedule), a replica-consistent multi-worker [`trainer`], and the
//! calibrated [`scaling`] model that extends measured throughput curves to
//! the paper's 128-GPU regime for the Fig. 7 reproduction.

pub mod fault;
pub mod ring;
pub mod scaling;
pub mod supervisor;
pub mod trainer;

pub use fault::{FaultKind, FaultPlan};
pub use ring::{ring, RingError, RingHandle};
pub use scaling::ScalingModel;
pub use supervisor::{train_elastic, ElasticRunResult, SupervisorConfig};
pub use trainer::{param_digest, train_data_parallel, train_data_parallel_recorded, DistRunResult};
