//! Bandwidth-optimal ring all-reduce.
//!
//! The paper trains with synchronous data-parallel SGD where "gradients are
//! averaged across all devices with an all-reduce operation" (Sec. 3.4,
//! NCCL). This module implements the same communication schedule NCCL uses —
//! reduce-scatter followed by all-gather around a ring — with worker threads
//! standing in for GPUs and crossbeam channels for NVLink. Each of the
//! `2(n−1)` steps moves `B/n` elements, so total bytes on the wire are
//! `2B(n−1)/n` per worker: bandwidth-optimal and independent of `n` for
//! large `n`.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::time::{Duration, Instant};

/// Why a bounded all-reduce gave up instead of completing.
///
/// A collective over threads (or machines) has exactly two failure shapes:
/// the peer is *gone* (its channel endpoints dropped) or the peer is *late*
/// (nothing arrived before the deadline). Telling them apart matters to the
/// supervisor — a disconnect means the worker died and the ring must be
/// re-formed; a timeout may be a transient stall worth retrying as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// A neighbor's channel endpoint was dropped mid-collective.
    PeerDisconnected {
        /// Rank that observed the disconnect.
        rank: usize,
        /// Ring step (0-based over the `2(n-1)` schedule) where it surfaced.
        step: usize,
    },
    /// No data arrived from the previous rank before the deadline.
    Timeout {
        /// Rank that timed out.
        rank: usize,
        /// Ring step where the wait exceeded the budget.
        step: usize,
        /// The full collective's time budget that was exhausted.
        timeout: Duration,
    },
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::PeerDisconnected { rank, step } => {
                write!(f, "rank {rank}: ring peer disconnected at collective step {step}")
            }
            RingError::Timeout { rank, step, timeout } => {
                write!(f, "rank {rank}: all-reduce exceeded {timeout:?} at collective step {step}")
            }
        }
    }
}

impl std::error::Error for RingError {}

/// One worker's endpoint of a ring. Created in bulk by [`ring`].
pub struct RingHandle {
    rank: usize,
    n: usize,
    /// Sender to the next worker in the ring (`(rank + 1) % n`).
    to_next: Sender<Vec<f32>>,
    /// Receiver from the previous worker (`(rank + n - 1) % n`).
    from_prev: Receiver<Vec<f32>>,
}

/// Creates the endpoints of an `n`-worker ring.
pub fn ring(n: usize) -> Vec<RingHandle> {
    assert!(n >= 1, "ring needs at least one worker");
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded::<Vec<f32>>();
        senders.push(s);
        receivers.push(r);
    }
    // Worker i sends into channel i (read by worker i+1).
    let mut handles: Vec<RingHandle> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Vec<f32>>>> = receivers.into_iter().map(Some).collect();
    for (rank, to_next) in senders.into_iter().enumerate() {
        let prev = (rank + n - 1) % n;
        let from_prev = receivers[prev].take().expect("each receiver taken once");
        handles.push(RingHandle { rank, n, to_next, from_prev });
    }
    handles
}

/// The element range of chunk `c` for a buffer of `len` split `n` ways
/// (first `len % n` chunks get one extra element).
fn chunk_range(len: usize, n: usize, c: usize) -> std::ops::Range<usize> {
    let base = len / n;
    let extra = len % n;
    let start = c * base + c.min(extra);
    let size = base + usize::from(c < extra);
    start..start + size
}

impl RingHandle {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Ring size.
    pub fn world(&self) -> usize {
        self.n
    }

    /// In-place all-reduce (sum). Every worker must call this with a buffer
    /// of identical length; on return all buffers hold the element-wise sum.
    ///
    /// # Panics
    /// Panics if a peer disconnects mid-reduce.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        let n = self.n;
        if n == 1 {
            return;
        }
        let len = buf.len();
        // Reduce-scatter: after step s, worker i holds the partial sum of
        // chunk (i - s) accumulated over s+1 workers; after n-1 steps worker
        // i holds the complete sum of chunk (i + 1) mod n.
        for s in 0..n - 1 {
            let send_c = (self.rank + n - s) % n;
            let recv_c = (self.rank + n - s - 1) % n;
            let out = buf[chunk_range(len, n, send_c)].to_vec();
            self.to_next.send(out).expect("ring peer hung up");
            let inc = self.from_prev.recv().expect("ring peer hung up");
            let r = chunk_range(len, n, recv_c);
            debug_assert_eq!(inc.len(), r.len());
            for (dst, src) in buf[r].iter_mut().zip(&inc) {
                *dst += src;
            }
        }
        // All-gather: circulate the completed chunks.
        for s in 0..n - 1 {
            let send_c = (self.rank + 1 + n - s) % n;
            let recv_c = (self.rank + n - s) % n;
            let out = buf[chunk_range(len, n, send_c)].to_vec();
            self.to_next.send(out).expect("ring peer hung up");
            let inc = self.from_prev.recv().expect("ring peer hung up");
            let r = chunk_range(len, n, recv_c);
            debug_assert_eq!(inc.len(), r.len());
            buf[r].copy_from_slice(&inc);
        }
    }

    /// All-reduce followed by division by the world size (gradient
    /// averaging — what `DistributedDataParallel` does).
    pub fn all_reduce_mean(&self, buf: &mut [f32]) {
        self.all_reduce_sum(buf);
        let inv = 1.0 / self.n as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
    }

    /// Receives from the previous rank, giving up at `deadline`. Polls with
    /// `try_recv` (brief spin, then short sleeps) because the channel layer
    /// guarantees no timed-receive primitive; a dropped peer endpoint is
    /// reported as [`RingError::PeerDisconnected`] immediately, not after
    /// the full timeout.
    fn recv_deadline(
        &self,
        deadline: Instant,
        timeout: Duration,
        step: usize,
    ) -> Result<Vec<f32>, RingError> {
        let mut polls = 0u32;
        loop {
            match self.from_prev.try_recv() {
                Ok(v) => return Ok(v),
                // The channel error type differs between backends but both
                // spell their fatal variant "Disconnected"; "Empty" means
                // keep waiting.
                Err(e) => {
                    if format!("{e:?}").contains("Disconnected") {
                        return Err(RingError::PeerDisconnected { rank: self.rank, step });
                    }
                }
            }
            if Instant::now() >= deadline {
                return Err(RingError::Timeout { rank: self.rank, step, timeout });
            }
            polls += 1;
            if polls < 256 {
                std::hint::spin_loop();
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    /// In-place all-reduce (sum) that *fails* instead of deadlocking when a
    /// peer dies or stalls: the entire `2(n-1)`-step collective must finish
    /// within `timeout`. On error the buffer holds partially-reduced data
    /// and must be discarded — the supervisor rolls back to the last
    /// checkpoint anyway.
    pub fn all_reduce_sum_bounded(
        &self,
        buf: &mut [f32],
        timeout: Duration,
    ) -> Result<(), RingError> {
        let n = self.n;
        if n == 1 {
            return Ok(());
        }
        let deadline = Instant::now() + timeout;
        let len = buf.len();
        for s in 0..n - 1 {
            let send_c = (self.rank + n - s) % n;
            let recv_c = (self.rank + n - s - 1) % n;
            let out = buf[chunk_range(len, n, send_c)].to_vec();
            self.to_next
                .send(out)
                .map_err(|_| RingError::PeerDisconnected { rank: self.rank, step: s })?;
            let inc = self.recv_deadline(deadline, timeout, s)?;
            let r = chunk_range(len, n, recv_c);
            debug_assert_eq!(inc.len(), r.len());
            for (dst, src) in buf[r].iter_mut().zip(&inc) {
                *dst += src;
            }
        }
        for s in 0..n - 1 {
            let step = n - 1 + s;
            let send_c = (self.rank + 1 + n - s) % n;
            let recv_c = (self.rank + n - s) % n;
            let out = buf[chunk_range(len, n, send_c)].to_vec();
            self.to_next
                .send(out)
                .map_err(|_| RingError::PeerDisconnected { rank: self.rank, step })?;
            let inc = self.recv_deadline(deadline, timeout, step)?;
            let r = chunk_range(len, n, recv_c);
            debug_assert_eq!(inc.len(), r.len());
            buf[r].copy_from_slice(&inc);
        }
        Ok(())
    }

    /// Bounded-wait gradient averaging: [`RingHandle::all_reduce_sum_bounded`]
    /// followed by division by the world size.
    pub fn all_reduce_mean_bounded(
        &self,
        buf: &mut [f32],
        timeout: Duration,
    ) -> Result<(), RingError> {
        self.all_reduce_sum_bounded(buf, timeout)?;
        let inv = 1.0 / self.n as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn run_all_reduce(n: usize, len: usize, seed: u64) {
        let handles = ring(n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> =
            (0..n).map(|_| (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let mut expect = vec![0.0f32; len];
        for inp in &inputs {
            for (e, v) in expect.iter_mut().zip(inp) {
                *e += v;
            }
        }
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .zip(inputs.clone())
                .map(|(h, mut buf)| {
                    scope.spawn(move || {
                        h.all_reduce_sum(&mut buf);
                        buf
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker panicked")).collect()
        });
        for (w, r) in results.iter().enumerate() {
            for (i, (a, b)) in r.iter().zip(&expect).enumerate() {
                assert!(
                    (a - b).abs() < 1e-4 * (1.0 + b.abs()),
                    "n={n} len={len} worker {w} elem {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn all_reduce_matches_serial_sum() {
        for n in 1..=5 {
            for len in [1usize, 2, 3, 7, 64, 1000] {
                run_all_reduce(n, len, (n * 1000 + len) as u64);
            }
        }
    }

    #[test]
    fn buffer_shorter_than_world() {
        // len < n leaves some chunks empty — must still work.
        run_all_reduce(5, 2, 99);
        run_all_reduce(4, 3, 100);
    }

    #[test]
    fn mean_divides_by_world() {
        let handles = ring(4);
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    scope.spawn(move || {
                        let mut buf = vec![2.0f32; 10];
                        h.all_reduce_mean(&mut buf);
                        buf
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker")).collect()
        });
        for r in results {
            for v in r {
                assert!((v - 2.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn repeated_reduces_stay_consistent() {
        // Back-to-back all-reduces must not cross-contaminate.
        let handles = ring(3);
        let results: Vec<(f32, f32)> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    scope.spawn(move || {
                        let mut a = vec![h.rank() as f32; 8];
                        h.all_reduce_sum(&mut a);
                        let mut b = vec![1.0f32; 5];
                        h.all_reduce_sum(&mut b);
                        (a[0], b[0])
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker")).collect()
        });
        for (a, b) in results {
            assert!((a - 3.0).abs() < 1e-6); // 0+1+2
            assert!((b - 3.0).abs() < 1e-6); // 1*3
        }
    }

    #[test]
    fn chunk_ranges_partition_buffer() {
        for len in [0usize, 1, 5, 17, 100] {
            for n in 1..=6 {
                let mut covered = 0;
                for c in 0..n {
                    let r = chunk_range(len, n, c);
                    assert_eq!(r.start, covered, "len={len} n={n} c={c}");
                    covered = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn single_worker_is_identity() {
        let handles = ring(1);
        let mut buf = vec![1.0, 2.0, 3.0];
        handles[0].all_reduce_sum(&mut buf);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn bounded_all_reduce_matches_unbounded_when_healthy() {
        let n = 4;
        let handles = ring(n);
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    scope.spawn(move || {
                        let mut buf: Vec<f32> =
                            (0..10).map(|i| (h.rank() * 10 + i) as f32).collect();
                        h.all_reduce_mean_bounded(&mut buf, Duration::from_secs(5))
                            .expect("healthy ring must reduce");
                        buf
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker")).collect()
        });
        for r in &results {
            assert_eq!(r, &results[0]);
        }
        // mean over ranks of (rank*10 + i) = 15 + i
        for (i, v) in results[0].iter().enumerate() {
            assert!((v - (15.0 + i as f32)).abs() < 1e-5);
        }
    }

    #[test]
    fn dead_peer_errors_within_timeout_instead_of_hanging() {
        let mut handles = ring(3);
        // Rank 2 "dies": its endpoints are dropped before the collective.
        drop(handles.pop());
        let timeout = Duration::from_secs(2);
        let start = Instant::now();
        let errs: Vec<RingError> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    scope.spawn(move || {
                        let mut buf = vec![1.0f32; 64];
                        h.all_reduce_sum_bounded(&mut buf, timeout)
                            .expect_err("reduce with a dead peer must fail")
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker")).collect()
        });
        // Survivors detect the drop well before the budget expires.
        assert!(start.elapsed() < timeout, "detection took the whole timeout");
        assert!(errs.iter().any(|e| matches!(e, RingError::PeerDisconnected { .. })));
    }

    #[test]
    fn stalled_peer_times_out() {
        // Rank 1 never participates (but stays alive), so rank 0's recv can
        // only end by deadline.
        let handles = ring(2);
        let (h0, h1) = {
            let mut it = handles.into_iter();
            (it.next().expect("h0"), it.next().expect("h1"))
        };
        let timeout = Duration::from_millis(200);
        let start = Instant::now();
        let mut buf = vec![1.0f32; 8];
        let err = h0.all_reduce_sum_bounded(&mut buf, timeout).expect_err("must time out");
        assert!(matches!(err, RingError::Timeout { rank: 0, .. }), "{err:?}");
        let waited = start.elapsed();
        assert!(waited >= timeout, "returned before the deadline: {waited:?}");
        assert!(waited < timeout * 10, "overshot the deadline: {waited:?}");
        drop(h1);
    }
}
