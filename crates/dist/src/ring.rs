//! Bandwidth-optimal ring all-reduce.
//!
//! The paper trains with synchronous data-parallel SGD where "gradients are
//! averaged across all devices with an all-reduce operation" (Sec. 3.4,
//! NCCL). This module implements the same communication schedule NCCL uses —
//! reduce-scatter followed by all-gather around a ring — with worker threads
//! standing in for GPUs and crossbeam channels for NVLink. Each of the
//! `2(n−1)` steps moves `B/n` elements, so total bytes on the wire are
//! `2B(n−1)/n` per worker: bandwidth-optimal and independent of `n` for
//! large `n`.

use crossbeam::channel::{unbounded, Receiver, Sender};

/// One worker's endpoint of a ring. Created in bulk by [`ring`].
pub struct RingHandle {
    rank: usize,
    n: usize,
    /// Sender to the next worker in the ring (`(rank + 1) % n`).
    to_next: Sender<Vec<f32>>,
    /// Receiver from the previous worker (`(rank + n - 1) % n`).
    from_prev: Receiver<Vec<f32>>,
}

/// Creates the endpoints of an `n`-worker ring.
pub fn ring(n: usize) -> Vec<RingHandle> {
    assert!(n >= 1, "ring needs at least one worker");
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded::<Vec<f32>>();
        senders.push(s);
        receivers.push(r);
    }
    // Worker i sends into channel i (read by worker i+1).
    let mut handles: Vec<RingHandle> = Vec::with_capacity(n);
    let mut receivers: Vec<Option<Receiver<Vec<f32>>>> = receivers.into_iter().map(Some).collect();
    for (rank, to_next) in senders.into_iter().enumerate() {
        let prev = (rank + n - 1) % n;
        let from_prev = receivers[prev].take().expect("each receiver taken once");
        handles.push(RingHandle { rank, n, to_next, from_prev });
    }
    handles
}

/// The element range of chunk `c` for a buffer of `len` split `n` ways
/// (first `len % n` chunks get one extra element).
fn chunk_range(len: usize, n: usize, c: usize) -> std::ops::Range<usize> {
    let base = len / n;
    let extra = len % n;
    let start = c * base + c.min(extra);
    let size = base + usize::from(c < extra);
    start..start + size
}

impl RingHandle {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Ring size.
    pub fn world(&self) -> usize {
        self.n
    }

    /// In-place all-reduce (sum). Every worker must call this with a buffer
    /// of identical length; on return all buffers hold the element-wise sum.
    ///
    /// # Panics
    /// Panics if a peer disconnects mid-reduce.
    pub fn all_reduce_sum(&self, buf: &mut [f32]) {
        let n = self.n;
        if n == 1 {
            return;
        }
        let len = buf.len();
        // Reduce-scatter: after step s, worker i holds the partial sum of
        // chunk (i - s) accumulated over s+1 workers; after n-1 steps worker
        // i holds the complete sum of chunk (i + 1) mod n.
        for s in 0..n - 1 {
            let send_c = (self.rank + n - s) % n;
            let recv_c = (self.rank + n - s - 1) % n;
            let out = buf[chunk_range(len, n, send_c)].to_vec();
            self.to_next.send(out).expect("ring peer hung up");
            let inc = self.from_prev.recv().expect("ring peer hung up");
            let r = chunk_range(len, n, recv_c);
            debug_assert_eq!(inc.len(), r.len());
            for (dst, src) in buf[r].iter_mut().zip(&inc) {
                *dst += src;
            }
        }
        // All-gather: circulate the completed chunks.
        for s in 0..n - 1 {
            let send_c = (self.rank + 1 + n - s) % n;
            let recv_c = (self.rank + n - s) % n;
            let out = buf[chunk_range(len, n, send_c)].to_vec();
            self.to_next.send(out).expect("ring peer hung up");
            let inc = self.from_prev.recv().expect("ring peer hung up");
            let r = chunk_range(len, n, recv_c);
            debug_assert_eq!(inc.len(), r.len());
            buf[r].copy_from_slice(&inc);
        }
    }

    /// All-reduce followed by division by the world size (gradient
    /// averaging — what `DistributedDataParallel` does).
    pub fn all_reduce_mean(&self, buf: &mut [f32]) {
        self.all_reduce_sum(buf);
        let inv = 1.0 / self.n as f32;
        for v in buf.iter_mut() {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn run_all_reduce(n: usize, len: usize, seed: u64) {
        let handles = ring(n);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let inputs: Vec<Vec<f32>> =
            (0..n).map(|_| (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let mut expect = vec![0.0f32; len];
        for inp in &inputs {
            for (e, v) in expect.iter_mut().zip(inp) {
                *e += v;
            }
        }
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .zip(inputs.clone())
                .map(|(h, mut buf)| {
                    scope.spawn(move || {
                        h.all_reduce_sum(&mut buf);
                        buf
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker panicked")).collect()
        });
        for (w, r) in results.iter().enumerate() {
            for (i, (a, b)) in r.iter().zip(&expect).enumerate() {
                assert!(
                    (a - b).abs() < 1e-4 * (1.0 + b.abs()),
                    "n={n} len={len} worker {w} elem {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn all_reduce_matches_serial_sum() {
        for n in 1..=5 {
            for len in [1usize, 2, 3, 7, 64, 1000] {
                run_all_reduce(n, len, (n * 1000 + len) as u64);
            }
        }
    }

    #[test]
    fn buffer_shorter_than_world() {
        // len < n leaves some chunks empty — must still work.
        run_all_reduce(5, 2, 99);
        run_all_reduce(4, 3, 100);
    }

    #[test]
    fn mean_divides_by_world() {
        let handles = ring(4);
        let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    scope.spawn(move || {
                        let mut buf = vec![2.0f32; 10];
                        h.all_reduce_mean(&mut buf);
                        buf
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker")).collect()
        });
        for r in results {
            for v in r {
                assert!((v - 2.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn repeated_reduces_stay_consistent() {
        // Back-to-back all-reduces must not cross-contaminate.
        let handles = ring(3);
        let results: Vec<(f32, f32)> = std::thread::scope(|scope| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    scope.spawn(move || {
                        let mut a = vec![h.rank() as f32; 8];
                        h.all_reduce_sum(&mut a);
                        let mut b = vec![1.0f32; 5];
                        h.all_reduce_sum(&mut b);
                        (a[0], b[0])
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().expect("worker")).collect()
        });
        for (a, b) in results {
            assert!((a - 3.0).abs() < 1e-6); // 0+1+2
            assert!((b - 3.0).abs() < 1e-6); // 1*3
        }
    }

    #[test]
    fn chunk_ranges_partition_buffer() {
        for len in [0usize, 1, 5, 17, 100] {
            for n in 1..=6 {
                let mut covered = 0;
                for c in 0..n {
                    let r = chunk_range(len, n, c);
                    assert_eq!(r.start, covered, "len={len} n={n} c={c}");
                    covered = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn single_worker_is_identity() {
        let handles = ring(1);
        let mut buf = vec![1.0, 2.0, 3.0];
        handles[0].all_reduce_sum(&mut buf);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
    }
}
