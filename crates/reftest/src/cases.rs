//! Deterministic adversarial input generation.
//!
//! Every case is reproducible from `(shape, seed)` alone — the oracle's
//! failure reports quote both, so a divergence seen in CI can be replayed
//! locally with no stored artifacts. The generator deliberately mixes the
//! inputs float kernels get wrong: signed zeros, subnormals, huge/tiny
//! magnitudes spanning ~30 decades, and adjacent near-cancelling pairs.

/// Splitmix-seeded LCG: cheap, deterministic, and independent of any RNG
/// crate so the oracle has no dependencies in common with the kernels under
/// test.
pub struct Lcg(u64);

impl Lcg {
    /// Seeds the generator (any seed, including 0, is valid).
    pub fn new(seed: u64) -> Self {
        // Splitmix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Lcg(z ^ (z >> 31))
    }

    /// Next raw 64-bit state.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in `[-1, 1)` from the high bits.
    pub fn uniform(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) / ((1u64 << 24) as f32) * 2.0 - 1.0
    }

    /// Uniform in `0..16`, from the *high* bits. The low bits of an LCG form
    /// a self-contained cycle (bit `k` has period `2^{k+1}`), so a branch
    /// selector taken from `next_u64() % 16` can lock into an orbit that
    /// never visits some branches when the branches themselves consume a
    /// data-dependent number of draws.
    pub fn roll16(&mut self) -> u64 {
        self.next_u64() >> 60
    }

    /// Uniform index in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() >> 33) as usize % n
    }
}

/// Hand-picked poison values: signed zeros, subnormals (smallest positive,
/// largest subnormal), normal extremes, exact powers of two at the f32
/// integer-precision boundary, and garden-variety decimals that are inexact
/// in binary.
pub const SPECIALS: &[f32] = &[
    0.0,
    -0.0,
    1.0,
    -1.0,
    0.5,
    -2.0,
    0.1,
    -0.3,
    f32::MIN_POSITIVE,
    -f32::MIN_POSITIVE,
    f32::from_bits(1), // smallest subnormal
    -f32::from_bits(1),
    f32::from_bits(0x007F_FFFF), // largest subnormal
    1.0e30,
    -1.0e30,
    1.0e-30,
    -1.0e-30,
    16_777_216.0, // 2^24: first integer with no f32 neighbor
    -16_777_215.0,
    3.0e38, // near f32::MAX
];

/// `n` adversarial f32 values, deterministic in `seed`. Roughly: 1/8
/// specials, 1/16 near-cancellation partners of the previous value, 1/16
/// subnormal-range, 1/16 huge, the rest spread over ~±2⁴⁸ in magnitude.
pub fn adversarial(n: usize, seed: u64) -> Vec<f32> {
    let mut g = Lcg::new(seed);
    let mut out: Vec<f32> = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = g.roll16();
        let x = match roll {
            0 | 1 => SPECIALS[g.index(SPECIALS.len())],
            2 => match out.last() {
                // A value one-to-four ULPs from the negation of its
                // predecessor: summed in either order, the pair cancels
                // catastrophically.
                Some(&p) if p.is_finite() && p != 0.0 => {
                    let nudges = (g.next_u64() >> 62) as u32;
                    -f32::from_bits(p.to_bits().wrapping_add(nudges))
                }
                _ => -1.0,
            },
            3 => g.uniform() * 1.0e-39, // deep in subnormal territory
            4 => g.uniform() * 3.0e30,
            _ => {
                let e = ((g.next_u64() >> 37) % 25) as i32 - 12; // 2^-24 .. 2^24
                g.uniform() * (2.0f32).powi(2 * e)
            }
        };
        out.push(x);
    }
    out
}

/// Adversarial values with magnitude capped at `cap` — for kernels whose
/// contract only covers a bounded input domain (batch norm statistics,
/// physical fields). Keeps the signed zeros, subnormals and cancellation
/// structure; rescales anything larger than `cap` into range.
pub fn adversarial_bounded(n: usize, seed: u64, cap: f32) -> Vec<f32> {
    adversarial(n, seed)
        .into_iter()
        .map(|x| if x.abs() > cap { x * (cap / f32::MAX) } else { x })
        .collect()
}

/// GEMM shapes `(m, k, n)` straddling every blocking boundary of the
/// optimized kernel ladder (micro-tiles 6×16 portable/AVX2+FMA, 8×48 and
/// 12×32 AVX-512; MC=64, KC=256): single element, sub-tile, exact tile,
/// tile+1 on each tier's edges, and a k just past the KC panel depth.
pub const GEMM_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (2, 3, 4),
    (5, 7, 15),
    (6, 16, 16),
    (7, 17, 33),
    (13, 64, 17),
    (65, 19, 31),
    (9, 21, 49), // one past the 8×48 AVX-512 tile on both axes
    (4, 0, 5),   // k = 0: contract says C is zero-filled
    (3, 257, 5),
];

/// Conv3d shapes `(n, cin, cout, spatial, kernel)` exercising 1×1×1 kernels,
/// anisotropic 3-d kernels, and spatial extents smaller than the kernel
/// (padding clamps on both sides).
pub type ConvShape = (usize, usize, usize, [usize; 3], [usize; 3]);
pub const CONV_SHAPES: &[ConvShape] = &[
    (1, 1, 1, [1, 1, 1], [1, 1, 1]),
    (1, 2, 3, [3, 4, 5], [3, 3, 3]),
    (2, 3, 2, [4, 2, 6], [1, 3, 1]),
    (1, 4, 4, [2, 3, 3], [3, 1, 3]),
    (2, 1, 5, [5, 5, 2], [5, 3, 1]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(adversarial(64, 7), adversarial(64, 7));
        assert_ne!(adversarial(64, 7), adversarial(64, 8));
    }

    #[test]
    fn generator_emits_the_hard_cases() {
        let v = adversarial(4096, 1);
        assert!(v.iter().any(|x| x.to_bits() == (-0.0f32).to_bits()), "no -0.0");
        assert!(v.iter().any(|x| x.is_subnormal()), "no subnormals");
        assert!(v.iter().any(|x| x.abs() >= 1.0e29), "no huge magnitudes");
        assert!(v.iter().any(|&x| x != 0.0 && x.abs() <= 1.0e-29), "no tiny magnitudes");
        // At least one adjacent near-cancelling pair.
        assert!(
            v.windows(2).any(|w| w[0] != 0.0 && (w[0] + w[1]).abs() < w[0].abs() * 1e-6),
            "no cancellation pairs"
        );
    }

    #[test]
    fn bounded_generator_respects_cap() {
        let v = adversarial_bounded(4096, 3, 100.0);
        assert!(v.iter().all(|x| x.abs() <= 100.0));
        assert!(v.iter().any(|x| x.is_subnormal()), "cap must not destroy subnormals");
    }
}
