//! Per-kernel differential checks: drive the optimized kernel and its f64
//! reference twin over the adversarial case set and enforce the budget.
//!
//! Accumulating kernels (GEMM, conv, blend, batch norm) are fed inputs
//! bounded so that no *intermediate* f32 sum can overflow — overflow order
//! is a property of the accumulation schedule, not a correctness claim the
//! kernels make. Element-wise kernels get the unbounded set plus explicit
//! `±inf`/NaN probes.

use crate::cases::{adversarial, adversarial_bounded, Lcg, CONV_SHAPES, GEMM_SHAPES};
use crate::compare::{Checker, Report, Tolerance};
use crate::reference as refk;
use mfn_autodiff::{Activation, Graph, Mlp, ParamStore};
use mfn_core::{
    equation_loss_at_points, ChannelStats, ConstraintSet, ContinuousDecoder, RbcParamsF32,
};
use mfn_data::{Dataset, DatasetMeta, CHANNELS};
use mfn_fft::{energy_spectrum_x, Complex, FftPlan, RealFftPlan};
use mfn_solver::{d2dx2, d2dz2, ddx, ddz, dealias_x, laplacian, Domain};
use mfn_tensor::bf16::{quantize_bf16, quantize_slice, widen_bf16, widen_slice, PackedBf16Gemm};
use mfn_tensor::{rowops, MatLayout, Tensor};

/// Bound for accumulating kernels: products stay ≤ 1e30 and sums of a few
/// hundred of them stay below f32::MAX, so intermediates cannot overflow.
const ACC_CAP: f32 = 1.0e15;

fn layout_tag(l: MatLayout) -> &'static str {
    match l {
        MatLayout::Normal => "N",
        MatLayout::Transposed => "T",
    }
}

/// Blocked GEMM vs the triple loop, over every layout pair and
/// tile-boundary shape.
pub fn check_gemm() -> Report {
    let mut c = Checker::new("gemm", Tolerance::new(4, 1.0e-4, 0.0));
    let layouts = [MatLayout::Normal, MatLayout::Transposed];
    for (si, &(m, k, n)) in GEMM_SHAPES.iter().enumerate() {
        for al in layouts {
            for bl in layouts {
                let seed = (si as u64) * 4 + 1;
                c.case(format!("m{m} k{k} n{n} {}{} seed {seed}", layout_tag(al), layout_tag(bl)));
                let a = adversarial_bounded(m * k, seed, ACC_CAP);
                let b = adversarial_bounded(k * n, seed ^ 0xDEAD, ACC_CAP);
                let mut out = vec![f32::NAN; m * n]; // NaN canary: must be overwritten
                mfn_tensor::gemm(m, k, n, &a, al, &b, bl, &mut out);
                let want = refk::gemm_ref(m, k, n, &a, al, &b, bl);
                for (i, &got) in out.iter().enumerate() {
                    c.check_f32(i, got, want.value[i], want.scale[i]);
                }
            }
        }
    }
    c.finish()
}

/// bf16 quantization vs the explicit-comparison RNE reference, bit-exact on
/// the u16 pattern, over the unbounded adversarial set plus ±inf / NaN /
/// saturation-band probes — then exhaustively over every bf16 bit pattern:
/// widening then re-quantizing must be the identity (quiet-bit-forced for
/// NaNs). Finite overflow saturates to ±0x7F7F; only ±inf maps to ±inf.
pub fn check_bf16_quantize() -> Report {
    let mut c = Checker::new("bf16_quantize", Tolerance::exact());
    let mut xs = adversarial(2048, 1700);
    xs.extend_from_slice(&[
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        -f32::NAN,
        f32::MAX, // rounds past the largest finite bf16: saturates to 0x7F7F
        f32::MIN,
        f32::from_bits(0x7F7F_8000), // halfway to inf: RNE carries, saturation claws back
        f32::from_bits(0x7F7F_8001), // just past the halfway point: same
        f32::from_bits(0x7F7F_7FFF), // just below halfway: rounds down, no saturation
        f32::from_bits(0xFF7F_8000), // negative saturation band
        f32::from_bits(0x7F80_0001), // NaN with zero top payload: quiet bit must rescue it
        f32::from_bits(0xFF80_0001), // same, negative
        f32::from_bits(0x7F80_FFFF), // NaN whose payload lives only in the discarded bits
        f32::from_bits(0x3F80_8000), // tie above an even kept mantissa
        f32::from_bits(0x3F81_8000), // tie above an odd kept mantissa
        f32::from_bits(0x3F80_8001), // one past the tie
    ]);
    c.case("quantize vs explicit-RNE twin, seed 1700 + probes");
    // The u16 patterns are compared as exact small integers, so NaN payload
    // and signed-zero bits are part of the check, not shortcut away.
    for (i, &x) in xs.iter().enumerate() {
        let got = quantize_bf16(x);
        c.check_f32_in(
            i,
            Some(f64::from(x)),
            f32::from(got),
            f64::from(refk::bf16_rne_ref(x)),
            0.0,
        );
    }
    c.case("widen∘quantize is the identity on all 2^16 patterns");
    for q in 0..=u16::MAX {
        let want = if widen_bf16(q).is_nan() { q | 0x0040 } else { q };
        c.check_f32(usize::from(q), f32::from(quantize_bf16(widen_bf16(q))), f64::from(want), 0.0);
    }
    c.finish()
}

/// The bf16 precision contract: `widen(quantize(x))` stays within half a
/// bf16 ULP of `x` — 2⁻⁸ relative (2¹⁵ f32 ULPs) for normals, 2⁻¹³⁴
/// absolute in the subnormal range.
pub fn check_bf16_precision() -> Report {
    let mut c = Checker::new("bf16_precision", Tolerance::new(1 << 15, 4.0e-3, 1.0e-38));
    // Cap below the largest finite bf16 (≈3.39e38) so no probe rounds to
    // inf: overflow bit semantics belong to `check_bf16_quantize`.
    let xs = adversarial_bounded(4096, 1750, 3.0e38);
    c.case("widen∘quantize vs identity, seed 1750");
    for (i, &x) in xs.iter().enumerate() {
        let got = widen_bf16(quantize_bf16(x));
        c.check_f32_in(i, Some(f64::from(x)), got, f64::from(x), f64::from(x).abs());
    }
    c.finish()
}

/// The prepacked bf16 GEMM vs the f64 reference over the *widened* weights:
/// quantization is a one-time property of the weights, not the accumulation,
/// so the budget is the ordinary f32 GEMM budget.
pub fn check_gemm_bf16() -> Report {
    let mut c = Checker::new("gemm_bf16", Tolerance::new(4, 1.0e-4, 0.0));
    for (si, &(m, k, n)) in GEMM_SHAPES.iter().enumerate() {
        let seed = 1800 + si as u64;
        c.case(format!("m{m} k{k} n{n} seed {seed}"));
        let a = adversarial_bounded(m * k, seed, ACC_CAP);
        let w = adversarial_bounded(n * k, seed ^ 0xB16, ACC_CAP); // [n, k] weight
        let packed = PackedBf16Gemm::from_nt_weight(&w, n, k);
        let wq = widen_slice(&quantize_slice(&w));
        let mut out = vec![f32::NAN; m * n]; // NaN canary: must be overwritten
        packed.matmul(m, &a, &mut out);
        let want = refk::gemm_ref(m, k, n, &a, MatLayout::Normal, &wq, MatLayout::Transposed);
        for (i, &got) in out.iter().enumerate() {
            c.check_f32(i, got, want.value[i], want.scale[i]);
        }
    }
    c.finish()
}

/// The bf16-*compute* GEMM (`matmul_bf16`) vs the f64 reference over both
/// operands widened-after-quantization. This tier's looser contract: A is
/// quantized at pack time and every product is a bf16×bf16 FMA pair with
/// FTZ/DAZ, so the oracle absorbs the quantization (it sees the same bf16
/// values the kernel does) and the budget covers accumulation order plus
/// flush-to-zero — hence the small absolute floor the f32 tiers don't need.
pub fn check_gemm_bf16_compute() -> Report {
    let mut c = Checker::new("gemm_bf16_compute", Tolerance::new(8, 1.0e-4, 1.0e-35));
    for (si, &(m, k, n)) in GEMM_SHAPES.iter().enumerate() {
        let seed = 1900 + si as u64;
        c.case(format!("m{m} k{k} n{n} seed {seed}"));
        let a = adversarial_bounded(m * k, seed, ACC_CAP);
        let w = adversarial_bounded(n * k, seed ^ 0xB16C, ACC_CAP); // [n, k] weight
        let packed = PackedBf16Gemm::from_nt_weight(&w, n, k);
        let aq = widen_slice(&quantize_slice(&a));
        let wq = widen_slice(&quantize_slice(&w));
        let mut out = vec![f32::NAN; m * n]; // NaN canary: must be overwritten
        packed.matmul_bf16(m, &a, &mut out);
        let want = refk::gemm_ref(m, k, n, &aq, MatLayout::Normal, &wq, MatLayout::Transposed);
        for (i, &got) in out.iter().enumerate() {
            c.check_f32(i, got, want.value[i], want.scale[i]);
        }
    }
    c.finish()
}

/// The two bf16-compute codegen legs agree bit-for-bit on finite inputs:
/// the software-emulated `vdpbf16ps` (hi-FMA, lo-FMA, FTZ each step, DAZ on
/// inputs) is the *definition* of the kernel, and the intrinsic leg must
/// reproduce it exactly. On hardware without `avx512bf16` both legs resolve
/// to the emulation, and the check degrades to a determinism probe — two
/// runs of the blocked parallel driver must still be bit-identical.
pub fn check_bf16_compute_routes() -> Report {
    let mut c = Checker::new("bf16_compute_routes", Tolerance::exact());
    let native = mfn_tensor::bf16_compute_is_native();
    for (si, &(m, k, n)) in GEMM_SHAPES.iter().enumerate() {
        let seed = 2000 + si as u64;
        let leg = if native { "native-vs-emulated" } else { "emulated-vs-emulated" };
        c.case(format!("m{m} k{k} n{n} seed {seed} {leg}"));
        let a = adversarial_bounded(m * k, seed, ACC_CAP);
        let w = adversarial_bounded(n * k, seed ^ 0xB16E, ACC_CAP);
        let packed = PackedBf16Gemm::from_nt_weight(&w, n, k);
        let mut out_a = vec![f32::NAN; m * n];
        packed.matmul_bf16(m, &a, &mut out_a);
        mfn_tensor::set_bf16_emulated_override(Some(true));
        let mut out_b = vec![f32::NAN; m * n];
        packed.matmul_bf16(m, &a, &mut out_b);
        mfn_tensor::set_bf16_emulated_override(None);
        for (i, (&ga, &gb)) in out_a.iter().zip(&out_b).enumerate() {
            c.check_f32(i, ga, f64::from(gb), 0.0);
        }
    }
    c.finish()
}

/// Direct, im2col and fused implicit-GEMM conv3d forward vs the seven-deep
/// definition loop.
pub fn check_conv3d() -> Report {
    let mut c = Checker::new("conv3d", Tolerance::new(4, 1.0e-4, 0.0));
    for (si, &(n, cin, cout, spatial, kernel)) in CONV_SHAPES.iter().enumerate() {
        let [sd, sh, sw] = spatial;
        let [kd, kh, kw] = kernel;
        let seed = 100 + si as u64;
        let x = adversarial_bounded(n * cin * sd * sh * sw, seed, ACC_CAP);
        let w = adversarial_bounded(cout * cin * kd * kh * kw, seed ^ 0xBEEF, ACC_CAP);
        let xt = Tensor::from_vec(x.clone(), &[n, cin, sd, sh, sw]);
        let wt = Tensor::from_vec(w.clone(), &[cout, cin, kd, kh, kw]);
        let want = refk::conv3d_ref(n, cin, cout, spatial, kernel, &x, &w);
        c.case(format!("direct {spatial:?}*{kernel:?} seed {seed}"));
        for (i, &got) in mfn_tensor::conv3d(&xt, &wt).data().iter().enumerate() {
            c.check_f32(i, got, want.value[i], want.scale[i]);
        }
        c.case(format!("im2col {spatial:?}*{kernel:?} seed {seed}"));
        for (i, &got) in mfn_tensor::conv3d_im2col(&xt, &wt).data().iter().enumerate() {
            c.check_f32(i, got, want.value[i], want.scale[i]);
        }
        c.case(format!("implicit_gemm {spatial:?}*{kernel:?} seed {seed}"));
        for (i, &got) in mfn_tensor::conv3d_implicit_gemm(&xt, &wt).data().iter().enumerate() {
            c.check_f32(i, got, want.value[i], want.scale[i]);
        }
    }
    c.finish()
}

/// conv3d input gradient vs its definition loop.
pub fn check_conv3d_grad_input() -> Report {
    let mut c = Checker::new("conv3d_grad_input", Tolerance::new(4, 1.0e-4, 0.0));
    for (si, &(n, cin, cout, spatial, kernel)) in CONV_SHAPES.iter().enumerate() {
        let [sd, sh, sw] = spatial;
        let [kd, kh, kw] = kernel;
        let seed = 200 + si as u64;
        let x = adversarial_bounded(n * cin * sd * sh * sw, seed, ACC_CAP);
        let w = adversarial_bounded(cout * cin * kd * kh * kw, seed ^ 0xBEEF, ACC_CAP);
        let gout = adversarial_bounded(n * cout * sd * sh * sw, seed ^ 0xFACE, ACC_CAP);
        let xt = Tensor::from_vec(x, &[n, cin, sd, sh, sw]);
        let wt = Tensor::from_vec(w.clone(), &[cout, cin, kd, kh, kw]);
        let gt = Tensor::from_vec(gout.clone(), &[n, cout, sd, sh, sw]);
        let dims = mfn_tensor::Conv3dDims::infer(&xt, &wt);
        let want = refk::conv3d_grad_input_ref(n, cin, cout, spatial, kernel, &gout, &w);
        c.case(format!("direct {spatial:?}*{kernel:?} seed {seed}"));
        let got = mfn_tensor::conv3d_grad_input_direct(&gt, &wt, dims);
        for (i, &g) in got.data().iter().enumerate() {
            c.check_f32(i, g, want.value[i], want.scale[i]);
        }
        // Every CONV_SHAPES kernel is odd, so the flipped-weight implicit
        // path is always valid here.
        c.case(format!("implicit {spatial:?}*{kernel:?} seed {seed}"));
        let got = mfn_tensor::conv3d_implicit_grad_input(&gt, &wt, dims);
        for (i, &g) in got.data().iter().enumerate() {
            c.check_f32(i, g, want.value[i], want.scale[i]);
        }
    }
    c.finish()
}

/// conv3d weight gradient vs its definition loop.
pub fn check_conv3d_grad_weight() -> Report {
    let mut c = Checker::new("conv3d_grad_weight", Tolerance::new(4, 1.0e-4, 0.0));
    for (si, &(n, cin, cout, spatial, kernel)) in CONV_SHAPES.iter().enumerate() {
        let [sd, sh, sw] = spatial;
        let [kd, kh, kw] = kernel;
        let seed = 300 + si as u64;
        let x = adversarial_bounded(n * cin * sd * sh * sw, seed, ACC_CAP);
        let w = adversarial_bounded(cout * cin * kd * kh * kw, seed ^ 0xBEEF, ACC_CAP);
        let gout = adversarial_bounded(n * cout * sd * sh * sw, seed ^ 0xFACE, ACC_CAP);
        let xt = Tensor::from_vec(x.clone(), &[n, cin, sd, sh, sw]);
        let wt = Tensor::from_vec(w, &[cout, cin, kd, kh, kw]);
        let gt = Tensor::from_vec(gout.clone(), &[n, cout, sd, sh, sw]);
        let dims = mfn_tensor::Conv3dDims::infer(&xt, &wt);
        let want = refk::conv3d_grad_weight_ref(n, cin, cout, spatial, kernel, &x, &gout);
        c.case(format!("direct {spatial:?}*{kernel:?} seed {seed}"));
        let got = mfn_tensor::conv3d_grad_weight_direct(&xt, &gt, dims);
        for (i, &g) in got.data().iter().enumerate() {
            c.check_f32(i, g, want.value[i], want.scale[i]);
        }
        c.case(format!("implicit {spatial:?}*{kernel:?} seed {seed}"));
        let got = mfn_tensor::conv3d_implicit_grad_weight(&xt, &gt, dims);
        for (i, &g) in got.data().iter().enumerate() {
            c.check_f32(i, g, want.value[i], want.scale[i]);
        }
    }
    c.finish()
}

/// Training-mode batch norm (graph op) vs the all-f64 twin. Inputs bounded
/// to a physical range: the optimized path's statistics contract does not
/// cover fields whose squares overflow f32.
pub fn check_batch_norm() -> Report {
    let mut c = Checker::new("batch_norm", Tolerance::new(16, 1.0e-5, 0.0));
    for (si, &(n, ch, inner)) in
        [(2usize, 3usize, 40usize), (1, 4, 7), (3, 1, 64)].iter().enumerate()
    {
        let seed = 400 + si as u64;
        let x = adversarial_bounded(n * ch * inner, seed, 1.0e3);
        let gamma = adversarial_bounded(ch, seed ^ 1, 8.0);
        let beta = adversarial_bounded(ch, seed ^ 2, 8.0);
        let eps = 1.0e-5f32;
        let mut g = Graph::new();
        let xv = g.constant(Tensor::from_vec(x.clone(), &[n, ch, inner]));
        let gv = g.constant(Tensor::from_vec(gamma.clone(), &[ch]));
        let bv = g.constant(Tensor::from_vec(beta.clone(), &[ch]));
        let out = g.batch_norm(xv, gv, bv, eps, None);
        let want = refk::batchnorm_train_ref(n, ch, inner, &x, &gamma, &beta, f64::from(eps));
        c.case(format!("[{n},{ch},{inner}] seed {seed}"));
        for (i, &got) in g.value(out).data().iter().enumerate() {
            c.check_f32(i, got, want.value[i], want.scale[i]);
        }
    }
    c.finish()
}

/// Inference-mode per-channel affine (shared by batch-norm eval).
pub fn check_channel_affine() -> Report {
    let mut c = Checker::new("channel_affine", Tolerance::new(2, 1.0e-6, 0.0));
    for (si, &(n, ch, inner)) in [(2usize, 3usize, 40usize), (1, 5, 9)].iter().enumerate() {
        let seed = 500 + si as u64;
        let x = adversarial_bounded(n * ch * inner, seed, ACC_CAP);
        let sc = adversarial_bounded(ch, seed ^ 1, ACC_CAP);
        let sh = adversarial_bounded(ch, seed ^ 2, ACC_CAP);
        let mut t = Tensor::from_vec(x.clone(), &[n, ch, inner]);
        rowops::channel_affine(&mut t, &sc, &sh);
        let want = refk::channel_affine_ref(n, ch, inner, &x, &sc, &sh);
        c.case(format!("[{n},{ch},{inner}] seed {seed}"));
        for (i, &got) in t.data().iter().enumerate() {
            c.check_f32(i, got, want.value[i], want.scale[i]);
        }
    }
    c.finish()
}

/// Element-wise activations (graph ops and the scalar helpers) against f64
/// twins, on the unbounded set plus explicit ±inf / NaN / saturation probes.
pub fn check_activations() -> Report {
    let mut c = Checker::new("activations", Tolerance::new(8, 1.0e-6, 0.0));
    let mut xs = adversarial(512, 600);
    xs.extend_from_slice(&[
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        100.0,
        -100.0,
        88.0, // expf saturation boundary
        -88.0,
    ]);
    let t = Tensor::from_vec(xs.clone(), &[xs.len()]);
    let mut g = Graph::new();
    let v = g.constant(t);
    type GraphOp = fn(&mut Graph, mfn_autodiff::Var) -> mfn_autodiff::Var;
    type RefOp = fn(f64) -> f64;
    let unary: [(&str, GraphOp, RefOp); 4] = [
        ("relu", Graph::relu, refk::relu_ref),
        ("softplus", Graph::softplus, refk::softplus_ref),
        ("tanh", Graph::tanh, refk::tanh_ref),
        ("abs", Graph::abs, refk::abs_ref),
    ];
    for (name, op, rf) in unary {
        c.case(format!("graph {name}"));
        let out = op(&mut g, v);
        for (i, (&got, &x)) in g.value(out).data().iter().zip(&xs).enumerate() {
            let want = rf(f64::from(x));
            c.check_f32_in(i, Some(f64::from(x)), got, want, want.abs().max(1.0));
        }
    }
    c.case("sigmoid_scalar");
    for (i, &x) in xs.iter().enumerate() {
        let want = refk::sigmoid_ref(f64::from(x));
        c.check_f32_in(i, Some(f64::from(x)), mfn_autodiff::sigmoid_scalar(x), want, 1.0);
    }
    c.case("softplus_scalar");
    for (i, &x) in xs.iter().enumerate() {
        let want = refk::softplus_ref(f64::from(x));
        c.check_f32_in(
            i,
            Some(f64::from(x)),
            mfn_autodiff::softplus_scalar(x),
            want,
            want.abs().max(1.0),
        );
    }
    c.finish()
}

/// Row- and channel-broadcast bias adds: a single f32 addition per element,
/// so the budget is 1 ULP (double-rounding ties only).
pub fn check_bias() -> Report {
    let mut c = Checker::new("bias_add", Tolerance::new(1, 0.0, 0.0));
    let (m, n) = (17, 33);
    let x = adversarial(m * n, 700);
    let b = adversarial(n, 701);
    let mut t = Tensor::from_vec(x.clone(), &[m, n]);
    rowops::add_bias_rows(&mut t, &b);
    let want = refk::bias_rows_ref(m, n, &x, &b);
    c.case("rows 17x33 seed 700");
    for (i, &got) in t.data().iter().enumerate() {
        c.check_f32(i, got, want.value[i], want.scale[i]);
    }
    let (n2, ch, inner) = (3, 5, 14);
    let x = adversarial(n2 * ch * inner, 702);
    let b = adversarial(ch, 703);
    let mut t = Tensor::from_vec(x.clone(), &[n2, ch, inner]);
    rowops::add_bias_channels(&mut t, &b);
    let want = refk::bias_channels_ref(n2, ch, inner, &x, &b);
    c.case("channels [3,5,14] seed 702");
    for (i, &got) in t.data().iter().enumerate() {
        c.check_f32(i, got, want.value[i], want.scale[i]);
    }
    c.finish()
}

/// Grouped weighted row blending (the continuous decoder's vertex blend),
/// including the pinned zero-weight NaN-masking contract.
pub fn check_blend_rows() -> Report {
    let mut c = Checker::new("blend_rows", Tolerance::new(4, 1.0e-6, 0.0));
    for (si, &(q, group, ch)) in
        [(7usize, 8usize, 5usize), (16, 2, 3), (4, 1, 9)].iter().enumerate()
    {
        let seed = 800 + si as u64;
        let rows = q * group;
        let x = adversarial_bounded(rows * ch, seed, ACC_CAP);
        let w = adversarial_bounded(rows, seed ^ 7, ACC_CAP);
        let t = Tensor::from_vec(x.clone(), &[rows, ch]);
        let got = rowops::blend_rows(&t, &w, group);
        let want = refk::blend_rows_ref(rows, ch, &x, &w, group);
        c.case(format!("q{q} g{group} c{ch} seed {seed}"));
        for (i, &g) in got.data().iter().enumerate() {
            c.check_f32(i, g, want.value[i], want.scale[i]);
        }
    }
    // Zero weight must mask a NaN row — both sides, by contract.
    let mut x = vec![1.0f32; 2 * 8 * 3];
    x[0] = f32::NAN; // row 0 of query 0
    let mut w = vec![0.125f32; 16];
    w[0] = 0.0;
    let t = Tensor::from_vec(x.clone(), &[16, 3]);
    let got = rowops::blend_rows(&t, &w, 8);
    let want = refk::blend_rows_ref(16, 3, &x, &w, 8);
    c.case("zero-weight NaN masking");
    for (i, &g) in got.data().iter().enumerate() {
        assert!(!want.value[i].is_nan(), "reference must mask the NaN row");
        c.check_f32(i, g, want.value[i], want.scale[i]);
    }
    c.finish()
}

/// Vertex gather from a latent grid: exact copies, bit-for-bit.
pub fn check_gather_rows() -> Report {
    let mut c = Checker::new("gather_rows", Tolerance::exact());
    let (n, ch, vol_dims, picks) = (2usize, 3usize, [2usize, 2, 3], 40usize);
    let vol: usize = vol_dims.iter().product();
    let x = adversarial(n * ch * vol, 900);
    let mut g = Lcg::new(901);
    // index[m] = batch*vol + spatial, per the gather_rows contract.
    let index: Vec<u32> = (0..picks).map(|_| g.index(n * vol) as u32).collect();
    let t = Tensor::from_vec(x.clone(), &[n, ch, vol_dims[0], vol_dims[1], vol_dims[2]]);
    let got = rowops::gather_rows(&t, &index);
    c.case("[2,3,2,2,3] pick 40 seed 900");
    for (r, &flat) in index.iter().enumerate() {
        let (ni, sp) = (flat as usize / vol, flat as usize % vol);
        for j in 0..ch {
            c.check_f32(
                r * ch + j,
                got.data()[r * ch + j],
                f64::from(x[(ni * ch + j) * vol + sp]),
                0.0,
            );
        }
    }
    c.finish()
}

/// Fused prefix + vertex gather (the decoder's no-grad input build): pure
/// data movement, so bit-for-bit against the unfused composition it
/// replaces — each output row must be the prefix slice followed by the
/// gathered latent row, exactly.
pub fn check_gather_concat_rows() -> Report {
    let mut c = Checker::new("gather_concat_rows", Tolerance::exact());
    let (n, ch, vol_dims, picks, k) = (2usize, 3usize, [2usize, 2, 3], 40usize, 3usize);
    let vol: usize = vol_dims.iter().product();
    let x = adversarial(n * ch * vol, 910);
    let prefix = adversarial(picks * k, 911);
    let mut g = Lcg::new(912);
    let index: Vec<u32> = (0..picks).map(|_| g.index(n * vol) as u32).collect();
    let t = Tensor::from_vec(x.clone(), &[n, ch, vol_dims[0], vol_dims[1], vol_dims[2]]);
    let got = rowops::gather_concat_rows(&t, &index, &prefix);
    c.case("[2,3,2,2,3] pick 40 prefix 3 seed 910");
    let w = k + ch;
    for (r, &flat) in index.iter().enumerate() {
        let (ni, sp) = (flat as usize / vol, flat as usize % vol);
        for j in 0..k {
            c.check_f32(r * w + j, got.data()[r * w + j], f64::from(prefix[r * k + j]), 0.0);
        }
        for j in 0..ch {
            c.check_f32(
                r * w + k + j,
                got.data()[r * w + k + j],
                f64::from(x[(ni * ch + j) * vol + sp]),
                0.0,
            );
        }
    }
    c.finish()
}

/// Max pooling: bit-exact vs the NaN-propagating reference, and the returned
/// argmax indices must point at the returned values.
pub fn check_maxpool() -> Report {
    let mut c = Checker::new("maxpool3d", Tolerance::exact());
    let (n, ch, spatial, factors) = (2usize, 3usize, [4usize, 4, 6], [2usize, 2, 3]);
    let vol: usize = spatial.iter().product();
    let mut x = adversarial(n * ch * vol, 1000);
    // Poison a few windows, including one that is all-NaN.
    x[5] = f32::NAN;
    x[vol + 1] = f32::NAN;
    for v in x.iter_mut().take(spatial[1] * spatial[2]).step_by(3) {
        *v = f32::NAN;
    }
    let t = Tensor::from_vec(x.clone(), &[n, ch, spatial[0], spatial[1], spatial[2]]);
    let (got, idx) = mfn_tensor::maxpool3d(&t, factors);
    let want = refk::maxpool3d_ref(n * ch, spatial, factors, &x);
    c.case("[2,3,4,4,6]/[2,2,3] seed 1000 + NaN windows");
    for (i, &g) in got.data().iter().enumerate() {
        c.check_f32(i, g, want[i], 0.0);
    }
    c.case("argmax indices point at returned values");
    for (i, &g) in got.data().iter().enumerate() {
        c.check_f32(i, g, f64::from(x[idx[i] as usize]), 0.0);
    }
    c.finish()
}

/// Nearest-neighbour upsampling: exact replication.
pub fn check_upsample() -> Report {
    let mut c = Checker::new("upsample_nearest3d", Tolerance::exact());
    let (n, ch, spatial, factors) = (2usize, 2usize, [2usize, 3, 4], [3usize, 2, 2]);
    let vol: usize = spatial.iter().product();
    let x = adversarial(n * ch * vol, 1100);
    let t = Tensor::from_vec(x.clone(), &[n, ch, spatial[0], spatial[1], spatial[2]]);
    let got = mfn_tensor::upsample_nearest3d(&t, factors);
    let want = refk::upsample_nearest3d_ref(n * ch, spatial, factors, &x);
    c.case("[2,2,2,3,4]x[3,2,2] seed 1100");
    for (i, &g) in got.data().iter().enumerate() {
        c.check_f32(i, g, want[i], 0.0);
    }
    c.finish()
}

/// Radix-2 FFT (complex forward, inverse round-trip, real-input plan)
/// against the naive O(n²) DFT in f64.
pub fn check_fft() -> Report {
    let mut c = Checker::new("fft", Tolerance::new(0, 1.0e-12, 0.0));
    for (si, &n) in [1usize, 2, 8, 64].iter().enumerate() {
        let seed = 1200 + si as u64;
        let re: Vec<f64> =
            adversarial_bounded(n, seed, ACC_CAP).iter().map(|&v| f64::from(v)).collect();
        let im: Vec<f64> =
            adversarial_bounded(n, seed ^ 3, ACC_CAP).iter().map(|&v| f64::from(v)).collect();
        let plan = FftPlan::new(n);
        let mut data: Vec<Complex> =
            re.iter().zip(&im).map(|(&r, &i)| Complex::new(r, i)).collect();
        plan.forward(&mut data);
        let (want, mag) = refk::dft_ref(&re, &im);
        c.case(format!("forward n{n} seed {seed}"));
        for (k, z) in data.iter().enumerate() {
            c.check_f64(2 * k, z.re, want[k].0, mag);
            c.check_f64(2 * k + 1, z.im, want[k].1, mag);
        }
        c.case(format!("inverse round-trip n{n} seed {seed}"));
        plan.inverse(&mut data);
        for (j, z) in data.iter().enumerate() {
            c.check_f64(2 * j, z.re, re[j], mag);
            c.check_f64(2 * j + 1, z.im, im[j], mag);
        }
        if n >= 2 {
            let rplan = RealFftPlan::new(n);
            let (rwant, rmag) = refk::real_dft_ref(&re);
            c.case(format!("real forward n{n} seed {seed}"));
            for (k, z) in rplan.forward(&re).iter().enumerate() {
                c.check_f64(2 * k, z.re, rwant[k].0, rmag);
                c.check_f64(2 * k + 1, z.im, rwant[k].1, rmag);
            }
        }
    }
    c.finish()
}

/// Energy-spectrum binning vs the naive twin, on even, odd and
/// non-power-of-two widths, plus Parseval against the physical energy.
pub fn check_spectrum() -> Report {
    let mut c = Checker::new("energy_spectrum_x", Tolerance::new(0, 1.0e-11, 0.0));
    for (si, &(nz, nx)) in
        [(3usize, 8usize), (2, 16), (2, 12), (2, 7), (3, 9), (1, 1)].iter().enumerate()
    {
        let seed = 1300 + si as u64;
        let u: Vec<f64> =
            adversarial_bounded(nz * nx, seed, 1.0e6).iter().map(|&v| f64::from(v)).collect();
        let w: Vec<f64> =
            adversarial_bounded(nz * nx, seed ^ 5, 1.0e6).iter().map(|&v| f64::from(v)).collect();
        let got = energy_spectrum_x(&[&u, &w], nz, nx, 2.0);
        let want = refk::energy_spectrum_x_ref(&[&u, &w], nz, nx);
        c.case(format!("nz{nz} nx{nx} seed {seed}"));
        for (k, &e) in got.energy.iter().enumerate() {
            c.check_f64(k, e, want.value[k], want.scale[k]);
        }
        // Parseval: Σ E(k) == 0.5·mean(u² + w²), ULP-budget tight.
        let phys = 0.5
            * (u.iter().map(|v| v * v).sum::<f64>() + w.iter().map(|v| v * v).sum::<f64>())
            / (nz * nx) as f64;
        c.case(format!("Parseval nz{nz} nx{nx}"));
        c.check_f64(0, got.energy.iter().sum::<f64>(), phys, phys.abs());
    }
    c.finish()
}

/// One report per solver stencil against its f64 twin.
fn check_solver_stencil(
    kernel: &'static str,
    tol: Tolerance,
    run: impl Fn(&Domain, &[f64]) -> Vec<f64>,
    reference: impl Fn(&Domain, &[f64]) -> refk::RefOut,
) -> Report {
    let mut c = Checker::new(kernel, tol);
    for (si, &(nx, nz)) in [(8usize, 5usize), (16, 9), (8, 4)].iter().enumerate() {
        let seed = 1400 + si as u64;
        let dom = Domain::new(nx, nz, 3.7, 1.3);
        let f: Vec<f64> =
            adversarial_bounded(nz * nx, seed, 1.0e6).iter().map(|&v| f64::from(v)).collect();
        let got = run(&dom, &f);
        let want = reference(&dom, &f);
        c.case(format!("nx{nx} nz{nz} seed {seed}"));
        for (i, &g) in got.iter().enumerate() {
            c.check_f64(i, g, want.value[i], want.scale[i]);
        }
    }
    c.finish()
}

/// All solver stencils: spectral x-derivatives, FD z-derivatives, Laplacian
/// and dealiasing.
pub fn check_solver() -> Vec<Report> {
    let spectral = Tolerance::new(0, 1.0e-11, 0.0);
    let fd = Tolerance::new(4, 1.0e-12, 0.0);
    vec![
        check_solver_stencil("solver_ddx", spectral, ddx, |d, f| {
            refk::ddx_ref(d.nz, d.nx, d.lx, f)
        }),
        check_solver_stencil("solver_d2dx2", spectral, d2dx2, |d, f| {
            refk::d2dx2_ref(d.nz, d.nx, d.lx, f)
        }),
        check_solver_stencil("solver_ddz", fd, ddz, |d, f| refk::ddz_ref(d.nz, d.nx, d.dz(), f)),
        check_solver_stencil("solver_d2dz2", fd, d2dz2, |d, f| {
            refk::d2dz2_ref(d.nz, d.nx, d.dz(), f)
        }),
        check_solver_stencil("solver_laplacian", spectral, laplacian, |d, f| {
            refk::laplacian_ref(d.nz, d.nx, d.lx, d.dz(), f)
        }),
        check_solver_stencil(
            "solver_dealias_x",
            spectral,
            |d, f| {
                let mut g = f.to_vec();
                dealias_x(d, &mut g);
                g
            },
            |d, f| refk::dealias_x_ref(d.nz, d.nx, f),
        ),
    ]
}

fn synthetic_dataset(nt: usize, nz: usize, nx: usize, seed: u64) -> Dataset {
    let meta = DatasetMeta {
        nt,
        nz,
        nx,
        lx: 1.6,
        lz: 1.0,
        duration: 0.9,
        ra: 1.0e5,
        pr: 1.0,
        seed: 0,
        channel_mean: [0.0; CHANNELS],
        channel_std: [1.0; CHANNELS],
    };
    Dataset::from_parts(meta, adversarial_bounded(nt * CHANNELS * nz * nx, seed, 1.0e3))
}

/// Space-time trilinear sampling vs the all-f64 twin: on-grid, generic
/// off-grid, clamped out-of-range and periodic-wrap queries.
pub fn check_trilinear() -> Report {
    let mut c = Checker::new("sample_trilinear", Tolerance::new(8, 1.0e-5, 0.0));
    let ds = synthetic_dataset(4, 5, 8, 1500);
    let mut g = Lcg::new(1501);
    let mut queries: Vec<(f64, f64, f64)> = Vec::new();
    for ft in 0..4 {
        queries.push((ft as f64 * ds.dt(), ds.dz() * 2.0, ds.dx() * 3.0)); // on-grid in t
    }
    for _ in 0..48 {
        queries.push((
            f64::from(g.uniform()) * 1.2, // includes t < 0 (clamped)
            f64::from(g.uniform()) * 1.4, // includes z out of range
            f64::from(g.uniform()) * 4.0, // several periods, negative wraps
        ));
    }
    for (qi, &(t, z, x)) in queries.iter().enumerate() {
        c.case(format!("query {qi} ({t:.4},{z:.4},{x:.4})"));
        let got = mfn_data::sample_trilinear(&ds, t, z, x);
        let (want, scale) = refk::sample_trilinear_ref(&ds, t, z, x);
        for ch in 0..CHANNELS {
            c.check_f32(ch, got[ch], want[ch], scale[ch]);
        }
    }
    c.finish()
}

/// Strided downsampling: every LR sample is an exact copy of its HR source.
pub fn check_downsample() -> Report {
    let mut c = Checker::new("downsample", Tolerance::exact());
    let hr = synthetic_dataset(5, 9, 16, 1600);
    let lr = mfn_data::downsample(&hr, 2, 2);
    c.case("5x9x16 / (2,2) seed 1600");
    let mut i = 0usize;
    for f in 0..lr.meta.nt {
        for ch in 0..CHANNELS {
            for j in 0..lr.meta.nz {
                for k in 0..lr.meta.nx {
                    c.check_f32(
                        i,
                        lr.at(f, ch, j, k),
                        f64::from(hr.at(f * 2, ch, j * 2, k * 2)),
                        0.0,
                    );
                    i += 1;
                }
            }
        }
    }
    c.finish()
}

/// The serving-side test-time refinement objective vs its all-f64 twin: the
/// FD-stencil equation residual (`equation_loss_at_points`) as a value, and
/// its latent gradient (reverse-mode, latent as the only leaf) against f64
/// central differences of the twin. This is the descent direction
/// `refine_latent` takes at serve time — a biased gradient silently degrades
/// refinement quality without failing any exactness test, so it gets an
/// oracle row of its own.
pub fn check_refine_grad() -> Report {
    use rand::SeedableRng;
    let mut chk = Checker::new("refine_grad", Tolerance::new(8, 1.0e-3, 0.0));
    let mut store = ParamStore::new();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1700);
    let c = 5usize;
    let mlp = Mlp::new(&mut store, "dec", &[3 + c, 12, 8, 4], Activation::Softplus, &mut rng);
    let dec = ContinuousDecoder::new(mlp, c);
    let grid = [3usize, 4, 4];
    let latent = Tensor::randn(&[1, c, grid[0], grid[1], grid[2]], 0.5, &mut rng);
    let h_local = 0.05f32;
    let extent = [1.0f64, 0.5, 2.0];
    let params = RbcParamsF32::from_ra_pr(1.0e5, 1.0);
    // Non-identity statistics so the denormalization path is exercised.
    let stats = ChannelStats { mean: [0.1, -0.2, 0.05, 0.0], std: [1.5, 0.7, 1.2, 0.9] };
    let mut g = Lcg::new(1701);
    let points: Vec<(usize, [f32; 3])> = (0..6)
        .map(|_| {
            // Interior points, away from the stencil clamp band.
            let mut coord = || 0.1 + 0.4 * (g.uniform() + 1.0);
            (0usize, [coord(), coord(), coord()])
        })
        .collect();

    // Optimized side: the f32 tape, latent as the only gradient leaf —
    // exactly what `mfn_core::refine_latent` evaluates per step.
    let mut graph = Graph::new();
    let leaf = graph.leaf_with_grad(latent.clone());
    let loss = equation_loss_at_points(
        &mut graph,
        &store,
        &dec,
        leaf,
        &points,
        grid,
        extent,
        params,
        stats,
        h_local,
        ConstraintSet::ALL,
    );
    let got_value = graph.value(loss).item();
    graph.backward(loss);
    let got_grad = graph.grad(leaf).clone();

    // Reference side: widen everything once, then pure scalar f64.
    let layers: Vec<refk::MlpLayerRef> = dec
        .mlp
        .layers
        .iter()
        .map(|l| {
            let w = store.get(l.weight);
            refk::MlpLayerRef {
                weight: w.data().iter().map(|&v| f64::from(v)).collect(),
                bias: store.get(l.bias).data().iter().map(|&v| f64::from(v)).collect(),
                in_features: w.dims()[1],
                out_features: w.dims()[0],
            }
        })
        .collect();
    let lat64: Vec<f64> = latent.data().iter().map(|&v| f64::from(v)).collect();
    let pts64: Vec<[f64; 3]> =
        points.iter().map(|&(_, q)| [f64::from(q[0]), f64::from(q[1]), f64::from(q[2])]).collect();
    // The same dimensionless coefficients the tape multiplies by (f32
    // constants, widened), not a fresh f64 computation of them.
    let (p_star, r_star) = (f64::from(params.p_star), f64::from(params.r_star));
    let mean64 = stats.mean.map(f64::from);
    let std64 = stats.std.map(f64::from);

    let (want_value, value_scale) = refk::refine_objective_ref(
        &layers,
        &lat64,
        c,
        grid,
        &pts64,
        extent,
        p_star,
        r_star,
        mean64,
        std64,
        f64::from(h_local),
    );
    chk.case("equation residual value (6 pts, grid 3x4x4, seed 1700)");
    chk.check_f32(0, got_value, want_value, value_scale);

    let want_grad = refk::refine_latent_grad_ref(
        &layers,
        &lat64,
        c,
        grid,
        &pts64,
        extent,
        p_star,
        r_star,
        mean64,
        std64,
        f64::from(h_local),
        1.0e-5,
    );
    chk.case("latent gradient vs f64 central differences");
    for (i, &got) in got_grad.data().iter().enumerate() {
        chk.check_f32(i, got, want_grad.value[i], want_grad.scale[i]);
    }
    chk.finish()
}

/// Runs every kernel check, in dependency order (primitives first).
pub fn run_all() -> Vec<Report> {
    let mut reports = vec![
        check_gemm(),
        check_bf16_quantize(),
        check_bf16_precision(),
        check_gemm_bf16(),
        check_gemm_bf16_compute(),
        check_bf16_compute_routes(),
        check_conv3d(),
        check_conv3d_grad_input(),
        check_conv3d_grad_weight(),
        check_batch_norm(),
        check_channel_affine(),
        check_activations(),
        check_bias(),
        check_blend_rows(),
        check_gather_rows(),
        check_gather_concat_rows(),
        check_maxpool(),
        check_upsample(),
        check_fft(),
        check_spectrum(),
    ];
    reports.extend(check_solver());
    reports.push(check_trilinear());
    reports.push(check_downsample());
    reports.push(check_refine_grad());
    reports
}

/// True iff every report passed.
pub fn all_passed(reports: &[Report]) -> bool {
    reports.iter().all(Report::passed)
}
