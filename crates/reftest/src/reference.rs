//! Naive, obviously-correct scalar reference kernels, computed in f64.
//!
//! Each reference returns a [`RefOut`]: the f64 value of every output
//! element *and* a per-element magnitude bound (`scale`), accumulated along
//! the same data path (e.g. `Σ|aᵢ||bᵢ|` for a dot product). The bound is
//! what lets the harness distinguish "different but valid summation order"
//! from "wrong answer" — see `compare.rs`.
//!
//! Style rules for this module: no blocking, no early exits the optimized
//! kernel doesn't share, one loop nest per mathematical definition. A
//! reference twin must be reviewable by eye against the paper formula.

use mfn_tensor::MatLayout;

/// Reference output: per-element f64 value plus magnitude bound.
pub struct RefOut {
    /// Exact (f64) value per output element.
    pub value: Vec<f64>,
    /// Per-element magnitude bound: the sum of absolute values of every term
    /// that entered the element's accumulation.
    pub scale: Vec<f64>,
}

// ---- dense linear algebra ----

/// `C = op(A)·op(B)` by the definition, in f64. Layout semantics match
/// `mfn_tensor::gemm`: `Transposed` means `A` is stored `[k, m]` / `B` is
/// stored `[n, k]`.
pub fn gemm_ref(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_layout: MatLayout,
    b: &[f32],
    b_layout: MatLayout,
) -> RefOut {
    let at = |i: usize, p: usize| -> f64 {
        f64::from(match a_layout {
            MatLayout::Normal => a[i * k + p],
            MatLayout::Transposed => a[p * m + i],
        })
    };
    let bt = |p: usize, j: usize| -> f64 {
        f64::from(match b_layout {
            MatLayout::Normal => b[p * n + j],
            MatLayout::Transposed => b[j * k + p],
        })
    };
    let mut value = vec![0.0f64; m * n];
    let mut scale = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            let mut mag = 0.0f64;
            for p in 0..k {
                let t = at(i, p) * bt(p, j);
                acc += t;
                mag += t.abs();
            }
            value[i * n + j] = acc;
            scale[i * n + j] = mag;
        }
    }
    RefOut { value, scale }
}

/// bf16 quantization by explicit round-to-nearest-even: compare the
/// discarded low 16 bits against the halfway point, ties to the even kept
/// mantissa. Deliberately a different construction from the production
/// adder trick (`bits + 0x7FFF + lsb`) in `mfn_tensor::bf16`, so the two
/// can only agree by both being RNE. NaN keeps its sign and top payload
/// bits with the quiet bit forced; finite inputs whose rounding would carry
/// into the inf pattern saturate to the largest finite bf16 instead — only
/// a true ±inf input produces ±inf, matching the kernel's pinned contract.
pub fn bf16_rne_ref(x: f32) -> u16 {
    let bits = x.to_bits();
    let hi = (bits >> 16) as u16;
    if x.is_nan() {
        return hi | 0x0040;
    }
    if x.is_infinite() {
        return hi;
    }
    let q = match (bits & 0xFFFF).cmp(&0x8000) {
        std::cmp::Ordering::Less => hi,
        std::cmp::Ordering::Greater => hi.wrapping_add(1),
        std::cmp::Ordering::Equal => hi + (hi & 1), // tie: round to even
    };
    if q & 0x7F80 == 0x7F80 {
        (q & 0x8000) | 0x7F7F // finite overflow saturates below inf
    } else {
        q
    }
}

// ---- convolution family ----

/// Forward conv3d by the definition: stride 1, same zero padding,
/// out-of-bounds taps contribute nothing (matching the bounds-skip in the
/// optimized kernel — padding never multiplies the weight).
#[allow(clippy::too_many_arguments)] // mirrors the kernel's full shape bundle
pub fn conv3d_ref(
    n: usize,
    cin: usize,
    cout: usize,
    spatial: [usize; 3],
    kernel: [usize; 3],
    x: &[f32],
    w: &[f32],
) -> RefOut {
    let [sd, sh, sw] = spatial;
    let [kd, kh, kw] = kernel;
    let (pd, ph, pw) = (kd / 2, kh / 2, kw / 2);
    let vol = sd * sh * sw;
    let mut value = vec![0.0f64; n * cout * vol];
    let mut scale = vec![0.0f64; n * cout * vol];
    for ni in 0..n {
        for co in 0..cout {
            for d in 0..sd {
                for h in 0..sh {
                    for wi in 0..sw {
                        let mut acc = 0.0f64;
                        let mut mag = 0.0f64;
                        for ci in 0..cin {
                            for zd in 0..kd {
                                for zh in 0..kh {
                                    for zw in 0..kw {
                                        // input index = out + tap − pad; skip if outside.
                                        let (id, ih, iw) = (
                                            (d + zd).wrapping_sub(pd),
                                            (h + zh).wrapping_sub(ph),
                                            (wi + zw).wrapping_sub(pw),
                                        );
                                        if id >= sd || ih >= sh || iw >= sw {
                                            continue;
                                        }
                                        let xv = f64::from(
                                            x[(((ni * cin + ci) * sd + id) * sh + ih) * sw + iw],
                                        );
                                        let wv = f64::from(
                                            w[(((co * cin + ci) * kd + zd) * kh + zh) * kw + zw],
                                        );
                                        acc += xv * wv;
                                        mag += (xv * wv).abs();
                                    }
                                }
                            }
                        }
                        let o = (((ni * cout + co) * sd + d) * sh + h) * sw + wi;
                        value[o] = acc;
                        scale[o] = mag;
                    }
                }
            }
        }
    }
    RefOut { value, scale }
}

/// Gradient of conv3d w.r.t. its input, by the definition:
/// `gin[n,ci,p] = Σ_{co,z} w[co,ci,z] · gout[n,co,p − z + pad]`.
#[allow(clippy::too_many_arguments)]
pub fn conv3d_grad_input_ref(
    n: usize,
    cin: usize,
    cout: usize,
    spatial: [usize; 3],
    kernel: [usize; 3],
    gout: &[f32],
    w: &[f32],
) -> RefOut {
    let [sd, sh, sw] = spatial;
    let [kd, kh, kw] = kernel;
    let (pd, ph, pw) = (kd / 2, kh / 2, kw / 2);
    let vol = sd * sh * sw;
    let mut value = vec![0.0f64; n * cin * vol];
    let mut scale = vec![0.0f64; n * cin * vol];
    for ni in 0..n {
        for ci in 0..cin {
            for id in 0..sd {
                for ih in 0..sh {
                    for iw in 0..sw {
                        let mut acc = 0.0f64;
                        let mut mag = 0.0f64;
                        for co in 0..cout {
                            for zd in 0..kd {
                                for zh in 0..kh {
                                    for zw in 0..kw {
                                        let (od, oh, ow) = (
                                            (id + pd).wrapping_sub(zd),
                                            (ih + ph).wrapping_sub(zh),
                                            (iw + pw).wrapping_sub(zw),
                                        );
                                        if od >= sd || oh >= sh || ow >= sw {
                                            continue;
                                        }
                                        let gv = f64::from(
                                            gout[(((ni * cout + co) * sd + od) * sh + oh) * sw
                                                + ow],
                                        );
                                        let wv = f64::from(
                                            w[(((co * cin + ci) * kd + zd) * kh + zh) * kw + zw],
                                        );
                                        acc += gv * wv;
                                        mag += (gv * wv).abs();
                                    }
                                }
                            }
                        }
                        let o = (((ni * cin + ci) * sd + id) * sh + ih) * sw + iw;
                        value[o] = acc;
                        scale[o] = mag;
                    }
                }
            }
        }
    }
    RefOut { value, scale }
}

/// Gradient of conv3d w.r.t. its weight, by the definition:
/// `gw[co,ci,z] = Σ_{n,p} x[n,ci,p + z − pad] · gout[n,co,p]`.
#[allow(clippy::too_many_arguments)]
pub fn conv3d_grad_weight_ref(
    n: usize,
    cin: usize,
    cout: usize,
    spatial: [usize; 3],
    kernel: [usize; 3],
    x: &[f32],
    gout: &[f32],
) -> RefOut {
    let [sd, sh, sw] = spatial;
    let [kd, kh, kw] = kernel;
    let (pd, ph, pw) = (kd / 2, kh / 2, kw / 2);
    let kvol = kd * kh * kw;
    let mut value = vec![0.0f64; cout * cin * kvol];
    let mut scale = vec![0.0f64; cout * cin * kvol];
    for co in 0..cout {
        for ci in 0..cin {
            for zd in 0..kd {
                for zh in 0..kh {
                    for zw in 0..kw {
                        let mut acc = 0.0f64;
                        let mut mag = 0.0f64;
                        for ni in 0..n {
                            for d in 0..sd {
                                for h in 0..sh {
                                    for wi in 0..sw {
                                        let (id, ih, iw) = (
                                            (d + zd).wrapping_sub(pd),
                                            (h + zh).wrapping_sub(ph),
                                            (wi + zw).wrapping_sub(pw),
                                        );
                                        if id >= sd || ih >= sh || iw >= sw {
                                            continue;
                                        }
                                        let xv = f64::from(
                                            x[(((ni * cin + ci) * sd + id) * sh + ih) * sw + iw],
                                        );
                                        let gv = f64::from(
                                            gout[(((ni * cout + co) * sd + d) * sh + h) * sw + wi],
                                        );
                                        acc += xv * gv;
                                        mag += (xv * gv).abs();
                                    }
                                }
                            }
                        }
                        let o = ((co * cin + ci) * kd + zd) * kh * kw + zh * kw + zw;
                        value[o] = acc;
                        scale[o] = mag;
                    }
                }
            }
        }
    }
    RefOut { value, scale }
}

/// NaN-propagating max pool by the definition: the max of a window that
/// contains a NaN is NaN.
pub fn maxpool3d_ref(nc: usize, spatial: [usize; 3], factors: [usize; 3], x: &[f32]) -> Vec<f64> {
    let [d, h, w] = spatial;
    let [fd, fh, fw] = factors;
    let (od, oh, ow) = (d / fd, h / fh, w / fw);
    let mut out = vec![0.0f64; nc * od * oh * ow];
    for slab in 0..nc {
        let base = slab * d * h * w;
        for zd in 0..od {
            for zh in 0..oh {
                for zw in 0..ow {
                    let mut best = f64::NEG_INFINITY;
                    let mut poisoned = false;
                    for dd in 0..fd {
                        for hh in 0..fh {
                            for ww in 0..fw {
                                let v = f64::from(
                                    x[base
                                        + ((zd * fd + dd) * h + (zh * fh + hh)) * w
                                        + (zw * fw + ww)],
                                );
                                if v.is_nan() {
                                    poisoned = true;
                                } else if v > best {
                                    best = v;
                                }
                            }
                        }
                    }
                    out[((slab * od + zd) * oh + zh) * ow + zw] =
                        if poisoned { f64::NAN } else { best };
                }
            }
        }
    }
    out
}

// ---- normalization & row ops ----

/// Training-mode batch norm by the definition, entirely in f64: biased batch
/// statistics over all axes but the channel, `y = (x−μ)·(σ²+ε)^−½·γ + β`.
pub fn batchnorm_train_ref(
    n: usize,
    c: usize,
    inner: usize,
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f64,
) -> RefOut {
    let count = (n * inner) as f64;
    let mut mean = vec![0.0f64; c];
    let mut var = vec![0.0f64; c];
    for ni in 0..n {
        for ci in 0..c {
            for ki in 0..inner {
                mean[ci] += f64::from(x[(ni * c + ci) * inner + ki]);
            }
        }
    }
    for m in mean.iter_mut() {
        *m /= count;
    }
    for ni in 0..n {
        for ci in 0..c {
            for ki in 0..inner {
                let d = f64::from(x[(ni * c + ci) * inner + ki]) - mean[ci];
                var[ci] += d * d;
            }
        }
    }
    for v in var.iter_mut() {
        *v /= count;
    }
    let mut value = vec![0.0f64; x.len()];
    let mut scale = vec![0.0f64; x.len()];
    for ni in 0..n {
        for ci in 0..c {
            let invstd = 1.0 / (var[ci] + eps).sqrt();
            let (g, b) = (f64::from(gamma[ci]), f64::from(beta[ci]));
            for ki in 0..inner {
                let o = (ni * c + ci) * inner + ki;
                let centered = f64::from(x[o]) - mean[ci];
                value[o] = centered * invstd * g + b;
                scale[o] = (centered * invstd * g).abs()
                    + b.abs()
                    + (f64::from(x[o]).abs() + mean[ci].abs()) * invstd * g.abs();
            }
        }
    }
    RefOut { value, scale }
}

/// Per-channel affine `y = x·scale[c] + shift[c]` (inference-mode batch
/// norm) by the definition.
pub fn channel_affine_ref(
    n: usize,
    c: usize,
    inner: usize,
    x: &[f32],
    sc: &[f32],
    sh: &[f32],
) -> RefOut {
    let mut value = vec![0.0f64; x.len()];
    let mut scale = vec![0.0f64; x.len()];
    for ni in 0..n {
        for ci in 0..c {
            for ki in 0..inner {
                let o = (ni * c + ci) * inner + ki;
                let t = f64::from(x[o]) * f64::from(sc[ci]);
                value[o] = t + f64::from(sh[ci]);
                scale[o] = t.abs() + f64::from(sh[ci]).abs();
            }
        }
    }
    RefOut { value, scale }
}

/// Row-broadcast bias add `y[i,j] = x[i,j] + b[j]` by the definition.
pub fn bias_rows_ref(m: usize, n: usize, x: &[f32], b: &[f32]) -> RefOut {
    let mut value = vec![0.0f64; m * n];
    let mut scale = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let (xv, bv) = (f64::from(x[i * n + j]), f64::from(b[j]));
            value[i * n + j] = xv + bv;
            scale[i * n + j] = xv.abs() + bv.abs();
        }
    }
    RefOut { value, scale }
}

/// Channel-broadcast bias add over `[N, C, inner]` by the definition.
pub fn bias_channels_ref(n: usize, c: usize, inner: usize, x: &[f32], b: &[f32]) -> RefOut {
    let mut value = vec![0.0f64; x.len()];
    let mut scale = vec![0.0f64; x.len()];
    for ni in 0..n {
        for (ci, &bc) in b.iter().enumerate().take(c) {
            for ki in 0..inner {
                let o = (ni * c + ci) * inner + ki;
                let (xv, bv) = (f64::from(x[o]), f64::from(bc));
                value[o] = xv + bv;
                scale[o] = xv.abs() + bv.abs();
            }
        }
    }
    RefOut { value, scale }
}

/// Vertex blending by the definition: `out[q,ch] = Σ_v w[q·g+v]·x[q·g+v,ch]`,
/// skipping exactly-zero weights. The skip is part of the kernel's pinned
/// contract — a zero trilinear weight must mask a NaN vertex row (vertices
/// outside the cell are never touched), so the reference twin mirrors it.
pub fn blend_rows_ref(rows: usize, c: usize, x: &[f32], weights: &[f32], group: usize) -> RefOut {
    let q = rows / group;
    let mut value = vec![0.0f64; q * c];
    let mut scale = vec![0.0f64; q * c];
    for qi in 0..q {
        for ch in 0..c {
            let mut acc = 0.0f64;
            let mut mag = 0.0f64;
            for v in 0..group {
                let w = f64::from(weights[qi * group + v]);
                if w == 0.0 {
                    continue;
                }
                let t = w * f64::from(x[(qi * group + v) * c + ch]);
                acc += t;
                mag += t.abs();
            }
            value[qi * c + ch] = acc;
            scale[qi * c + ch] = mag;
        }
    }
    RefOut { value, scale }
}

// ---- element-wise activations ----

/// `max(x, 0)` with the f32 `max` NaN convention (`max(NaN, 0) = 0`).
pub fn relu_ref(x: f64) -> f64 {
    x.max(0.0)
}

/// Numerically stable softplus `ln(1 + eˣ)` in f64, valid for all x.
pub fn softplus_ref(x: f64) -> f64 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// f64 tanh.
pub fn tanh_ref(x: f64) -> f64 {
    x.tanh()
}

/// Numerically stable logistic sigmoid in f64.
pub fn sigmoid_ref(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// `|x|`.
pub fn abs_ref(x: f64) -> f64 {
    x.abs()
}

// ---- Fourier / spectral ----

/// Naive O(n²) complex DFT: `X[k] = Σ_j x[j]·e^{−2πi·jk/n}`, plus the
/// per-bin magnitude bound `Σ_j |x_j|`.
pub fn dft_ref(re: &[f64], im: &[f64]) -> (Vec<(f64, f64)>, f64) {
    let n = re.len();
    let mut out = vec![(0.0f64, 0.0f64); n];
    let mut mag = 0.0f64;
    for j in 0..n {
        mag += (re[j] * re[j] + im[j] * im[j]).sqrt();
    }
    for (k, o) in out.iter_mut().enumerate() {
        let (mut ar, mut ai) = (0.0f64, 0.0f64);
        for j in 0..n {
            let theta = -2.0 * std::f64::consts::PI * ((j * k) % n) as f64 / n as f64;
            let (s, c) = theta.sin_cos();
            ar += re[j] * c - im[j] * s;
            ai += re[j] * s + im[j] * c;
        }
        *o = (ar, ai);
    }
    (out, mag)
}

/// Naive inverse DFT with 1/n normalization (the plan's convention).
pub fn idft_ref(spec: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = spec.len();
    let mut out = vec![(0.0f64, 0.0f64); n];
    for (j, o) in out.iter_mut().enumerate() {
        let (mut ar, mut ai) = (0.0f64, 0.0f64);
        for (k, &(xr, xi)) in spec.iter().enumerate() {
            let theta = 2.0 * std::f64::consts::PI * ((j * k) % n) as f64 / n as f64;
            let (s, c) = theta.sin_cos();
            ar += xr * c - xi * s;
            ai += xr * s + xi * c;
        }
        *o = (ar / n as f64, ai / n as f64);
    }
    out
}

/// The first `n/2 + 1` bins of the DFT of a real row (the `RealFftPlan`
/// output convention), plus the shared magnitude bound.
pub fn real_dft_ref(row: &[f64]) -> (Vec<(f64, f64)>, f64) {
    let im = vec![0.0f64; row.len()];
    let (full, mag) = dft_ref(row, &im);
    let keep = row.len() / 2 + 1;
    (full.into_iter().take(keep).collect(), mag)
}

/// Reference x-direction energy spectrum: naive real DFT per z-row, binned
/// with the Hermitian multiplicity rule — DC once, the Nyquist bin (present
/// only for even `nx`) once, every other mode twice. Returns per-bin energy
/// and a per-bin magnitude bound.
pub fn energy_spectrum_x_ref(components: &[&[f64]], nz: usize, nx: usize) -> RefOut {
    let bins = nx / 2 + 1;
    let n2 = (nx * nx) as f64;
    let mut value = vec![0.0f64; bins];
    let mut scale = vec![0.0f64; bins];
    for comp in components {
        assert_eq!(comp.len(), nz * nx);
        for row in comp.chunks(nx) {
            let (spec, mag) = real_dft_ref(row);
            for (k, &(zr, zi)) in spec.iter().enumerate() {
                let mult = if k == 0 || 2 * k == nx { 1.0 } else { 2.0 };
                value[k] += 0.5 * mult * (zr * zr + zi * zi) / n2;
                scale[k] += 0.5 * mult * mag * mag / n2;
            }
        }
    }
    // Production averages over the z-rows (components are summed).
    for v in value.iter_mut().chain(scale.iter_mut()) {
        *v /= nz as f64;
    }
    RefOut { value, scale }
}

// ---- solver finite-difference / spectral stencils ----

/// Full-spectrum signed wavenumber for mode `k` of `n`, matching the
/// half-spectrum mapping in `mfn_solver::ops`: positive for `k < n/2`,
/// negative mirror for `k > n/2`.
fn full_wavenumber(k: usize, n: usize, lx: f64) -> f64 {
    let tau = 2.0 * std::f64::consts::PI / lx;
    // `2*k == n` is the Nyquist mode; it keeps the positive sign here and
    // callers decide whether to zero it.
    if 2 * k <= n {
        tau * k as f64
    } else {
        -tau * (n - k) as f64
    }
}

/// Spectral ∂/∂x per z-row via the naive DFT: multiply by `i·κ`, Nyquist
/// zeroed (matching `mfn_solver::ops::ddx`).
pub fn ddx_ref(nz: usize, nx: usize, lx: f64, f: &[f64]) -> RefOut {
    spectral_x_ref(nz, nx, f, |k| {
        if 2 * k == nx {
            (0.0, 0.0)
        } else {
            (0.0, full_wavenumber(k, nx, lx)) // multiply by i·κ
        }
    })
}

/// Spectral ∂²/∂x² per z-row via the naive DFT: multiply by `−κ²` (Nyquist
/// included, matching `mfn_solver::ops::d2dx2`).
pub fn d2dx2_ref(nz: usize, nx: usize, lx: f64, f: &[f64]) -> RefOut {
    spectral_x_ref(nz, nx, f, |k| {
        let kk = full_wavenumber(k, nx, lx);
        (-kk * kk, 0.0)
    })
}

/// Dealiasing by the definition: zero every mode with `min(k, n−k)` above
/// `nx/3`, reconstruct.
pub fn dealias_x_ref(nz: usize, nx: usize, f: &[f64]) -> RefOut {
    let cutoff = nx / 3;
    spectral_x_ref(nz, nx, f, |k| if k.min(nx - k) > cutoff { (0.0, 0.0) } else { (1.0, 0.0) })
}

/// Shared spectral pipeline: naive DFT each row, multiply mode `k` by the
/// complex factor `factor(k)`, naive inverse, keep the real part. The
/// magnitude bound threads the absolute values through the same pipeline.
fn spectral_x_ref(nz: usize, nx: usize, f: &[f64], factor: impl Fn(usize) -> (f64, f64)) -> RefOut {
    assert_eq!(f.len(), nz * nx);
    let mut value = vec![0.0f64; f.len()];
    let mut scale = vec![0.0f64; f.len()];
    for (j, row) in f.chunks(nx).enumerate() {
        let im = vec![0.0f64; nx];
        let (spec, mag) = dft_ref(row, &im);
        let scaled: Vec<(f64, f64)> = spec
            .iter()
            .enumerate()
            .map(|(k, &(zr, zi))| {
                let (fr, fi) = factor(k);
                (zr * fr - zi * fi, zr * fi + zi * fr)
            })
            .collect();
        // Per-element inverse bound: (1/n)·Σ_k |factor_k|·|X_k| ≤
        // (1/n)·Σ_k |factor_k|·mag.
        let bound = scaled
            .iter()
            .zip(0..nx)
            .map(|(_, k)| {
                let (fr, fi) = factor(k);
                (fr * fr + fi * fi).sqrt() * mag
            })
            .sum::<f64>()
            / nx as f64;
        let back = idft_ref(&scaled);
        for (i, &(re, _)) in back.iter().enumerate() {
            value[j * nx + i] = re;
            scale[j * nx + i] = bound;
        }
    }
    RefOut { value, scale }
}

/// FD ∂/∂z by the definition: central interior, second-order one-sided
/// three-point walls.
pub fn ddz_ref(nz: usize, nx: usize, dz: f64, f: &[f64]) -> RefOut {
    let mut value = vec![0.0f64; f.len()];
    let mut scale = vec![0.0f64; f.len()];
    let fd = |j: usize, i: usize| f[j * nx + i];
    for i in 0..nx {
        value[i] = (-3.0 * fd(0, i) + 4.0 * fd(1, i) - fd(2, i)) / (2.0 * dz);
        scale[i] = (3.0 * fd(0, i).abs() + 4.0 * fd(1, i).abs() + fd(2, i).abs()) / (2.0 * dz);
        let top = nz - 1;
        value[top * nx + i] =
            (3.0 * fd(top, i) - 4.0 * fd(top - 1, i) + fd(top - 2, i)) / (2.0 * dz);
        scale[top * nx + i] =
            (3.0 * fd(top, i).abs() + 4.0 * fd(top - 1, i).abs() + fd(top - 2, i).abs())
                / (2.0 * dz);
    }
    for j in 1..nz - 1 {
        for i in 0..nx {
            value[j * nx + i] = (fd(j + 1, i) - fd(j - 1, i)) / (2.0 * dz);
            scale[j * nx + i] = (fd(j + 1, i).abs() + fd(j - 1, i).abs()) / (2.0 * dz);
        }
    }
    RefOut { value, scale }
}

/// FD ∂²/∂z² by the definition: central interior, second-order one-sided
/// four-point walls.
pub fn d2dz2_ref(nz: usize, nx: usize, dz: f64, f: &[f64]) -> RefOut {
    let dz2 = dz * dz;
    let mut value = vec![0.0f64; f.len()];
    let mut scale = vec![0.0f64; f.len()];
    let fd = |j: usize, i: usize| f[j * nx + i];
    for i in 0..nx {
        value[i] = (2.0 * fd(0, i) - 5.0 * fd(1, i) + 4.0 * fd(2, i) - fd(3, i)) / dz2;
        scale[i] =
            (2.0 * fd(0, i).abs() + 5.0 * fd(1, i).abs() + 4.0 * fd(2, i).abs() + fd(3, i).abs())
                / dz2;
        let top = nz - 1;
        value[top * nx + i] =
            (2.0 * fd(top, i) - 5.0 * fd(top - 1, i) + 4.0 * fd(top - 2, i) - fd(top - 3, i)) / dz2;
        scale[top * nx + i] = (2.0 * fd(top, i).abs()
            + 5.0 * fd(top - 1, i).abs()
            + 4.0 * fd(top - 2, i).abs()
            + fd(top - 3, i).abs())
            / dz2;
    }
    for j in 1..nz - 1 {
        for i in 0..nx {
            value[j * nx + i] = (fd(j + 1, i) - 2.0 * fd(j, i) + fd(j - 1, i)) / dz2;
            scale[j * nx + i] =
                (fd(j + 1, i).abs() + 2.0 * fd(j, i).abs() + fd(j - 1, i).abs()) / dz2;
        }
    }
    RefOut { value, scale }
}

/// Nearest-neighbour 3-d upsampling by the definition: every output voxel is
/// an exact copy of its source voxel.
pub fn upsample_nearest3d_ref(
    nc: usize,
    spatial: [usize; 3],
    factors: [usize; 3],
    x: &[f32],
) -> Vec<f64> {
    let [d, h, w] = spatial;
    let [fd, fh, fw] = factors;
    let (od, oh, ow) = (d * fd, h * fh, w * fw);
    let mut out = vec![0.0f64; nc * od * oh * ow];
    for slab in 0..nc {
        for zd in 0..od {
            for zh in 0..oh {
                for zw in 0..ow {
                    out[((slab * od + zd) * oh + zh) * ow + zw] =
                        f64::from(x[((slab * d + zd / fd) * h + zh / fh) * w + zw / fw]);
                }
            }
        }
    }
    out
}

/// Laplacian by the definition: spectral ∂²/∂x² plus FD ∂²/∂z², element-wise.
pub fn laplacian_ref(nz: usize, nx: usize, lx: f64, dz: f64, f: &[f64]) -> RefOut {
    let xx = d2dx2_ref(nz, nx, lx, f);
    let zz = d2dz2_ref(nz, nx, dz, f);
    RefOut {
        value: xx.value.iter().zip(&zz.value).map(|(a, b)| a + b).collect(),
        scale: xx.scale.iter().zip(&zz.scale).map(|(a, b)| a + b).collect(),
    }
}

/// Trilinear space-time interpolation twin of `mfn_data::sample_trilinear`,
/// with all weights and blends in f64. Mirrors the production axis
/// conventions — `t`/`z` clamped, `x` periodic — and the pinned
/// zero-weight skip (a zero weight must mask the row it multiplies).
pub fn sample_trilinear_ref(
    ds: &mfn_data::Dataset,
    t: f64,
    z: f64,
    x: f64,
) -> ([f64; mfn_data::CHANNELS], [f64; mfn_data::CHANNELS]) {
    // (i0, i1, frac) on a clamped axis.
    let clamped = |coord: f64, h: f64, n: usize| -> (usize, usize, f64) {
        let s = (coord / h).clamp(0.0, (n - 1) as f64);
        let i0 = (s.floor() as usize).min(n.saturating_sub(2));
        let i1 = (i0 + 1).min(n - 1);
        (i0, i1, s - i0 as f64)
    };
    let periodic = |coord: f64, h: f64, n: usize| -> (usize, usize, f64) {
        let period = h * n as f64;
        let mut c = coord % period;
        if c < 0.0 {
            c += period;
        }
        let s = c / h;
        let i0 = (s.floor() as usize) % n;
        ((i0), (i0 + 1) % n, s - s.floor())
    };
    let (t0, t1, tf) = clamped(t, ds.dt().max(1e-30), ds.meta.nt);
    let (z0, z1, zf) = clamped(z, ds.dz(), ds.meta.nz);
    let (x0, x1, xf) = periodic(x, ds.dx(), ds.meta.nx);
    let mut value = [0.0f64; mfn_data::CHANNELS];
    let mut scale = [0.0f64; mfn_data::CHANNELS];
    for c in 0..mfn_data::CHANNELS {
        for (ft, wt) in [(t0, 1.0 - tf), (t1, tf)] {
            if wt == 0.0 {
                continue;
            }
            for (fz, wz) in [(z0, 1.0 - zf), (z1, zf)] {
                if wz == 0.0 {
                    continue;
                }
                for (fx, wx) in [(x0, 1.0 - xf), (x1, xf)] {
                    if wx == 0.0 {
                        continue;
                    }
                    let v = f64::from(ds.at(ft, c, fz, fx));
                    value[c] += wt * wz * wx * v;
                    // Bound by Σ|v|, not Σ|w·v|: the optimized kernel's f32
                    // weights carry an *absolute* error of ~2⁻²³ (the `1−frac`
                    // subtraction), so its output error is O(ε·Σ|v|) even when
                    // a weight is tiny.
                    scale[c] += v.abs();
                }
            }
        }
    }
    (value, scale)
}

// ---- test-time refinement objective (serving-side physics refinement) ----

/// One decoder MLP layer widened to f64: row-major `[out, in]` weight plus
/// bias, as read back from the `ParamStore`.
pub struct MlpLayerRef {
    /// Row-major `[out, in]` weight matrix.
    pub weight: Vec<f64>,
    /// Per-output bias.
    pub bias: Vec<f64>,
    /// Input width.
    pub in_features: usize,
    /// Output width.
    pub out_features: usize,
}

/// f64 twin of the continuous decoder at one local point of a single-patch
/// latent grid `[1, c, nt, nz, nx]`: locate the cell, run the MLP (softplus
/// hidden — the activation the PDE-constrained decoder uses) on the
/// concatenation of per-vertex relative coordinates and latent vector, and
/// blend the 8 vertex outputs with trilinear weights.
fn decode_point_ref(
    layers: &[MlpLayerRef],
    latent: &[f64],
    c: usize,
    grid: [usize; 3],
    local: [f64; 3],
) -> Vec<f64> {
    let [nt, nz, nx] = grid;
    let vol = nt * nz * nx;
    let locate = |q: f64, n: usize| -> (usize, f64) {
        let s = q.clamp(0.0, 1.0) * (n - 1) as f64;
        let i = (s.floor() as usize).min(n.saturating_sub(2));
        (i, s - i as f64)
    };
    let (it, ft) = locate(local[0], nt);
    let (iz, fz) = locate(local[1], nz);
    let (ix, fx) = locate(local[2], nx);
    let out_w = layers.last().expect("non-empty MLP").out_features;
    let mut out = vec![0.0f64; out_w];
    for v in 0..8usize {
        let (dt, dz, dx) = ((v >> 2) & 1, (v >> 1) & 1, v & 1);
        let sp = ((it + dt) * nz + (iz + dz)) * nx + (ix + dx);
        let mut h: Vec<f64> = Vec::with_capacity(3 + c);
        h.push(ft - dt as f64);
        h.push(fz - dz as f64);
        h.push(fx - dx as f64);
        for ci in 0..c {
            h.push(latent[ci * vol + sp]);
        }
        let last = layers.len() - 1;
        for (li, layer) in layers.iter().enumerate() {
            let mut y = vec![0.0f64; layer.out_features];
            for (o, yo) in y.iter_mut().enumerate() {
                let mut acc = layer.bias[o];
                for (i2, &hi) in h.iter().enumerate() {
                    acc += layer.weight[o * layer.in_features + i2] * hi;
                }
                *yo = if li == last { acc } else { softplus_ref(acc) };
            }
            h = y;
        }
        let wt = if dt == 1 { ft } else { 1.0 - ft };
        let wz = if dz == 1 { fz } else { 1.0 - fz };
        let wx = if dx == 1 { fx } else { 1.0 - fx };
        let w = wt * wz * wx;
        for (o, a) in out.iter_mut().enumerate() {
            *a += w * h[o];
        }
    }
    out
}

/// f64 twin of the test-time refinement objective
/// (`mfn_core::equation_loss_at_points` with all four Rayleigh–Bénard
/// constraints): the mean absolute FD-stencil equation residual over the
/// query points of one patch. Returns `(value, scale)`; `scale` bounds the
/// residual terms along the same path, with derivative magnitudes bounded
/// by `(|f₊| + |f₋|)/2h` — the stencil is a near-cancelling difference, so
/// the bound must count the operands, not the difference.
#[allow(clippy::too_many_arguments)]
pub fn refine_objective_ref(
    layers: &[MlpLayerRef],
    latent: &[f64],
    c: usize,
    grid: [usize; 3],
    points: &[[f64; 3]],
    extent: [f64; 3],
    p_star: f64,
    r_star: f64,
    mean: [f64; 4],
    std: [f64; 4],
    h_local: f64,
) -> (f64, f64) {
    // Stencil offsets in plan order: center, t±, z±, x±.
    const STENCIL: [[f64; 3]; 7] = [
        [0.0, 0.0, 0.0],
        [1.0, 0.0, 0.0],
        [-1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, -1.0, 0.0],
        [0.0, 0.0, 1.0],
        [0.0, 0.0, -1.0],
    ];
    let hp = [h_local * extent[0], h_local * extent[1], h_local * extent[2]];
    let mut acc = 0.0f64;
    let mut acc_scale = 0.0f64;
    for q in points {
        let ctr = [
            q[0].clamp(h_local, 1.0 - h_local),
            q[1].clamp(h_local, 1.0 - h_local),
            q[2].clamp(h_local, 1.0 - h_local),
        ];
        let ev: Vec<Vec<f64>> = STENCIL
            .iter()
            .map(|off| {
                let p = [
                    ctr[0] + off[0] * h_local,
                    ctr[1] + off[1] * h_local,
                    ctr[2] + off[2] * h_local,
                ];
                decode_point_ref(layers, latent, c, grid, p)
            })
            .collect();
        let (v0, tp, tm, zp, zm, xp, xm) = (&ev[0], &ev[1], &ev[2], &ev[3], &ev[4], &ev[5], &ev[6]);
        // Denormalized first/second derivative, each with a magnitude bound.
        let d1 = |p: &[f64], m: &[f64], ch: usize, h: f64| {
            ((p[ch] - m[ch]) * 0.5 / h * std[ch], (p[ch].abs() + m[ch].abs()) * 0.5 / h * std[ch])
        };
        let d2 = |p: &[f64], m: &[f64], ch: usize, h: f64| {
            (
                (p[ch] + m[ch] - 2.0 * v0[ch]) / (h * h) * std[ch],
                (p[ch].abs() + m[ch].abs() + 2.0 * v0[ch].abs()) / (h * h) * std[ch],
            )
        };
        let val = |ch: usize| std[ch] * v0[ch] + mean[ch];
        // Channels: 0=T, 1=p, 2=u, 3=w.
        let (t_v, u_v, w_v) = (val(0), val(2), val(3));
        let (t_t, t_t_s) = d1(tp, tm, 0, hp[0]);
        let (t_x, t_x_s) = d1(xp, xm, 0, hp[2]);
        let (t_z, t_z_s) = d1(zp, zm, 0, hp[1]);
        let (t_xx, t_xx_s) = d2(xp, xm, 0, hp[2]);
        let (t_zz, t_zz_s) = d2(zp, zm, 0, hp[1]);
        let (p_x, p_x_s) = d1(xp, xm, 1, hp[2]);
        let (p_z, p_z_s) = d1(zp, zm, 1, hp[1]);
        let (u_t, u_t_s) = d1(tp, tm, 2, hp[0]);
        let (u_x, u_x_s) = d1(xp, xm, 2, hp[2]);
        let (u_z, u_z_s) = d1(zp, zm, 2, hp[1]);
        let (u_xx, u_xx_s) = d2(xp, xm, 2, hp[2]);
        let (u_zz, u_zz_s) = d2(zp, zm, 2, hp[1]);
        let (w_t, w_t_s) = d1(tp, tm, 3, hp[0]);
        let (w_x, w_x_s) = d1(xp, xm, 3, hp[2]);
        let (w_z, w_z_s) = d1(zp, zm, 3, hp[1]);
        let (w_xx, w_xx_s) = d2(xp, xm, 3, hp[2]);
        let (w_zz, w_zz_s) = d2(zp, zm, 3, hp[1]);
        // r_c = u_x + w_z
        acc += (u_x + w_z).abs();
        acc_scale += u_x_s + w_z_s;
        // r_T = T_t + u T_x + w T_z − P*(T_xx + T_zz)
        acc += (t_t + u_v * t_x + w_v * t_z - p_star * (t_xx + t_zz)).abs();
        acc_scale += t_t_s + u_v.abs() * t_x_s + w_v.abs() * t_z_s + p_star * (t_xx_s + t_zz_s);
        // r_u = u_t + u u_x + w u_z + p_x − R*(u_xx + u_zz)
        acc += (u_t + u_v * u_x + w_v * u_z + p_x - r_star * (u_xx + u_zz)).abs();
        acc_scale +=
            u_t_s + u_v.abs() * u_x_s + w_v.abs() * u_z_s + p_x_s + r_star * (u_xx_s + u_zz_s);
        // r_w = w_t + u w_x + w w_z + p_z − T − R*(w_xx + w_zz)
        acc += (w_t + u_v * w_x + w_v * w_z + p_z - t_v - r_star * (w_xx + w_zz)).abs();
        acc_scale += w_t_s
            + u_v.abs() * w_x_s
            + w_v.abs() * w_z_s
            + p_z_s
            + t_v.abs()
            + r_star * (w_xx_s + w_zz_s);
    }
    let n = (points.len() * 4) as f64;
    (acc / n, acc_scale / n)
}

/// Latent gradient of [`refine_objective_ref`] by f64 central differences —
/// the oracle for the reverse-mode gradient the test-time refinement loop
/// descends. `scale` is the max gradient magnitude, for every element: on a
/// shared tape the f32 rounding error of one adjoint is driven by the
/// largest intermediates flowing through it, so a near-zero gradient entry
/// still carries absolute error proportional to the gradient's overall
/// magnitude, not its own.
#[allow(clippy::too_many_arguments)]
pub fn refine_latent_grad_ref(
    layers: &[MlpLayerRef],
    latent: &[f64],
    c: usize,
    grid: [usize; 3],
    points: &[[f64; 3]],
    extent: [f64; 3],
    p_star: f64,
    r_star: f64,
    mean: [f64; 4],
    std: [f64; 4],
    h_local: f64,
    fd_step: f64,
) -> RefOut {
    let mut work = latent.to_vec();
    let mut value = vec![0.0f64; latent.len()];
    for (i, out) in value.iter_mut().enumerate() {
        let base = work[i];
        work[i] = base + fd_step;
        let (fp, _) = refine_objective_ref(
            layers, &work, c, grid, points, extent, p_star, r_star, mean, std, h_local,
        );
        work[i] = base - fd_step;
        let (fm, _) = refine_objective_ref(
            layers, &work, c, grid, points, extent, p_star, r_star, mean, std, h_local,
        );
        work[i] = base;
        *out = (fp - fm) / (2.0 * fd_step);
    }
    let gmax = value.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    RefOut { scale: vec![gmax; value.len()], value }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_ref_identity() {
        // 2x2 identity times arbitrary B returns B, with scale = |B|.
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [3.0f32, -4.0, 5.0, 0.25];
        let r = gemm_ref(2, 2, 2, &a, MatLayout::Normal, &b, MatLayout::Normal);
        assert_eq!(r.value, vec![3.0, -4.0, 5.0, 0.25]);
        assert_eq!(r.scale, vec![3.0, 4.0, 5.0, 0.25]);
    }

    #[test]
    fn bf16_rne_ref_rounds_ties_to_even_and_saturates_finite_overflow() {
        // Halfway above an even kept mantissa stays; above an odd one bumps.
        assert_eq!(bf16_rne_ref(f32::from_bits(0x3F80_8000)), 0x3F80);
        assert_eq!(bf16_rne_ref(f32::from_bits(0x3F81_8000)), 0x3F82);
        assert_eq!(bf16_rne_ref(f32::from_bits(0x3F80_8001)), 0x3F81);
        // Past the largest finite bf16, finite values saturate to ±0x7F7F;
        // only a true infinity quantizes to the inf pattern.
        assert_eq!(bf16_rne_ref(f32::MAX), 0x7F7F);
        assert_eq!(bf16_rne_ref(f32::MIN), 0xFF7F);
        assert_eq!(bf16_rne_ref(f32::from_bits(0x7F7F_8000)), 0x7F7F);
        assert_eq!(bf16_rne_ref(f32::INFINITY), 0x7F80);
        assert_eq!(bf16_rne_ref(f32::NEG_INFINITY), 0xFF80);
        // NaN stays NaN: exponent all ones, quiet bit forced in the payload.
        let q = bf16_rne_ref(f32::NAN);
        assert_eq!(q & 0x7F80, 0x7F80);
        assert_ne!(q & 0x007F, 0, "NaN must not collapse to inf");
        assert_ne!(q & 0x0040, 0, "quiet bit must be forced");
    }

    #[test]
    fn softplus_ref_is_stable_at_extremes() {
        assert_eq!(softplus_ref(1000.0), 1000.0);
        assert!(softplus_ref(-1000.0) > 0.0 || softplus_ref(-1000.0) == 0.0);
        assert!((softplus_ref(0.0) - std::f64::consts::LN_2).abs() < 1e-15);
    }

    #[test]
    fn dft_ref_roundtrips() {
        let re = [1.0, -2.0, 0.5, 3.0, 0.0, 1.0e-3, 7.0, -0.25];
        let im = [0.0; 8];
        let (spec, _) = dft_ref(&re, &im);
        let back = idft_ref(&spec);
        for (x, &(br, bi)) in re.iter().zip(&back) {
            assert!((x - br).abs() < 1e-12 && bi.abs() < 1e-12);
        }
    }

    #[test]
    fn maxpool_ref_propagates_nan() {
        let x = [f32::NAN, 1.0, 2.0, 3.0];
        let out = maxpool3d_ref(1, [1, 2, 2], [1, 2, 2], &x);
        assert!(out[0].is_nan());
        let x = [0.0f32, 1.0, 2.0, 3.0];
        let out = maxpool3d_ref(1, [1, 2, 2], [1, 2, 2], &x);
        assert_eq!(out[0], 3.0);
    }
}
