//! Differential correctness oracle for the MeshfreeFlowNet numerical stack.
//!
//! Every optimized kernel in the workspace — blocked GEMM, conv3d and its
//! gradients, batch norm, activations, row/blend ops, pooling, FFT and the
//! spectrum binning, the solver's spectral/FD stencils, and trilinear
//! interpolation — has a *reference twin* here: a naive scalar f64
//! implementation written straight from the mathematical definition, with no
//! blocking, no fusion and no layout tricks. The harness drives both over a
//! deterministic adversarial input set (subnormals, signed zeros, huge/tiny
//! magnitudes, near-cancelling pairs, tile-unaligned shapes) and enforces a
//! per-kernel ULP / scale-aware error budget, reporting the worst offender
//! with enough context to replay it.
//!
//! House rule (DESIGN.md §12): **a new fast path must land with its
//! reference twin.** If you optimize a kernel, extend this crate in the same
//! change.
//!
//! Three consumers:
//! - `cargo test -p mfn-reftest` — the oracle suite, one test per kernel;
//! - `bench --oracle` — cross-checks every kernel before timing it;
//! - CI runs the suite under both the pinned `x86-64-v3` and
//!   `target-cpu=generic` so codegen differences are covered.

pub mod cases;
pub mod checks;
pub mod compare;
pub mod reference;

pub use checks::{all_passed, run_all};
pub use compare::{Checker, Report, Tolerance};
