//! The comparison harness: ULP distance, per-kernel error budgets, and
//! worst-offender reporting.
//!
//! Every optimized kernel is compared element-wise against its f64 scalar
//! reference. An element passes if any of three criteria holds:
//!
//! 1. **bit-equal**: `got.to_bits() == (want as f32).to_bits()` (this also
//!    accepts agreement on `inf` after f64→f32 overflow, and NaN vs NaN);
//! 2. **ULP**: the units-in-the-last-place distance between `got` and the
//!    correctly-rounded reference is within the kernel's budget;
//! 3. **scale-aware absolute**: `|got − want| ≤ atol + rtol·scale`, where
//!    `scale` is a per-element magnitude bound supplied by the reference
//!    (e.g. `Σ|aᵢ||bᵢ|` for a dot product). This is what makes the harness
//!    sound under catastrophic cancellation: a blocked summation may lose
//!    *all* relative accuracy of a tiny result whose intermediate terms were
//!    huge, and that is a property of f32 accumulation order, not a bug.
//!
//! Criterion 3 is deliberately *not* plain relative error against the
//! result: that would either reject legitimate reorderings (tight rtol) or
//! pass genuinely broken kernels (loose rtol).

use std::fmt;

/// Per-kernel error budget. An element passes on bit-equality, ULP distance
/// `≤ ulp`, or `|got − want| ≤ atol + rtol·scale`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Maximum units-in-the-last-place distance from the correctly rounded
    /// reference value.
    pub ulp: u64,
    /// Relative slack against the per-element magnitude bound (`scale`), not
    /// against the result itself.
    pub rtol: f64,
    /// Absolute floor, for results whose magnitude bound is itself tiny.
    pub atol: f64,
}

impl Tolerance {
    /// A budget expressed purely in ULPs (no scale-aware escape hatch);
    /// `ulp = 0` demands bit-identical results.
    pub const fn exact() -> Self {
        Tolerance { ulp: 0, rtol: 0.0, atol: 0.0 }
    }

    /// A budget of `ulp` ULPs with a scale-aware fallback.
    pub const fn new(ulp: u64, rtol: f64, atol: f64) -> Self {
        Tolerance { ulp, rtol, atol }
    }
}

/// Ordered-integer mapping of an f32: monotone in the reals, ±0 coincide.
fn ordered_f32(x: f32) -> i64 {
    let b = x.to_bits() as i32;
    if b < 0 {
        i64::from(i32::MIN) - i64::from(b)
    } else {
        i64::from(b)
    }
}

/// Ordered-integer mapping of an f64 (see [`ordered_f32`]).
fn ordered_f64(x: f64) -> i128 {
    let b = x.to_bits() as i64;
    if b < 0 {
        i128::from(i64::MIN) - i128::from(b)
    } else {
        i128::from(b)
    }
}

/// ULP distance between two non-NaN f32s. `+0` and `-0` are 0 apart;
/// `f32::MAX` and `inf` are 1 apart.
pub fn ulp_diff_f32(a: f32, b: f32) -> u64 {
    debug_assert!(!a.is_nan() && !b.is_nan());
    (ordered_f32(a) - ordered_f32(b)).unsigned_abs()
}

/// ULP distance between two non-NaN f64s, saturating at `u64::MAX`.
pub fn ulp_diff_f64(a: f64, b: f64) -> u64 {
    debug_assert!(!a.is_nan() && !b.is_nan());
    let d = (ordered_f64(a) - ordered_f64(b)).unsigned_abs();
    u64::try_from(d).unwrap_or(u64::MAX)
}

/// One divergent (or worst-so-far) element, with enough context to
/// regenerate its inputs: the case label carries the deterministic seed and
/// shape, `input` the offending element's input value where one exists.
#[derive(Debug, Clone)]
pub struct Offender {
    /// Case label (shape, layout, generator seed).
    pub case: String,
    /// Flat element index within the kernel output.
    pub index: usize,
    /// The offending element's direct input, for element-wise kernels.
    pub input: Option<f64>,
    /// Optimized-kernel output (f32 widened, or native f64).
    pub got: f64,
    /// Reference value.
    pub want: f64,
    /// ULP distance (`u64::MAX` when exactly one side is NaN).
    pub ulp: u64,
    /// `|got − want|`.
    pub abs_err: f64,
    /// The reference's magnitude bound for this element.
    pub scale: f64,
}

impl fmt::Display for Offender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "case \"{}\" [{}]: got {:e} want {:e} (ulp {}, |err| {:e}, scale {:e}",
            self.case, self.index, self.got, self.want, self.ulp, self.abs_err, self.scale
        )?;
        if let Some(x) = self.input {
            write!(f, ", input {x:e}")?;
        }
        write!(f, ")")
    }
}

/// Outcome of checking one kernel over its full adversarial case set.
#[derive(Debug)]
pub struct Report {
    /// Kernel under test.
    pub kernel: &'static str,
    /// Budget the kernel was held to.
    pub tol: Tolerance,
    /// Number of cases (shape × layout × seed combinations).
    pub cases: u64,
    /// Total elements compared.
    pub elems: u64,
    /// Largest ULP distance observed across all elements (passing or not).
    pub max_ulp: u64,
    /// The worst element seen, even if it passed.
    pub worst: Option<Offender>,
    /// Total elements outside budget.
    pub failure_count: u64,
    /// First few failures (capped so a totally broken kernel stays readable).
    pub failures: Vec<Offender>,
}

impl Report {
    /// Whether every element stayed within budget.
    pub fn passed(&self) -> bool {
        self.failure_count == 0
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} cases {:>3}  elems {:>8}  max_ulp {:>6}  ",
            self.kernel, self.cases, self.elems, self.max_ulp
        )?;
        if self.passed() {
            write!(f, "ok")
        } else {
            write!(f, "FAIL ({} divergent)", self.failure_count)?;
            if let Some(w) = self.failures.first() {
                write!(f, "\n  worst offender: {w}")?;
            }
            Ok(())
        }
    }
}

/// How many failures a report keeps verbatim.
const MAX_STORED_FAILURES: usize = 8;

/// Accumulates element comparisons for one kernel into a [`Report`].
pub struct Checker {
    kernel: &'static str,
    tol: Tolerance,
    case: String,
    cases: u64,
    elems: u64,
    max_ulp: u64,
    worst: Option<Offender>,
    failure_count: u64,
    failures: Vec<Offender>,
}

impl Checker {
    /// Starts a checker for `kernel` under budget `tol`.
    pub fn new(kernel: &'static str, tol: Tolerance) -> Self {
        Checker {
            kernel,
            tol,
            case: String::new(),
            cases: 0,
            elems: 0,
            max_ulp: 0,
            worst: None,
            failure_count: 0,
            failures: Vec::new(),
        }
    }

    /// Opens a new case; subsequent `check_*` calls are attributed to it.
    /// The label should identify the inputs deterministically (shape, layout,
    /// generator seed).
    pub fn case(&mut self, label: impl Into<String>) {
        self.case = label.into();
        self.cases += 1;
    }

    #[allow(clippy::too_many_arguments)] // private sink for every comparison field
    fn record(
        &mut self,
        index: usize,
        input: Option<f64>,
        got: f64,
        want: f64,
        ulp: u64,
        scale: f64,
        pass: bool,
    ) {
        let abs_err = (got - want).abs();
        if ulp != u64::MAX && ulp > self.max_ulp {
            self.max_ulp = ulp;
        }
        let worse = match &self.worst {
            None => true,
            Some(w) => ulp > w.ulp || (ulp == w.ulp && abs_err > w.abs_err),
        };
        if worse || (!pass && self.failures.len() < MAX_STORED_FAILURES) {
            let off =
                Offender { case: self.case.clone(), index, input, got, want, ulp, abs_err, scale };
            if worse {
                self.worst = Some(off.clone());
            }
            if !pass && self.failures.len() < MAX_STORED_FAILURES {
                self.failures.push(off);
            }
        }
        if !pass {
            self.failure_count += 1;
        }
    }

    /// Compares an f32 kernel output against an f64 reference with magnitude
    /// bound `scale`.
    pub fn check_f32(&mut self, index: usize, got: f32, want: f64, scale: f64) {
        self.check_f32_in(index, None, got, want, scale);
    }

    /// Like [`Checker::check_f32`], recording the element's input value for
    /// the offender report (element-wise kernels).
    pub fn check_f32_in(
        &mut self,
        index: usize,
        input: Option<f64>,
        got: f32,
        want: f64,
        scale: f64,
    ) {
        self.elems += 1;
        let want32 = want as f32;
        if got.to_bits() == want32.to_bits() {
            return; // covers NaN-pattern equality, signed zeros, inf agreement
        }
        if got.is_nan() && want32.is_nan() {
            return;
        }
        if got.is_nan() || want32.is_nan() {
            self.record(index, input, f64::from(got), want, u64::MAX, scale, false);
            return;
        }
        let ulp = ulp_diff_f32(got, want32);
        let abs_err = (f64::from(got) - want).abs();
        let pass = ulp <= self.tol.ulp || abs_err <= self.tol.atol + self.tol.rtol * scale;
        self.record(index, input, f64::from(got), want, ulp, scale, pass);
    }

    /// Compares an f64 kernel output (FFT, solver stencils) against an f64
    /// reference with magnitude bound `scale`.
    pub fn check_f64(&mut self, index: usize, got: f64, want: f64, scale: f64) {
        self.elems += 1;
        if got.to_bits() == want.to_bits() {
            return;
        }
        if got.is_nan() && want.is_nan() {
            return;
        }
        if got.is_nan() || want.is_nan() {
            self.record(index, None, got, want, u64::MAX, scale, false);
            return;
        }
        let ulp = ulp_diff_f64(got, want);
        let abs_err = (got - want).abs();
        let pass = ulp <= self.tol.ulp || abs_err <= self.tol.atol + self.tol.rtol * scale;
        self.record(index, None, got, want, ulp, scale, pass);
    }

    /// Finalizes into a [`Report`].
    pub fn finish(self) -> Report {
        Report {
            kernel: self.kernel,
            tol: self.tol,
            cases: self.cases,
            elems: self.elems,
            max_ulp: self.max_ulp,
            worst: self.worst,
            failure_count: self.failure_count,
            failures: self.failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_diff_f32(0.0, -0.0), 0);
        assert_eq!(ulp_diff_f32(1.0, 1.0), 0);
        assert_eq!(ulp_diff_f32(1.0, 1.0 + f32::EPSILON), 1);
        assert_eq!(ulp_diff_f32(f32::MAX, f32::INFINITY), 1);
        // Straddling zero: distance is the sum of each side's offset.
        assert_eq!(ulp_diff_f32(f32::from_bits(1), -f32::from_bits(1)), 2);
        assert_eq!(ulp_diff_f64(1.0, 1.0 + f64::EPSILON), 1);
        assert_eq!(ulp_diff_f64(0.0, -0.0), 0);
    }

    #[test]
    fn checker_accepts_within_budget_and_rejects_outside() {
        let mut c = Checker::new("t", Tolerance::new(2, 0.0, 0.0));
        c.case("unit");
        c.check_f32(0, 1.0, 1.0 + f64::from(f32::EPSILON), 1.0); // 1 ULP
        c.check_f32(1, 1.0, 1.0 + 8.0 * f64::from(f32::EPSILON), 1.0); // 8 ULP
        let r = c.finish();
        assert_eq!(r.failure_count, 1);
        assert_eq!(r.max_ulp, 8);
        assert_eq!(r.failures[0].index, 1);
        assert!(!r.passed());
    }

    #[test]
    fn scale_aware_criterion_rescues_cancellation() {
        // got 0.0 vs want 1e-5 is infinitely many ULPs apart, but with a
        // magnitude bound of 1e3 (huge cancelling terms) it is within
        // rtol·scale.
        let mut c = Checker::new("t", Tolerance::new(2, 1e-6, 0.0));
        c.case("cancel");
        c.check_f32(0, 0.0, 1e-5, 1e3);
        assert!(c.finish().passed());
    }

    #[test]
    fn nan_mismatch_is_always_fatal() {
        let mut c = Checker::new("t", Tolerance::new(u64::MAX / 2, 1e9, 1e9));
        c.case("nan");
        c.check_f32(0, f32::NAN, 1.0, 1.0);
        c.check_f32(1, 1.0, f64::NAN, 1.0);
        c.check_f32(2, f32::NAN, f64::NAN, 1.0); // agreement is fine
        let r = c.finish();
        assert_eq!(r.failure_count, 2);
    }

    #[test]
    fn exact_budget_demands_bit_equality() {
        let mut c = Checker::new("t", Tolerance::exact());
        c.case("exact");
        c.check_f32(0, 1.5, 1.5, 0.0);
        c.check_f32(1, -0.0, 0.0, 0.0); // ±0 are 0 ULP apart: passes
        c.check_f32(2, 1.0, 1.0 + f64::from(f32::EPSILON), 0.0);
        let r = c.finish();
        assert_eq!(r.failure_count, 1);
        assert_eq!(r.failures[0].index, 2);
    }
}
