//! The differential oracle suite: one test per kernel, each asserting the
//! optimized implementation stays within its declared budget on the
//! adversarial case set. A failure prints the full report, worst offender
//! first, with the case label (shape + seed) needed to replay it.

use mfn_reftest::checks;
use mfn_reftest::Report;

fn assert_ok(report: Report) {
    assert!(report.passed(), "\n{report}\n");
    // Sanity: a check that compared nothing is a broken check.
    assert!(report.elems > 0, "{} compared no elements", report.kernel);
}

#[test]
fn gemm_matches_reference() {
    assert_ok(checks::check_gemm());
}

#[test]
fn bf16_quantize_matches_reference() {
    assert_ok(checks::check_bf16_quantize());
}

#[test]
fn bf16_precision_contract_holds() {
    assert_ok(checks::check_bf16_precision());
}

#[test]
fn gemm_bf16_matches_reference() {
    assert_ok(checks::check_gemm_bf16());
}

#[test]
fn gemm_bf16_compute_matches_reference() {
    assert_ok(checks::check_gemm_bf16_compute());
}

#[test]
fn bf16_compute_codegen_legs_agree_bitwise() {
    assert_ok(checks::check_bf16_compute_routes());
}

#[test]
fn conv3d_matches_reference() {
    assert_ok(checks::check_conv3d());
}

#[test]
fn conv3d_grad_input_matches_reference() {
    assert_ok(checks::check_conv3d_grad_input());
}

#[test]
fn conv3d_grad_weight_matches_reference() {
    assert_ok(checks::check_conv3d_grad_weight());
}

#[test]
fn batch_norm_matches_reference() {
    assert_ok(checks::check_batch_norm());
}

#[test]
fn channel_affine_matches_reference() {
    assert_ok(checks::check_channel_affine());
}

#[test]
fn activations_match_reference() {
    assert_ok(checks::check_activations());
}

#[test]
fn bias_adds_match_reference() {
    assert_ok(checks::check_bias());
}

#[test]
fn blend_rows_matches_reference() {
    assert_ok(checks::check_blend_rows());
}

#[test]
fn gather_rows_is_exact() {
    assert_ok(checks::check_gather_rows());
}

#[test]
fn maxpool_matches_reference_and_propagates_nan() {
    assert_ok(checks::check_maxpool());
}

#[test]
fn upsample_is_exact() {
    assert_ok(checks::check_upsample());
}

#[test]
fn fft_matches_naive_dft() {
    assert_ok(checks::check_fft());
}

#[test]
fn spectrum_matches_reference_and_parseval() {
    assert_ok(checks::check_spectrum());
}

#[test]
fn solver_stencils_match_reference() {
    for report in checks::check_solver() {
        assert_ok(report);
    }
}

#[test]
fn trilinear_sampling_matches_reference() {
    assert_ok(checks::check_trilinear());
}

#[test]
fn downsample_is_exact() {
    assert_ok(checks::check_downsample());
}

#[test]
fn refine_objective_gradient_matches_reference() {
    assert_ok(checks::check_refine_grad());
}
