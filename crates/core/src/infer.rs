//! The frozen inference engine: an immutable, grad-free view of a trained
//! MeshfreeFlowNet.
//!
//! [`FrozenModel`] wraps a model whose parameter store is private — the only
//! access the outside world gets is the read-only [`FrozenParams`] view — and
//! whose forward passes go through the eager `*_nograd` paths: no autodiff
//! tape is built, batch norm runs on frozen running statistics, and every
//! method takes `&self`. That `&self` is load-bearing: the serving layer
//! shares one `FrozenModel` behind an `Arc` across all worker threads and
//! decodes concurrent query batches without any locking around the weights.
//!
//! The no-grad forwards are bit-identical to the training graph in eval mode
//! (pinned by the `inference_equivalence` property tests in `mfn-serve`): the
//! elementwise kernels are literally shared (`mfn_tensor::rowops`), not
//! reimplemented.

use crate::checkpoint::{decode_inference_state, load_train_state_with_fallback, CheckpointError};
use crate::config::MfnConfig;
use crate::decoder::{plan_queries, ContinuousDecoder, QuantizedDecoder};
use crate::model::MeshfreeFlowNet;
use crate::unet::UNet3d;
use mfn_autodiff::{FrozenParams, ParamStore};
use mfn_tensor::Tensor;
use std::path::Path;

/// Which precision tier answers value decodes — the serving-visible label
/// for the numerical contract of [`FrozenModel::decode_values`]. Wire
/// encoding ([`DecodeTier::as_u8`]) is append-only: `0`/`1`/`2` are fixed
/// forever, new tiers take new values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeTier {
    /// Full-precision f32 weights and activations.
    F32,
    /// bf16-rounded weights, exact f32 activations and accumulation
    /// ([`FrozenModel::quantize_decoder`]).
    Bf16Store,
    /// bf16 weights *and* activations, `vdpbf16ps` tile arithmetic
    /// ([`FrozenModel::quantize_decoder_compute`]).
    Bf16Compute,
}

impl DecodeTier {
    /// Stable name for telemetry, logs and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            DecodeTier::F32 => "f32",
            DecodeTier::Bf16Store => "bf16-store",
            DecodeTier::Bf16Compute => "bf16-compute",
        }
    }

    /// Stable wire byte.
    pub fn as_u8(self) -> u8 {
        match self {
            DecodeTier::F32 => 0,
            DecodeTier::Bf16Store => 1,
            DecodeTier::Bf16Compute => 2,
        }
    }

    /// Inverse of [`DecodeTier::as_u8`]; `None` for bytes from a future
    /// tier this build does not know.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(DecodeTier::F32),
            1 => Some(DecodeTier::Bf16Store),
            2 => Some(DecodeTier::Bf16Compute),
            _ => None,
        }
    }
}

/// An immutable inference engine over trained weights.
pub struct FrozenModel {
    cfg: MfnConfig,
    store: ParamStore,
    unet: UNet3d,
    decoder: ContinuousDecoder,
    /// Opt-in bf16 decode path; populated by [`FrozenModel::quantize_decoder`].
    quantized: Option<QuantizedDecoder>,
    trained_steps: u64,
}

impl FrozenModel {
    /// Freezes an in-memory model (e.g. straight out of a trainer).
    pub fn from_model(model: MeshfreeFlowNet) -> Self {
        Self::with_steps(model, 0)
    }

    fn with_steps(model: MeshfreeFlowNet, trained_steps: u64) -> Self {
        let MeshfreeFlowNet { cfg, store, unet, decoder } = model;
        FrozenModel { cfg, store, unet, decoder, quantized: None, trained_steps }
    }

    /// Quantizes the decoder MLP's weights to prepacked bf16 panels; every
    /// later [`FrozenModel::decode_values`] call routes through them
    /// (activations, biases, and accumulation stay f32). Halves the decode
    /// weight bytes at a bounded precision cost — opt-in, and the
    /// full-precision weights stay resident (the encode path and the exact
    /// [`FrozenModel::decode_values_exact`] still use them).
    pub fn quantize_decoder(&mut self) {
        self.quantized = Some(QuantizedDecoder::quantize(&self.decoder, &self.store));
    }

    /// Like [`FrozenModel::quantize_decoder`], but decodes run the
    /// bf16-*compute* tier: activations are quantized to bf16 per layer and
    /// the GEMM tiles use `vdpbf16ps` arithmetic (native on `avx512bf16`
    /// hosts, bit-identical software emulation elsewhere). Looser error
    /// contract than the store tier, ~2x decode GEMM throughput on capable
    /// hardware.
    pub fn quantize_decoder_compute(&mut self) {
        self.quantized = Some(QuantizedDecoder::quantize_compute(&self.decoder, &self.store));
    }

    /// Whether [`FrozenModel::quantize_decoder`] (or the compute variant)
    /// has been applied.
    pub fn decoder_is_quantized(&self) -> bool {
        self.quantized.is_some()
    }

    /// The precision tier [`FrozenModel::decode_values`] answers with.
    pub fn decode_tier(&self) -> DecodeTier {
        match &self.quantized {
            None => DecodeTier::F32,
            Some(q) if q.bf16_compute() => DecodeTier::Bf16Compute,
            Some(_) => DecodeTier::Bf16Store,
        }
    }

    /// Resident bytes of the bf16 decoder weight panels (0 if not quantized).
    pub fn quantized_weight_bytes(&self) -> usize {
        self.quantized.as_ref().map_or(0, |q| q.weight_bytes())
    }

    /// Loads a `MFNSTAT1` train-state checkpoint (as written by the trainer's
    /// periodic checkpointing or the `train` binary) into a frozen engine.
    ///
    /// Only parameters and BN running statistics are restored; the Adam
    /// moments in the trailing section of the payload are never materialized.
    /// Falls back to `<path>.prev` when the newest frame is corrupt.
    pub fn load_state(cfg: MfnConfig, path: &Path) -> Result<Self, CheckpointError> {
        let mut model = MeshfreeFlowNet::new(cfg);
        let payload = load_train_state_with_fallback(path)?;
        let mut r = payload.as_slice();
        let meta = decode_inference_state(&mut model, &mut r)?;
        Ok(Self::with_steps(model, meta.global_step))
    }

    /// The architecture configuration the engine was built with.
    pub fn cfg(&self) -> &MfnConfig {
        &self.cfg
    }

    /// Read-only view of the weights (serving diagnostics, parameter counts).
    pub fn params(&self) -> FrozenParams<'_> {
        self.store.frozen()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.store.total_numel()
    }

    /// Gradient steps the checkpoint had taken when frozen (0 for
    /// [`FrozenModel::from_model`]).
    pub fn trained_steps(&self) -> u64 {
        self.trained_steps
    }

    /// The latent grid vertex dims `[nt, nz, nx]`.
    pub fn grid_dims(&self) -> [usize; 3] {
        [self.cfg.patch.nt, self.cfg.patch.nz, self.cfg.patch.nx]
    }

    /// Encodes a stacked input `[N, in_channels, nt, nz, nx]` into a Latent
    /// Context Grid `[N, n_c, nt, nz, nx]` — the expensive encode-once half
    /// of serving. No tape, no BN-stat updates.
    ///
    /// # Panics
    /// Panics if the input dims do not match the configured patch shape.
    pub fn encode(&self, input: &Tensor) -> Tensor {
        let d = input.dims();
        assert_eq!(d.len(), 5, "encode input must be [N, C, nt, nz, nx]");
        assert_eq!(
            &d[1..],
            &[self.cfg.in_channels, self.cfg.patch.nt, self.cfg.patch.nz, self.cfg.patch.nx],
            "encode input shape does not match the model's patch spec"
        );
        self.unet.forward_nograd(&self.store, input)
    }

    /// Decodes continuous point queries against an encoded latent grid —
    /// the cheap decode-many half. `queries` are `(batch, [t, z, x])` pairs
    /// with local coordinates in `[0, 1]`; returns normalized predictions
    /// `[Q, out_channels]`.
    pub fn decode_values(
        &self,
        latent: &Tensor,
        queries: impl IntoIterator<Item = (usize, [f32; 3])>,
    ) -> Tensor {
        let plan = plan_queries(self.grid_dims(), queries);
        match &self.quantized {
            Some(q) => q.decode(latent, &plan),
            None => self.decoder.decode_nograd(&self.store, latent, &plan),
        }
    }

    /// Always-full-precision twin of [`FrozenModel::decode_values`],
    /// bypassing any quantized decoder (accuracy eval, A/B benches).
    pub fn decode_values_exact(
        &self,
        latent: &Tensor,
        queries: impl IntoIterator<Item = (usize, [f32; 3])>,
    ) -> Tensor {
        let plan = plan_queries(self.grid_dims(), queries);
        self.decoder.decode_nograd(&self.store, latent, &plan)
    }

    /// Test-time physics refinement (see [`crate::refine`]): budgeted gradient
    /// descent on a *copy* of `latent` minimizing the PDE equation residual at
    /// `points`, weights frozen. The gradient tape always runs the exact f32
    /// decoder — a quantized serving decoder never participates. Returns the
    /// refined latent and a step/residual report; the input tensor is never
    /// mutated.
    pub fn refine_latent(
        &self,
        latent: &Tensor,
        points: &[(usize, [f32; 3])],
        settings: &crate::refine::RefineSettings,
        budget: &crate::refine::RefineBudget,
    ) -> (Tensor, crate::refine::RefineReport) {
        crate::refine::refine_latent(
            &self.store,
            &self.decoder,
            latent,
            self.grid_dims(),
            points,
            settings,
            budget,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_data::PatchSpec;

    fn tiny_cfg() -> MfnConfig {
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        cfg
    }

    #[test]
    fn frozen_encode_decode_shapes() {
        let frozen = FrozenModel::from_model(MeshfreeFlowNet::new(tiny_cfg()));
        let x = Tensor::ones(&[1, 4, 4, 4, 4]);
        let latent = frozen.encode(&x);
        assert_eq!(latent.dims(), &[1, 8, 4, 4, 4]);
        let out = frozen.decode_values(&latent, [(0usize, [0.5, 0.5, 0.5])]);
        assert_eq!(out.dims(), &[1, 4]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn quantized_decode_dispatch_and_accuracy() {
        let mut frozen = FrozenModel::from_model(MeshfreeFlowNet::new(tiny_cfg()));
        let x = Tensor::ones(&[1, 4, 4, 4, 4]);
        let latent = frozen.encode(&x);
        let queries: Vec<(usize, [f32; 3])> =
            (0..20).map(|q| (0usize, [q as f32 / 19.0, 0.3, 0.7])).collect();
        assert!(!frozen.decoder_is_quantized());
        let exact = frozen.decode_values(&latent, queries.iter().copied());
        frozen.quantize_decoder();
        assert!(frozen.decoder_is_quantized());
        assert!(frozen.quantized_weight_bytes() > 0);
        let quant = frozen.decode_values(&latent, queries.iter().copied());
        // The exact path is still reachable and unchanged.
        let exact2 = frozen.decode_values_exact(&latent, queries.iter().copied());
        assert_eq!(exact.data(), exact2.data());
        for (a, b) in exact.data().iter().zip(quant.data()) {
            assert!((a - b).abs() < 3e-2 * (1.0 + a.abs()), "bf16 decode drifted: {a} vs {b}");
        }
    }

    #[test]
    fn decode_tier_reporting_and_compute_tier_accuracy() {
        let mut frozen = FrozenModel::from_model(MeshfreeFlowNet::new(tiny_cfg()));
        let x = Tensor::ones(&[1, 4, 4, 4, 4]);
        let latent = frozen.encode(&x);
        let queries: Vec<(usize, [f32; 3])> =
            (0..20).map(|q| (0usize, [q as f32 / 19.0, 0.4, 0.6])).collect();
        assert_eq!(frozen.decode_tier(), DecodeTier::F32);
        let exact = frozen.decode_values(&latent, queries.iter().copied());
        frozen.quantize_decoder();
        assert_eq!(frozen.decode_tier(), DecodeTier::Bf16Store);
        frozen.quantize_decoder_compute();
        assert_eq!(frozen.decode_tier(), DecodeTier::Bf16Compute);
        assert!(frozen.quantized_weight_bytes() > 0);
        let compute = frozen.decode_values(&latent, queries.iter().copied());
        // Looser than the store tier (both operands rounded) but still a
        // small relative error on a tiny well-conditioned model.
        for (a, b) in exact.data().iter().zip(compute.data()) {
            assert!((a - b).abs() < 6e-2 * (1.0 + a.abs()), "bf16 compute drifted: {a} vs {b}");
        }
    }

    #[test]
    fn decode_tier_wire_bytes_round_trip() {
        for tier in [DecodeTier::F32, DecodeTier::Bf16Store, DecodeTier::Bf16Compute] {
            assert_eq!(DecodeTier::from_u8(tier.as_u8()), Some(tier));
        }
        assert_eq!(DecodeTier::from_u8(3), None);
        assert_eq!(DecodeTier::F32.name(), "f32");
        assert_eq!(DecodeTier::Bf16Store.name(), "bf16-store");
        assert_eq!(DecodeTier::Bf16Compute.name(), "bf16-compute");
    }

    #[test]
    #[should_panic(expected = "patch spec")]
    fn frozen_encode_rejects_wrong_shape() {
        let frozen = FrozenModel::from_model(MeshfreeFlowNet::new(tiny_cfg()));
        frozen.encode(&Tensor::ones(&[1, 4, 4, 4, 8]));
    }
}
