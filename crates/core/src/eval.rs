//! Evaluation: turning a super-resolved dataset and its ground truth into
//! the `(100×NMAE, R²)` table cells of the paper.

use mfn_data::{Dataset, CH_U, CH_W};
use mfn_physics::{flow_stats, score_metric_series, MetricScore};
use mfn_solver::Domain;

/// Per-frame metric arrays (one row of nine metrics per snapshot).
pub fn metric_series(ds: &Dataset, nu: f64) -> Vec<[f64; 9]> {
    let domain = Domain::new(ds.meta.nx, ds.meta.nz, ds.meta.lx, ds.meta.lz);
    (0..ds.meta.nt)
        .map(|f| {
            let u = ds.channel_frame_f64(f, CH_U);
            let w = ds.channel_frame_f64(f, CH_W);
            flow_stats(&domain, &u, &w, nu).as_array()
        })
        .collect()
}

/// One table row: per-metric scores plus the average R².
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Label of the configuration being scored (e.g. "γ = 0.0125").
    pub label: String,
    /// Per-metric `(100×NMAE, R²)` pairs in Table 1 column order.
    pub scores: Vec<MetricScore>,
    /// Average R² across the nine metrics.
    pub avg_r2: f64,
}

impl EvalRow {
    /// Renders the row in the paper's table style.
    pub fn format(&self) -> String {
        let mut s = format!("{:<24}", self.label);
        for m in &self.scores {
            s.push_str(&format!(" {:>8.3}({:>7.4})", m.nmae_pct, m.r2));
        }
        s.push_str(&format!("  avgR2={:.4}", self.avg_r2));
        s
    }
}

/// Scores a prediction against ground truth. `nu` is the dimensionless
/// viscosity `R*` of the ground-truth physics. The first `skip` frames are
/// excluded (the early transient has near-zero velocity and makes the
/// normalized scores degenerate).
pub fn evaluate_pair(label: &str, gt: &Dataset, pred: &Dataset, nu: f64, skip: usize) -> EvalRow {
    assert_eq!(gt.meta.nt, pred.meta.nt, "frame count mismatch");
    let g: Vec<[f64; 9]> = metric_series(gt, nu).into_iter().skip(skip).collect();
    let p: Vec<[f64; 9]> = metric_series(pred, nu).into_iter().skip(skip).collect();
    assert!(!g.is_empty(), "skip leaves no frames");
    let (scores, avg_r2) = score_metric_series(&g, &p);
    EvalRow { label: label.to_string(), scores, avg_r2 }
}

/// Pretty header matching [`EvalRow::format`] columns.
pub fn table_header() -> String {
    let mut s = format!("{:<24}", "model");
    for name in mfn_physics::METRIC_NAMES {
        s.push_str(&format!(" {:>17}", name));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_data::Dataset;
    use mfn_solver::{simulate, RbcConfig};

    fn sim_ds() -> Dataset {
        let sim = simulate(
            &RbcConfig { nx: 32, nz: 17, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            2.0,
            11,
        );
        Dataset::from_simulation(&sim)
    }

    #[test]
    fn self_evaluation_is_perfect() {
        let ds = sim_ds();
        let nu = (1.0f64 / 1e5).sqrt();
        let row = evaluate_pair("self", &ds, &ds, nu, 2);
        assert_eq!(row.scores.len(), 9);
        for m in &row.scores {
            assert!(m.nmae_pct.abs() < 1e-9, "{}: {}", m.name, m.nmae_pct);
            assert!((m.r2 - 1.0).abs() < 1e-9);
        }
        assert!((row.avg_r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn perturbed_prediction_scores_worse() {
        let ds = sim_ds();
        let mut bad = ds.clone();
        for v in bad.data.iter_mut() {
            *v *= 1.3;
        }
        let nu = (1.0f64 / 1e5).sqrt();
        let row = evaluate_pair("bad", &ds, &bad, nu, 2);
        assert!(row.scores.iter().any(|m| m.nmae_pct > 0.5), "{row:?}");
        assert!(row.avg_r2 < 1.0);
    }

    #[test]
    fn metric_series_length() {
        let ds = sim_ds();
        let series = metric_series(&ds, 1e-2);
        assert_eq!(series.len(), ds.meta.nt);
        for row in &series {
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn metric_series_matches_direct_flow_stats() {
        use mfn_solver::Domain;
        let ds = sim_ds();
        let nu = 1e-2;
        let series = metric_series(&ds, nu);
        let domain = Domain::new(ds.meta.nx, ds.meta.nz, ds.meta.lx, ds.meta.lz);
        let f = 7;
        let direct = mfn_physics::flow_stats(
            &domain,
            &ds.channel_frame_f64(f, mfn_data::CH_U),
            &ds.channel_frame_f64(f, mfn_data::CH_W),
            nu,
        )
        .as_array();
        for (a, b) in series[f].iter().zip(direct) {
            assert_eq!(*a, b);
        }
    }

    #[test]
    fn formatting_contains_all_columns() {
        let header = table_header();
        for name in mfn_physics::METRIC_NAMES {
            assert!(header.contains(name));
        }
        let ds = sim_ds();
        let nu = 1e-2;
        let row = evaluate_pair("fmt", &ds, &ds, nu, 0);
        let line = row.format();
        assert!(line.starts_with("fmt"));
        assert!(line.contains("avgR2"));
    }
}
