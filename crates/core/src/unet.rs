//! The Context Generation Network: a residual 3D U-Net (paper Sec. 4.1,
//! Fig. 5).
//!
//! Contractive path: a stem ResBlock followed by `levels` stages of
//! (anisotropic max-pool → ResBlock with doubled channels). Expansive path:
//! nearest-neighbour upsampling, skip concatenation with the matching
//! contractive feature map, and a ResBlock halving the channels. A final
//! 1×1×1 convolution maps to the `n_c` latent channels of the Latent Context
//! Grid, which has the same `[nt, nz, nx]` extent as the LR input patch.

use crate::config::MfnConfig;
use mfn_autodiff::{BatchNorm3d, Conv3dLayer, Graph, ParamStore, Var};
use mfn_tensor::{maxpool3d, upsample_nearest3d, Tensor};
use rand::Rng;

/// One residual block: `1×1×1 → BN → ReLU → 3×3×3 → BN → ReLU → 1×1×1 → BN`,
/// additive skip (with a 1×1×1 projection when channel counts differ),
/// final ReLU.
#[derive(Debug, Clone)]
pub struct ResBlock3d {
    conv1: Conv3dLayer,
    bn1: BatchNorm3d,
    conv2: Conv3dLayer,
    bn2: BatchNorm3d,
    conv3: Conv3dLayer,
    bn3: BatchNorm3d,
    /// Channel projection on the skip path, present iff `cin != cout`.
    skip: Option<Conv3dLayer>,
    /// Mid-block channel width (the 3×3×3 conv's width).
    mid: usize,
}

impl ResBlock3d {
    /// Registers a residual block mapping `cin` → `cout` channels.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cout: usize,
        rng: &mut R,
    ) -> Self {
        let mid = cout.max(1);
        ResBlock3d {
            conv1: Conv3dLayer::new(store, &format!("{name}.conv1"), cin, mid, [1, 1, 1], rng),
            bn1: BatchNorm3d::new(store, &format!("{name}.bn1"), mid),
            conv2: Conv3dLayer::new(store, &format!("{name}.conv2"), mid, mid, [3, 3, 3], rng),
            bn2: BatchNorm3d::new(store, &format!("{name}.bn2"), mid),
            conv3: Conv3dLayer::new(store, &format!("{name}.conv3"), mid, cout, [1, 1, 1], rng),
            bn3: BatchNorm3d::new(store, &format!("{name}.bn3"), cout),
            skip: if cin != cout {
                Some(Conv3dLayer::new(store, &format!("{name}.skip"), cin, cout, [1, 1, 1], rng))
            } else {
                None
            },
            mid,
        }
    }

    /// Records the block's forward pass.
    pub fn forward(&mut self, g: &mut Graph, store: &ParamStore, x: Var, training: bool) -> Var {
        let mut h = self.conv1.forward(g, store, x);
        h = self.bn1.forward(g, store, h, training);
        h = g.relu(h);
        h = self.conv2.forward(g, store, h);
        h = self.bn2.forward(g, store, h, training);
        h = g.relu(h);
        h = self.conv3.forward(g, store, h);
        h = self.bn3.forward(g, store, h, training);
        let shortcut = match &self.skip {
            Some(proj) => proj.forward(g, store, x),
            None => x,
        };
        let sum = g.add(h, shortcut);
        g.relu(sum)
    }

    /// Eager no-grad inference forward: eval-mode batch norm (frozen running
    /// statistics) and no tape. Takes `&self` — nothing is mutated, which is
    /// what lets the serving engine share one model across worker threads.
    /// Bit-identical to [`ResBlock3d::forward`] with `training = false`.
    pub fn forward_nograd(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut h = self.conv1.forward_nograd(store, x);
        h = self.bn1.forward_nograd(store, &h);
        h = h.map(|v| v.max(0.0));
        h = self.conv2.forward_nograd(store, &h);
        h = self.bn2.forward_nograd(store, &h);
        h = h.map(|v| v.max(0.0));
        h = self.conv3.forward_nograd(store, &h);
        h = self.bn3.forward_nograd(store, &h);
        let sum = match &self.skip {
            Some(proj) => h.add(&proj.forward_nograd(store, x)),
            None => h.add(x),
        };
        sum.map(|v| v.max(0.0))
    }

    /// Mid-block width (diagnostics).
    pub fn mid_channels(&self) -> usize {
        self.mid
    }

    /// Appends references to this block's batch-norm layers (for state
    /// checkpointing, in deterministic order).
    pub fn collect_bn<'a>(&'a self, out: &mut Vec<&'a BatchNorm3d>) {
        out.push(&self.bn1);
        out.push(&self.bn2);
        out.push(&self.bn3);
    }

    /// Mutable version of [`ResBlock3d::collect_bn`].
    pub fn collect_bn_mut<'a>(&'a mut self, out: &mut Vec<&'a mut BatchNorm3d>) {
        out.push(&mut self.bn1);
        out.push(&mut self.bn2);
        out.push(&mut self.bn3);
    }
}

/// The full residual 3D U-Net.
#[derive(Debug, Clone)]
pub struct UNet3d {
    stem: ResBlock3d,
    /// Contractive blocks, one per level (applied after pooling).
    down: Vec<ResBlock3d>,
    /// Expansive blocks, one per level (applied after upsample+concat).
    up: Vec<ResBlock3d>,
    /// Final 1×1×1 projection to the latent channels.
    head: Conv3dLayer,
    /// Per-level pooling factors `[t, z, x]`.
    pool: Vec<[usize; 3]>,
}

impl UNet3d {
    /// Registers the U-Net described by `cfg`.
    pub fn new<R: Rng>(store: &mut ParamStore, cfg: &MfnConfig, rng: &mut R) -> Self {
        let pool = cfg.pool_factors();
        let levels = cfg.levels;
        let c0 = cfg.base_channels;
        let stem = ResBlock3d::new(store, "unet.stem", cfg.in_channels, c0, rng);
        let mut down = Vec::with_capacity(levels);
        for l in 0..levels {
            let cin = c0 << l;
            let cout = c0 << (l + 1);
            down.push(ResBlock3d::new(store, &format!("unet.down{l}"), cin, cout, rng));
        }
        let mut up = Vec::with_capacity(levels);
        for l in (0..levels).rev() {
            // Input: upsampled (c0<<(l+1)) concat skip (c0<<l) -> output c0<<l.
            let cin = (c0 << (l + 1)) + (c0 << l);
            let cout = c0 << l;
            up.push(ResBlock3d::new(store, &format!("unet.up{l}"), cin, cout, rng));
        }
        let head = Conv3dLayer::new(store, "unet.head", c0, cfg.latent_channels, [1, 1, 1], rng);
        UNet3d { stem, down, up, head, pool }
    }

    /// Appends references to every batch-norm layer of the U-Net, in a
    /// deterministic order (stem, contractive, expansive).
    pub fn collect_bn<'a>(&'a self, out: &mut Vec<&'a BatchNorm3d>) {
        self.stem.collect_bn(out);
        for b in &self.down {
            b.collect_bn(out);
        }
        for b in &self.up {
            b.collect_bn(out);
        }
    }

    /// Mutable version of [`UNet3d::collect_bn`].
    pub fn collect_bn_mut<'a>(&'a mut self, out: &mut Vec<&'a mut BatchNorm3d>) {
        self.stem.collect_bn_mut(out);
        for b in &mut self.down {
            b.collect_bn_mut(out);
        }
        for b in &mut self.up {
            b.collect_bn_mut(out);
        }
    }

    /// Records the forward pass: `x: [N, Cin, nt, nz, nx]` →
    /// latent grid `[N, n_c, nt, nz, nx]`.
    pub fn forward(&mut self, g: &mut Graph, store: &ParamStore, x: Var, training: bool) -> Var {
        let mut h = self.stem.forward(g, store, x, training);
        let mut skips: Vec<Var> = Vec::with_capacity(self.down.len());
        for (l, block) in self.down.iter_mut().enumerate() {
            skips.push(h);
            h = g.maxpool3d(h, self.pool[l]);
            h = block.forward(g, store, h, training);
        }
        for (i, block) in self.up.iter_mut().enumerate() {
            let l = self.down.len() - 1 - i; // level being undone
            h = g.upsample3d(h, self.pool[l]);
            let skip = skips[l];
            h = g.concat(&[h, skip], 1);
            h = block.forward(g, store, h, training);
        }
        self.head.forward(g, store, h)
    }

    /// Eager no-grad inference forward (eval-mode BN, no tape, `&self`):
    /// `x: [N, Cin, nt, nz, nx]` → latent grid `[N, n_c, nt, nz, nx]`.
    /// Bit-identical to [`UNet3d::forward`] with `training = false`.
    pub fn forward_nograd(&self, store: &ParamStore, x: &Tensor) -> Tensor {
        let mut h = self.stem.forward_nograd(store, x);
        let mut skips: Vec<Tensor> = Vec::with_capacity(self.down.len());
        for (l, block) in self.down.iter().enumerate() {
            skips.push(h.clone());
            let (pooled, _indices) = maxpool3d(&h, self.pool[l]);
            h = block.forward_nograd(store, &pooled);
        }
        for (i, block) in self.up.iter().enumerate() {
            let l = self.down.len() - 1 - i; // level being undone
            h = upsample_nearest3d(&h, self.pool[l]);
            h = Tensor::concat(&[&h, &skips[l]], 1);
            h = block.forward_nograd(store, &h);
        }
        self.head.forward_nograd(store, &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_cfg() -> MfnConfig {
        MfnConfig::small()
    }

    #[test]
    fn resblock_preserves_shape() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut block = ResBlock3d::new(&mut store, "b", 3, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[2, 3, 2, 4, 4]));
        let y = block.forward(&mut g, &store, x, true);
        assert_eq!(g.value(y).dims(), &[2, 5, 2, 4, 4]);
    }

    #[test]
    fn resblock_identity_channels_skips_projection() {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let block = ResBlock3d::new(&mut store, "b", 4, 4, &mut rng);
        assert!(block.skip.is_none());
        let block2 = ResBlock3d::new(&mut store, "b2", 4, 8, &mut rng);
        assert!(block2.skip.is_some());
    }

    #[test]
    fn unet_latent_grid_matches_input_extent() {
        let cfg = small_cfg();
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut unet = UNet3d::new(&mut store, &cfg, &mut rng);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[1, 4, cfg.patch.nt, cfg.patch.nz, cfg.patch.nx]));
        let latent = unet.forward(&mut g, &store, x, true);
        assert_eq!(
            g.value(latent).dims(),
            &[1, cfg.latent_channels, cfg.patch.nt, cfg.patch.nz, cfg.patch.nx]
        );
    }

    #[test]
    fn unet_eval_mode_is_deterministic() {
        let cfg = small_cfg();
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut unet = UNet3d::new(&mut store, &cfg, &mut rng);
        let x0 = Tensor::randn(&[1, 4, cfg.patch.nt, cfg.patch.nz, cfg.patch.nx], 1.0, &mut rng);
        let run = |unet: &mut UNet3d| {
            let mut g = Graph::new();
            let x = g.constant(x0.clone());
            let y = unet.forward(&mut g, &store, x, false);
            g.value(y).clone()
        };
        let a = run(&mut unet);
        let b = run(&mut unet);
        assert_eq!(a, b);
    }

    #[test]
    fn unet_gradients_reach_all_params() {
        let cfg = small_cfg();
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut unet = UNet3d::new(&mut store, &cfg, &mut rng);
        let mut g = Graph::new();
        let x0 = Tensor::randn(&[2, 4, cfg.patch.nt, cfg.patch.nz, cfg.patch.nx], 1.0, &mut rng);
        let x = g.constant(x0);
        let y = unet.forward(&mut g, &store, x, true);
        let sq = g.mul(y, y);
        let loss = g.sum(sq);
        g.backward(loss);
        let grads = g.param_grads(&store);
        let mut nonzero = 0;
        for gr in &grads {
            if gr.max_abs() > 0.0 {
                nonzero += 1;
            }
        }
        // Every parameter tensor should receive some gradient.
        assert_eq!(nonzero, grads.len(), "{nonzero}/{} params got gradient", grads.len());
    }
}
