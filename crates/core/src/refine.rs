//! Test-time physics refinement: gradient descent on the *latent*.
//!
//! Chen et al. (arXiv:2304.12130) show that super-resolved fields improve
//! substantially when refined at inference time by descending the physics
//! residual. We already own every ingredient: the frozen decoder, the
//! FD-stencil equation residual from training ([`equation_loss_at_points`]),
//! and the reverse-mode tape. [`refine_latent`] composes them: build a small
//! tape whose only gradient leaf is the latent grid (the weights stay
//! frozen constants), take the equation residual at the client's query
//! points as the loss, and run a few backtracking gradient steps.
//!
//! Three properties the serving layer depends on are enforced here:
//!
//! - **Monotone residual.** A step is only *accepted* when it strictly
//!   reduces the residual at the query points; a rejected step halves the
//!   learning rate and retries from the current iterate, and an accepted
//!   step doubles it so the rate adapts to the objective's scale. The
//!   accepted residual trace is therefore non-increasing by construction.
//! - **Bounded compute.** The loop stops at `max_steps` candidate
//!   evaluations, at the early-stop tolerance, at the wall-clock cap, or
//!   when the learning rate collapses — whichever comes first. Every bound
//!   is a [`RefineBudget`] field the client pays for explicitly.
//! - **Determinism.** For a fixed (weights, latent, points, budget) the
//!   result is bit-reproducible as long as the wall-clock cap does not bind:
//!   the tape is rebuilt identically every step and no randomness enters.
//!   (A binding wall-clock cap truncates the step count — that is the one
//!   intentionally nondeterministic budget axis.)
//!
//! Gradients always run on the exact f32 tape decoder — a bf16-quantized
//! serving decoder never participates in refinement (its rounding would
//! poison the descent direction); only the final value decode may be
//! quantized, which is the caller's choice.

use crate::config::MfnConfig;
use crate::decoder::ContinuousDecoder;
use crate::losses::{equation_loss_at_points, ChannelStats, ConstraintSet, RbcParamsF32};
use mfn_autodiff::{Graph, ParamStore};
use mfn_tensor::Tensor;
use std::time::Instant;

/// Learning rate below which descent has stalled and the loop stops.
const LR_FLOOR: f32 = 1e-10;

/// Physics context for refinement: which residual to descend and how to
/// interpret decoder outputs physically. Serving has no [`mfn_data`]
/// sampler in the loop, so everything the training loss read from samples
/// and dataset metadata arrives here explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineSettings {
    /// Dimensionless Rayleigh–Bénard coefficients.
    pub params: RbcParamsF32,
    /// Channel denormalization statistics (identity when the server has no
    /// dataset metadata — the residual is then in normalized units, which
    /// descent minimizes just as well).
    pub stats: ChannelStats,
    /// Physical extent of the patch per `[t, z, x]` axis.
    pub extent_phys: [f64; 3],
    /// FD stencil step in local coordinates.
    pub h_local: f32,
    /// Which PDE residuals enter the objective.
    pub constraints: ConstraintSet,
    /// Initial gradient-descent learning rate (backtracking halves it on
    /// rejected steps).
    pub lr: f32,
}

impl RefineSettings {
    /// Settings derived from an architecture config: the training stencil
    /// step and constraint set, identity normalization, unit extent, and
    /// the paper's Ra/Pr. This is what a server uses when the checkpoint
    /// sidecar carries no dataset statistics.
    pub fn from_config(cfg: &MfnConfig) -> Self {
        RefineSettings {
            params: RbcParamsF32::from_ra_pr(1e5, 1.0),
            stats: ChannelStats { mean: [0.0; 4], std: [1.0; 4] },
            extent_phys: [1.0; 3],
            h_local: cfg.fd_step,
            constraints: cfg.constraints,
            lr: 0.05,
        }
    }
}

impl Default for RefineSettings {
    fn default() -> Self {
        RefineSettings {
            params: RbcParamsF32::from_ra_pr(1e5, 1.0),
            stats: ChannelStats { mean: [0.0; 4], std: [1.0; 4] },
            extent_phys: [1.0; 3],
            h_local: 2e-2,
            constraints: ConstraintSet::ALL,
            lr: 0.05,
        }
    }
}

/// Per-request compute budget. Every axis bounds work the client pays for;
/// none can extend it past the server's caps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineBudget {
    /// Maximum candidate steps (gradient evaluations are bounded by
    /// `max_steps + 1`). Zero means "decode without refining".
    pub max_steps: u32,
    /// Early-stop once the mean absolute residual is at or below this.
    pub tol: f32,
    /// Wall-clock cap in microseconds; `0` disables the cap (the step
    /// bound still applies).
    pub max_micros: u64,
}

impl RefineBudget {
    /// A `k`-step budget with no tolerance or wall-clock stop — the
    /// deterministic configuration property tests use.
    pub fn steps(k: u32) -> Self {
        RefineBudget { max_steps: k, tol: 0.0, max_micros: 0 }
    }
}

/// What a refinement run did, alongside the refined latent.
#[derive(Debug, Clone, PartialEq)]
pub struct RefineReport {
    /// Candidate steps evaluated (each costs one residual evaluation).
    pub steps_run: u32,
    /// Steps that strictly reduced the residual and were kept.
    pub steps_accepted: u32,
    /// Mean absolute residual at the query points before any step.
    pub initial_residual: f32,
    /// Residual of the returned latent.
    pub final_residual: f32,
    /// Residual after each *accepted* step, starting with the initial
    /// value — non-increasing by construction.
    pub residual_trace: Vec<f32>,
}

/// Runs budgeted gradient descent on `latent` minimizing the PDE equation
/// residual at `points`, with the decoder weights frozen. Returns the
/// refined latent (always a fresh tensor — the input is never mutated, so
/// a shared cache entry stays bit-identical) and a [`RefineReport`].
///
/// # Panics
/// Panics on empty `points` or an out-of-range `h_local` (the serving layer
/// validates both into typed errors before calling).
#[allow(clippy::too_many_arguments)]
pub fn refine_latent(
    store: &ParamStore,
    decoder: &ContinuousDecoder,
    latent: &Tensor,
    grid_dims: [usize; 3],
    points: &[(usize, [f32; 3])],
    settings: &RefineSettings,
    budget: &RefineBudget,
) -> (Tensor, RefineReport) {
    let residual_of = |lat: &Tensor| -> f32 {
        let mut g = Graph::new();
        let l = g.constant(lat.clone());
        let loss = equation_loss_at_points(
            &mut g,
            store,
            decoder,
            l,
            points,
            grid_dims,
            settings.extent_phys,
            settings.params,
            settings.stats,
            settings.h_local,
            settings.constraints,
        );
        g.value(loss).item()
    };
    // Same forward, but with the latent as a gradient leaf. The forward
    // value is bit-identical to `residual_of` (the tape records the same
    // ops either way), so accepted candidates reuse it.
    let grad_of = |lat: &Tensor| -> (f32, Tensor) {
        let mut g = Graph::new();
        let l = g.leaf_with_grad(lat.clone());
        let loss = equation_loss_at_points(
            &mut g,
            store,
            decoder,
            l,
            points,
            grid_dims,
            settings.extent_phys,
            settings.params,
            settings.stats,
            settings.h_local,
            settings.constraints,
        );
        let v = g.value(loss).item();
        g.backward(loss);
        (v, g.grad(l).clone())
    };

    let start = Instant::now();
    let mut cur = latent.clone();
    let mut cur_res = residual_of(&cur);
    let mut report = RefineReport {
        steps_run: 0,
        steps_accepted: 0,
        initial_residual: cur_res,
        final_residual: cur_res,
        residual_trace: vec![cur_res],
    };
    if budget.max_steps == 0 || !cur_res.is_finite() {
        return (cur, report);
    }

    let mut lr = settings.lr.max(LR_FLOOR);
    let mut grad = grad_of(&cur).1;
    while report.steps_run < budget.max_steps
        && cur_res > budget.tol
        && lr >= LR_FLOOR
        && !(budget.max_micros > 0 && start.elapsed().as_micros() as u64 >= budget.max_micros)
    {
        report.steps_run += 1;
        let cand = axpy(&cur, -lr, &grad);
        let cand_res = residual_of(&cand);
        if cand_res.is_finite() && cand_res < cur_res {
            cur = cand;
            cur_res = cand_res;
            report.steps_accepted += 1;
            report.residual_trace.push(cur_res);
            // An accepted step means the current rate is conservative: grow
            // it so the rate adapts to the objective's scale instead of
            // creeping at whatever `settings.lr` happened to be. Overshoots
            // are caught by the reject branch, which halves it right back —
            // the trace stays monotone either way, and the doubling rule is
            // deterministic.
            lr *= 2.0;
            if report.steps_run < budget.max_steps && cur_res > budget.tol {
                grad = grad_of(&cur).1;
            }
        } else {
            // Overshot (or hit a non-finite region): the direction is still
            // a descent direction at `cur`, so halve and retry from there.
            lr *= 0.5;
        }
    }
    report.final_residual = cur_res;
    (cur, report)
}

/// `a + s·b`, elementwise, as a fresh tensor.
fn axpy(a: &Tensor, s: f32, b: &Tensor) -> Tensor {
    assert_eq!(a.dims(), b.dims(), "axpy dims");
    let v: Vec<f32> = a.data().iter().zip(b.data()).map(|(x, y)| x + s * y).collect();
    Tensor::from_vec(v, a.dims())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_autodiff::{Activation, Mlp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (ParamStore, ContinuousDecoder) {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let mlp = Mlp::new(&mut store, "d", &[3 + 5, 16, 8, 4], Activation::Softplus, &mut rng);
        (store, ContinuousDecoder::new(mlp, 5))
    }

    fn points(n: usize, seed: u64) -> Vec<(usize, [f32; 3])> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (
                    0usize,
                    [
                        rand::Rng::gen::<f32>(&mut rng),
                        rand::Rng::gen::<f32>(&mut rng),
                        rand::Rng::gen::<f32>(&mut rng),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn zero_steps_is_identity_and_reports_initial_residual() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let pts = points(6, 2);
        let (out, rep) = refine_latent(
            &store,
            &dec,
            &latent,
            [3, 4, 4],
            &pts,
            &RefineSettings::default(),
            &RefineBudget::steps(0),
        );
        assert_eq!(out.data(), latent.data(), "k=0 must not move the latent");
        assert_eq!(rep.steps_run, 0);
        assert_eq!(rep.steps_accepted, 0);
        assert_eq!(rep.initial_residual, rep.final_residual);
        assert!(rep.initial_residual.is_finite() && rep.initial_residual > 0.0);
    }

    #[test]
    fn residual_trace_is_strictly_decreasing_over_accepted_steps() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let pts = points(8, 4);
        let (_, rep) = refine_latent(
            &store,
            &dec,
            &latent,
            [3, 4, 4],
            &pts,
            &RefineSettings::default(),
            &RefineBudget::steps(12),
        );
        assert!(rep.steps_accepted > 0, "descent should accept at least one step");
        assert_eq!(rep.residual_trace.len() as u32, rep.steps_accepted + 1);
        for w in rep.residual_trace.windows(2) {
            assert!(w[1] < w[0], "accepted step increased residual: {} -> {}", w[0], w[1]);
        }
        assert!(rep.final_residual < rep.initial_residual);
        assert_eq!(rep.final_residual, *rep.residual_trace.last().unwrap());
    }

    #[test]
    fn refinement_is_deterministic() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let pts = points(5, 6);
        let run = || {
            refine_latent(
                &store,
                &dec,
                &latent,
                [3, 4, 4],
                &pts,
                &RefineSettings::default(),
                &RefineBudget::steps(6),
            )
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a.data(), b.data(), "refined latents must be bit-identical");
        assert_eq!(ra, rb);
    }

    #[test]
    fn input_latent_is_never_mutated() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let before = latent.data().to_vec();
        let pts = points(4, 8);
        let (out, rep) = refine_latent(
            &store,
            &dec,
            &latent,
            [3, 4, 4],
            &pts,
            &RefineSettings::default(),
            &RefineBudget::steps(8),
        );
        assert_eq!(latent.data(), &before[..], "refine must not touch its input");
        if rep.steps_accepted > 0 {
            assert_ne!(out.data(), &before[..], "accepted steps must move the copy");
        }
    }

    #[test]
    fn tolerance_and_wallclock_stop_early() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let pts = points(4, 10);
        // A tolerance above the initial residual: no steps at all.
        let (_, rep) = refine_latent(
            &store,
            &dec,
            &latent,
            [3, 4, 4],
            &pts,
            &RefineSettings::default(),
            &RefineBudget { max_steps: 10, tol: f32::MAX, max_micros: 0 },
        );
        assert_eq!(rep.steps_run, 0, "tolerance already met, no step should run");
        // A 1 µs wall-clock cap: the initial residual is still reported,
        // and the step count stays far below the budget.
        let (_, rep) = refine_latent(
            &store,
            &dec,
            &latent,
            [3, 4, 4],
            &pts,
            &RefineSettings::default(),
            &RefineBudget { max_steps: u32::MAX, tol: 0.0, max_micros: 1 },
        );
        assert!(rep.steps_run <= 1, "wall-clock cap must bound the loop");
        assert!(rep.initial_residual.is_finite());
    }
}
