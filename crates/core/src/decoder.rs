//! The Continuous Decoding Network (paper Sec. 4.2, Fig. 4).
//!
//! A query at local patch coordinates `(t, z, x) ∈ [0,1]³` falls into one
//! cell of the Latent Context Grid. The decoder runs the shared MLP once per
//! bounding vertex — on the concatenation of the query's coordinates
//! *relative to that vertex* and the vertex's latent vector — and blends the
//! 8 results with trilinear weights (Eqn. 6).
//!
//! Two evaluation paths exist:
//!
//! - **tape**: [`ContinuousDecoder::decode`] records the computation on the
//!   reverse-mode graph (training, and plain inference);
//! - **jets**: [`ContinuousDecoder::decode_jet`] propagates exact first and
//!   second space-time derivatives through the MLP *and* the trilinear
//!   blending (inference-time PDE residuals, and the oracle the training
//!   stencil is validated against).

use mfn_autodiff::{mlp_jet, Graph, Jet3, JetVec, Mlp, ParamStore, QuantizedMlp, Var};
use mfn_tensor::{blend_rows, gather_concat_rows, Tensor};

/// Number of bounding vertices of a 3D cell.
pub const VERTICES: usize = 8;

/// Precomputed lookup data for a set of queries against one latent grid.
#[derive(Debug, Clone, Default)]
pub struct QueryPlan {
    /// Flat vertex indices (`batch·vol + spatial`), `Q × 8` entries.
    pub index: Vec<u32>,
    /// Relative coordinates `(t, z, x)` per vertex row, `Q × 8 × 3`.
    pub rel: Vec<f32>,
    /// Trilinear blending weights, `Q × 8` entries.
    pub weights: Vec<f32>,
}

impl QueryPlan {
    /// Number of query points in the plan.
    pub fn len(&self) -> usize {
        self.weights.len() / VERTICES
    }

    /// Whether the plan holds no queries.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Per-axis cell lookup: lower vertex index and fractional offset on the
/// vertex grid (`n` vertices spanning local `[0, 1]`).
#[inline]
fn locate(local: f32, n: usize) -> (usize, f32) {
    let s = (local.clamp(0.0, 1.0)) * (n - 1) as f32;
    let i = (s.floor() as usize).min(n.saturating_sub(2));
    (i, s - i as f32)
}

/// Builds a [`QueryPlan`] for queries on a latent grid of vertex dims
/// `[nt, nz, nx]`. `queries` supplies `(batch_index, [t, z, x])` pairs with
/// local coordinates in `[0, 1]`.
pub fn plan_queries(
    grid_dims: [usize; 3],
    queries: impl IntoIterator<Item = (usize, [f32; 3])>,
) -> QueryPlan {
    let [nt, nz, nx] = grid_dims;
    assert!(nt >= 2 && nz >= 2 && nx >= 2, "latent grid needs >= 2 vertices per axis");
    let vol = (nt * nz * nx) as u32;
    let mut plan = QueryPlan::default();
    for (b, local) in queries {
        let (it, ft) = locate(local[0], nt);
        let (iz, fz) = locate(local[1], nz);
        let (ix, fx) = locate(local[2], nx);
        for v in 0..VERTICES {
            let (dt, dz, dx) = ((v >> 2) & 1, (v >> 1) & 1, v & 1);
            let flat = b as u32 * vol + (((it + dt) * nz + (iz + dz)) * nx + (ix + dx)) as u32;
            plan.index.push(flat);
            plan.rel.push(ft - dt as f32);
            plan.rel.push(fz - dz as f32);
            plan.rel.push(fx - dx as f32);
            let wt = if dt == 1 { ft } else { 1.0 - ft };
            let wz = if dz == 1 { fz } else { 1.0 - fz };
            let wx = if dx == 1 { fx } else { 1.0 - fx };
            plan.weights.push(wt * wz * wx);
        }
    }
    plan
}

/// The shared decoding MLP plus its latent/output widths.
#[derive(Debug, Clone)]
pub struct ContinuousDecoder {
    /// The decoding MLP (`[3 + n_c, …hidden…, out]`).
    pub mlp: Mlp,
    /// Latent vector width `n_c`.
    pub latent_channels: usize,
    /// Physical output channels.
    pub out_channels: usize,
}

impl ContinuousDecoder {
    /// Wraps an MLP whose input width must equal `3 + latent_channels`.
    pub fn new(mlp: Mlp, latent_channels: usize) -> Self {
        assert_eq!(
            mlp.in_features(),
            3 + latent_channels,
            "decoder MLP input must be 3 coords + latent"
        );
        let out_channels = mlp.out_features();
        ContinuousDecoder { mlp, latent_channels, out_channels }
    }

    /// Tape path: decodes a plan against a latent grid node
    /// `latent: [N, n_c, nt, nz, nx]`, returning predictions `[Q, out]`.
    pub fn decode(&self, g: &mut Graph, store: &ParamStore, latent: Var, plan: &QueryPlan) -> Var {
        assert!(!plan.is_empty(), "empty query plan");
        let rows = g.gather_vertices(latent, plan.index.clone());
        let coords = g.constant(Tensor::from_vec(plan.rel.clone(), &[plan.index.len(), 3]));
        let inp = g.concat(&[coords, rows], 1);
        let out = self.mlp.forward(g, store, inp);
        g.vertex_blend(out, plan.weights.clone(), VERTICES)
    }

    /// Eager no-grad path: the same math as [`ContinuousDecoder::decode`]
    /// with no tape recorded, so the result is bit-identical — the only
    /// difference is that the gather and coordinate concat are fused into a
    /// single input-build pass (pure copies, same bits, one less full-width
    /// intermediate on the serving hot path). Takes `&self` and only reads
    /// `store`, which is what the serving engine's concurrent decode batches
    /// rely on.
    pub fn decode_nograd(&self, store: &ParamStore, latent: &Tensor, plan: &QueryPlan) -> Tensor {
        assert!(!plan.is_empty(), "empty query plan");
        let inp = gather_concat_rows(latent, &plan.index, &plan.rel);
        let out = self.mlp.forward_nograd(store, &inp);
        blend_rows(&out, &plan.weights, VERTICES)
    }

    /// Jet path: exact value + first + diagonal-second space-time derivatives
    /// of every output channel at one query point.
    ///
    /// `latent` is the latent grid as a plain tensor `[N, n_c, nt, nz, nx]`;
    /// `local` are the query's local coordinates; `extent_phys` the physical
    /// patch extents (chain rule `d(local)/d(phys) = 1/extent`). Returns one
    /// [`Jet3`] per output channel with derivatives in *physical* units
    /// (of the normalized outputs — denormalization is the caller's job).
    pub fn decode_jet(
        &self,
        store: &ParamStore,
        latent: &Tensor,
        batch: usize,
        local: [f32; 3],
        extent_phys: [f64; 3],
    ) -> Vec<Jet3> {
        assert_eq!(latent.shape().rank(), 5);
        let c = latent.dims()[1];
        assert_eq!(c, self.latent_channels);
        let (nt, nz, nx) = (latent.dims()[2], latent.dims()[3], latent.dims()[4]);
        let vol = nt * nz * nx;
        let (it, ft) = locate(local[0], nt);
        let (iz, fz) = locate(local[1], nz);
        let (ix, fx) = locate(local[2], nx);
        // d(frac)/d(phys): frac advances by (n-1) per unit local coordinate.
        let scale = [
            ((nt - 1) as f64 / extent_phys[0].max(1e-30)) as f32,
            ((nz - 1) as f64 / extent_phys[1].max(1e-30)) as f32,
            ((nx - 1) as f64 / extent_phys[2].max(1e-30)) as f32,
        ];
        let mut acc = vec![Jet3::constant(0.0); self.out_channels];
        for v in 0..VERTICES {
            let (dt, dz, dx) = ((v >> 2) & 1, (v >> 1) & 1, v & 1);
            // Coordinate jets: rel = frac - d, with d(rel)/d(phys) = scale.
            let jets: Vec<Jet3> = [
                Jet3::scaled_variable(ft - dt as f32, 0, scale[0]),
                Jet3::scaled_variable(fz - dz as f32, 1, scale[1]),
                Jet3::scaled_variable(fx - dx as f32, 2, scale[2]),
            ]
            .into_iter()
            .chain((0..c).map(|ci| {
                let sp = ((it + dt) * nz + (iz + dz)) * nx + (ix + dx);
                Jet3::constant(latent.data()[(batch * c + ci) * vol + sp])
            }))
            .collect();
            let out = mlp_jet(&self.mlp, store, &JetVec::from_jets(&jets));
            // Trilinear weight as a jet (each factor linear in one phys axis).
            let wt = Jet3::scaled_variable(
                if dt == 1 { ft } else { 1.0 - ft },
                0,
                if dt == 1 { scale[0] } else { -scale[0] },
            );
            let wz = Jet3::scaled_variable(
                if dz == 1 { fz } else { 1.0 - fz },
                1,
                if dz == 1 { scale[1] } else { -scale[1] },
            );
            let wx = Jet3::scaled_variable(
                if dx == 1 { fx } else { 1.0 - fx },
                2,
                if dx == 1 { scale[2] } else { -scale[2] },
            );
            let w = wt.mul(wz).mul(wx);
            for (o, a) in acc.iter_mut().enumerate() {
                *a = a.add(w.mul(out.jet(o)));
            }
        }
        acc
    }
}

/// A bf16-quantized snapshot of a [`ContinuousDecoder`] for reduced-precision
/// serving: the MLP's weights live as prepacked bf16 GEMM panels
/// ([`QuantizedMlp`]), while the gather/concat input build, biases,
/// activations, and trilinear blending all stay f32. Two tiers share the
/// snapshot (same packed weights): the *store* tier
/// ([`QuantizedDecoder::quantize`]) keeps activations and accumulation in
/// exact f32, while the *compute* tier
/// ([`QuantizedDecoder::quantize_compute`]) also rounds each layer's
/// activations to bf16 and runs `vdpbf16ps` tile arithmetic — a looser
/// contract bought for ~2x GEMM throughput on `avx512bf16` hosts. Opt-in —
/// built once, then decoded against like the full-precision path.
#[derive(Debug, Clone)]
pub struct QuantizedDecoder {
    mlp: QuantizedMlp,
    out_channels: usize,
    bf16_compute: bool,
}

impl QuantizedDecoder {
    /// Quantizes a decoder's MLP weights out of `store` (source untouched);
    /// decodes run the bf16-store tier.
    pub fn quantize(dec: &ContinuousDecoder, store: &ParamStore) -> Self {
        QuantizedDecoder {
            mlp: QuantizedMlp::quantize(&dec.mlp, store),
            out_channels: dec.out_channels,
            bf16_compute: false,
        }
    }

    /// Like [`QuantizedDecoder::quantize`], but decodes run the
    /// bf16-compute tier (activations quantized too, `vdpbf16ps` tiles).
    pub fn quantize_compute(dec: &ContinuousDecoder, store: &ParamStore) -> Self {
        QuantizedDecoder { bf16_compute: true, ..Self::quantize(dec, store) }
    }

    /// Resident bytes of the quantized weight panels.
    pub fn weight_bytes(&self) -> usize {
        self.mlp.weight_bytes()
    }

    /// Physical output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// True when decodes run the bf16-compute tier.
    pub fn bf16_compute(&self) -> bool {
        self.bf16_compute
    }

    /// Reduced-precision twin of [`ContinuousDecoder::decode_nograd`]: same
    /// input build and blending, bf16 weight panels inside the MLP (and
    /// bf16 activations on the compute tier).
    pub fn decode(&self, latent: &Tensor, plan: &QueryPlan) -> Tensor {
        assert!(!plan.is_empty(), "empty query plan");
        let inp = gather_concat_rows(latent, &plan.index, &plan.rel);
        let out =
            if self.bf16_compute { self.mlp.forward_compute(&inp) } else { self.mlp.forward(&inp) };
        blend_rows(&out, &plan.weights, VERTICES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_autodiff::Activation;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (ParamStore, ContinuousDecoder) {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mlp = Mlp::new(&mut store, "dec", &[3 + 6, 24, 16, 4], Activation::Softplus, &mut rng);
        let dec = ContinuousDecoder::new(mlp, 6);
        (store, dec)
    }

    fn random_latent(seed: u64, dims: &[usize]) -> Tensor {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Tensor::randn(dims, 0.5, &mut rng)
    }

    #[test]
    fn plan_weights_partition_unity() {
        let plan = plan_queries(
            [4, 8, 8],
            (0..50).map(|q| {
                let f = q as f32 / 49.0;
                (0usize, [f, (f * 0.7).fract(), (f * 1.3).fract()])
            }),
        );
        assert_eq!(plan.len(), 50);
        for q in 0..50 {
            let s: f32 = plan.weights[q * 8..(q + 1) * 8].iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "query {q} weights sum {s}");
        }
    }

    #[test]
    fn plan_vertex_query_hits_single_vertex() {
        // A query exactly on vertex (1,2,3) of a [4,8,8] grid.
        let local = [1.0 / 3.0, 2.0 / 7.0, 3.0 / 7.0];
        let plan = plan_queries([4, 8, 8], [(0usize, local)]);
        let hot: Vec<usize> = (0..8).filter(|&v| plan.weights[v].abs() > 1e-5).collect();
        assert_eq!(hot.len(), 1);
        let v = hot[0];
        assert!((plan.weights[v] - 1.0).abs() < 1e-5);
        // That vertex must be (1,2,3) flattened on [4,8,8].
        assert_eq!(plan.index[v], ((8 + 2) * 8 + 3) as u32);
        // Its relative coordinates are 0.
        for a in 0..3 {
            assert!(plan.rel[v * 3 + a].abs() < 1e-5);
        }
    }

    #[test]
    fn decode_shapes_and_determinism() {
        let (store, dec) = setup();
        let latent = random_latent(1, &[2, 6, 3, 4, 4]);
        let queries: Vec<(usize, [f32; 3])> =
            vec![(0, [0.2, 0.3, 0.4]), (1, [0.9, 0.1, 0.5]), (0, [0.0, 1.0, 0.5])];
        let plan = plan_queries([3, 4, 4], queries);
        let run = || {
            let mut g = Graph::new();
            let l = g.constant(latent.clone());
            let y = dec.decode(&mut g, &store, l, &plan);
            g.value(y).clone()
        };
        let a = run();
        assert_eq!(a.dims(), &[3, 4]);
        assert_eq!(a, run());
    }

    #[test]
    fn jet_value_matches_tape_value() {
        let (store, dec) = setup();
        let latent = random_latent(2, &[1, 6, 3, 4, 4]);
        let local = [0.37, 0.61, 0.23];
        let plan = plan_queries([3, 4, 4], [(0usize, local)]);
        let mut g = Graph::new();
        let l = g.constant(latent.clone());
        let y = dec.decode(&mut g, &store, l, &plan);
        let jets = dec.decode_jet(&store, &latent, 0, local, [1.0, 1.0, 1.0]);
        for (o, jet) in jets.iter().enumerate() {
            assert!(
                (g.value(y).data()[o] - jet.v).abs() < 1e-4,
                "channel {o}: tape {} jet {}",
                g.value(y).data()[o],
                jet.v
            );
        }
    }

    #[test]
    fn jet_derivatives_match_finite_differences_of_tape() {
        let (store, dec) = setup();
        let latent = random_latent(3, &[1, 6, 3, 4, 4]);
        let extent = [2.0f64, 0.5, 1.5];
        // Chosen so the FD stencil stays inside one latent cell: the decoder
        // is only C⁰ across cell faces, where jets (one-sided, exact) and
        // finite differences (face-straddling) legitimately disagree.
        let local = [0.41, 0.52, 0.45];
        let value = |loc: [f32; 3]| -> Vec<f32> {
            let plan = plan_queries([3, 4, 4], [(0usize, loc)]);
            let mut g = Graph::new();
            let l = g.constant(latent.clone());
            let y = dec.decode(&mut g, &store, l, &plan);
            g.value(y).data().to_vec()
        };
        let jets = dec.decode_jet(&store, &latent, 0, local, extent);
        // FD in *physical* units: step h_phys => h_local = h_phys / extent.
        for axis in 0..3 {
            let h_phys = 1e-2f64 * extent[axis];
            let h_local = (h_phys / extent[axis]) as f32;
            let mut lp = local;
            lp[axis] += h_local;
            let mut lm = local;
            lm[axis] -= h_local;
            let (fp, fm, f0) = (value(lp), value(lm), value(local));
            for o in 0..4 {
                let d_fd = (fp[o] - fm[o]) as f64 / (2.0 * h_phys);
                let dd_fd = (fp[o] - 2.0 * f0[o] + fm[o]) as f64 / (h_phys * h_phys);
                assert!(
                    (jets[o].d[axis] as f64 - d_fd).abs() < 2e-2 * (1.0 + d_fd.abs()),
                    "axis {axis} ch {o}: jet {} fd {d_fd}",
                    jets[o].d[axis]
                );
                assert!(
                    (jets[o].dd[axis] as f64 - dd_fd).abs() < 2e-1 * (1.0 + dd_fd.abs()),
                    "axis {axis} ch {o}: jet dd {} fd {dd_fd}",
                    jets[o].dd[axis]
                );
            }
        }
    }

    #[test]
    fn gradients_flow_to_latent_grid() {
        let (store, dec) = setup();
        let latent = random_latent(4, &[1, 6, 3, 4, 4]);
        let plan = plan_queries([3, 4, 4], [(0usize, [0.5, 0.5, 0.5])]);
        let mut g = Graph::new();
        let l = g.leaf_with_grad(latent);
        let y = dec.decode(&mut g, &store, l, &plan);
        let sq = g.mul(y, y);
        let loss = g.sum(sq);
        g.backward(loss);
        assert!(g.grad(l).max_abs() > 0.0, "no gradient reached the latent grid");
    }

    /// The quantized decoder tracks the f32 path to bf16 weight precision:
    /// ~2^-8 relative per product, amplified through two hidden layers.
    #[test]
    fn quantized_decoder_tracks_f32_path() {
        let (store, dec) = setup();
        let qdec = QuantizedDecoder::quantize(&dec, &store);
        assert!(qdec.weight_bytes() > 0);
        assert_eq!(qdec.out_channels(), dec.out_channels);
        let latent = random_latent(6, &[2, 6, 3, 4, 4]);
        let plan = plan_queries(
            [3, 4, 4],
            (0..40).map(|q| {
                let f = q as f32 / 39.0;
                (q % 2, [f, (f * 0.7).fract(), (f * 1.3).fract()])
            }),
        );
        let exact = dec.decode_nograd(&store, &latent, &plan);
        let quant = qdec.decode(&latent, &plan);
        assert_eq!(exact.dims(), quant.dims());
        for (i, (a, b)) in exact.data().iter().zip(quant.data()).enumerate() {
            assert!(
                (a - b).abs() < 3e-2 * (1.0 + a.abs()),
                "row {i}: f32 {a} vs bf16 {b} diverged beyond quantization noise"
            );
        }
    }

    #[test]
    fn queries_outside_range_are_clamped() {
        let (store, dec) = setup();
        let latent = random_latent(5, &[1, 6, 3, 4, 4]);
        let plan_in = plan_queries([3, 4, 4], [(0usize, [1.0, 0.0, 1.0])]);
        let plan_out = plan_queries([3, 4, 4], [(0usize, [1.7, -0.4, 2.0])]);
        let eval = |plan: &QueryPlan| {
            let mut g = Graph::new();
            let l = g.constant(latent.clone());
            let y = dec.decode(&mut g, &store, l, plan);
            g.value(y).data().to_vec()
        };
        assert_eq!(eval(&plan_in), eval(&plan_out));
    }
}
