//! The two training losses of paper Sec. 4.3.
//!
//! - **Prediction loss** (Eqn. 8): L1 between decoded values and the
//!   HR-interpolated ground truth at the query points.
//! - **Equation loss** (Eqn. 9): L1 norm of the four Rayleigh–Bénard
//!   residuals at the query points. The space-time derivatives of the decoder
//!   outputs are computed with central finite-difference stencils of extra
//!   decoder evaluations — each stencil point is an ordinary decoder query on
//!   the tape, so `∂Loss/∂θ` flows exactly through the stencil (see DESIGN.md
//!   for why this substitutes for the paper's autograd-through-inputs, and
//!   `decoder::tests` for the jet-based validation of the stencil).

use crate::decoder::{plan_queries, ContinuousDecoder, QueryPlan};
use mfn_autodiff::{Graph, ParamStore, Var};
use mfn_data::Sample;
use mfn_tensor::Tensor;

/// Which PDE residuals enter the equation loss. The paper's headline claim
/// is support for "arbitrary combinations of PDE constraints"; this is that
/// combination switch (default: all four Rayleigh-Benard equations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintSet {
    /// Continuity `u_x + w_z = 0` (Eqn. 3a).
    pub continuity: bool,
    /// Temperature transport (Eqn. 3b).
    pub temperature: bool,
    /// x-momentum (Eqn. 3c, x-component).
    pub momentum_x: bool,
    /// z-momentum with buoyancy (Eqn. 3c, z-component).
    pub momentum_z: bool,
}

impl ConstraintSet {
    /// All four equations (the paper's configuration).
    pub const ALL: ConstraintSet =
        ConstraintSet { continuity: true, temperature: true, momentum_x: true, momentum_z: true };

    /// Only the divergence-free constraint (the Jiang et al. 2020 spectral-
    /// projection setting the paper cites as related work).
    pub const CONTINUITY_ONLY: ConstraintSet = ConstraintSet {
        continuity: true,
        temperature: false,
        momentum_x: false,
        momentum_z: false,
    };

    /// Number of active constraints.
    pub fn count(&self) -> usize {
        usize::from(self.continuity)
            + usize::from(self.temperature)
            + usize::from(self.momentum_x)
            + usize::from(self.momentum_z)
    }
}

impl Default for ConstraintSet {
    fn default() -> Self {
        ConstraintSet::ALL
    }
}

/// Per-channel normalization statistics (copied from the HR dataset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelStats {
    /// Channel means `(T, p, u, w)`.
    pub mean: [f32; 4],
    /// Channel standard deviations.
    pub std: [f32; 4],
}

impl ChannelStats {
    /// Reads the statistics recorded in a dataset's metadata.
    pub fn from_meta(meta: &mfn_data::DatasetMeta) -> Self {
        ChannelStats {
            mean: meta.channel_mean,
            std: {
                let mut s = meta.channel_std;
                for v in s.iter_mut() {
                    *v = v.max(1e-8);
                }
                s
            },
        }
    }
}

/// Dimensionless PDE coefficients in `f32` (tape precision).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbcParamsF32 {
    /// `P* = (Ra·Pr)^{-1/2}`.
    pub p_star: f32,
    /// `R* = (Ra/Pr)^{-1/2}`.
    pub r_star: f32,
}

impl RbcParamsF32 {
    /// Builds from Rayleigh and Prandtl numbers.
    pub fn from_ra_pr(ra: f64, pr: f64) -> Self {
        RbcParamsF32 { p_star: (1.0 / (ra * pr).sqrt()) as f32, r_star: ((pr / ra).sqrt()) as f32 }
    }
}

/// Builds the plan for the samples' query points against the latent grid of
/// the stacked batch (`grid_dims = [nt, nz, nx]` of the patch).
pub fn prediction_plan(grid_dims: [usize; 3], samples: &[Sample]) -> QueryPlan {
    plan_queries(
        grid_dims,
        samples.iter().enumerate().flat_map(|(b, s)| s.query_local.iter().map(move |&q| (b, q))),
    )
}

/// Stacks the samples' ground-truth query values into `[Q, 4]`.
pub fn stack_targets(samples: &[Sample]) -> Tensor {
    let q: usize = samples.iter().map(|s| s.query_values.len()).sum();
    let mut buf = Vec::with_capacity(q * 4);
    for s in samples {
        for v in &s.query_values {
            buf.extend_from_slice(v);
        }
    }
    Tensor::from_vec(buf, &[q, 4])
}

/// Records the prediction loss (Eqn. 8): decode at the query points and take
/// the L1 distance to the targets. Returns `(loss, predictions)`.
pub fn prediction_loss(
    g: &mut Graph,
    store: &ParamStore,
    decoder: &ContinuousDecoder,
    latent: Var,
    samples: &[Sample],
    grid_dims: [usize; 3],
) -> (Var, Var) {
    let plan = prediction_plan(grid_dims, samples);
    let pred = decoder.decode(g, store, latent, &plan);
    let target = g.constant(stack_targets(samples));
    (g.l1_loss(pred, target), pred)
}

/// Weighted mean of per-row absolute values: `Σ_j w_j · mean_c |x[j, c]|`.
///
/// With `w_j = 1/rows` this equals the plain `mean(|x|)` the unweighted
/// losses take, so self-normalized importance weights (summing to 1) keep
/// the loss an unbiased estimate of the same uniform-sampling objective.
pub fn weighted_l1(g: &mut Graph, x: Var, row_weights: &[f32]) -> Var {
    let dims = g.value(x).dims().to_vec();
    assert_eq!(dims.len(), 2, "weighted_l1 expects a [rows, cols] tape value");
    let (rows, cols) = (dims[0], dims[1]);
    assert_eq!(row_weights.len(), rows, "one weight per row");
    let mut w = Vec::with_capacity(rows * cols);
    for &wj in row_weights {
        for _ in 0..cols {
            w.push(wj / cols as f32);
        }
    }
    let a = g.abs(x);
    let wt = g.constant(Tensor::from_vec(w, &[rows, cols]));
    let m = g.mul(a, wt);
    g.sum(m)
}

/// Weighted prediction loss: like [`prediction_loss`] but each query point
/// contributes with its importance weight instead of `1/Q`. `row_weights`
/// runs over the flattened query points of all samples and must sum to 1.
/// Returns `(loss, predictions)`.
pub fn weighted_prediction_loss(
    g: &mut Graph,
    store: &ParamStore,
    decoder: &ContinuousDecoder,
    latent: Var,
    samples: &[Sample],
    grid_dims: [usize; 3],
    row_weights: &[f32],
) -> (Var, Var) {
    let plan = prediction_plan(grid_dims, samples);
    let pred = decoder.decode(g, store, latent, &plan);
    let target = g.constant(stack_targets(samples));
    let diff = g.sub(pred, target);
    (weighted_l1(g, diff, row_weights), pred)
}

/// The seven stencil components, in plan order.
const STENCIL: [[f32; 3]; 7] = [
    [0.0, 0.0, 0.0],  // center
    [1.0, 0.0, 0.0],  // t+
    [-1.0, 0.0, 0.0], // t-
    [0.0, 1.0, 0.0],  // z+
    [0.0, -1.0, 0.0], // z-
    [0.0, 0.0, 1.0],  // x+
    [0.0, 0.0, -1.0], // x-
];

/// Records the equation loss (Eqn. 9).
///
/// All samples in the batch must share the same physical patch extent (true
/// for any batch from one [`mfn_data::PatchSampler`]). `h_local` is the
/// stencil step in local coordinates; query centers are pulled into
/// `[h, 1-h]` so the stencil stays inside the patch.
#[allow(clippy::too_many_arguments)]
pub fn equation_loss(
    g: &mut Graph,
    store: &ParamStore,
    decoder: &ContinuousDecoder,
    latent: Var,
    samples: &[Sample],
    grid_dims: [usize; 3],
    params: RbcParamsF32,
    stats: ChannelStats,
    h_local: f32,
    constraints: ConstraintSet,
) -> Var {
    let extent = samples.first().expect("non-empty batch").extent_phys;
    for s in samples {
        let same = s.extent_phys.iter().zip(&extent).all(|(a, b)| (a - b).abs() < 1e-9);
        assert!(same, "equation loss requires a uniform patch extent per batch");
    }
    let points: Vec<(usize, [f32; 3])> = samples
        .iter()
        .enumerate()
        .flat_map(|(b, s)| s.query_local.iter().map(move |&q| (b, q)))
        .collect();
    equation_loss_at_points(
        g,
        store,
        decoder,
        latent,
        &points,
        grid_dims,
        extent,
        params,
        stats,
        h_local,
        constraints,
    )
}

/// Records the PDE equation residual loss at explicit `(batch, [t, z, x])`
/// points — the sample-free core of [`equation_loss`], shared with the
/// serving-side test-time refinement path ([`crate::refine`]), which owns
/// its query points directly rather than through [`Sample`]s.
///
/// Points are clamped into `[h, 1-h]` per axis so the stencil stays inside
/// the patch; `extent_phys` converts the local stencil step to physical
/// units. Returns the mean absolute residual over points × active
/// constraints.
#[allow(clippy::too_many_arguments)]
pub fn equation_loss_at_points(
    g: &mut Graph,
    store: &ParamStore,
    decoder: &ContinuousDecoder,
    latent: Var,
    points: &[(usize, [f32; 3])],
    grid_dims: [usize; 3],
    extent_phys: [f64; 3],
    params: RbcParamsF32,
    stats: ChannelStats,
    h_local: f32,
    constraints: ConstraintSet,
) -> Var {
    let all = equation_residuals_at_points(
        g,
        store,
        decoder,
        latent,
        points,
        grid_dims,
        extent_phys,
        params,
        stats,
        h_local,
        constraints,
    );
    let a = g.abs(all);
    g.mean(a)
}

/// Weighted equation loss: each point's mean absolute residual contributes
/// with its importance weight (`row_weights` must sum to 1). Returns the
/// loss together with the raw `[points, constraints]` residual tape node so
/// the caller can read per-point residual magnitudes back for sampler
/// feedback without a second decode.
#[allow(clippy::too_many_arguments)]
pub fn weighted_equation_loss_at_points(
    g: &mut Graph,
    store: &ParamStore,
    decoder: &ContinuousDecoder,
    latent: Var,
    points: &[(usize, [f32; 3])],
    grid_dims: [usize; 3],
    extent_phys: [f64; 3],
    params: RbcParamsF32,
    stats: ChannelStats,
    h_local: f32,
    constraints: ConstraintSet,
    row_weights: &[f32],
) -> (Var, Var) {
    let all = equation_residuals_at_points(
        g,
        store,
        decoder,
        latent,
        points,
        grid_dims,
        extent_phys,
        params,
        stats,
        h_local,
        constraints,
    );
    (weighted_l1(g, all, row_weights), all)
}

/// Records the raw `[points, active constraints]` PDE residual matrix on the
/// tape (before the absolute value and reduction the loss wrappers apply).
#[allow(clippy::too_many_arguments)]
pub fn equation_residuals_at_points(
    g: &mut Graph,
    store: &ParamStore,
    decoder: &ContinuousDecoder,
    latent: Var,
    points: &[(usize, [f32; 3])],
    grid_dims: [usize; 3],
    extent_phys: [f64; 3],
    params: RbcParamsF32,
    stats: ChannelStats,
    h_local: f32,
    constraints: ConstraintSet,
) -> Var {
    assert!(h_local > 0.0 && h_local < 0.5, "stencil step out of range");
    assert!(constraints.count() > 0, "equation loss needs at least one constraint");
    assert!(!points.is_empty(), "equation loss needs at least one point");
    // Physical step sizes per axis.
    let h_phys: [f32; 3] = [
        (h_local as f64 * extent_phys[0]) as f32,
        (h_local as f64 * extent_phys[1]) as f32,
        (h_local as f64 * extent_phys[2]) as f32,
    ];

    // Decode the 7 stencil components. Centers are clamped inward.
    let centers: Vec<(usize, [f32; 3])> = points
        .iter()
        .map(|&(b, q)| {
            (
                b,
                [
                    q[0].clamp(h_local, 1.0 - h_local),
                    q[1].clamp(h_local, 1.0 - h_local),
                    q[2].clamp(h_local, 1.0 - h_local),
                ],
            )
        })
        .collect();
    let mut comp: Vec<Var> = Vec::with_capacity(7);
    for off in STENCIL {
        let pts = centers.iter().map(|&(b, c)| {
            (b, [c[0] + off[0] * h_local, c[1] + off[1] * h_local, c[2] + off[2] * h_local])
        });
        let plan = plan_queries(grid_dims, pts);
        comp.push(decoder.decode(g, store, latent, &plan));
    }
    let [v0, tp, tm, zp, zm, xp, xm] =
        [comp[0], comp[1], comp[2], comp[3], comp[4], comp[5], comp[6]];

    // First and second physical derivatives per axis (all channels at once).
    let d1 = |g: &mut Graph, p: Var, m: Var, h: f32| {
        let d = g.sub(p, m);
        g.scale(d, 0.5 / h)
    };
    let d2 = |g: &mut Graph, p: Var, m: Var, c: Var, h: f32| {
        let s = g.add(p, m);
        let c2 = g.scale(c, 2.0);
        let d = g.sub(s, c2);
        g.scale(d, 1.0 / (h * h))
    };
    let dt = d1(g, tp, tm, h_phys[0]);
    let dz = d1(g, zp, zm, h_phys[1]);
    let dx = d1(g, xp, xm, h_phys[2]);
    let dzz = d2(g, zp, zm, v0, h_phys[1]);
    let dxx = d2(g, xp, xm, v0, h_phys[2]);

    // Channel extraction + denormalization. Values need mean+std; derivatives
    // only the std factor.
    let val = |g: &mut Graph, v: Var, c: usize| {
        let col = g.slice_cols(v, c, 1);
        let scaled = g.scale(col, stats.std[c]);
        g.add_scalar(scaled, stats.mean[c])
    };
    let der = |g: &mut Graph, v: Var, c: usize| {
        let col = g.slice_cols(v, c, 1);
        g.scale(col, stats.std[c])
    };
    // Channels: 0=T, 1=p, 2=u, 3=w.
    let t_v = val(g, v0, 0);
    let u_v = val(g, v0, 2);
    let w_v = val(g, v0, 3);
    let t_t = der(g, dt, 0);
    let t_x = der(g, dx, 0);
    let t_z = der(g, dz, 0);
    let t_xx = der(g, dxx, 0);
    let t_zz = der(g, dzz, 0);
    let p_x = der(g, dx, 1);
    let p_z = der(g, dz, 1);
    let u_t = der(g, dt, 2);
    let u_x = der(g, dx, 2);
    let u_z = der(g, dz, 2);
    let u_xx = der(g, dxx, 2);
    let u_zz = der(g, dzz, 2);
    let w_t = der(g, dt, 3);
    let w_x = der(g, dx, 3);
    let w_z = der(g, dz, 3);
    let w_xx = der(g, dxx, 3);
    let w_zz = der(g, dzz, 3);

    let mut residual_cols: Vec<Var> = Vec::with_capacity(constraints.count());
    // r_c = u_x + w_z
    if constraints.continuity {
        residual_cols.push(g.add(u_x, w_z));
    }
    // r_T = T_t + u T_x + w T_z − P*(T_xx + T_zz)
    if constraints.temperature {
        let a = g.mul(u_v, t_x);
        let b = g.mul(w_v, t_z);
        let adv = g.add(a, b);
        let s = g.add(t_t, adv);
        let lap = g.add(t_xx, t_zz);
        let diff = g.scale(lap, params.p_star);
        residual_cols.push(g.sub(s, diff));
    }
    // r_u = u_t + u u_x + w u_z + p_x − R*(u_xx + u_zz)
    if constraints.momentum_x {
        let a = g.mul(u_v, u_x);
        let b = g.mul(w_v, u_z);
        let adv = g.add(a, b);
        let s1 = g.add(u_t, adv);
        let s2 = g.add(s1, p_x);
        let lap = g.add(u_xx, u_zz);
        let diff = g.scale(lap, params.r_star);
        residual_cols.push(g.sub(s2, diff));
    }
    // r_w = w_t + u w_x + w w_z + p_z − T − R*(w_xx + w_zz)
    if constraints.momentum_z {
        let a = g.mul(u_v, w_x);
        let b = g.mul(w_v, w_z);
        let adv = g.add(a, b);
        let s1 = g.add(w_t, adv);
        let s2 = g.add(s1, p_z);
        let s3 = g.sub(s2, t_v);
        let lap = g.add(w_xx, w_zz);
        let diff = g.scale(lap, params.r_star);
        residual_cols.push(g.sub(s3, diff));
    }
    if residual_cols.len() == 1 {
        residual_cols[0]
    } else {
        g.concat(&residual_cols, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::ContinuousDecoder;
    use mfn_autodiff::{Activation, Mlp};
    use mfn_tensor::Tensor;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fake_sample(b_queries: usize, seed: u64) -> Sample {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Sample {
            lr_patch: Tensor::randn(&[4, 3, 4, 4], 1.0, &mut rng),
            query_local: (0..b_queries)
                .map(|_| {
                    [
                        rand::Rng::gen::<f32>(&mut rng),
                        rand::Rng::gen::<f32>(&mut rng),
                        rand::Rng::gen::<f32>(&mut rng),
                    ]
                })
                .collect(),
            query_values: (0..b_queries)
                .map(|_| {
                    [
                        rand::Rng::gen::<f32>(&mut rng),
                        rand::Rng::gen::<f32>(&mut rng),
                        rand::Rng::gen::<f32>(&mut rng),
                        rand::Rng::gen::<f32>(&mut rng),
                    ]
                })
                .collect(),
            origin_phys: [0.0; 3],
            extent_phys: [1.0, 0.5, 2.0],
        }
    }

    fn setup() -> (ParamStore, ContinuousDecoder) {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mlp = Mlp::new(&mut store, "d", &[3 + 5, 16, 8, 4], Activation::Softplus, &mut rng);
        (store, ContinuousDecoder::new(mlp, 5))
    }

    fn default_stats() -> ChannelStats {
        ChannelStats { mean: [0.0; 4], std: [1.0; 4] }
    }

    #[test]
    fn prediction_loss_zero_for_perfect_targets() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let mut s = fake_sample(16, 11);
        // Make targets equal to the decoder's own output.
        let plan = prediction_plan([3, 4, 4], std::slice::from_ref(&s));
        let mut g = Graph::new();
        let l = g.constant(latent.clone());
        let pred = dec.decode(&mut g, &store, l, &plan);
        let pv = g.value(pred).clone();
        for (q, t) in s.query_values.iter_mut().enumerate() {
            for (c, tc) in t.iter_mut().enumerate() {
                *tc = pv.data()[q * 4 + c];
            }
        }
        let mut g = Graph::new();
        let l = g.constant(latent);
        let (loss, _) = prediction_loss(&mut g, &store, &dec, l, &[s], [3, 4, 4]);
        assert!(g.value(loss).item() < 1e-6);
    }

    #[test]
    fn prediction_loss_positive_and_differentiable() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let latent = Tensor::randn(&[2, 5, 3, 4, 4], 0.5, &mut rng);
        let samples = vec![fake_sample(8, 13), fake_sample(8, 14)];
        let mut g = Graph::new();
        let l = g.leaf_with_grad(latent);
        let (loss, pred) = prediction_loss(&mut g, &store, &dec, l, &samples, [3, 4, 4]);
        assert_eq!(g.value(pred).dims(), &[16, 4]);
        assert!(g.value(loss).item() > 0.0);
        g.backward(loss);
        assert!(g.grad(l).max_abs() > 0.0);
    }

    #[test]
    fn equation_loss_finite_and_differentiable() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(15);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let samples = vec![fake_sample(8, 16)];
        let params = RbcParamsF32::from_ra_pr(1e5, 1.0);
        let mut g = Graph::new();
        let l = g.leaf_with_grad(latent);
        let loss = equation_loss(
            &mut g,
            &store,
            &dec,
            l,
            &samples,
            [3, 4, 4],
            params,
            default_stats(),
            0.05,
            ConstraintSet::ALL,
        );
        let v = g.value(loss).item();
        assert!(v.is_finite() && v >= 0.0, "loss {v}");
        g.backward(loss);
        assert!(g.grad(l).max_abs() > 0.0, "no gradient from equation loss");
    }

    #[test]
    fn equation_loss_matches_jet_residuals() {
        // The FD-stencil residual on the tape should agree with the exact
        // jet-computed residual at the same (clamped) points.
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let mut s = fake_sample(6, 18);
        let h = 0.02f32;
        for q in s.query_local.iter_mut() {
            for qa in q.iter_mut() {
                *qa = qa.clamp(h, 1.0 - h);
            }
        }
        let params = RbcParamsF32::from_ra_pr(1e5, 1.0);
        let stats = default_stats();
        let mut g = Graph::new();
        let l = g.constant(latent.clone());
        let loss = equation_loss(
            &mut g,
            &store,
            &dec,
            l,
            std::slice::from_ref(&s),
            [3, 4, 4],
            params,
            stats,
            h,
            ConstraintSet::ALL,
        );
        let tape_loss = g.value(loss).item() as f64;

        // Jet-based residual mean for the same points.
        let mut acc = 0.0f64;
        for q in &s.query_local {
            let jets = dec.decode_jet(&store, &latent, 0, *q, s.extent_phys);
            let st = mfn_physics::PointState {
                t: jets[0].v as f64,
                p_x: jets[1].d[2] as f64,
                p_z: jets[1].d[1] as f64,
                u: jets[2].v as f64,
                w: jets[3].v as f64,
                t_t: jets[0].d[0] as f64,
                t_x: jets[0].d[2] as f64,
                t_z: jets[0].d[1] as f64,
                t_xx: jets[0].dd[2] as f64,
                t_zz: jets[0].dd[1] as f64,
                u_t: jets[2].d[0] as f64,
                u_x: jets[2].d[2] as f64,
                u_z: jets[2].d[1] as f64,
                u_xx: jets[2].dd[2] as f64,
                u_zz: jets[2].dd[1] as f64,
                w_t: jets[3].d[0] as f64,
                w_x: jets[3].d[2] as f64,
                w_z: jets[3].d[1] as f64,
                w_xx: jets[3].dd[2] as f64,
                w_zz: jets[3].dd[1] as f64,
            };
            let r = mfn_physics::residuals(mfn_physics::RbcParams::from_ra_pr(1e5, 1.0), &st);
            acc += r.iter().map(|v| v.abs()).sum::<f64>();
        }
        let jet_loss = acc / (s.query_local.len() * 4) as f64;
        assert!(
            (tape_loss - jet_loss).abs() < 0.1 * (1.0 + jet_loss),
            "tape {tape_loss} vs jet {jet_loss}"
        );
    }

    #[test]
    fn gradcheck_equation_loss_at_wall_adjacent_points() {
        // Query points on the domain walls exercise the clamped stencil
        // rows (centers pulled to [h, 1−h], so one side of the stencil sits
        // right on the boundary). Check the analytic latent gradient against
        // central finite differences there — only interior points were
        // covered before.
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let points: Vec<(usize, [f32; 3])> = vec![
            (0, [0.0, 0.0, 0.0]),
            (0, [1.0, 1.0, 1.0]),
            (0, [0.0, 1.0, 0.5]),
            (0, [0.5, 0.0, 1.0]),
        ];
        let params = RbcParamsF32::from_ra_pr(1e5, 1.0);
        let extent = [1.0, 0.5, 2.0];
        let eval = |lat: &Tensor| -> f64 {
            let mut g = Graph::new();
            let l = g.constant(lat.clone());
            let loss = equation_loss_at_points(
                &mut g,
                &store,
                &dec,
                l,
                &points,
                [3, 4, 4],
                extent,
                params,
                default_stats(),
                0.05,
                ConstraintSet::ALL,
            );
            g.value(loss).item() as f64
        };
        let mut g = Graph::new();
        let l = g.leaf_with_grad(latent.clone());
        let loss = equation_loss_at_points(
            &mut g,
            &store,
            &dec,
            l,
            &points,
            [3, 4, 4],
            extent,
            params,
            default_stats(),
            0.05,
            ConstraintSet::ALL,
        );
        g.backward(loss);
        let analytic = g.grad(l).clone();
        let eps = 1e-2f32;
        let n = latent.data().len();
        for &k in &[0usize, 7, 31, n / 2, n - 1] {
            let mut plus = latent.clone();
            plus.data_mut()[k] += eps;
            let mut minus = latent.clone();
            minus.data_mut()[k] -= eps;
            let fd = (eval(&plus) - eval(&minus)) / (2.0 * eps as f64);
            let an = analytic.data()[k] as f64;
            let scale = 1.0 + an.abs().max(fd.abs());
            assert!(
                (an - fd).abs() / scale < 0.05,
                "latent[{k}]: analytic {an} vs fd {fd} at wall-adjacent points"
            );
        }
    }

    #[test]
    fn uniform_weights_match_unweighted_losses() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(50);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let s = fake_sample(8, 51);
        let params = RbcParamsF32::from_ra_pr(1e5, 1.0);
        let w = vec![1.0f32 / 8.0; 8];
        let points: Vec<(usize, [f32; 3])> = s.query_local.iter().map(|&q| (0usize, q)).collect();

        let mut g = Graph::new();
        let l = g.constant(latent.clone());
        let (plain, _) =
            prediction_loss(&mut g, &store, &dec, l, std::slice::from_ref(&s), [3, 4, 4]);
        let (weighted, _) = weighted_prediction_loss(
            &mut g,
            &store,
            &dec,
            l,
            std::slice::from_ref(&s),
            [3, 4, 4],
            &w,
        );
        let (pv, wv) = (g.value(plain).item(), g.value(weighted).item());
        assert!((pv - wv).abs() < 1e-6 * (1.0 + pv.abs()), "prediction {pv} vs {wv}");

        let plain_eq = equation_loss_at_points(
            &mut g,
            &store,
            &dec,
            l,
            &points,
            [3, 4, 4],
            s.extent_phys,
            params,
            default_stats(),
            0.05,
            ConstraintSet::ALL,
        );
        let (weighted_eq, resid) = weighted_equation_loss_at_points(
            &mut g,
            &store,
            &dec,
            l,
            &points,
            [3, 4, 4],
            s.extent_phys,
            params,
            default_stats(),
            0.05,
            ConstraintSet::ALL,
            &w,
        );
        let (pe, we) = (g.value(plain_eq).item(), g.value(weighted_eq).item());
        assert!((pe - we).abs() < 1e-6 * (1.0 + pe.abs()), "equation {pe} vs {we}");
        assert_eq!(g.value(resid).dims(), &[8, 4]);
    }

    #[test]
    fn skewed_weights_emphasize_their_rows() {
        // Putting all the weight on one query point must reproduce that
        // point's own residual magnitude, not the batch mean.
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(60);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let s = fake_sample(4, 61);
        let params = RbcParamsF32::from_ra_pr(1e5, 1.0);
        let points: Vec<(usize, [f32; 3])> = s.query_local.iter().map(|&q| (0usize, q)).collect();
        let mut w = vec![0.0f32; 4];
        w[2] = 1.0;
        let mut g = Graph::new();
        let l = g.constant(latent);
        let (loss, resid) = weighted_equation_loss_at_points(
            &mut g,
            &store,
            &dec,
            l,
            &points,
            [3, 4, 4],
            s.extent_phys,
            params,
            default_stats(),
            0.05,
            ConstraintSet::ALL,
            &w,
        );
        let rv = g.value(resid).clone();
        let row2: f32 = (0..4).map(|c| rv.data()[2 * 4 + c].abs()).sum::<f32>() / 4.0;
        let lv = g.value(loss).item();
        assert!((lv - row2).abs() < 1e-6 * (1.0 + row2.abs()), "loss {lv} vs row {row2}");
    }

    #[test]
    #[should_panic(expected = "uniform patch extent")]
    fn equation_loss_rejects_mixed_extents() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let latent = Tensor::randn(&[2, 5, 3, 4, 4], 0.5, &mut rng);
        let mut s2 = fake_sample(4, 21);
        s2.extent_phys = [9.0, 9.0, 9.0];
        let samples = vec![fake_sample(4, 22), s2];
        let mut g = Graph::new();
        let l = g.constant(latent);
        equation_loss(
            &mut g,
            &store,
            &dec,
            l,
            &samples,
            [3, 4, 4],
            RbcParamsF32::from_ra_pr(1e5, 1.0),
            default_stats(),
            0.05,
            ConstraintSet::ALL,
        );
    }

    #[test]
    fn constraint_subsets_change_the_loss() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(30);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let samples = vec![fake_sample(8, 31)];
        let params = RbcParamsF32::from_ra_pr(1e5, 1.0);
        let eval = |set: ConstraintSet| {
            let mut g = Graph::new();
            let l = g.constant(latent.clone());
            let loss = equation_loss(
                &mut g,
                &store,
                &dec,
                l,
                &samples,
                [3, 4, 4],
                params,
                default_stats(),
                0.05,
                set,
            );
            g.value(loss).item()
        };
        let all = eval(ConstraintSet::ALL);
        let cont = eval(ConstraintSet::CONTINUITY_ONLY);
        assert!(all > 0.0 && cont > 0.0);
        assert_ne!(all, cont, "constraint selection had no effect");
        assert_eq!(ConstraintSet::ALL.count(), 4);
        assert_eq!(ConstraintSet::CONTINUITY_ONLY.count(), 1);
        assert_eq!(ConstraintSet::default(), ConstraintSet::ALL);
    }

    #[test]
    #[should_panic(expected = "at least one constraint")]
    fn empty_constraint_set_rejected() {
        let (store, dec) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        let latent = Tensor::randn(&[1, 5, 3, 4, 4], 0.5, &mut rng);
        let samples = vec![fake_sample(4, 33)];
        let mut g = Graph::new();
        let l = g.constant(latent);
        equation_loss(
            &mut g,
            &store,
            &dec,
            l,
            &samples,
            [3, 4, 4],
            RbcParamsF32::from_ra_pr(1e5, 1.0),
            default_stats(),
            0.05,
            ConstraintSet {
                continuity: false,
                temperature: false,
                momentum_x: false,
                momentum_z: false,
            },
        );
    }
}
