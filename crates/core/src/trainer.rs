//! Single-process training loops (the multi-worker data-parallel trainer
//! lives in `mfn-dist` and reuses the gradient step defined here).

use crate::baseline::{hr_target_patch, BaselineII};
use crate::checkpoint::{
    decode_train_state, encode_train_state, load_train_state_with_fallback, save_train_state,
    CheckpointError, TrainStateMeta,
};
use crate::config::{MfnConfig, TrainConfig};
use crate::losses::{ChannelStats, RbcParamsF32};
use crate::model::{MeshfreeFlowNet, StepLosses};
use crate::rng::SampleRng;
use mfn_autodiff::{clip_grad_norm, grad_l2_norm, Adam, AdamConfig, Graph};
use mfn_data::{make_batch, make_batch_with, Dataset, PatchSampler};
use mfn_sample::{OctreeConfig, OctreeSampler};
use mfn_telemetry::{sampler_gauges, Recorder, StepMetrics, Stopwatch};
use mfn_tensor::{conv3d_path, workspace, Conv3dDims, Conv3dPath};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One epoch's summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean combined loss.
    pub loss: f32,
    /// Mean prediction loss.
    pub prediction: f32,
    /// Mean equation loss.
    pub equation: f32,
    /// Wall-clock seconds for the epoch.
    pub seconds: f64,
}

/// A training corpus: HR/LR dataset pairs (one pair per initial/boundary
/// condition — Tables 3–4 train on up to 10).
pub struct Corpus {
    /// The `(HR, LR)` dataset pairs.
    pub pairs: Vec<(Dataset, Dataset)>,
    /// Channel statistics shared across the corpus (computed from all HR
    /// sets; every patch/target is normalized with these).
    pub stats: ChannelStats,
}

impl Corpus {
    /// Builds a corpus and its pooled channel statistics.
    pub fn new(pairs: Vec<(Dataset, Dataset)>) -> Self {
        assert!(!pairs.is_empty(), "corpus needs at least one dataset pair");
        let mut mean = [0.0f64; 4];
        let mut ms = [0.0f64; 4];
        for (hr, _) in &pairs {
            for c in 0..4 {
                mean[c] += hr.meta.channel_mean[c] as f64;
                ms[c] += (hr.meta.channel_std[c] as f64).powi(2)
                    + (hr.meta.channel_mean[c] as f64).powi(2);
            }
        }
        let n = pairs.len() as f64;
        let mut stats = ChannelStats { mean: [0.0; 4], std: [1.0; 4] };
        for c in 0..4 {
            let m = mean[c] / n;
            stats.mean[c] = m as f32;
            stats.std[c] = ((ms[c] / n - m * m).max(1e-16)).sqrt() as f32;
        }
        Corpus { pairs, stats }
    }

    /// PDE coefficients of pair `i` (boundary conditions can differ per
    /// pair in the Table 4 sweep).
    pub fn params(&self, i: usize) -> RbcParamsF32 {
        let meta = &self.pairs[i].0.meta;
        RbcParamsF32::from_ra_pr(meta.ra, meta.pr)
    }
}

/// Emits the one-time kernel-configuration gauges every trainer logs at
/// startup, so a run's telemetry records *which* compute paths it took:
///
/// * `kernel/threads` — effective rayon worker count seen by the GEMM.
/// * `kernel/par_flop_threshold` — the `m*k*n` FLOP count above which the
///   blocked GEMM goes parallel.
/// * `kernel/gemm_parallel` — 1 if the first U-Net layer's im2col GEMM
///   crosses that threshold on this host (parallel), 0 if it runs serial.
/// * `kernel/conv3d_im2col` — 1 if [`conv3d_path`] picks the im2col
///   lowering for the first U-Net layer, 0 for the direct loop nest.
///
/// Gauges are plain `f64`s, so the two path choices are encoded as 0/1
/// flags rather than strings.
pub fn log_kernel_config(recorder: &Recorder, cfg: &MfnConfig, batch_size: usize) {
    let threads = mfn_tensor::effective_threads();
    recorder.gauge("kernel/threads", threads as f64);
    recorder.gauge("kernel/par_flop_threshold", mfn_tensor::PAR_FLOP_THRESHOLD as f64);
    // The first (and widest-input) U-Net convolution is the representative
    // layer: [B, Cin, nt, nz, nx] ⊛ [base, Cin, 3, 3, 3].
    let dims = Conv3dDims {
        n: batch_size.max(1),
        cin: cfg.in_channels,
        cout: cfg.base_channels,
        spatial: [cfg.patch.nt, cfg.patch.nz, cfg.patch.nx],
        kernel: [3, 3, 3],
    };
    let path = conv3d_path(&dims);
    recorder
        .gauge("kernel/conv3d_im2col", if matches!(path, Conv3dPath::Im2col) { 1.0 } else { 0.0 });
    // The im2col lowering of that layer is also the largest GEMM a step
    // issues; whether *it* crosses the threshold tells parallel vs serial.
    let vol = dims.spatial[0] * dims.spatial[1] * dims.spatial[2];
    let flops = (dims.n * vol) * (dims.cin * 27) * dims.cout;
    let parallel = flops >= mfn_tensor::PAR_FLOP_THRESHOLD && threads > 1;
    recorder.gauge("kernel/gemm_parallel", if parallel { 1.0 } else { 0.0 });
}

/// Emits the workspace-pool hit/miss counters as gauges (cumulative since
/// the last [`workspace::reset_stats`]).
pub fn log_pool_stats(recorder: &Recorder) {
    let s = workspace::stats();
    recorder.gauge("pool/hits", s.hits as f64);
    recorder.gauge("pool/misses", s.misses as f64);
    recorder.gauge("pool/cached_bytes", s.cached_bytes as f64);
}

/// The octree configuration a [`TrainConfig`] implies: defaults everywhere
/// except the user-tunable uniform floor `ε` and a split threshold scaled
/// to the training feed. A step observes `batch_size × queries` points
/// spread over the leaves, so with the default `min_count` a depth-2
/// scaffold leaf (1/64 of the cube) would wait tens of epochs before it
/// may refine; half the default keeps the split statistics meaningful
/// while letting exploitation start within the first few epochs. Shared by
/// the trainer and the distributed supervisor so both build identical
/// trees.
pub fn octree_config(cfg: &TrainConfig) -> OctreeConfig {
    let base = OctreeConfig::default();
    OctreeConfig { epsilon: cfg.sampler_epsilon, min_count: base.min_count / 2, ..base }
}

/// Adam-based trainer for MeshfreeFlowNet.
pub struct Trainer {
    /// The model being trained.
    pub model: MeshfreeFlowNet,
    /// Optimizer state.
    pub opt: Adam,
    /// Loop hyperparameters.
    pub cfg: TrainConfig,
    /// Telemetry destination (disabled by default).
    recorder: Recorder,
    /// Monotonic gradient-step counter across the trainer's lifetime.
    global_step: u64,
    /// Epoch tag attached to emitted step metrics (set by [`Trainer::train`]).
    epoch: usize,
    /// Next batch index within `epoch` — nonzero only when resumed from a
    /// mid-epoch checkpoint.
    batch_cursor: usize,
    /// Checkpointable batch-sampling stream (persists across `train` calls
    /// so a resumed trainer continues the exact sample sequence).
    rng: SampleRng,
    /// Residual-guided octree query sampler (`Some` iff
    /// `cfg.adaptive_sampling`). `None` keeps the uniform path — and its
    /// RNG draw sequence — bit-identical to a build without the sampler.
    sampler: Option<OctreeSampler>,
    /// Destination for periodic train-state checkpoints (None disables).
    checkpoint_path: Option<PathBuf>,
    /// Batch-assembly seconds to attribute to the next `step` call.
    pending_data_s: f64,
}

impl Trainer {
    /// Wraps a model with an Adam optimizer configured from `cfg`.
    pub fn new(model: MeshfreeFlowNet, cfg: TrainConfig) -> Self {
        let opt = Adam::new(&model.store, AdamConfig { lr: cfg.lr, ..Default::default() });
        let rng = SampleRng::seed_from_u64(cfg.seed);
        let sampler = cfg.adaptive_sampling.then(|| OctreeSampler::new(octree_config(&cfg)));
        Trainer {
            model,
            opt,
            cfg,
            recorder: Recorder::null(),
            global_step: 0,
            epoch: 0,
            batch_cursor: 0,
            rng,
            sampler,
            checkpoint_path: None,
            pending_data_s: 0.0,
        }
    }

    /// Routes per-step metrics to `recorder` (builder form).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Routes per-step metrics to `recorder`.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// Writes periodic train-state checkpoints to `path` every
    /// `cfg.checkpoint_every` gradient steps (builder form).
    pub fn with_checkpointing(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Gradient steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.global_step
    }

    /// Reconstructs a trainer from a train-state checkpoint written by
    /// [`Trainer::save_checkpoint`] (or the periodic writer). `model` must
    /// have the architecture the checkpoint was captured from — a fresh
    /// `MeshfreeFlowNet::new(cfg)` is fine, its initial weights are
    /// overwritten. The resumed trainer continues bit-identically to the run
    /// that wrote the checkpoint: same parameters, Adam moments and step
    /// count, learning rate, sampler stream position, and epoch/batch
    /// cursor. Falls back to `<path>.prev` when the newest file is damaged.
    pub fn resume(
        model: MeshfreeFlowNet,
        cfg: TrainConfig,
        path: &Path,
    ) -> Result<Trainer, CheckpointError> {
        let mut t = Trainer::new(model, cfg);
        let payload = load_train_state_with_fallback(path)?;
        let mut r = payload.as_slice();
        let (opt, meta) = decode_train_state(&mut t.model, &mut r)?;
        if !r.is_empty() {
            return Err(CheckpointError::Corrupt(format!("{} trailing payload bytes", r.len())));
        }
        if meta.rngs.len() != 1 {
            return Err(CheckpointError::Incompatible(format!(
                "single-process checkpoint must hold 1 RNG state, found {}",
                meta.rngs.len()
            )));
        }
        t.opt = opt;
        t.global_step = meta.global_step;
        t.epoch = meta.epoch;
        t.batch_cursor = meta.batch_cursor;
        t.rng = SampleRng::restore(meta.rngs[0]);
        if let Some(bytes) = meta.samplers.first() {
            if !cfg.adaptive_sampling {
                return Err(CheckpointError::Incompatible(
                    "checkpoint carries adaptive-sampler state but adaptive_sampling is off".into(),
                ));
            }
            t.sampler = Some(
                OctreeSampler::from_bytes(bytes, octree_config(&cfg))
                    .map_err(CheckpointError::Corrupt)?,
            );
        }
        Ok(t)
    }

    /// Current loop position in checkpoint form, normalized so a cursor at
    /// the end of an epoch points at the start of the next one.
    fn state_meta(&self) -> TrainStateMeta {
        let (mut epoch, mut cursor) = (self.epoch, self.batch_cursor);
        if self.cfg.batches_per_epoch > 0 && cursor >= self.cfg.batches_per_epoch {
            epoch += 1;
            cursor = 0;
        }
        TrainStateMeta {
            global_step: self.global_step,
            epoch,
            batch_cursor: cursor,
            rngs: vec![self.rng.state()],
            samplers: self.sampler.as_ref().map(|s| vec![s.to_bytes()]).unwrap_or_default(),
        }
    }

    /// Writes a full train-state checkpoint to `path` (atomic rename; the
    /// previous file rotates to `<path>.prev`). Returns bytes written and
    /// emits `ckpt.bytes` / `ckpt.write_s` telemetry.
    pub fn save_checkpoint(&self, path: &Path) -> Result<u64, CheckpointError> {
        let start = Instant::now();
        let payload = encode_train_state(&self.model, &self.opt, &self.state_meta());
        let bytes = save_train_state(path, &payload)?;
        self.recorder.incr("ckpt.bytes", bytes);
        self.recorder.incr("ckpt.writes", 1);
        self.recorder.gauge("ckpt.write_s", start.elapsed().as_secs_f64());
        Ok(bytes)
    }

    /// Periodic-checkpoint hook: fires every `cfg.checkpoint_every` steps
    /// when a path is configured. A failed write is counted
    /// (`ckpt.errors`) and reported but does not abort training.
    fn checkpoint_if_due(&mut self) {
        if self.cfg.checkpoint_every == 0
            || !self.global_step.is_multiple_of(self.cfg.checkpoint_every as u64)
        {
            return;
        }
        let Some(path) = self.checkpoint_path.clone() else { return };
        if let Err(e) = self.save_checkpoint(&path) {
            self.recorder.incr("ckpt.errors", 1);
            eprintln!("checkpoint write to {} failed: {e}", path.display());
        }
    }

    /// One gradient step on one batch; returns the loss components.
    ///
    /// Emits one [`StepMetrics`] event (losses, gradient norms, learning
    /// rate, per-phase timings) when a recorder is attached.
    pub fn step(
        &mut self,
        batch: &mfn_data::Batch,
        params: RbcParamsF32,
        stats: ChannelStats,
    ) -> StepLosses {
        let mut sw = Stopwatch::start();
        let mut g = Graph::new();
        // The adaptive path adds importance weighting and per-point scores;
        // the uniform path keeps today's exact tape (bit-identical runs).
        let (loss, comps, scores) = if self.sampler.is_some() {
            let (l, c, s) = self.model.loss_on_batch_scored(&mut g, batch, params, stats, true);
            (l, c, Some(s))
        } else {
            let (l, c) = self.model.loss_on_batch(&mut g, batch, params, stats, true);
            (l, c, None)
        };
        let forward_s = sw.lap();
        g.backward(loss);
        let mut grads = g.param_grads(&self.model.store);
        let backward_s = sw.lap();
        let grad_norm_pre = if self.cfg.grad_clip > 0.0 {
            clip_grad_norm(&mut grads, self.cfg.grad_clip)
        } else if self.recorder.is_enabled() {
            grad_l2_norm(&grads)
        } else {
            0.0
        };
        self.opt.step(&mut self.model.store, &grads);
        let optimizer_s = sw.lap();
        self.global_step += 1;
        if let (Some(tree), Some(scores)) = (self.sampler.as_mut(), scores) {
            let points: Vec<[f32; 3]> =
                batch.samples.iter().flat_map(|s| s.query_local.iter().copied()).collect();
            tree.update(&points, &scores);
            if self.recorder.is_enabled() {
                self.recorder.gauge(sampler_gauges::LEAVES, tree.leaf_count() as f64);
                self.recorder.gauge(sampler_gauges::MAX_DEPTH, tree.max_depth() as f64);
                self.recorder.gauge(sampler_gauges::ENTROPY, tree.entropy());
                self.recorder.gauge(sampler_gauges::TOP_DECILE_MASS, tree.top_decile_mass());
            }
        }
        if self.recorder.is_enabled() {
            let clip = self.cfg.grad_clip;
            self.recorder.train_step(StepMetrics {
                step: self.global_step,
                epoch: self.epoch,
                rank: 0,
                loss_total: comps.total,
                loss_prediction: comps.prediction,
                loss_equation: comps.equation,
                grad_norm_pre,
                grad_norm_post: if clip > 0.0 { grad_norm_pre.min(clip) } else { grad_norm_pre },
                lr: self.opt.config().lr,
                samples: batch.samples.len(),
                data_s: std::mem::take(&mut self.pending_data_s),
                forward_s,
                backward_s,
                allreduce_wait_s: 0.0,
                optimizer_s,
            });
        }
        comps
    }

    /// Trains from the current loop position up to `cfg.epochs`, drawing
    /// each batch from a random dataset pair. A fresh trainer starts at
    /// epoch 0; a [`Trainer::resume`]d one continues from its checkpointed
    /// epoch/batch cursor (the first returned record then averages only the
    /// remaining batches of the partial epoch).
    pub fn train(&mut self, corpus: &Corpus) -> Vec<EpochRecord> {
        let samplers: Vec<PatchSampler<'_>> = corpus
            .pairs
            .iter()
            .map(|(hr, lr)| PatchSampler::new(hr, lr, self.model.cfg.patch))
            .collect();
        log_kernel_config(&self.recorder, &self.model.cfg, self.cfg.batch_size);
        let start_epoch = self.epoch;
        let mut records = Vec::with_capacity(self.cfg.epochs.saturating_sub(start_epoch));
        for epoch in start_epoch..self.cfg.epochs {
            self.epoch = epoch;
            // Anneal only when *entering* an epoch — a mid-epoch resume
            // already carries the annealed lr inside the Adam state.
            if self.cfg.lr_decay != 1.0 && epoch > 0 && self.batch_cursor == 0 {
                let lr = self.opt.config().lr * self.cfg.lr_decay;
                self.opt.set_lr(lr);
            }
            self.recorder.gauge("lr", self.opt.config().lr as f64);
            let start = Instant::now();
            let (mut tl, mut pl, mut el) = (0.0f32, 0.0f32, 0.0f32);
            let first_batch = self.batch_cursor;
            for b in first_batch..self.cfg.batches_per_epoch {
                let mut sw = Stopwatch::start();
                let di = self.rng.gen_range(0..samplers.len());
                let batch = if let Some(tree) = self.sampler.as_mut() {
                    make_batch_with(&samplers[di], self.cfg.batch_size, tree, &mut self.rng)
                } else {
                    make_batch(&samplers[di], self.cfg.batch_size, &mut self.rng)
                };
                self.pending_data_s = sw.lap();
                let comps = self.step(&batch, corpus.params(di), corpus.stats);
                tl += comps.total;
                pl += comps.prediction;
                el += comps.equation;
                self.batch_cursor = b + 1;
                self.checkpoint_if_due();
            }
            let nb = (self.cfg.batches_per_epoch - first_batch).max(1) as f32;
            let seconds = start.elapsed().as_secs_f64();
            self.recorder.span_seconds("epoch", seconds);
            log_pool_stats(&self.recorder);
            records.push(EpochRecord {
                epoch,
                loss: tl / nb,
                prediction: pl / nb,
                equation: el / nb,
                seconds,
            });
            // The next epoch (if any) starts at batch 0; leaving the cursor
            // normalized also makes a post-`train` checkpoint resume *after*
            // the completed work instead of redoing the final epoch.
            self.epoch = epoch + 1;
            self.batch_cursor = 0;
        }
        records
    }
}

/// Adam-based trainer for Baseline (II) (patch → HR-patch regression).
pub struct BaselineTrainer {
    /// The baseline model.
    pub model: BaselineII,
    /// Optimizer state.
    pub opt: Adam,
    /// Loop hyperparameters.
    pub cfg: TrainConfig,
    /// Telemetry destination (disabled by default).
    recorder: Recorder,
    /// Monotonic gradient-step counter.
    global_step: u64,
}

impl BaselineTrainer {
    /// Wraps a Baseline (II) model with Adam.
    pub fn new(model: BaselineII, cfg: TrainConfig) -> Self {
        let opt = Adam::new(&model.store, AdamConfig { lr: cfg.lr, ..Default::default() });
        BaselineTrainer { model, opt, cfg, recorder: Recorder::null(), global_step: 0 }
    }

    /// Routes per-step metrics to `recorder` (builder form).
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Trains over the corpus with random patch targets.
    pub fn train(&mut self, corpus: &Corpus) -> Vec<EpochRecord> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let spec = self.model.cfg.patch;
        let factors = self.model.factors;
        log_kernel_config(&self.recorder, &self.model.cfg, 1);
        let mut records = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            let start = Instant::now();
            let mut tl = 0.0f32;
            for _ in 0..self.cfg.batches_per_epoch {
                let mut sw = Stopwatch::start();
                let di = rng.gen_range(0..corpus.pairs.len());
                let (hr, lr) = &corpus.pairs[di];
                let origin = [
                    rng.gen_range(0..=lr.meta.nt - spec.nt),
                    rng.gen_range(0..=lr.meta.nz - spec.nz),
                    rng.gen_range(0..=lr.meta.nx - spec.nx),
                ];
                let input = crate::model::extract_patch(lr, origin, spec, corpus.stats);
                let target = hr_target_patch(hr, origin, spec, factors, corpus.stats);
                let data_s = sw.lap();
                let mut g = Graph::new();
                let loss = self.model.loss(&mut g, &input, &target, true);
                let step_loss = g.value(loss).item();
                tl += step_loss;
                let forward_s = sw.lap();
                g.backward(loss);
                let mut grads = g.param_grads(&self.model.store);
                let backward_s = sw.lap();
                let grad_norm_pre = if self.cfg.grad_clip > 0.0 {
                    clip_grad_norm(&mut grads, self.cfg.grad_clip)
                } else if self.recorder.is_enabled() {
                    grad_l2_norm(&grads)
                } else {
                    0.0
                };
                self.opt.step(&mut self.model.store, &grads);
                let optimizer_s = sw.lap();
                self.global_step += 1;
                if self.recorder.is_enabled() {
                    let clip = self.cfg.grad_clip;
                    self.recorder.train_step(StepMetrics {
                        step: self.global_step,
                        epoch,
                        rank: 0,
                        loss_total: step_loss,
                        loss_prediction: step_loss,
                        loss_equation: 0.0,
                        grad_norm_pre,
                        grad_norm_post: if clip > 0.0 {
                            grad_norm_pre.min(clip)
                        } else {
                            grad_norm_pre
                        },
                        lr: self.opt.config().lr,
                        samples: 1,
                        data_s,
                        forward_s,
                        backward_s,
                        allreduce_wait_s: 0.0,
                        optimizer_s,
                    });
                }
            }
            let nb = self.cfg.batches_per_epoch as f32;
            records.push(EpochRecord {
                epoch,
                loss: tl / nb,
                prediction: tl / nb,
                equation: 0.0,
                seconds: start.elapsed().as_secs_f64(),
            });
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MfnConfig;
    use mfn_data::{downsample, PatchSpec};
    use mfn_solver::{simulate, RbcConfig};

    /// Median of a slice (NaN-free input assumed).
    fn median(xs: &[f32]) -> f32 {
        assert!(!xs.is_empty());
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v[v.len() / 2]
    }

    /// Median loss over the first and last `k` recorded gradient steps.
    /// Medians over step windows are robust to the single-batch outliers
    /// that made epoch-mean first/last comparisons flaky.
    fn first_last_median(steps: &[StepMetrics], k: usize) -> (f32, f32) {
        assert!(steps.len() >= 2 * k, "need at least {} steps", 2 * k);
        let losses: Vec<f32> = steps.iter().map(|m| m.loss_total).collect();
        (median(&losses[..k]), median(&losses[losses.len() - k..]))
    }

    fn tiny_corpus() -> Corpus {
        let sim = simulate(
            &RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.1,
            9,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        Corpus::new(vec![(hr, lr)])
    }

    fn tiny_model() -> MeshfreeFlowNet {
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        MeshfreeFlowNet::new(cfg)
    }

    #[test]
    fn training_reduces_loss() {
        let corpus = tiny_corpus();
        let (recorder, sink) = Recorder::memory(4096);
        let mut trainer = Trainer::new(
            tiny_model(),
            TrainConfig {
                epochs: 15,
                batches_per_epoch: 8,
                batch_size: 4,
                lr: 1e-2,
                seed: 0,
                ..Default::default()
            },
        )
        .with_recorder(recorder);
        let records = trainer.train(&corpus);
        assert_eq!(records.len(), 15);
        let steps = sink.train_steps();
        assert_eq!(steps.len(), 15 * 8);
        // Median of the first 16 vs last 16 recorded step losses: robust to
        // the per-batch noise that made the old epoch-mean ratio flaky.
        let (first, last) = first_last_median(&steps, 16);
        assert!(last < 0.85 * first, "loss did not drop: median {first} -> {last} ({records:?})");
        // Every step recorded a finite, positive gradient and sane phases.
        for m in &steps {
            assert!(m.grad_norm_pre.is_finite() && m.grad_norm_pre > 0.0, "{m:?}");
            assert!(m.grad_norm_post <= m.grad_norm_pre + 1e-6, "{m:?}");
            assert!(m.forward_s >= 0.0 && m.backward_s >= 0.0 && m.optimizer_s >= 0.0);
            assert_eq!(m.samples, 4);
            assert!(m.lr > 0.0);
        }
        // Batch assembly was timed for every step of every epoch.
        assert!(steps.iter().all(|m| m.data_s >= 0.0));
        assert_eq!(steps.last().expect("steps").epoch, 14);
    }

    #[test]
    fn equation_loss_tracked_when_gamma_positive() {
        let corpus = tiny_corpus();
        let mut model = tiny_model();
        model.cfg.gamma = 0.05;
        let mut trainer = Trainer::new(
            model,
            TrainConfig { epochs: 2, batches_per_epoch: 2, batch_size: 1, ..Default::default() },
        );
        let records = trainer.train(&corpus);
        assert!(records.iter().all(|r| r.equation > 0.0));
    }

    #[test]
    fn baseline_training_reduces_loss() {
        let corpus = tiny_corpus();
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 8 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.levels = 2;
        let b2 = BaselineII::new(cfg, [2, 2, 2]);
        let (recorder, sink) = Recorder::memory(4096);
        let mut trainer = BaselineTrainer::new(
            b2,
            TrainConfig {
                epochs: 8,
                batches_per_epoch: 6,
                lr: 3e-3,
                seed: 0,
                ..Default::default()
            },
        )
        .with_recorder(recorder);
        let records = trainer.train(&corpus);
        assert_eq!(records.len(), 8);
        let steps = sink.train_steps();
        assert_eq!(steps.len(), 8 * 6);
        let (first, last) = first_last_median(&steps, 12);
        assert!(last < 0.95 * first, "baseline loss did not drop: median {first} -> {last}");
        // The baseline has no equation term; metrics must agree.
        assert!(steps.iter().all(|m| m.loss_equation == 0.0));
        assert!(steps.iter().all(|m| m.grad_norm_pre.is_finite()));
    }

    #[test]
    fn lr_decay_anneals_the_optimizer() {
        let corpus = tiny_corpus();
        let mut trainer = Trainer::new(
            tiny_model(),
            TrainConfig {
                epochs: 5,
                batches_per_epoch: 1,
                batch_size: 2,
                lr: 1e-2,
                lr_decay: 0.5,
                ..Default::default()
            },
        );
        trainer.train(&corpus);
        // After 5 epochs with decay 0.5 applied from epoch 1: lr = 1e-2 * 0.5^4.
        let expect = 1e-2f32 * 0.5f32.powi(4);
        let got = trainer.opt.config().lr;
        assert!((got - expect).abs() < 1e-6, "lr {got} vs {expect}");
        // Default (decay = 1.0) leaves lr untouched.
        let mut t2 = Trainer::new(
            tiny_model(),
            TrainConfig {
                epochs: 3,
                batches_per_epoch: 1,
                batch_size: 2,
                lr: 1e-2,
                ..Default::default()
            },
        );
        t2.train(&corpus);
        assert_eq!(t2.opt.config().lr, 1e-2);
    }

    /// The workspace pool must actually recycle buffers in the training hot
    /// path: after a warm-up step, a second identical step should be served
    /// largely from the freelist (ISSUE satellite: hit counter increases
    /// across two identical training steps).
    #[test]
    fn workspace_pool_reuses_buffers_across_identical_steps() {
        let corpus = tiny_corpus();
        let mut trainer =
            Trainer::new(tiny_model(), TrainConfig { batch_size: 2, ..Default::default() });
        let (hr, lr) = &corpus.pairs[0];
        let sampler = PatchSampler::new(hr, lr, trainer.model.cfg.patch);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let batch = make_batch(&sampler, 2, &mut rng);
        // Warm-up step populates the freelist with every temporary the
        // forward/backward pass allocates.
        trainer.step(&batch, corpus.params(0), corpus.stats);
        let before = workspace::stats();
        trainer.step(&batch, corpus.params(0), corpus.stats);
        let after = workspace::stats();
        assert!(
            after.hits > before.hits,
            "second identical step should hit the pool: {before:?} -> {after:?}"
        );
    }

    /// Trainer startup publishes the kernel-path gauges and each epoch
    /// publishes cumulative pool counters.
    #[test]
    fn trainer_emits_kernel_and_pool_gauges() {
        let corpus = tiny_corpus();
        let (recorder, sink) = Recorder::memory(4096);
        let mut trainer = Trainer::new(
            tiny_model(),
            TrainConfig { epochs: 1, batches_per_epoch: 1, batch_size: 1, ..Default::default() },
        )
        .with_recorder(recorder);
        trainer.train(&corpus);
        let threads = sink.gauge("kernel/threads").expect("threads gauge");
        assert!(threads >= 1.0);
        assert!(sink.gauge("kernel/par_flop_threshold").expect("threshold gauge") > 0.0);
        for flag in ["kernel/conv3d_im2col", "kernel/gemm_parallel"] {
            let v = sink.gauge(flag).expect(flag);
            assert!(v == 0.0 || v == 1.0, "{flag} must be a 0/1 flag, got {v}");
        }
        // Pool counters were emitted at epoch end and the epoch did real work.
        let hits = sink.gauge("pool/hits").expect("pool hits gauge");
        let misses = sink.gauge("pool/misses").expect("pool misses gauge");
        assert!(hits + misses > 0.0, "training must touch the workspace pool");
    }

    #[test]
    fn corpus_stats_pool_across_pairs() {
        let sim = simulate(
            &RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.05,
            5,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        let single = Corpus::new(vec![(hr.clone(), lr.clone())]);
        let double = Corpus::new(vec![(hr.clone(), lr.clone()), (hr, lr)]);
        for c in 0..4 {
            assert!((single.stats.mean[c] - double.stats.mean[c]).abs() < 1e-5);
            assert!((single.stats.std[c] - double.stats.std[c]).abs() < 1e-4);
        }
    }
}
