//! Single-process training loops (the multi-worker data-parallel trainer
//! lives in `mfn-dist` and reuses the gradient step defined here).

use crate::baseline::{hr_target_patch, BaselineII};
use crate::config::TrainConfig;
use crate::losses::{ChannelStats, RbcParamsF32};
use crate::model::{MeshfreeFlowNet, StepLosses};
use mfn_autodiff::{clip_grad_norm, Adam, AdamConfig, Graph};
use mfn_data::{make_batch, Dataset, PatchSampler};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// One epoch's summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean combined loss.
    pub loss: f32,
    /// Mean prediction loss.
    pub prediction: f32,
    /// Mean equation loss.
    pub equation: f32,
    /// Wall-clock seconds for the epoch.
    pub seconds: f64,
}

/// A training corpus: HR/LR dataset pairs (one pair per initial/boundary
/// condition — Tables 3–4 train on up to 10).
pub struct Corpus {
    /// The `(HR, LR)` dataset pairs.
    pub pairs: Vec<(Dataset, Dataset)>,
    /// Channel statistics shared across the corpus (computed from all HR
    /// sets; every patch/target is normalized with these).
    pub stats: ChannelStats,
}

impl Corpus {
    /// Builds a corpus and its pooled channel statistics.
    pub fn new(pairs: Vec<(Dataset, Dataset)>) -> Self {
        assert!(!pairs.is_empty(), "corpus needs at least one dataset pair");
        let mut mean = [0.0f64; 4];
        let mut ms = [0.0f64; 4];
        for (hr, _) in &pairs {
            for c in 0..4 {
                mean[c] += hr.meta.channel_mean[c] as f64;
                ms[c] += (hr.meta.channel_std[c] as f64).powi(2)
                    + (hr.meta.channel_mean[c] as f64).powi(2);
            }
        }
        let n = pairs.len() as f64;
        let mut stats = ChannelStats { mean: [0.0; 4], std: [1.0; 4] };
        for c in 0..4 {
            let m = mean[c] / n;
            stats.mean[c] = m as f32;
            stats.std[c] = ((ms[c] / n - m * m).max(1e-16)).sqrt() as f32;
        }
        Corpus { pairs, stats }
    }

    /// PDE coefficients of pair `i` (boundary conditions can differ per
    /// pair in the Table 4 sweep).
    pub fn params(&self, i: usize) -> RbcParamsF32 {
        let meta = &self.pairs[i].0.meta;
        RbcParamsF32::from_ra_pr(meta.ra, meta.pr)
    }
}

/// Adam-based trainer for MeshfreeFlowNet.
pub struct Trainer {
    /// The model being trained.
    pub model: MeshfreeFlowNet,
    /// Optimizer state.
    pub opt: Adam,
    /// Loop hyperparameters.
    pub cfg: TrainConfig,
}

impl Trainer {
    /// Wraps a model with an Adam optimizer configured from `cfg`.
    pub fn new(model: MeshfreeFlowNet, cfg: TrainConfig) -> Self {
        let opt = Adam::new(&model.store, AdamConfig { lr: cfg.lr, ..Default::default() });
        Trainer { model, opt, cfg }
    }

    /// One gradient step on one batch; returns the loss components.
    pub fn step(
        &mut self,
        batch: &mfn_data::Batch,
        params: RbcParamsF32,
        stats: ChannelStats,
    ) -> StepLosses {
        let mut g = Graph::new();
        let (loss, comps) = self.model.loss_on_batch(&mut g, batch, params, stats, true);
        g.backward(loss);
        let mut grads = g.param_grads(&self.model.store);
        if self.cfg.grad_clip > 0.0 {
            clip_grad_norm(&mut grads, self.cfg.grad_clip);
        }
        self.opt.step(&mut self.model.store, &grads);
        comps
    }

    /// Trains for `cfg.epochs` over the corpus, drawing each batch from a
    /// random dataset pair.
    pub fn train(&mut self, corpus: &Corpus) -> Vec<EpochRecord> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let samplers: Vec<PatchSampler<'_>> = corpus
            .pairs
            .iter()
            .map(|(hr, lr)| PatchSampler::new(hr, lr, self.model.cfg.patch))
            .collect();
        let mut records = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            if self.cfg.lr_decay != 1.0 && epoch > 0 {
                let lr = self.opt.config().lr * self.cfg.lr_decay;
                self.opt.set_lr(lr);
            }
            let start = Instant::now();
            let (mut tl, mut pl, mut el) = (0.0f32, 0.0f32, 0.0f32);
            for _ in 0..self.cfg.batches_per_epoch {
                let di = rng.gen_range(0..samplers.len());
                let batch = make_batch(&samplers[di], self.cfg.batch_size, &mut rng);
                let comps = self.step(&batch, corpus.params(di), corpus.stats);
                tl += comps.total;
                pl += comps.prediction;
                el += comps.equation;
            }
            let nb = self.cfg.batches_per_epoch as f32;
            records.push(EpochRecord {
                epoch,
                loss: tl / nb,
                prediction: pl / nb,
                equation: el / nb,
                seconds: start.elapsed().as_secs_f64(),
            });
        }
        records
    }
}

/// Adam-based trainer for Baseline (II) (patch → HR-patch regression).
pub struct BaselineTrainer {
    /// The baseline model.
    pub model: BaselineII,
    /// Optimizer state.
    pub opt: Adam,
    /// Loop hyperparameters.
    pub cfg: TrainConfig,
}

impl BaselineTrainer {
    /// Wraps a Baseline (II) model with Adam.
    pub fn new(model: BaselineII, cfg: TrainConfig) -> Self {
        let opt = Adam::new(&model.store, AdamConfig { lr: cfg.lr, ..Default::default() });
        BaselineTrainer { model, opt, cfg }
    }

    /// Trains over the corpus with random patch targets.
    pub fn train(&mut self, corpus: &Corpus) -> Vec<EpochRecord> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let spec = self.model.cfg.patch;
        let factors = self.model.factors;
        let mut records = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            let start = Instant::now();
            let mut tl = 0.0f32;
            for _ in 0..self.cfg.batches_per_epoch {
                let di = rng.gen_range(0..corpus.pairs.len());
                let (hr, lr) = &corpus.pairs[di];
                let origin = [
                    rng.gen_range(0..=lr.meta.nt - spec.nt),
                    rng.gen_range(0..=lr.meta.nz - spec.nz),
                    rng.gen_range(0..=lr.meta.nx - spec.nx),
                ];
                let input =
                    crate::model::extract_patch(lr, origin, spec, corpus.stats);
                let target = hr_target_patch(hr, origin, spec, factors, corpus.stats);
                let mut g = Graph::new();
                let loss = self.model.loss(&mut g, &input, &target, true);
                tl += g.value(loss).item();
                g.backward(loss);
                let mut grads = g.param_grads(&self.model.store);
                if self.cfg.grad_clip > 0.0 {
                    clip_grad_norm(&mut grads, self.cfg.grad_clip);
                }
                self.opt.step(&mut self.model.store, &grads);
            }
            let nb = self.cfg.batches_per_epoch as f32;
            records.push(EpochRecord {
                epoch,
                loss: tl / nb,
                prediction: tl / nb,
                equation: 0.0,
                seconds: start.elapsed().as_secs_f64(),
            });
        }
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MfnConfig;
    use mfn_data::{downsample, PatchSpec};
    use mfn_solver::{simulate, RbcConfig};

    fn tiny_corpus() -> Corpus {
        let sim = simulate(
            &RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.1,
            9,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        Corpus::new(vec![(hr, lr)])
    }

    fn tiny_model() -> MeshfreeFlowNet {
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        MeshfreeFlowNet::new(cfg)
    }

    #[test]
    fn training_reduces_loss() {
        let corpus = tiny_corpus();
        let mut trainer = Trainer::new(
            tiny_model(),
            TrainConfig {
                epochs: 15,
                batches_per_epoch: 8,
                batch_size: 4,
                lr: 1e-2,
                ..Default::default()
            },
        );
        let records = trainer.train(&corpus);
        assert_eq!(records.len(), 15);
        let first = records[0].loss;
        let last = records.last().expect("records").loss;
        assert!(
            last < 0.75 * first,
            "loss did not drop: {first} -> {last} ({records:?})"
        );
    }

    #[test]
    fn equation_loss_tracked_when_gamma_positive() {
        let corpus = tiny_corpus();
        let mut model = tiny_model();
        model.cfg.gamma = 0.05;
        let mut trainer = Trainer::new(
            model,
            TrainConfig { epochs: 2, batches_per_epoch: 2, batch_size: 1, ..Default::default() },
        );
        let records = trainer.train(&corpus);
        assert!(records.iter().all(|r| r.equation > 0.0));
    }

    #[test]
    fn baseline_training_reduces_loss() {
        let corpus = tiny_corpus();
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 8 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.levels = 2;
        let b2 = BaselineII::new(cfg, [2, 2, 2]);
        let mut trainer = BaselineTrainer::new(
            b2,
            TrainConfig { epochs: 6, batches_per_epoch: 6, lr: 3e-3, ..Default::default() },
        );
        let records = trainer.train(&corpus);
        let first = records[0].loss;
        let last = records.last().expect("records").loss;
        assert!(last < 0.9 * first, "baseline loss did not drop: {first} -> {last}");
    }

    #[test]
    fn lr_decay_anneals_the_optimizer() {
        let corpus = tiny_corpus();
        let mut trainer = Trainer::new(
            tiny_model(),
            TrainConfig {
                epochs: 5,
                batches_per_epoch: 1,
                batch_size: 2,
                lr: 1e-2,
                lr_decay: 0.5,
                ..Default::default()
            },
        );
        trainer.train(&corpus);
        // After 5 epochs with decay 0.5 applied from epoch 1: lr = 1e-2 * 0.5^4.
        let expect = 1e-2f32 * 0.5f32.powi(4);
        let got = trainer.opt.config().lr;
        assert!((got - expect).abs() < 1e-6, "lr {got} vs {expect}");
        // Default (decay = 1.0) leaves lr untouched.
        let mut t2 = Trainer::new(
            tiny_model(),
            TrainConfig { epochs: 3, batches_per_epoch: 1, batch_size: 2, lr: 1e-2, ..Default::default() },
        );
        t2.train(&corpus);
        assert_eq!(t2.opt.config().lr, 1e-2);
    }

    #[test]
    fn corpus_stats_pool_across_pairs() {
        let sim = simulate(
            &RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.05,
            5,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        let single = Corpus::new(vec![(hr.clone(), lr.clone())]);
        let double = Corpus::new(vec![(hr.clone(), lr.clone()), (hr, lr)]);
        for c in 0..4 {
            assert!((single.stats.mean[c] - double.stats.mean[c]).abs() < 1e-5);
            assert!((single.stats.std[c] - double.stats.std[c]).abs() < 1e-4);
        }
    }
}
