//! Checkpointable batch-sampling RNG.
//!
//! Bit-identical crash-resume needs the sampler's stream position on disk,
//! but `ChaCha8Rng` exposes no portable state accessors. [`SampleRng`] wraps
//! it and counts the 32-bit words drawn; its serialized form is just
//! `(seed, words)` and restore replays `words` draws from a fresh stream.
//! ChaCha8 emits ~1 GiB/s of stream on one core, so even a billion-word
//! replay costs seconds — irrelevant next to the training run it resumes.
//!
//! The wrapper composes `next_u64` from two `next_u32` calls in the same
//! low-word-first order as `rand_core`'s `BlockRng`, so a `SampleRng` yields
//! the exact byte stream of the raw `ChaCha8Rng` it wraps — pinned-seed
//! convergence tests see identical batches with or without the wrapper.

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A `ChaCha8Rng` whose position in the stream is serializable.
#[derive(Debug, Clone)]
pub struct SampleRng {
    inner: ChaCha8Rng,
    seed: u64,
    words: u64,
}

/// Serialized form of a [`SampleRng`]: the seed and the number of 32-bit
/// words consumed so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngState {
    /// Seed the stream was created from (`seed_from_u64`).
    pub seed: u64,
    /// 32-bit words drawn since creation.
    pub words: u64,
}

impl SampleRng {
    /// A fresh stream at position zero.
    pub fn seed_from_u64(seed: u64) -> Self {
        SampleRng { inner: ChaCha8Rng::seed_from_u64(seed), seed, words: 0 }
    }

    /// The current stream position.
    pub fn state(&self) -> RngState {
        RngState { seed: self.seed, words: self.words }
    }

    /// Rebuilds the stream at the recorded position by replaying the
    /// consumed words.
    pub fn restore(state: RngState) -> Self {
        let mut rng = SampleRng::seed_from_u64(state.seed);
        for _ in 0..state.words {
            rng.inner.next_u32();
        }
        rng.words = state.words;
        rng
    }
}

impl RngCore for SampleRng {
    fn next_u32(&mut self) -> u32 {
        self.words += 1;
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        // Low word first — matches BlockRng's next_u64 over a u32 stream.
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Word-at-a-time so the consumed count stays exact. Only the batch
        // sampler draws from this RNG and it never calls fill_bytes; this
        // exists to satisfy the trait without breaking countability.
        for chunk in dest.chunks_mut(4) {
            let b = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// The wrapper must not perturb the stream: a wrapped and a raw
    /// ChaCha8Rng with the same seed agree on mixed u32/u64 draws.
    #[test]
    fn wrapper_is_stream_transparent() {
        let mut wrapped = SampleRng::seed_from_u64(42);
        let mut raw = ChaCha8Rng::seed_from_u64(42);
        for i in 0..64 {
            if i % 3 == 0 {
                assert_eq!(wrapped.next_u64(), raw.next_u64(), "u64 draw {i}");
            } else {
                assert_eq!(wrapped.next_u32(), raw.next_u32(), "u32 draw {i}");
            }
        }
    }

    #[test]
    fn restore_resumes_exact_position() {
        let mut a = SampleRng::seed_from_u64(7);
        for _ in 0..100 {
            let _: usize = a.gen_range(0..17);
        }
        let state = a.state();
        let mut b = SampleRng::restore(state);
        assert_eq!(b.state(), state);
        for i in 0..200 {
            assert_eq!(a.next_u32(), b.next_u32(), "post-restore draw {i}");
        }
    }

    #[test]
    fn gen_range_draws_are_counted() {
        let mut rng = SampleRng::seed_from_u64(0);
        let before = rng.state().words;
        let _: usize = rng.gen_range(0..1000);
        assert!(rng.state().words > before, "gen_range must advance the word count");
    }

    #[test]
    fn fresh_state_is_zero() {
        let rng = SampleRng::seed_from_u64(3);
        assert_eq!(rng.state(), RngState { seed: 3, words: 0 });
    }
}
