//! The two comparison baselines of paper Table 2.
//!
//! - **Baseline (I)** — classic trilinear interpolation of the LR data up to
//!   the HR grid; re-exported from `mfn-data` and wrapped here for a uniform
//!   interface.
//! - **Baseline (II)** — the same 3D U-Net backbone as MeshfreeFlowNet, but
//!   with a *convolutional decoder*: nearest-neighbour upsampling +
//!   convolution stages mapping the latent grid directly to the discrete HR
//!   patch (Fig. 5, right arm). No continuous queries, no PDE constraints.

use crate::config::MfnConfig;
use crate::losses::ChannelStats;
use crate::model::{covering_origins, extract_patch};
use crate::unet::UNet3d;
use mfn_autodiff::{BatchNorm3d, Conv3dLayer, Graph, ParamStore, Var};
use mfn_data::{upsample_trilinear, Dataset, DatasetMeta, CHANNELS};
use mfn_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Baseline (I): trilinear upsampling of `lr` onto `hr_like`'s grid.
pub fn baseline_trilinear(lr: &Dataset, hr_like: &Dataset) -> Dataset {
    upsample_trilinear(lr, hr_like)
}

/// One upsample+conv stage of the convolutional decoder.
#[derive(Debug, Clone)]
struct UpStage {
    factors: [usize; 3],
    conv: Conv3dLayer,
    bn: BatchNorm3d,
}

/// Baseline (II): U-Net encoder + convolutional decoder to the HR patch.
pub struct BaselineII {
    /// Architecture configuration (shared with MeshfreeFlowNet).
    pub cfg: MfnConfig,
    /// Total HR/LR upsampling factors `[t, z, x]`.
    pub factors: [usize; 3],
    /// Trainable parameters.
    pub store: ParamStore,
    unet: UNet3d,
    stages: Vec<UpStage>,
    head: Conv3dLayer,
}

impl BaselineII {
    /// Builds the baseline for given total upsampling factors (the paper's
    /// downsampling factors: `[d_t, d_s, d_s] = [4, 8, 8]`).
    pub fn new(cfg: MfnConfig, factors: [usize; 3]) -> Self {
        for f in factors {
            assert!(f.is_power_of_two(), "upsampling factors must be powers of two");
        }
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed.wrapping_add(1));
        let unet = UNet3d::new(&mut store, &cfg, &mut rng);
        // Decompose into stages of ≤2 per axis (Fig. 5: [4,16,16]→[8,32,32]
        // →[16,64,64]→[16,128,128]).
        let mut rem = factors;
        let mut stages = Vec::new();
        let c = cfg.latent_channels;
        let mut idx = 0;
        while rem.iter().any(|&f| f > 1) {
            let f = [rem[0].min(2), rem[1].min(2), rem[2].min(2)];
            for a in 0..3 {
                rem[a] /= f[a];
            }
            stages.push(UpStage {
                factors: f,
                conv: Conv3dLayer::new(
                    &mut store,
                    &format!("b2.up{idx}.conv"),
                    c,
                    c,
                    [3, 3, 3],
                    &mut rng,
                ),
                bn: BatchNorm3d::new(&mut store, &format!("b2.up{idx}.bn"), c),
            });
            idx += 1;
        }
        let head =
            Conv3dLayer::new(&mut store, "b2.head", c, cfg.out_channels, [1, 1, 1], &mut rng);
        BaselineII { cfg, factors, store, unet, stages, head }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.store.total_numel()
    }

    /// Records the forward pass: `[N, 4, nt, nz, nx]` →
    /// `[N, 4, nt·ft, nz·fz, nx·fx]`.
    pub fn forward(&mut self, g: &mut Graph, x: Var, training: bool) -> Var {
        let mut h = self.unet.forward(g, &self.store, x, training);
        // Iterate by index to satisfy the borrow checker (stages are mutated
        // for their BN running stats while `self.store` is read).
        for si in 0..self.stages.len() {
            let f = self.stages[si].factors;
            h = g.upsample3d(h, f);
            h = self.stages[si].conv.forward(g, &self.store, h);
            h = self.stages[si].bn.forward(g, &self.store, h, training);
            h = g.relu(h);
        }
        self.head.forward(g, &self.store, h)
    }

    /// L1 loss against an HR patch target of matching shape.
    pub fn loss(&mut self, g: &mut Graph, input: &Tensor, target: &Tensor, training: bool) -> Var {
        let x = g.constant(input.clone());
        let y = self.forward(g, x, training);
        let t = g.constant(target.clone());
        g.l1_loss(y, t)
    }

    /// Super-resolves a full LR dataset onto `hr_meta`'s grid by tiling
    /// covering patches; overlapping regions take the last-written patch.
    pub fn super_resolve(
        &mut self,
        lr: &Dataset,
        hr_meta: &DatasetMeta,
        stats: ChannelStats,
    ) -> Dataset {
        let spec = self.cfg.patch;
        let origins = covering_origins(lr, spec);
        let [ft, fz, fx] = self.factors;
        let mut out = vec![0.0f32; hr_meta.nt * CHANNELS * hr_meta.nz * hr_meta.nx];
        for &t0 in &origins.t {
            for &z0 in &origins.z {
                for &x0 in &origins.x {
                    let patch = extract_patch(lr, [t0, z0, x0], spec, stats);
                    let mut g = Graph::new();
                    let x = g.constant(patch);
                    let y = self.forward(&mut g, x, false);
                    let yv = g.value(y);
                    let (pt, pz, px) = (spec.nt * ft, spec.nz * fz, spec.nx * fx);
                    for c in 0..CHANNELS {
                        for dt in 0..pt {
                            let f = (t0 * ft + dt).min(hr_meta.nt - 1);
                            for dz in 0..pz {
                                let j = (z0 * fz + dz).min(hr_meta.nz - 1);
                                for dx in 0..px {
                                    let i = (x0 * fx + dx).min(hr_meta.nx - 1);
                                    let v = yv.at(&[0, c, dt, dz, dx]);
                                    out[((f * CHANNELS + c) * hr_meta.nz + j) * hr_meta.nx + i] =
                                        v * stats.std[c] + stats.mean[c];
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut ds = Dataset::from_parts(hr_meta.clone(), out);
        ds.refresh_stats();
        ds
    }
}

/// Extracts the HR target patch aligned with an LR patch origin, shaped
/// `[1, 4, nt·ft, nz·fz, nx·fx]`, normalized with `stats`. Indices beyond
/// the HR grid clamp to the boundary (edge replication).
pub fn hr_target_patch(
    hr: &Dataset,
    lr_origin: [usize; 3],
    spec: mfn_data::PatchSpec,
    factors: [usize; 3],
    stats: ChannelStats,
) -> Tensor {
    let [ft, fz, fx] = factors;
    let (pt, pz, px) = (spec.nt * ft, spec.nz * fz, spec.nx * fx);
    let mut buf = vec![0.0f32; CHANNELS * pt * pz * px];
    for c in 0..CHANNELS {
        for dt in 0..pt {
            let f = (lr_origin[0] * ft + dt).min(hr.meta.nt - 1);
            for dz in 0..pz {
                let j = (lr_origin[1] * fz + dz).min(hr.meta.nz - 1);
                for dx in 0..px {
                    let i = (lr_origin[2] * fx + dx).min(hr.meta.nx - 1);
                    buf[((c * pt + dt) * pz + dz) * px + dx] =
                        (hr.at(f, c, j, i) - stats.mean[c]) / stats.std[c];
                }
            }
        }
    }
    Tensor::from_vec(buf, &[1, CHANNELS, pt, pz, px])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_data::{downsample, PatchSpec};
    use mfn_solver::{simulate, RbcConfig};

    fn tiny_cfg() -> MfnConfig {
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 8 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.levels = 2;
        cfg
    }

    fn data() -> (Dataset, Dataset) {
        let sim = simulate(
            &RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.1,
            9,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        (hr, lr)
    }

    #[test]
    fn forward_shape_matches_factors() {
        let mut b2 = BaselineII::new(tiny_cfg(), [2, 2, 2]);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[1, 4, 4, 4, 4]));
        let y = b2.forward(&mut g, x, true);
        assert_eq!(g.value(y).dims(), &[1, 4, 8, 8, 8]);
    }

    #[test]
    fn asymmetric_factors() {
        let mut b2 = BaselineII::new(tiny_cfg(), [2, 4, 4]);
        let mut g = Graph::new();
        let x = g.constant(Tensor::ones(&[1, 4, 4, 4, 4]));
        let y = b2.forward(&mut g, x, true);
        assert_eq!(g.value(y).dims(), &[1, 4, 8, 16, 16]);
    }

    #[test]
    fn loss_backprop_reaches_params() {
        let (hr, lr) = data();
        let stats = ChannelStats::from_meta(&hr.meta);
        let mut b2 = BaselineII::new(tiny_cfg(), [2, 2, 2]);
        // Batch of 2: with a single sample, batch norm at the U-Net's
        // [1,1,1] bottleneck normalizes over one element and (correctly)
        // passes zero gradient — training always uses batch >= 2.
        let p0 = extract_patch(&lr, [0, 0, 0], b2.cfg.patch, stats);
        let p1 = extract_patch(&lr, [1, 1, 3], b2.cfg.patch, stats);
        let input = Tensor::concat(&[&p0, &p1], 0);
        let t0 = hr_target_patch(&hr, [0, 0, 0], b2.cfg.patch, [2, 2, 2], stats);
        let t1 = hr_target_patch(&hr, [1, 1, 3], b2.cfg.patch, [2, 2, 2], stats);
        let target = Tensor::concat(&[&t0, &t1], 0);
        let mut g = Graph::new();
        let loss = b2.loss(&mut g, &input, &target, true);
        assert!(g.value(loss).item() > 0.0);
        g.backward(loss);
        let grads = g.param_grads(&b2.store);
        let nonzero = grads.iter().filter(|t| t.max_abs() > 0.0).count();
        assert!(nonzero as f64 > 0.9 * grads.len() as f64);
    }

    #[test]
    fn target_patch_values_align_with_hr() {
        let (hr, _) = data();
        let stats = ChannelStats::from_meta(&hr.meta);
        let spec = PatchSpec { nt: 2, nz: 3, nx: 3, queries: 1 };
        let t = hr_target_patch(&hr, [1, 1, 2], spec, [2, 2, 2], stats);
        assert_eq!(t.dims(), &[1, 4, 4, 6, 6]);
        // Element (c=0, dt=1, dz=2, dx=3) = HR (f=3, j=4, i=7), normalized.
        let expect = (hr.at(3, 0, 4, 7) - stats.mean[0]) / stats.std[0];
        assert!((t.at(&[0, 0, 1, 2, 3]) - expect).abs() < 1e-6);
    }

    #[test]
    fn baseline_one_wraps_trilinear() {
        let (hr, lr) = data();
        let b1 = baseline_trilinear(&lr, &hr);
        assert_eq!(b1.meta.nt, hr.meta.nt);
        // Shared grid points are exact.
        assert!((b1.at(2, 0, 4, 6) - hr.at(2, 0, 4, 6)).abs() < 1e-5);
    }

    #[test]
    fn super_resolve_writes_whole_grid() {
        let (hr, lr) = data();
        let stats = ChannelStats::from_meta(&hr.meta);
        let mut b2 = BaselineII::new(tiny_cfg(), [2, 2, 2]);
        let sr = b2.super_resolve(&lr, &hr.meta, stats);
        assert_eq!(sr.data.len(), hr.data.len());
        assert!(sr.data.iter().all(|v| v.is_finite()));
    }
}
