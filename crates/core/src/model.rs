//! The assembled MeshfreeFlowNet model (paper Sec. 4, Fig. 3).

use crate::config::MfnConfig;
use crate::decoder::{plan_queries, ContinuousDecoder};
use crate::losses::{self, ChannelStats, RbcParamsF32};
use crate::unet::UNet3d;
use mfn_autodiff::{load_params, save_params, Graph, Mlp, ParamStore, Var};
use mfn_data::{covering_axis, Batch, Dataset, DatasetMeta, PatchSpec, CHANNELS};
use mfn_tensor::Tensor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Loss components of one training step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepLosses {
    /// Combined `L = L_p + γ L_e` (Eqn. 10).
    pub total: f32,
    /// Prediction loss `L_p` (Eqn. 8).
    pub prediction: f32,
    /// Equation loss `L_e` (Eqn. 9); zero when γ = 0 (not evaluated).
    pub equation: f32,
}

/// The end-to-end model: Context Generation Network + Continuous Decoding
/// Network over a shared parameter store.
pub struct MeshfreeFlowNet {
    /// Architecture configuration.
    pub cfg: MfnConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    /// The 3D U-Net encoder.
    pub unet: UNet3d,
    /// The continuous decoder.
    pub decoder: ContinuousDecoder,
}

impl MeshfreeFlowNet {
    /// Builds and initializes the model from a configuration.
    pub fn new(cfg: MfnConfig) -> Self {
        let mut store = ParamStore::new();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let unet = UNet3d::new(&mut store, &cfg, &mut rng);
        let mlp = Mlp::new(&mut store, "decoder", &cfg.mlp_widths(), cfg.activation, &mut rng);
        let decoder = ContinuousDecoder::new(mlp, cfg.latent_channels);
        MeshfreeFlowNet { cfg, store, unet, decoder }
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.store.total_numel()
    }

    /// Saves the complete model state: trainable parameters (`<path>`) and
    /// batch-norm running statistics (`<path>.bnstats`).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        save_params(&self.store, path)?;
        let mut w = std::io::BufWriter::new(std::fs::File::create(bn_stats_path(path))?);
        self.write_bn_stats(&mut w)?;
        use std::io::Write;
        w.flush()
    }

    /// Streams the batch-norm running statistics (count, then per-layer
    /// channel count, means, variances) into `w`. Used by [`save`] and
    /// embedded verbatim in the full training-state checkpoint.
    ///
    /// [`save`]: MeshfreeFlowNet::save
    pub fn write_bn_stats(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        let mut bns = Vec::new();
        self.unet.collect_bn(&mut bns);
        w.write_all(&(bns.len() as u64).to_le_bytes())?;
        for bn in bns {
            w.write_all(&(bn.running_mean.len() as u64).to_le_bytes())?;
            for &v in &bn.running_mean {
                w.write_all(&v.to_le_bytes())?;
            }
            for &v in &bn.running_var {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Restores state written by [`MeshfreeFlowNet::save`]. The architecture
    /// must match (validated by parameter names/shapes).
    pub fn load(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        load_params(&mut self.store, path)?;
        let mut r = std::io::BufReader::new(std::fs::File::open(bn_stats_path(path))?);
        self.read_bn_stats(&mut r)
    }

    /// Restores batch-norm statistics written by [`write_bn_stats`],
    /// validating layer and channel counts against this model.
    ///
    /// [`write_bn_stats`]: MeshfreeFlowNet::write_bn_stats
    pub fn read_bn_stats(&mut self, r: &mut impl std::io::Read) -> std::io::Result<()> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let read_u64 = |r: &mut dyn std::io::Read| -> std::io::Result<u64> {
            let mut b = [0u8; 8];
            r.read_exact(&mut b)?;
            Ok(u64::from_le_bytes(b))
        };
        let count = read_u64(r)? as usize;
        let mut bns = Vec::new();
        self.unet.collect_bn_mut(&mut bns);
        if count != bns.len() {
            return Err(bad(&format!("checkpoint has {count} BN layers, model has {}", bns.len())));
        }
        for bn in bns {
            let c = read_u64(r)? as usize;
            if c != bn.running_mean.len() {
                return Err(bad("BN channel count mismatch"));
            }
            let mut read_f32s = |dst: &mut Vec<f32>| -> std::io::Result<()> {
                for v in dst.iter_mut() {
                    let mut b = [0u8; 4];
                    r.read_exact(&mut b)?;
                    *v = f32::from_le_bytes(b);
                }
                Ok(())
            };
            read_f32s(&mut bn.running_mean)?;
            read_f32s(&mut bn.running_var)?;
        }
        Ok(())
    }

    /// The latent grid vertex dims `[nt, nz, nx]`.
    pub fn grid_dims(&self) -> [usize; 3] {
        [self.cfg.patch.nt, self.cfg.patch.nz, self.cfg.patch.nx]
    }

    /// Records the combined loss (Eqn. 10) for a batch and returns
    /// `(loss_var, components)`.
    pub fn loss_on_batch(
        &mut self,
        g: &mut Graph,
        batch: &Batch,
        params: RbcParamsF32,
        stats: ChannelStats,
        training: bool,
    ) -> (Var, StepLosses) {
        let x = g.constant(batch.input.clone());
        let latent = self.unet.forward(g, &self.store, x, training);
        let (pred_loss, _) = losses::prediction_loss(
            g,
            &self.store,
            &self.decoder,
            latent,
            &batch.samples,
            self.grid_dims(),
        );
        if self.cfg.gamma > 0.0 {
            let eq_loss = losses::equation_loss(
                g,
                &self.store,
                &self.decoder,
                latent,
                &batch.samples,
                self.grid_dims(),
                params,
                stats,
                self.cfg.fd_step,
                self.cfg.constraints,
            );
            let scaled = g.scale(eq_loss, self.cfg.gamma);
            let total = g.add(pred_loss, scaled);
            let comps = StepLosses {
                total: g.value(total).item(),
                prediction: g.value(pred_loss).item(),
                equation: g.value(eq_loss).item(),
            };
            (total, comps)
        } else {
            let comps = StepLosses {
                total: g.value(pred_loss).item(),
                prediction: g.value(pred_loss).item(),
                equation: 0.0,
            };
            (pred_loss, comps)
        }
    }

    /// Like [`loss_on_batch`], but for batches drawn by an adaptive query
    /// sampler. Additionally returns one residual score per flattened query
    /// point for feeding back into the sampler: the point's mean absolute
    /// PDE residual, normalized by the batch mean so the score is
    /// scale-free across training (`mean_c |r_c| / E[mean_c |r_c|]`). With
    /// `γ = 0` there is no equation term and the batch-normalized
    /// prediction error stands in.
    ///
    /// Two different reductions are in play (DESIGN.md §15):
    ///
    /// - the returned **loss variable** (what `backward` sees) is the plain
    ///   mean over the drawn points — training deliberately concentrates on
    ///   high-residual regions, in the spirit of residual-based adaptive
    ///   refinement and prioritized replay;
    /// - the returned **[`StepLosses`] components** apply the batch's
    ///   self-normalized importance weights, making the telemetry an
    ///   unbiased estimate of the *uniform*-sampling objective, directly
    ///   comparable against a uniform run's step metrics.
    ///
    /// With empty `query_weights` the batch is treated as uniform and both
    /// reductions coincide with [`loss_on_batch`].
    ///
    /// [`loss_on_batch`]: MeshfreeFlowNet::loss_on_batch
    pub fn loss_on_batch_scored(
        &mut self,
        g: &mut Graph,
        batch: &Batch,
        params: RbcParamsF32,
        stats: ChannelStats,
        training: bool,
    ) -> (Var, StepLosses, Vec<f32>) {
        let n_points: usize = batch.samples.iter().map(|s| s.query_local.len()).sum();
        let n_samples = batch.samples.len();
        // Flatten per-sample normalized weights into per-row weights summing
        // to 1 over the whole batch (uniform when the batch carries none).
        let row_weights: Vec<f32> = if batch.query_weights.is_empty() {
            vec![1.0 / n_points as f32; n_points]
        } else {
            batch
                .query_weights
                .iter()
                .flat_map(|ws| ws.iter().map(|w| w / n_samples as f32))
                .collect()
        };
        assert_eq!(row_weights.len(), n_points, "one weight per query point");

        let x = g.constant(batch.input.clone());
        let latent = self.unet.forward(g, &self.store, x, training);
        let (pred_loss, pred) = losses::prediction_loss(
            g,
            &self.store,
            &self.decoder,
            latent,
            &batch.samples,
            self.grid_dims(),
        );
        let target = losses::stack_targets(&batch.samples);
        let pv = g.value(pred).clone();
        // Per-point mean absolute prediction error: the base of the sampler
        // score and, weighted, of the unbiased reported estimate.
        let pred_rows: Vec<f32> = (0..n_points)
            .map(|j| {
                (0..CHANNELS)
                    .map(|c| (pv.data()[j * CHANNELS + c] - target.data()[j * CHANNELS + c]).abs())
                    .sum::<f32>()
                    / CHANNELS as f32
            })
            .collect();
        let weighted =
            |rows: &[f32]| -> f32 { rows.iter().zip(&row_weights).map(|(r, w)| r * w).sum() };
        let pred_est = weighted(&pred_rows);
        // γ = 0 fallback score: batch-mean-normalized prediction error (a
        // zero-error batch contributes a flat 1.0, i.e. no preference).
        let mean_pred = pred_rows.iter().sum::<f32>() / n_points as f32;
        let mut scores: Vec<f32> =
            pred_rows.iter().map(|&r| if mean_pred > 0.0 { r / mean_pred } else { 1.0 }).collect();

        if self.cfg.gamma > 0.0 {
            let extent = batch.samples.first().expect("non-empty batch").extent_phys;
            for s in &batch.samples {
                let same = s.extent_phys.iter().zip(&extent).all(|(a, b)| (a - b).abs() < 1e-9);
                assert!(same, "equation loss requires a uniform patch extent per batch");
            }
            let points: Vec<(usize, [f32; 3])> = batch
                .samples
                .iter()
                .enumerate()
                .flat_map(|(b, s)| s.query_local.iter().map(move |&q| (b, q)))
                .collect();
            let resid = losses::equation_residuals_at_points(
                g,
                &self.store,
                &self.decoder,
                latent,
                &points,
                self.grid_dims(),
                extent,
                params,
                stats,
                self.cfg.fd_step,
                self.cfg.constraints,
            );
            let abs = g.abs(resid);
            let eq_loss = g.mean(abs);
            let rv = g.value(resid).clone();
            let n_cols = rv.dims()[1];
            let eq_rows: Vec<f32> = (0..n_points)
                .map(|j| {
                    (0..n_cols).map(|c| rv.data()[j * n_cols + c].abs()).sum::<f32>()
                        / n_cols as f32
                })
                .collect();
            let eq_est = weighted(&eq_rows);
            // The sampler chases the *PDE* residual: prediction error is
            // spread by the data term everywhere, but the equation residual
            // concentrates at walls and plume fronts — the structure worth
            // refining into. Batch-mean normalization keeps it scale-free.
            let mean_eq = eq_rows.iter().sum::<f32>() / n_points as f32;
            if mean_eq > 0.0 {
                for (s, r) in scores.iter_mut().zip(&eq_rows) {
                    *s = r / mean_eq;
                }
            }
            let scaled = g.scale(eq_loss, self.cfg.gamma);
            let total = g.add(pred_loss, scaled);
            let comps = StepLosses {
                total: pred_est + self.cfg.gamma * eq_est,
                prediction: pred_est,
                equation: eq_est,
            };
            (total, comps, scores)
        } else {
            let comps = StepLosses { total: pred_est, prediction: pred_est, equation: 0.0 };
            (pred_loss, comps, scores)
        }
    }

    /// Encodes a stacked input `[N, 4, nt, nz, nx]` into a latent grid
    /// *value* (inference mode, no tape retained).
    pub fn encode(&mut self, input: &Tensor) -> Tensor {
        let mut g = Graph::new();
        let x = g.constant(input.clone());
        let latent = self.unet.forward(&mut g, &self.store, x, false);
        g.value(latent).clone()
    }

    /// Decodes query points against an encoded latent grid value
    /// (inference mode). `queries` are `(batch, local)` pairs; returns
    /// normalized predictions `[Q, 4]`.
    pub fn decode_values(
        &self,
        latent: &Tensor,
        queries: impl IntoIterator<Item = (usize, [f32; 3])>,
    ) -> Tensor {
        let plan = plan_queries(self.grid_dims(), queries);
        let mut g = Graph::new();
        let l = g.constant(latent.clone());
        let y = self.decoder.decode(&mut g, &self.store, l, &plan);
        g.value(y).clone()
    }

    /// Super-resolves a full LR dataset onto the grid described by
    /// `hr_meta`, returning a dataset with denormalized physical values.
    ///
    /// The LR grid is tiled with covering patches (consecutive patches share
    /// a boundary vertex); every HR grid point is decoded from *all* patches
    /// containing it and the results blended with separable hat weights
    /// peaking at the patch center. The blending removes patch-seam
    /// artifacts that would otherwise corrupt the spectral metrics (integral
    /// scale, Taylor microscale). `stats` must be the training-time channel
    /// statistics.
    pub fn super_resolve(
        &mut self,
        lr: &Dataset,
        hr_meta: &DatasetMeta,
        stats: ChannelStats,
    ) -> Dataset {
        let spec = self.cfg.patch;
        let origins = covering_origins(lr, spec);
        let n_out = hr_meta.nt * CHANNELS * hr_meta.nz * hr_meta.nx;
        let mut acc = vec![0.0f64; n_out];
        let mut wsum = vec![0.0f64; hr_meta.nt * hr_meta.nz * hr_meta.nx];
        let hr_dt = if hr_meta.nt < 2 { 0.0 } else { hr_meta.duration / (hr_meta.nt - 1) as f64 };
        let hr_dz = hr_meta.lz / (hr_meta.nz - 1).max(1) as f64;
        let hr_dx = hr_meta.lx / hr_meta.nx as f64;
        let extent = [
            (spec.nt - 1) as f64 * lr.dt(),
            (spec.nz - 1) as f64 * lr.dz(),
            (spec.nx - 1) as f64 * lr.dx(),
        ];
        // HR index interval covered by a patch starting at `origin` along one
        // axis; the last patch also owns the trailing edge/wrap gap.
        let covered = |n_hr: usize, h_hr: f64, origin_pos: f64, ext: f64, last: bool| {
            let lo = (origin_pos / h_hr.max(1e-30) - 1e-9).ceil().max(0.0) as usize;
            let hi = if last {
                n_hr.saturating_sub(1)
            } else {
                (((origin_pos + ext) / h_hr.max(1e-30)) + 1e-9).floor() as usize
            };
            (lo, hi.min(n_hr.saturating_sub(1)))
        };
        // Separable hat weight: 1 at the patch center, small but positive at
        // the faces so boundary points (covered by one patch only) still get
        // written.
        let hat =
            |s: f32| -> f64 { 0.02 + (s.clamp(0.0, 1.0).min(1.0 - s.clamp(0.0, 1.0))) as f64 };

        for (ti, &t0) in origins.t.iter().enumerate() {
            let o_t = t0 as f64 * lr.dt();
            let (f_lo, f_hi) =
                covered(hr_meta.nt, hr_dt, o_t, extent[0], ti + 1 == origins.t.len());
            for (zi, &z0) in origins.z.iter().enumerate() {
                let o_z = z0 as f64 * lr.dz();
                let (j_lo, j_hi) =
                    covered(hr_meta.nz, hr_dz, o_z, extent[1], zi + 1 == origins.z.len());
                for (xi, &x0) in origins.x.iter().enumerate() {
                    let o_x = x0 as f64 * lr.dx();
                    let (i_lo, i_hi) =
                        covered(hr_meta.nx, hr_dx, o_x, extent[2], xi + 1 == origins.x.len());
                    let mut queries: Vec<[f32; 3]> = Vec::new();
                    let mut targets: Vec<(usize, usize, usize)> = Vec::new();
                    for f in f_lo..=f_hi {
                        for j in j_lo..=j_hi {
                            for i in i_lo..=i_hi {
                                queries.push([
                                    ((f as f64 * hr_dt - o_t) / extent[0].max(1e-30)) as f32,
                                    ((j as f64 * hr_dz - o_z) / extent[1].max(1e-30)) as f32,
                                    ((i as f64 * hr_dx - o_x) / extent[2].max(1e-30)) as f32,
                                ]);
                                targets.push((f, j, i));
                            }
                        }
                    }
                    if queries.is_empty() {
                        continue;
                    }
                    let patch = extract_patch(lr, [t0, z0, x0], spec, stats);
                    let latent = self.encode(&patch);
                    let pred = self.decode_values(&latent, queries.iter().map(|&q| (0usize, q)));
                    for (row, &(f, j, i)) in targets.iter().enumerate() {
                        let q = &queries[row];
                        let w = hat(q[0]) * hat(q[1]) * hat(q[2]);
                        wsum[(f * hr_meta.nz + j) * hr_meta.nx + i] += w;
                        for c in 0..CHANNELS {
                            let raw = pred.data()[row * CHANNELS + c] as f64;
                            acc[((f * CHANNELS + c) * hr_meta.nz + j) * hr_meta.nx + i] += w * raw;
                        }
                    }
                }
            }
        }
        let mut out = vec![0.0f32; n_out];
        for f in 0..hr_meta.nt {
            for c in 0..CHANNELS {
                for j in 0..hr_meta.nz {
                    for i in 0..hr_meta.nx {
                        let w = wsum[(f * hr_meta.nz + j) * hr_meta.nx + i];
                        debug_assert!(w > 0.0, "HR point ({f},{j},{i}) uncovered");
                        let v = acc[((f * CHANNELS + c) * hr_meta.nz + j) * hr_meta.nx + i]
                            / w.max(1e-30);
                        out[((f * CHANNELS + c) * hr_meta.nz + j) * hr_meta.nx + i] =
                            v as f32 * stats.std[c] + stats.mean[c];
                    }
                }
            }
        }
        let mut ds = Dataset::from_parts(hr_meta.clone(), out);
        ds.refresh_stats();
        ds
    }
}

fn bn_stats_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".bnstats");
    std::path::PathBuf::from(os)
}

/// Extracts a normalized `[1, 4, nt, nz, nx]` patch tensor from an LR
/// dataset at a grid origin.
pub fn extract_patch(
    lr: &Dataset,
    origin: [usize; 3],
    spec: PatchSpec,
    stats: ChannelStats,
) -> Tensor {
    let [t0, z0, x0] = origin;
    assert!(t0 + spec.nt <= lr.meta.nt, "patch t range out of bounds");
    assert!(z0 + spec.nz <= lr.meta.nz, "patch z range out of bounds");
    assert!(x0 + spec.nx <= lr.meta.nx, "patch x range out of bounds");
    let mut buf = vec![0.0f32; CHANNELS * spec.nt * spec.nz * spec.nx];
    for c in 0..CHANNELS {
        for ft in 0..spec.nt {
            for j in 0..spec.nz {
                for i in 0..spec.nx {
                    let v = lr.at(t0 + ft, c, z0 + j, x0 + i);
                    buf[((c * spec.nt + ft) * spec.nz + j) * spec.nx + i] =
                        (v - stats.mean[c]) / stats.std[c];
                }
            }
        }
    }
    Tensor::from_vec(buf, &[1, CHANNELS, spec.nt, spec.nz, spec.nx])
}

/// Cartesian-product covering origins per axis.
#[derive(Debug, Clone)]
pub struct CoveringOrigins {
    /// Time-axis origins.
    pub t: Vec<usize>,
    /// z-axis origins.
    pub z: Vec<usize>,
    /// x-axis origins.
    pub x: Vec<usize>,
}

/// Covering origins for a LR dataset and patch spec.
pub fn covering_origins(lr: &Dataset, spec: PatchSpec) -> CoveringOrigins {
    CoveringOrigins {
        t: covering_axis(lr.meta.nt, spec.nt),
        z: covering_axis(lr.meta.nz, spec.nz),
        x: covering_axis(lr.meta.nx, spec.nx),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfn_data::{downsample, make_batch, PatchSampler};
    use mfn_solver::{simulate, RbcConfig};

    fn tiny_model() -> MeshfreeFlowNet {
        let mut cfg = MfnConfig::small();
        cfg.patch = PatchSpec { nt: 4, nz: 4, nx: 4, queries: 16 };
        cfg.base_channels = 4;
        cfg.latent_channels = 8;
        cfg.mlp_hidden = vec![16, 16];
        cfg.levels = 2;
        MeshfreeFlowNet::new(cfg)
    }

    fn tiny_data() -> (Dataset, Dataset) {
        let sim = simulate(
            &RbcConfig { nx: 16, nz: 9, ra: 1e5, dt_max: 2e-3, ..Default::default() },
            0.1,
            9,
        );
        let hr = Dataset::from_simulation(&sim);
        let lr = downsample(&hr, 2, 2);
        (hr, lr)
    }

    #[test]
    fn model_builds_and_counts_params() {
        let m = tiny_model();
        assert!(m.param_count() > 1000, "params {}", m.param_count());
        let paper = MeshfreeFlowNet::new(MfnConfig::paper());
        // Paper-scale model should be in the millions of parameters.
        assert!(paper.param_count() > 1_000_000, "paper params {}", paper.param_count());
    }

    #[test]
    fn loss_on_batch_produces_gradients() {
        let mut m = tiny_model();
        let (hr, lr) = tiny_data();
        let sampler = PatchSampler::new(&hr, &lr, m.cfg.patch);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let batch = make_batch(&sampler, 2, &mut rng);
        let stats = ChannelStats::from_meta(&hr.meta);
        let params = RbcParamsF32::from_ra_pr(hr.meta.ra, hr.meta.pr);
        let mut g = Graph::new();
        let (loss, comps) = m.loss_on_batch(&mut g, &batch, params, stats, true);
        assert!(comps.total.is_finite() && comps.total > 0.0);
        assert!(comps.equation > 0.0, "gamma > 0 must evaluate the equation loss");
        assert!((comps.total - comps.prediction - m.cfg.gamma * comps.equation).abs() < 1e-4);
        g.backward(loss);
        let grads = g.param_grads(&m.store);
        let nonzero = grads.iter().filter(|t| t.max_abs() > 0.0).count();
        assert!(nonzero as f64 > 0.9 * grads.len() as f64, "{nonzero}/{}", grads.len());
    }

    #[test]
    fn gamma_zero_skips_equation_loss() {
        let mut m = tiny_model();
        m.cfg.gamma = 0.0;
        let (hr, lr) = tiny_data();
        let sampler = PatchSampler::new(&hr, &lr, m.cfg.patch);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let batch = make_batch(&sampler, 1, &mut rng);
        let stats = ChannelStats::from_meta(&hr.meta);
        let params = RbcParamsF32::from_ra_pr(hr.meta.ra, hr.meta.pr);
        let mut g = Graph::new();
        let (_, comps) = m.loss_on_batch(&mut g, &batch, params, stats, true);
        assert_eq!(comps.equation, 0.0);
        assert_eq!(comps.total, comps.prediction);
    }

    #[test]
    fn super_resolve_covers_whole_grid() {
        let mut m = tiny_model();
        let (hr, lr) = tiny_data();
        let stats = ChannelStats::from_meta(&hr.meta);
        let sr = m.super_resolve(&lr, &hr.meta, stats);
        assert_eq!(sr.meta.nt, hr.meta.nt);
        assert_eq!(sr.data.len(), hr.data.len());
        // Untrained output is garbage but must be finite everywhere.
        assert!(sr.data.iter().all(|v| v.is_finite()));
        // And not identically zero (every point was written).
        let nonzero = sr.data.iter().filter(|v| **v != 0.0).count();
        assert!(nonzero as f64 > 0.99 * sr.data.len() as f64);
    }

    #[test]
    fn covering_axis_properties() {
        for (len, p) in [(9usize, 4usize), (16, 4), (5, 5), (7, 3)] {
            let v = covering_axis(len, p);
            assert_eq!(*v.first().expect("nonempty"), 0);
            assert_eq!(*v.last().expect("nonempty") + p, len);
            for w in v.windows(2) {
                assert!(w[1] > w[0]);
                assert!(w[1] - w[0] < p, "gap too large: {v:?}");
            }
        }
    }
}
